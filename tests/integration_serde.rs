//! Serde round-trip tests for the publicly serialisable types: a library
//! whose reports, graphs, and configurations claim `Serialize +
//! Deserialize` must survive JSON round trips bit-for-bit.

use tagnn::prelude::*;
use tagnn_graph::delta::GraphUpdate;
use tagnn_graph::generate::GeneratorConfig;
use tagnn_models::skip::SkipStats;
use tagnn_sim::resource::{estimate, FpgaCapacity};

fn roundtrip<T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(
    value: &T,
) {
    // Floats can drift by one ULP through text; the robust invariant is
    // serialisation idempotence: one round trip reaches a fixed point.
    let json = serde_json::to_string(value).expect("serialise");
    let back: T = serde_json::from_str(&json).expect("deserialise");
    let json2 = serde_json::to_string(&back).expect("re-serialise");
    let back2: T = serde_json::from_str(&json2).expect("re-deserialise");
    assert_eq!(back, back2, "round trip must reach a fixed point");
}

#[test]
fn dynamic_graph_roundtrips() {
    let g = GeneratorConfig::tiny().generate();
    roundtrip(&g);
}

#[test]
fn graph_updates_roundtrip() {
    let updates = vec![
        GraphUpdate::AddEdge { src: 1, dst: 2 },
        GraphUpdate::RemoveEdge { src: 2, dst: 1 },
        GraphUpdate::AddVertex { v: 3 },
        GraphUpdate::RemoveVertex { v: 4 },
        GraphUpdate::MutateFeature {
            v: 0,
            feature: vec![0.5, -0.5],
        },
    ];
    roundtrip(&updates);
}

#[test]
fn accelerator_config_roundtrips() {
    roundtrip(&AcceleratorConfig::tagnn_default());
    roundtrip(
        &AcceleratorConfig::tagnn_default()
            .without_oadl()
            .with_dcus(8),
    );
}

#[test]
fn sim_report_roundtrips() {
    let p = TagnnPipeline::builder()
        .dataset(DatasetPreset::Gdelt)
        .snapshots(4)
        .window(2)
        .hidden(8)
        .scale(0.02)
        .build();
    let report = p.simulate(&AcceleratorConfig::tagnn_default());
    roundtrip(&report);
}

#[test]
fn workload_roundtrips() {
    let p = TagnnPipeline::builder()
        .dataset(DatasetPreset::HepPh)
        .snapshots(4)
        .window(2)
        .hidden(8)
        .scale(0.02)
        .build();
    roundtrip(p.workload());
}

#[test]
fn inference_output_roundtrips() {
    let p = TagnnPipeline::builder()
        .dataset(DatasetPreset::Gdelt)
        .snapshots(3)
        .window(3)
        .hidden(6)
        .scale(0.02)
        .build();
    let out = p.run_concurrent();
    roundtrip(&out);
}

#[test]
fn model_and_skip_config_roundtrip() {
    let model = DgnnModel::new(ModelKind::CdGcn, 8, 6, 11);
    roundtrip(&model);
    roundtrip(&SkipConfig::paper_default());
    roundtrip(&SkipStats {
        normal: 1,
        delta: 2,
        skipped: 3,
    });
}

#[test]
fn resource_report_roundtrips() {
    let r = estimate(
        &AcceleratorConfig::tagnn_default(),
        ModelKind::TGcn,
        FpgaCapacity::u280(),
    );
    roundtrip(&r);
}
