//! Plan-sharing integration: prebuilt window plans must be observationally
//! identical to planning on the fly — through the concurrent engine, the
//! workload measurement, and the simulator — and a `PlanCache` shared
//! across pipelines must produce real hits.

use std::sync::Arc;
use tagnn::prelude::*;
use tagnn_graph::plan::{PlanCache, WindowPlanner};

const SNAPSHOTS: usize = 6;
const WINDOW: usize = 3;
const HIDDEN: usize = 8;

fn graph() -> DynamicGraph {
    DatasetPreset::Gdelt.config_small(SNAPSHOTS).generate()
}

#[test]
fn engine_outputs_are_bit_identical_with_shared_plans() {
    let g = graph();
    let plans = WindowPlanner::new(WINDOW).plan_graph(&g);
    let engine = ConcurrentEngine::with_window(
        DgnnModel::new(ModelKind::TGcn, g.feature_dim(), HIDDEN, 7),
        SkipConfig::paper_default(),
        WINDOW,
    );
    let fly = engine.run(&g);
    let shared = engine.run_with_plans(&g, &plans);
    assert_eq!(fly.final_features, shared.final_features);
    assert_eq!(fly.gnn_outputs, shared.gnn_outputs);
    assert_eq!(fly.stats.skip, shared.stats.skip);
}

#[test]
fn sim_reports_are_identical_with_shared_plans() {
    let g = graph();
    let plans = WindowPlanner::new(WINDOW).plan_graph(&g);
    let fly_w = Workload::measure(
        &g,
        "GT",
        ModelKind::TGcn,
        HIDDEN,
        WINDOW,
        SkipConfig::paper_default(),
        7,
    );
    let mut shared_w = Workload::measure_with_plans(
        &g,
        "GT",
        ModelKind::TGcn,
        HIDDEN,
        WINDOW,
        SkipConfig::paper_default(),
        7,
        &plans,
    );
    // Wall-clock is the only run-to-run nondeterminism in a workload.
    shared_w.concurrent.wall_ns = fly_w.concurrent.wall_ns;
    shared_w.reference.wall_ns = fly_w.reference.wall_ns;
    assert_eq!(fly_w, shared_w);

    let sim = TagnnSimulator::new(AcceleratorConfig::tagnn_default());
    let fly_r = sim.simulate(&g, &fly_w);
    let shared_r = sim.simulate_with_plans(&g, &shared_w, &plans);
    // SimReport equality already ignores plan build time and cache tallies.
    assert_eq!(fly_r, shared_r);
    assert_eq!(shared_r.plan.windows_planned, (SNAPSHOTS / WINDOW) as u64);
    assert!(shared_r.plan.vertices_classified > 0);
}

#[test]
fn shared_cache_hits_across_pipelines_and_misses_once() {
    let cache = Arc::new(PlanCache::new());
    let build = |model: ModelKind| {
        TagnnPipeline::builder()
            .dataset(DatasetPreset::Gdelt)
            .model(model)
            .snapshots(SNAPSHOTS)
            .window(WINDOW)
            .hidden(HIDDEN)
            .scale(0.02)
            .plan_cache(Arc::clone(&cache))
            .build()
    };
    let windows = SNAPSHOTS / WINDOW;

    // First pipeline plans every window from scratch.
    let first = build(ModelKind::TGcn);
    assert_eq!(first.plan_cache_delta().misses, windows as u64);
    assert_eq!(first.plan_cache_delta().hits, 0);

    // A second pipeline over the same graph (different model) reuses every
    // plan: all hits, zero misses, and the plans are the same allocations.
    let second = build(ModelKind::GcLstm);
    assert_eq!(second.plan_cache_delta().hits, windows as u64);
    assert_eq!(second.plan_cache_delta().misses, 0);
    for (a, b) in first.plans().iter().zip(second.plans()) {
        assert!(Arc::ptr_eq(a, b), "cached plans must be shared, not cloned");
    }

    // The cumulative cache tallies agree, and the simulator report of the
    // cache-fed pipeline surfaces them.
    let totals = cache.stats();
    assert_eq!(totals.hits, windows as u64);
    assert_eq!(totals.misses, windows as u64);
    let report = second.simulate(&AcceleratorConfig::tagnn_default());
    assert_eq!(report.plan.cache_hits, windows as u64);
    assert_eq!(report.plan.cache_misses, 0);
}

#[test]
fn cached_pipeline_matches_uncached_pipeline() {
    let build = |cache: Option<Arc<PlanCache>>| {
        let mut b = TagnnPipeline::builder()
            .dataset(DatasetPreset::HepPh)
            .model(ModelKind::CdGcn)
            .snapshots(SNAPSHOTS)
            .window(WINDOW)
            .hidden(HIDDEN)
            .scale(0.02);
        if let Some(c) = cache {
            b = b.plan_cache(c);
        }
        b.build()
    };
    let uncached = build(None);
    let cached = build(Some(Arc::new(PlanCache::new())));

    let a = uncached.run_concurrent();
    let b = cached.run_concurrent();
    assert_eq!(a.final_features, b.final_features);

    let ra = uncached.simulate(&AcceleratorConfig::tagnn_default());
    let rb = cached.simulate(&AcceleratorConfig::tagnn_default());
    assert_eq!(ra, rb);
}
