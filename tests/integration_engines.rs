//! Cross-crate engine equivalence and approximation-quality integration
//! tests: the concurrent engine against the reference engine across
//! models, windows, and reuse modes.

use tagnn::prelude::*;
use tagnn_graph::generate::GeneratorConfig;
use tagnn_models::approx::{run_approx_rnn, ApproxMethod};

fn graph() -> DynamicGraph {
    let mut cfg = GeneratorConfig::tiny();
    cfg.num_vertices = 128;
    cfg.num_edges = 512;
    cfg.num_snapshots = 7;
    cfg.generate()
}

fn model(kind: ModelKind, g: &DynamicGraph) -> DgnnModel {
    DgnnModel::new(kind, g.feature_dim(), 10, 77)
}

#[test]
fn exact_mode_is_bit_faithful_for_all_models_and_windows() {
    let g = graph();
    for kind in ModelKind::ALL {
        let reference = ReferenceEngine::new(model(kind, &g)).run(&g);
        for window in [1usize, 2, 3, 7] {
            let concurrent = ConcurrentEngine::with_options(
                model(kind, &g),
                SkipConfig::disabled(),
                window,
                ReuseMode::Exact,
            )
            .run(&g);
            let diff = reference.max_final_feature_diff(&concurrent);
            assert!(diff < 1e-5, "{kind:?} K={window}: diff {diff}");
        }
    }
}

#[test]
fn paper_window_reuse_error_shrinks_with_smaller_windows() {
    let g = graph();
    let reference = ReferenceEngine::new(model(ModelKind::CdGcn, &g)).run(&g);
    let err = |window| {
        let out = ConcurrentEngine::with_options(
            model(ModelKind::CdGcn, &g),
            SkipConfig::disabled(),
            window,
            ReuseMode::PaperWindow,
        )
        .run(&g);
        reference.max_final_feature_diff(&out)
    };
    assert!(err(1) < 1e-6, "K=1 has nothing to reuse, must be exact");
    assert!(err(2) <= err(7) + 1e-6, "longer windows reuse staler data");
}

#[test]
fn skipping_preserves_gnn_outputs_and_bounds_final_error() {
    let g = graph();
    for kind in ModelKind::ALL {
        let reference = ReferenceEngine::new(model(kind, &g)).run(&g);
        let skipping = ConcurrentEngine::with_options(
            model(kind, &g),
            SkipConfig::paper_default(),
            3,
            ReuseMode::Exact,
        )
        .run(&g);
        for (a, b) in reference.gnn_outputs.iter().zip(&skipping.gnn_outputs) {
            assert!(
                a.max_abs_diff(b) < 1e-5,
                "{kind:?}: GNN is exact in Exact mode"
            );
        }
        let diff = reference.max_final_feature_diff(&skipping);
        assert!(diff < 0.8, "{kind:?}: skipping error {diff} out of band");
        assert!(
            skipping.stats.skip.skipped > 0,
            "{kind:?}: skipping must fire"
        );
    }
}

#[test]
fn batch_refresh_bounds_staleness() {
    // With window 2 every other snapshot is a forced full update, so at
    // least half of all cell updates are Normal.
    let g = graph();
    let out = ConcurrentEngine::with_options(
        model(ModelKind::TGcn, &g),
        SkipConfig::with_thresholds(-1.0, -1.0), // maximally aggressive
        2,
        ReuseMode::Exact,
    )
    .run(&g);
    let s = out.stats.skip;
    assert!(
        s.normal as f64 >= s.total() as f64 * 0.5 - 1.0,
        "refresh must force full updates at batch starts: {s:?}"
    );
}

#[test]
fn lossless_delta_band_is_exact() {
    // theta_s = -1 puts every scored vertex in the Delta band; with zero
    // tolerance the delta path is arithmetically exact, so outputs match
    // the reference.
    let g = graph();
    let reference = ReferenceEngine::new(model(ModelKind::TGcn, &g)).run(&g);
    let delta_only = ConcurrentEngine::with_options(
        model(ModelKind::TGcn, &g),
        SkipConfig::with_thresholds(-1.0, 1.0),
        3,
        ReuseMode::Exact,
    )
    .run(&g);
    assert!(delta_only.stats.skip.delta > 0, "delta band must fire");
    let diff = reference.max_final_feature_diff(&delta_only);
    assert!(diff < 1e-4, "lossless delta updates must be exact: {diff}");
}

#[test]
fn approx_methods_rank_by_aggressiveness() {
    let g = graph();
    let m = model(ModelKind::GcLstm, &g);
    let exact = ReferenceEngine::new(m.clone()).run(&g);
    let err = |method| {
        let hs = run_approx_rnn(&m, &g, &exact.gnn_outputs, method);
        exact
            .final_features
            .iter()
            .zip(&hs)
            .map(|(a, b)| a.max_abs_diff(b))
            .fold(0.0f32, f32::max)
    };
    let fine = err(ApproxMethod::DeltaRnn { threshold: 0.01 });
    let coarse = err(ApproxMethod::DeltaRnn { threshold: 0.5 });
    assert!(fine <= coarse, "coarser thresholds cannot be more accurate");
}

#[test]
fn stats_wall_time_is_recorded() {
    let g = graph();
    let out =
        ConcurrentEngine::with_window(model(ModelKind::TGcn, &g), SkipConfig::paper_default(), 3)
            .run(&g);
    assert!(out.stats.wall_ns > 0);
}
