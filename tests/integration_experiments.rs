//! Experiment-harness smoke tests: every table/figure runner executes under
//! the quick context and reproduces the paper's headline shapes.

use tagnn::experiments::{run, run_all, ExperimentContext, ALL_EXPERIMENTS};

#[test]
fn every_experiment_runs_and_renders() {
    let ctx = ExperimentContext::quick();
    let results = run_all(&ctx);
    assert_eq!(results.len(), ALL_EXPERIMENTS.len());
    for r in &results {
        let rendered = r.render();
        assert!(rendered.contains(&r.id), "{} render must name itself", r.id);
        assert!(!r.table.is_empty(), "{} must have rows", r.id);
        assert!(!r.metrics.is_empty(), "{} must expose metrics", r.id);
    }
}

#[test]
fn headline_speedups_have_paper_shape() {
    let ctx = ExperimentContext::quick();
    let fig9 = run("fig9", &ctx);
    let fig10 = run("fig10", &ctx);
    // TaGNN beats CPU by more than it beats the GPU, which it beats by more
    // than the accelerators (the Figure 9/10 ordering).
    let vs_cpu = fig9.metric("avg_tagnn_vs_cpu");
    let vs_gpu = fig9.metric("avg_tagnn_vs_pipad");
    let vs_booster = fig10.metric("avg_vs_booster");
    let vs_cam = fig10.metric("avg_vs_cambricon");
    assert!(vs_cpu > vs_gpu);
    assert!(vs_gpu > vs_booster);
    assert!(vs_booster > vs_cam);
    assert!(vs_cam > 1.0);
}

#[test]
fn ablation_shares_match_paper_ordering() {
    let ctx = ExperimentContext::quick();
    let fig13a = run("fig13a", &ctx);
    // Paper: MSDL+DCU 53.6% > ARNN 32.6% > dispatcher 13.8%.
    let msdl = fig13a.metric("avg_msdl_dcu_share");
    let disp = fig13a.metric("avg_dispatcher_share");
    assert!(
        msdl > disp,
        "MSDL+DCU {msdl} must dominate dispatcher {disp}"
    );
}

#[test]
fn accuracy_table_has_paper_shape() {
    let ctx = ExperimentContext::quick();
    let t5 = run("table5", &ctx);
    assert!(t5.metric("worst_tagnn_loss") <= t5.metric("worst_competitor_loss"));
}

#[test]
fn results_serialise_to_json() {
    let ctx = ExperimentContext::quick();
    let r = run("table4", &ctx);
    let json = serde_json::to_string(&r).expect("experiment results serialise");
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(v["id"], "table4");
    assert!(v["metrics"]["tagnn_macs"].as_f64().unwrap() > 0.0);
}

#[test]
fn unaffected_ratios_fall_in_plausible_bands() {
    let ctx = ExperimentContext::quick();
    let fig3a = run("fig3a", &ctx);
    for ds in &ctx.datasets {
        let w3 = fig3a.metric(&format!("w3_{}", ds.abbrev()));
        let w4 = fig3a.metric(&format!("w4_{}", ds.abbrev()));
        assert!((0.0..1.0).contains(&w3), "{} w3={w3}", ds.abbrev());
        assert!(
            w4 <= w3 + 1e-9,
            "{}: ratio must shrink with window",
            ds.abbrev()
        );
    }
}
