//! Simulator-level integration: platform orderings, ablation directions,
//! and sweep monotonicities that the paper's figures rely on.

use tagnn::prelude::*;
use tagnn_sim::baselines::{cambricon_dg, cpu_dgl, dgnn_booster, edgcn, gpu_pipad};

fn setup() -> TagnnPipeline {
    TagnnPipeline::builder()
        .dataset(DatasetPreset::Gdelt)
        .model(ModelKind::TGcn)
        .snapshots(6)
        .window(3)
        .hidden(16)
        .scale(0.03)
        .build()
}

#[test]
fn full_platform_ordering_matches_figure9_and_10() {
    let p = setup();
    let w = p.workload();
    let tagnn = p.simulate(&AcceleratorConfig::tagnn_default()).time_ms;
    let cam = cambricon_dg::cambricon_dg().estimate(w).time_ms;
    let e = edgcn::edgcn().estimate(w).time_ms;
    let booster = dgnn_booster::dgnn_booster().estimate(w).time_ms;
    let pipad = gpu_pipad::pipad().estimate(w).time_ms;
    let cpu = cpu_dgl::dgl_cpu().estimate(w).time_ms;
    assert!(tagnn < cam, "TaGNN {tagnn} vs Cambricon {cam}");
    assert!(cam < e, "Cambricon {cam} vs E-DGCN {e}");
    assert!(e < booster, "E-DGCN {e} vs Booster {booster}");
    assert!(booster < pipad, "Booster {booster} vs PiPAD {pipad}");
    assert!(pipad < cpu, "PiPAD {pipad} vs CPU {cpu}");
}

#[test]
fn speedup_magnitudes_are_in_the_papers_decade() {
    let p = setup();
    let w = p.workload();
    let tagnn = p.simulate(&AcceleratorConfig::tagnn_default()).time_ms;
    let vs_cpu = cpu_dgl::dgl_cpu().estimate(w).time_ms / tagnn;
    let vs_gpu = gpu_pipad::pipad().estimate(w).time_ms / tagnn;
    let vs_cam = cambricon_dg::cambricon_dg().estimate(w).time_ms / tagnn;
    // Paper: 535x / 84x / 6.5x. Expect the same orders of magnitude.
    assert!((50.0..20_000.0).contains(&vs_cpu), "vs CPU {vs_cpu}");
    assert!((8.0..2_000.0).contains(&vs_gpu), "vs PiPAD {vs_gpu}");
    assert!((1.5..60.0).contains(&vs_cam), "vs Cambricon {vs_cam}");
    assert!(vs_cpu > vs_gpu && vs_gpu > vs_cam);
}

#[test]
fn energy_ordering_tracks_figure11() {
    let p = setup();
    let w = p.workload();
    let tagnn = p.simulate(&AcceleratorConfig::tagnn_default()).energy_mj;
    for platform in [
        cambricon_dg::cambricon_dg(),
        edgcn::edgcn(),
        dgnn_booster::dgnn_booster(),
        gpu_pipad::pipad(),
        cpu_dgl::dgl_cpu(),
    ] {
        assert!(
            platform.estimate(w).energy_mj > tagnn,
            "{} must burn more energy than TaGNN",
            platform.name
        );
    }
}

#[test]
fn ablations_all_point_the_right_way() {
    let p = setup();
    let base = p.simulate(&AcceleratorConfig::tagnn_default());
    let wo_oadl = p.simulate(&AcceleratorConfig::tagnn_default().without_oadl());
    let wo_adsc = p.simulate(&AcceleratorConfig::tagnn_default().without_adsc());
    let wo_disp = p.simulate(&AcceleratorConfig::tagnn_default().without_balanced_dispatch());
    assert!(wo_oadl.time_ms > base.time_ms, "OADL must matter");
    assert!(wo_adsc.time_ms >= base.time_ms, "ADSC must not hurt");
    assert!(
        wo_disp.time_ms >= base.time_ms,
        "balanced dispatch must not hurt"
    );
    // Fig. 12: OADL is the larger contributor.
    assert!(
        wo_oadl.time_ms - base.time_ms >= wo_adsc.time_ms - base.time_ms,
        "OADL gain must dominate ADSC gain"
    );
}

#[test]
fn dcu_and_mac_sweeps_are_monotone_nonincreasing() {
    let p = setup();
    let mut last = f64::INFINITY;
    for dcus in [1usize, 4, 16] {
        let t = p
            .simulate(&AcceleratorConfig::tagnn_default().with_dcus(dcus))
            .time_ms;
        assert!(t <= last + 1e-12, "{dcus} DCUs regressed");
        last = t;
    }
    let mut last = f64::INFINITY;
    for macs in [512usize, 2048, 8192] {
        let t = p
            .simulate(&AcceleratorConfig::tagnn_default().with_macs(macs))
            .time_ms;
        assert!(t <= last + 1e-12, "{macs} MACs regressed");
        last = t;
    }
}

#[test]
fn windowing_beats_snapshot_by_snapshot_on_the_accelerator() {
    let sim = |k: usize| {
        let p = TagnnPipeline::builder()
            .dataset(DatasetPreset::Gdelt)
            .model(ModelKind::TGcn)
            .snapshots(6)
            .window(k)
            .hidden(16)
            .scale(0.03)
            .build();
        p.simulate(&AcceleratorConfig::tagnn_default()).time_ms
    };
    assert!(sim(3) < sim(1), "multi-snapshot batching must win");
}

#[test]
fn resource_model_is_exposed_through_sim_crate() {
    use tagnn_sim::resource::{estimate, FpgaCapacity};
    let r = estimate(
        &AcceleratorConfig::tagnn_default(),
        ModelKind::TGcn,
        FpgaCapacity::u280(),
    );
    assert!(r.dsp_pct > 50.0 && r.dsp_pct < 100.0);
    assert!(r.uram_pct > 50.0 && r.uram_pct < 100.0);
}

#[test]
fn phase_breakdown_is_a_distribution() {
    let p = setup();
    let (a, c, u, o) = gpu_pipad::pipad().phase_breakdown(p.workload());
    assert!((a + c + u + o - 1.0).abs() < 1e-9);
    for frac in [a, c, u, o] {
        assert!((0.0..=1.0).contains(&frac));
    }
}
