//! Cross-checks the engines' work counters against the skip-mode tallies
//! and the graph structure: `rnn_macs` and `similarity_ops` must be
//! recomputable from `SkipStats` and the snapshots, not just plausible.

use tagnn::prelude::*;
use tagnn_graph::generate::GeneratorConfig;
use tagnn_graph::types::VertexId;

fn graph() -> DynamicGraph {
    let mut cfg = GeneratorConfig::tiny();
    cfg.num_vertices = 96;
    cfg.num_edges = 400;
    cfg.num_snapshots = 7;
    cfg.generate()
}

const WINDOW: usize = 3;
const HIDDEN: usize = 10;

fn run(skip: SkipConfig) -> InferenceOutput {
    let g = graph();
    let model = DgnnModel::new(ModelKind::TGcn, g.feature_dim(), HIDDEN, 77);
    ConcurrentEngine::with_window(model, skip, WINDOW).run(&g)
}

/// Scored vertices per the SCU guard (skipping enabled, vertex active in
/// the current *and* previous snapshot of the same window, with a cached
/// input from an earlier update), each billed `3*hidden + degree`.
fn expected_similarity_ops(g: &DynamicGraph, all_normal: bool) -> u64 {
    assert!(
        all_normal,
        "structural recomputation of has_input assumes every scored or \
         unscored active vertex runs a Normal update"
    );
    let n = g.num_vertices();
    let mut has_input = vec![false; n];
    let mut ops = 0u64;
    for (t, snap) in g.snapshots().iter().enumerate() {
        let in_window = t % WINDOW; // 0 ⇒ first snapshot of its window
        for v in 0..n as VertexId {
            if !snap.is_active(v) {
                continue;
            }
            if in_window > 0 && g.snapshot(t - 1).is_active(v) && has_input[v as usize] {
                ops += (3 * HIDDEN + snap.csr().degree(v)) as u64;
            }
            has_input[v as usize] = true;
        }
    }
    ops
}

#[test]
fn similarity_ops_match_structural_recomputation() {
    // Thresholds of (10, 10) force every scored vertex onto the Normal
    // path (θ is bounded by ~[-1, 1]), so `has_input` evolves exactly as
    // the structural sweep predicts.
    let out = run(SkipConfig::with_thresholds(10.0, 10.0));
    let expected = expected_similarity_ops(&graph(), true);
    assert!(expected > 0, "test graph must actually score vertices");
    assert_eq!(out.stats.similarity_ops, expected);
}

#[test]
fn rnn_macs_match_skip_tallies_when_nothing_skips() {
    let g = graph();
    let out = run(SkipConfig::with_thresholds(10.0, 10.0));
    let cell_macs = DgnnModel::new(ModelKind::TGcn, g.feature_dim(), HIDDEN, 77)
        .cell()
        .full_step_macs();
    assert_eq!(out.stats.skip.delta, 0);
    assert_eq!(out.stats.skip.skipped, 0);
    assert_eq!(out.stats.rnn_macs, out.stats.skip.normal * cell_macs);
    // Every active vertex of every snapshot takes exactly one cell update.
    let active: u64 = g.snapshots().iter().map(|s| s.num_active() as u64).sum();
    assert_eq!(out.stats.skip.total(), active);
}

#[test]
fn rnn_macs_are_bounded_by_skip_tallies_under_paper_skipping() {
    let g = graph();
    let out = run(SkipConfig::paper_default());
    let cell = DgnnModel::new(ModelKind::TGcn, g.feature_dim(), HIDDEN, 77);
    let full = cell.cell().full_step_macs();
    let s = &out.stats.skip;
    // Skipped cells cost nothing; delta cells cost between the empty and
    // the full patch; normal cells cost exactly one full step.
    let lo = s.normal * full + s.delta * cell.cell().delta_step_macs(0);
    let hi = s.normal * full + s.delta * cell.cell().delta_step_macs(cell.cell().in_dim());
    assert!(
        (lo..=hi).contains(&out.stats.rnn_macs),
        "rnn_macs {} outside [{lo}, {hi}]",
        out.stats.rnn_macs
    );
    let active: u64 = g.snapshots().iter().map(|sn| sn.num_active() as u64).sum();
    assert_eq!(s.total(), active);
}

/// The per-stage roofline accounting must be exactly recomputable from
/// the work counters, the skip tallies, and the plan structure — 4
/// bytes per word, 2 flops per MAC — never merely plausible.
#[test]
fn roofline_counters_match_recomputation_from_stats_and_plans() {
    let g = graph();
    let out = run(SkipConfig::paper_default());
    let s = &out.stats;
    let r = &s.roofline;
    let d = g.feature_dim() as u64;
    let h = HIDDEN as u64;
    let in_dim = DgnnModel::new(ModelKind::TGcn, g.feature_dim(), HIDDEN, 77)
        .cell()
        .in_dim() as u64;

    assert_eq!(r.gnn.flops, 2 * (s.gnn_aggregate_macs + s.gnn_combine_macs));
    assert_eq!(
        r.gnn.bytes,
        4 * (s.feature_rows_loaded * d + s.structure_words_loaded + s.gnn_vertices_computed * h)
    );
    assert_eq!(r.rnn.flops, 2 * s.rnn_macs);
    assert_eq!(
        r.rnn.bytes,
        4 * (s.skip.normal * (in_dim + 2 * h) + s.skip.delta * 2 * h)
    );
    assert_eq!(r.delta.flops, 2 * s.similarity_ops);
    assert_eq!(r.delta.bytes, 4 * s.similarity_ops);

    // Plan-build traffic from the plan structure itself.
    let plans = tagnn_graph::WindowPlanner::new(WINDOW).plan_graph(&g);
    let expected_plan_bytes: u64 = plans
        .iter()
        .map(|p| {
            let ps = p.stats();
            4 * (2 * ps.classified_vertices + 2 * ps.subgraph_vertices + 2 * ps.subgraph_edges)
        })
        .sum();
    assert_eq!(r.plan_build.bytes, expected_plan_bytes);
    assert_eq!(r.plan_build.flops, 0, "plan building moves words, no MACs");

    // Every compute stage did real work on this graph.
    assert!(r.gnn.flops > 0 && r.gnn.bytes > 0);
    assert!(r.rnn.flops > 0 && r.rnn.bytes > 0);
    assert!(r.plan_build.bytes > 0);
}

#[test]
fn reference_engine_rnn_macs_are_exactly_normal_updates() {
    let g = graph();
    let model = DgnnModel::new(ModelKind::TGcn, g.feature_dim(), HIDDEN, 77);
    let full = model.cell().full_step_macs();
    let out = ReferenceEngine::new(model).run(&g);
    assert_eq!(out.stats.similarity_ops, 0, "no SCU in the baseline");
    assert_eq!(out.stats.skip.delta + out.stats.skip.skipped, 0);
    assert_eq!(out.stats.rnn_macs, out.stats.skip.normal * full);
}
