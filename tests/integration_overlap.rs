//! Differential suite for the software-pipelined plan/execute overlap:
//! at every window size, lookahead depth, and skip mode, *both* overlap
//! executors — the threaded pipeline (background planner thread +
//! staged prefetch buffers) and its single-core just-in-time
//! degeneration — must produce bit-identical outputs and identical work
//! counters to the sequential plan-everything-then-run path. Wall-clock
//! is the only permitted difference. `run_pipelined` picks between the
//! two by host core count, so the tests call each path explicitly.

use tagnn::prelude::*;
use tagnn_graph::generate::GeneratorConfig;

fn graph(snapshots: usize) -> DynamicGraph {
    let mut cfg = GeneratorConfig::tiny();
    cfg.num_vertices = 96;
    cfg.num_edges = 400;
    cfg.num_snapshots = snapshots;
    cfg.generate()
}

const HIDDEN: usize = 10;

fn assert_identical(seq: &InferenceOutput, pipe: &InferenceOutput, what: &str) {
    assert_eq!(
        seq.final_features, pipe.final_features,
        "{what}: final features diverged"
    );
    assert_eq!(
        seq.gnn_outputs, pipe.gnn_outputs,
        "{what}: gnn outputs diverged"
    );
    let mut seq_stats = seq.stats;
    let mut pipe_stats = pipe.stats;
    seq_stats.wall_ns = 0;
    pipe_stats.wall_ns = 0;
    assert_eq!(seq_stats, pipe_stats, "{what}: work counters diverged");
}

#[test]
fn pipelined_is_bit_identical_across_window_lookahead_and_skip() {
    let g = graph(7);
    for k in [1usize, 3, 5] {
        for (skip_name, skip) in [
            ("disabled", SkipConfig::disabled()),
            ("paper_default", SkipConfig::paper_default()),
        ] {
            let model = DgnnModel::new(ModelKind::TGcn, g.feature_dim(), HIDDEN, 77);
            let engine = ConcurrentEngine::with_window(model, skip, k);
            let seq = engine.run(&g);
            let jit = engine.run_just_in_time(&g, None);
            assert_identical(&seq, &jit, &format!("K={k} skip={skip_name} jit"));
            for lookahead in [1usize, 2] {
                let pipe = engine.run_pipelined_threaded(&g, None, lookahead);
                assert_identical(
                    &seq,
                    &pipe,
                    &format!("K={k} lookahead={lookahead} skip={skip_name}"),
                );
            }
        }
    }
}

#[test]
fn pipelined_is_bit_identical_for_every_model_kind() {
    let g = graph(6);
    for model_kind in ModelKind::ALL {
        let model = DgnnModel::new(model_kind, g.feature_dim(), HIDDEN, 13);
        let engine = ConcurrentEngine::with_window(model, SkipConfig::paper_default(), 3);
        let seq = engine.run(&g);
        let pipe = engine.run_pipelined_threaded(&g, None, 2);
        assert_identical(&seq, &pipe, model_kind.name());
        let jit = engine.run_just_in_time(&g, None);
        assert_identical(&seq, &jit, &format!("{} jit", model_kind.name()));
    }
}

#[test]
fn overlap_pipeline_builder_routes_and_matches() {
    let build = |overlap: bool| {
        TagnnPipeline::builder()
            .dataset(DatasetPreset::Gdelt)
            .model(ModelKind::TGcn)
            .snapshots(6)
            .window(3)
            .hidden(8)
            .overlap(overlap)
            .lookahead(2)
            .build()
    };
    let plain = build(false);
    let overlapped = build(true);
    assert!(!plain.overlap_enabled());
    assert!(overlapped.overlap_enabled());
    assert_eq!(overlapped.lookahead(), 2);
    let a = plain.run_concurrent();
    let b = overlapped.run_concurrent();
    assert_eq!(a.final_features, b.final_features);
    assert_eq!(a.gnn_outputs, b.gnn_outputs);
}

/// The overlap path re-derives plans on the planner thread; its roofline
/// accounting must match the sequential run's exactly (same windows,
/// same traffic model).
#[test]
fn pipelined_roofline_counters_match_sequential() {
    let g = graph(7);
    let model = DgnnModel::new(ModelKind::TGcn, g.feature_dim(), HIDDEN, 77);
    let engine = ConcurrentEngine::with_window(model, SkipConfig::paper_default(), 3);
    let seq = engine.run(&g);
    let pipe = engine.run_pipelined_threaded(&g, None, 2);
    assert_eq!(seq.stats.roofline, pipe.stats.roofline);
    let jit = engine.run_just_in_time(&g, None);
    assert_eq!(seq.stats.roofline, jit.stats.roofline);
    assert!(seq.stats.roofline.gnn.flops > 0, "roofline must be filled");
}
