//! End-to-end checks of the tagnn-obs observability layer: traced runs
//! record a span per pipeline stage and publish the work counters, while
//! untraced runs stay byte-identical to the pre-observability behaviour.

use std::sync::Arc;
use tagnn::prelude::*;
use tagnn_obs::Recorder;

fn traced_pipeline(rec: &Arc<Recorder>) -> TagnnPipeline {
    TagnnPipeline::builder()
        .dataset(DatasetPreset::Gdelt)
        .model(ModelKind::TGcn)
        .snapshots(6)
        .window(3)
        .hidden(8)
        .recorder(Arc::clone(rec))
        .build()
}

fn plain_pipeline() -> TagnnPipeline {
    TagnnPipeline::builder()
        .dataset(DatasetPreset::Gdelt)
        .model(ModelKind::TGcn)
        .snapshots(6)
        .window(3)
        .hidden(8)
        .build()
}

#[test]
fn traced_run_records_a_span_per_pipeline_stage() {
    let rec = Arc::new(Recorder::new());
    let p = traced_pipeline(&rec);
    p.run_concurrent();
    p.run_reference();
    p.simulate(&AcceleratorConfig::tagnn_default());

    let trace = rec.snapshot();
    let spans: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
    for stage in [
        "generate",
        "plan",
        "measure",
        "classify_reuse",
        "gnn_window",
        "gnn_layer",
        "rnn",
        "dispatch",
        "traffic",
        "compute_model",
        "timeline",
    ] {
        assert!(
            spans.contains(&stage),
            "missing `{stage}` span in {spans:?}"
        );
    }
    assert!(
        trace.spans.iter().all(|s| s.dur_ns.is_some()),
        "every span must have closed"
    );
    // Phase spans opened inside the measurement nest under it.
    let measure = trace.spans.iter().find(|s| s.name == "measure").unwrap();
    let nested = trace
        .spans
        .iter()
        .filter(|s| s.parent == Some(measure.id))
        .count();
    assert!(nested >= 2, "engine spans must nest under `measure`");
}

#[test]
fn traced_run_publishes_engine_and_sim_counters() {
    let rec = Arc::new(Recorder::new());
    let p = traced_pipeline(&rec);
    p.simulate(&AcceleratorConfig::tagnn_default());

    let trace = rec.snapshot();
    for counter in [
        "plan.windows_planned",
        "engine.concurrent.rnn_macs",
        "engine.concurrent.similarity_ops",
        "engine.concurrent.feature_rows_reused",
        "engine.reference.rnn_macs",
        "sim.cycles",
    ] {
        assert!(
            trace.counters.get(counter).copied().unwrap_or(0) > 0,
            "counter `{counter}` missing or zero"
        );
    }
    for gauge in [
        "sim.dispatch_utilization",
        "sim.cycles.dram",
        "sim.compute_stall_cycles",
        "sim.memory_idle_cycles",
    ] {
        assert!(trace.gauges.contains_key(gauge), "gauge `{gauge}` missing");
    }
    // Published counters mirror the measured workload exactly.
    assert_eq!(
        trace.counters["engine.concurrent.rnn_macs"],
        p.workload().concurrent.rnn_macs
    );
    assert_eq!(
        trace.counters["engine.reference.rnn_macs"],
        p.workload().reference.rnn_macs
    );

    // The JSON export is self-contained: spans, counters, and gauges all
    // appear (substring checks — the export is hand-rolled, no parser
    // needed to validate presence).
    let json = trace.to_json();
    for needle in [
        "\"spans\"",
        "\"name\": \"plan\"",
        "\"name\": \"dispatch\"",
        "\"name\": \"timeline\"",
        "\"engine.concurrent.rnn_macs\"",
        "\"sim.dispatch_utilization\"",
    ] {
        assert!(json.contains(needle), "JSON export missing {needle}");
    }
}

/// Traced runs publish the per-stage roofline counters, the trace
/// aggregates them into a memory-vs-compute report, and the JSON export
/// carries the verdicts.
#[test]
fn traced_run_surfaces_the_roofline_report() {
    let rec = Arc::new(Recorder::new());
    let p = traced_pipeline(&rec);
    p.run_concurrent();

    let trace = rec.snapshot();
    for counter in [
        "engine.concurrent.roofline.plan_build.bytes",
        "engine.concurrent.roofline.gnn.bytes",
        "engine.concurrent.roofline.gnn.flops",
        "engine.concurrent.roofline.rnn.bytes",
        "engine.concurrent.roofline.rnn.flops",
    ] {
        assert!(
            trace.counters.get(counter).copied().unwrap_or(0) > 0,
            "counter `{counter}` missing or zero"
        );
    }

    let report = trace.roofline().expect("roofline counters present");
    let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
    for stage in ["plan_build", "gnn", "rnn"] {
        assert!(names.contains(&stage), "missing `{stage}` in {names:?}");
    }
    let plan = report
        .stages
        .iter()
        .find(|s| s.name == "plan_build")
        .unwrap();
    assert_eq!(plan.flops, 0, "plan building is pure data movement");
    assert_eq!(
        plan.verdict(report.balance),
        tagnn_obs::roofline::Bound::Memory,
        "zero-flop stages are memory-bound by definition"
    );

    let json = trace.to_json();
    for needle in ["\"roofline\"", "\"intensity\"", "\"bound\""] {
        assert!(json.contains(needle), "JSON export missing {needle}");
    }
    assert!(
        trace.summary().contains("roofline"),
        "summary table must render the roofline section"
    );
}

#[test]
fn attaching_a_recorder_does_not_change_any_result() {
    let rec = Arc::new(Recorder::new());
    let traced = traced_pipeline(&rec);
    let plain = plain_pipeline();

    // Workload equality modulo wall-clock.
    let mut tw = traced.workload().clone();
    let pw = plain.workload().clone();
    tw.concurrent.wall_ns = pw.concurrent.wall_ns;
    tw.reference.wall_ns = pw.reference.wall_ns;
    assert_eq!(tw, pw, "tracing must not perturb the measured workload");

    // Engine outputs bit-identical.
    let a = traced.run_concurrent();
    let b = plain.run_concurrent();
    assert_eq!(a.final_features, b.final_features);
    assert_eq!(a.gnn_outputs, b.gnn_outputs);
    assert_eq!(
        a.stats.roofline, b.stats.roofline,
        "the roofline recorder must not perturb its own accounting"
    );

    // Simulator reports equal under report equality (which already
    // excludes wall-clock instrumentation).
    assert_eq!(
        traced.simulate(&AcceleratorConfig::tagnn_default()),
        plain.simulate(&AcceleratorConfig::tagnn_default())
    );
}

#[test]
fn experiment_context_records_experiment_spans() {
    let rec = Arc::new(Recorder::new());
    let ctx = tagnn::experiments::ExperimentContext::quick().with_recorder(Arc::clone(&rec));
    let traced = tagnn::experiments::run("fig8a", &ctx);
    let trace = rec.snapshot();
    assert!(
        trace.spans.iter().any(|s| s.name == "experiment.fig8a"),
        "experiment span missing"
    );
    // The experiment span is the root of everything recorded under it.
    let root = trace
        .spans
        .iter()
        .find(|s| s.name == "experiment.fig8a")
        .unwrap();
    assert_eq!(root.parent, None);
    assert!(trace.spans.iter().any(|s| s.parent == Some(root.id)));

    // And recording does not change the experiment's numbers.
    let plain = tagnn::experiments::run("fig8a", &tagnn::experiments::ExperimentContext::quick());
    assert_eq!(traced.metrics, plain.metrics);
}
