//! Edge-case and failure-injection integration tests: degenerate graphs,
//! vertex churn around window boundaries, and loaded-data pipelines.

use tagnn::prelude::*;
use tagnn_graph::delta::{apply_updates, GraphUpdate};
use tagnn_graph::io::{snapshots_from_edges, TemporalEdge};
use tagnn_graph::{classify_window, Csr};
use tagnn_models::DgnnModel;
use tagnn_tensor::DenseMatrix;

fn snap(n: usize, edges: &[(u32, u32)]) -> Snapshot {
    Snapshot::fully_active(
        Csr::from_edges(n, edges),
        DenseMatrix::from_fn(n, 3, |r, c| (r + c) as f32 * 0.1),
    )
}

#[test]
fn edgeless_graph_runs_end_to_end() {
    let g = DynamicGraph::new(vec![snap(6, &[]), snap(6, &[]), snap(6, &[])]);
    let model = DgnnModel::new(ModelKind::TGcn, 3, 4, 1);
    let reference = ReferenceEngine::new(model.clone()).run(&g);
    let concurrent =
        ConcurrentEngine::with_options(model, SkipConfig::disabled(), 2, ReuseMode::Exact).run(&g);
    assert!(reference.max_final_feature_diff(&concurrent) < 1e-6);
    // No edges -> every vertex is unaffected across identical snapshots.
    let refs: Vec<&Snapshot> = g.snapshots().iter().collect();
    let cls = classify_window(&refs);
    assert_eq!(cls.unaffected_ratio(), 1.0);
}

#[test]
fn single_vertex_universe_works() {
    let g = DynamicGraph::new(vec![snap(1, &[]), snap(1, &[])]);
    let model = DgnnModel::new(ModelKind::GcLstm, 3, 2, 5);
    let out = ConcurrentEngine::with_window(model, SkipConfig::paper_default(), 2).run(&g);
    assert_eq!(out.final_features.len(), 2);
    assert_eq!(out.final_features[0].rows(), 1);
}

#[test]
fn vertex_appearing_mid_window_is_handled() {
    // v2 is inactive in the first snapshot and appears in the second: its
    // first cell update has no previous input, so it must take the Normal
    // path, and its output before appearance stays zero.
    let s0 = {
        let base = snap(3, &[(0, 1)]);
        apply_updates(&base, &[GraphUpdate::RemoveVertex { v: 2 }])
    };
    let s1 = apply_updates(
        &s0,
        &[
            GraphUpdate::AddVertex { v: 2 },
            GraphUpdate::AddEdge { src: 2, dst: 0 },
        ],
    );
    let g = DynamicGraph::new(vec![s0, s1.clone(), s1.clone()]);
    let model = DgnnModel::new(ModelKind::TGcn, 3, 4, 9);
    let reference = ReferenceEngine::new(model.clone()).run(&g);
    let concurrent =
        ConcurrentEngine::with_options(model, SkipConfig::disabled(), 3, ReuseMode::Exact).run(&g);
    assert!(reference.max_final_feature_diff(&concurrent) < 1e-5);
    // Before appearance, v2's final feature is the zero state.
    assert!(reference.final_features[0].row(2).iter().all(|&v| v == 0.0));
}

#[test]
fn vertex_disappearing_freezes_its_state() {
    let s0 = snap(3, &[(0, 1), (1, 2)]);
    let s1 = apply_updates(&s0, &[GraphUpdate::RemoveVertex { v: 2 }]);
    let g = DynamicGraph::new(vec![s0, s1.clone(), s1]);
    let model = DgnnModel::new(ModelKind::GcLstm, 3, 4, 3);
    let out = ReferenceEngine::new(model).run(&g);
    // v2's final feature stays at its last value once it disappears.
    assert_eq!(out.final_features[1].row(2), out.final_features[2].row(2));
}

#[test]
fn window_larger_than_stream_is_one_batch() {
    let g = DynamicGraph::new(vec![snap(4, &[(0, 1)]), snap(4, &[(0, 1)])]);
    let model = DgnnModel::new(ModelKind::TGcn, 3, 4, 2);
    let out =
        ConcurrentEngine::with_options(model, SkipConfig::disabled(), 16, ReuseMode::Exact).run(&g);
    assert_eq!(out.final_features.len(), 2);
}

#[test]
fn loaded_edge_list_pipeline_end_to_end() {
    let edges: Vec<TemporalEdge> = (0..60u32)
        .map(|i| TemporalEdge {
            src: i % 10,
            dst: (i * 7 + 1) % 10,
            time: i as u64,
        })
        .collect();
    let graph = snapshots_from_edges(&edges, 6, 2, 8, 42);
    let p = TagnnPipeline::from_graph(
        graph,
        "loaded",
        ModelKind::TGcn,
        8,
        3,
        SkipConfig::paper_default(),
        ReuseMode::PaperWindow,
        42,
    );
    assert_eq!(p.name(), "loaded");
    let out = p.run_concurrent();
    assert_eq!(out.final_features.len(), 6);
    let report = p.simulate(&AcceleratorConfig::tagnn_default());
    assert!(report.cycles > 0);
}

#[test]
fn simulator_handles_single_snapshot_workload() {
    let g = DynamicGraph::new(vec![snap(8, &[(0, 1), (2, 3), (4, 5)])]);
    let p = TagnnPipeline::from_graph(
        g,
        "one",
        ModelKind::TGcn,
        4,
        4,
        SkipConfig::paper_default(),
        ReuseMode::Exact,
        1,
    );
    let r = p.simulate(&AcceleratorConfig::tagnn_default());
    assert!(r.cycles > 0);
    assert_eq!(r.skip.skipped, 0, "a single snapshot has nothing to skip");
}

#[test]
fn zero_feature_graph_is_stable() {
    // All-zero features: cosine conventions and normalisation paths must
    // not produce NaNs anywhere.
    let csr = Csr::from_edges(4, &[(0, 1), (1, 2)]);
    let z = Snapshot::fully_active(csr, DenseMatrix::zeros(4, 3));
    let g = DynamicGraph::new(vec![z.clone(), z.clone(), z]);
    let model = DgnnModel::new(ModelKind::TGcn, 3, 4, 7);
    let out = ConcurrentEngine::with_window(model, SkipConfig::paper_default(), 3).run(&g);
    for h in &out.final_features {
        assert!(h.as_slice().iter().all(|v| v.is_finite()));
    }
}
