//! Serving-layer integration: streamed replay must be bit-identical to
//! the offline batch pipeline, and overload must shed with typed errors
//! instead of growing without bound.

use std::time::Duration;

use tagnn_graph::generate::GeneratorConfig;
use tagnn_graph::{DynamicGraph, WindowPlanner};
use tagnn_models::{ConcurrentEngine, DgnnModel, ModelKind, SkipConfig};
use tagnn_serve::core::digest_matrices;
use tagnn_serve::degrade::DegradationPolicy;
use tagnn_serve::event::{events_from_graph, EdgeEvent};
use tagnn_serve::roller::WindowRoller;
use tagnn_serve::{InferRequest, ServeConfig, ServeCore, ServeError};

const WINDOW: usize = 3;

fn graph() -> DynamicGraph {
    let mut cfg = GeneratorConfig::tiny();
    cfg.num_vertices = 96;
    cfg.num_edges = 384;
    cfg.num_snapshots = 6; // two full windows at K=3
    cfg.generate()
}

fn engine(g: &DynamicGraph) -> ConcurrentEngine {
    let model = DgnnModel::new(ModelKind::TGcn, g.feature_dim(), 12, 99);
    ConcurrentEngine::with_window(model, SkipConfig::paper_default(), WINDOW)
}

fn serve_config(g: &DynamicGraph) -> ServeConfig {
    ServeConfig {
        universe: g.num_vertices(),
        feature_dim: g.feature_dim(),
        window: WINDOW,
        model: ModelKind::TGcn,
        hidden: 12,
        seed: 99,
        skip: SkipConfig::paper_default(),
        // Keep results deterministic: never widen the skip band.
        degradation: DegradationPolicy::disabled(),
        ..ServeConfig::default()
    }
}

/// Streamed replay through roller + engine session reproduces the offline
/// run bit for bit: matrices AND work counters.
#[test]
fn streamed_replay_is_bit_identical_to_offline_batch_run() {
    let g = graph();
    let engine = engine(&g);
    let offline = engine.run(&g);

    let planner = WindowPlanner::new(WINDOW);
    let mut roller = WindowRoller::new(g.num_vertices(), g.feature_dim(), WINDOW);
    let mut session = engine.session(g.num_vertices());
    let mut streamed_finals = Vec::new();
    let mut streamed_gnns = Vec::new();
    for events in events_from_graph(&g) {
        for event in &events {
            if let Some(w) = roller.apply(event).expect("canonical trace is valid") {
                let plans = planner.plan_graph_cached(&w.graph, &tagnn_graph::PlanCache::new());
                let refs: Vec<_> = w.graph.snapshots().iter().collect();
                let out = session.process_window(&refs, &plans[0]);
                streamed_finals.extend(out.final_features);
                streamed_gnns.extend(out.gnn_outputs);
            }
        }
    }
    if let Some(w) = roller.flush().expect("flush is clean") {
        let plans = planner.plan_graph_cached(&w.graph, &tagnn_graph::PlanCache::new());
        let refs: Vec<_> = w.graph.snapshots().iter().collect();
        let out = session.process_window(&refs, &plans[0]);
        streamed_finals.extend(out.final_features);
        streamed_gnns.extend(out.gnn_outputs);
    }

    assert_eq!(
        streamed_finals, offline.final_features,
        "H_t must be bit-identical"
    );
    assert_eq!(
        streamed_gnns, offline.gnn_outputs,
        "Z_t must be bit-identical"
    );

    let mut streamed_stats = *session.stats();
    let mut offline_stats = offline.stats;
    streamed_stats.wall_ns = 0;
    offline_stats.wall_ns = 0;
    assert_eq!(streamed_stats, offline_stats, "work counters must match");
}

/// The full serving core (admission → batcher → rollers → worker pool)
/// reproduces the offline digests and MAC totals at zero backlog.
#[test]
fn serve_core_replay_matches_offline_digests_and_macs() {
    let g = graph();
    let offline = engine(&g).run(&g);
    let offline_digests: Vec<u64> = offline
        .final_features
        .chunks(WINDOW)
        .map(digest_matrices)
        .collect();
    let offline_macs =
        offline.stats.gnn_aggregate_macs + offline.stats.gnn_combine_macs + offline.stats.rnn_macs;

    let core = ServeCore::start(serve_config(&g));
    let per_snapshot = events_from_graph(&g);
    let total = per_snapshot.len();
    let mut served = Vec::new();
    for (i, events) in per_snapshot.into_iter().enumerate() {
        let reply = core
            .submit(InferRequest {
                stream: 0,
                events,
                flush: i + 1 == total,
            })
            .expect("no backlog in a closed loop")
            .wait()
            .expect("canonical trace is valid");
        served.extend(reply.windows);
    }
    let plan_counts = core.plan_source_counts();
    core.shutdown();

    assert_eq!(served.len(), offline_digests.len());
    for (w, expect) in served.iter().zip(&offline_digests) {
        assert_eq!(
            w.digest, *expect,
            "window {} digest must match the offline run",
            w.seq
        );
        assert_eq!(
            w.plan_source,
            tagnn_graph::PlanSource::Incremental,
            "default config plans every sealed window incrementally"
        );
    }
    let served_macs: u64 = served.iter().map(|w| w.macs).sum();
    assert_eq!(served_macs, offline_macs, "MAC totals must match");
    assert_eq!(plan_counts.incremental, served.len() as u64);
    assert_eq!(plan_counts.fallbacks, 0, "clean stream never falls back");
}

/// Two independent streams replaying the same trace produce identical
/// results and the second one hits the plan cache.
#[test]
fn concurrent_streams_are_deterministic_and_share_plans() {
    let g = graph();
    let mut cfg = serve_config(&g);
    cfg.shards = 3;
    // Force the cache/scratch path: incrementally sealed plans never
    // consult the shared cache.
    cfg.incremental_planning = false;
    let core = ServeCore::start(cfg);

    let replay = |stream: u64| {
        let per_snapshot = events_from_graph(&g);
        let total = per_snapshot.len();
        let mut tickets = Vec::new();
        for (i, events) in per_snapshot.into_iter().enumerate() {
            tickets.push(
                core.submit(InferRequest {
                    stream,
                    events,
                    flush: i + 1 == total,
                })
                .expect("queue is deep enough"),
            );
        }
        tickets
            .into_iter()
            .flat_map(|t| t.wait().expect("valid trace").windows)
            .map(|w| (w.seq, w.digest, w.macs))
            .collect::<Vec<_>>()
    };

    let a = replay(0);
    let b = replay(1);
    let c = replay(2);
    assert!(!a.is_empty());
    assert_eq!(a, b, "streams must not interfere");
    assert_eq!(a, c);
    let cache = core.cache_stats();
    assert!(
        cache.hits >= a.len() as u64 * 2,
        "repeated traces must hit the plan cache: {cache:?}"
    );
    core.shutdown();
}

/// Overload: a queue of capacity 2 under a burst must shed with the typed
/// Overloaded error while every admitted request still completes, and the
/// server must keep serving afterwards.
#[test]
fn overload_sheds_with_typed_error_and_recovers() {
    let g = graph();
    let mut cfg = serve_config(&g);
    cfg.queue_capacity = 2;
    cfg.shards = 1;
    cfg.max_batch = 1;
    cfg.max_delay_us = 50;
    let core = ServeCore::start(cfg);

    // Burst far past the queue depth without waiting for replies. Each
    // request carries a full window of ticks so the worker does real work.
    let events_per_req: Vec<EdgeEvent> = vec![EdgeEvent::Tick; WINDOW];
    let mut tickets = Vec::new();
    let mut shed = 0usize;
    for i in 0..200u64 {
        match core.submit(InferRequest {
            stream: 100 + i, // distinct streams: each request rolls a window
            events: events_per_req.clone(),
            flush: false,
        }) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { depth, capacity }) => {
                assert!(capacity == 2 && depth <= capacity + 1);
                shed += 1;
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert!(shed > 0, "a 200-deep burst into a 2-deep queue must shed");
    assert_eq!(core.shed_count(), shed as u64);

    // Every admitted request completes with a full reply.
    for t in tickets {
        let reply = t
            .wait_timeout(Duration::from_secs(60))
            .expect("admitted work must finish")
            .expect("ticks are valid events");
        assert_eq!(reply.windows.len(), 1);
    }

    // After the burst drains, fresh requests are admitted again.
    let reply = core
        .submit(InferRequest {
            stream: 1,
            events: vec![EdgeEvent::Tick],
            flush: false,
        })
        .expect("queue drained, admission must recover")
        .wait()
        .unwrap();
    assert_eq!(reply.accepted_events, 1);
    core.shutdown();
}

/// Malformed events are rejected with a typed GraphError and leave the
/// stream state untouched.
#[test]
fn malformed_events_get_typed_rejections() {
    let g = graph();
    let core = ServeCore::start(serve_config(&g));
    let bad = InferRequest {
        stream: 0,
        events: vec![EdgeEvent::UpdateFeature {
            v: 0,
            feature: vec![0.0; 3], // wrong dimensionality
        }],
        flush: false,
    };
    match core.submit(bad).unwrap().wait() {
        Err(ServeError::Rejected(e)) => {
            assert!(e.to_string().contains("feature"), "got: {e}");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    // The stream still replays cleanly from scratch.
    let per_snapshot = events_from_graph(&g);
    let total = per_snapshot.len();
    let mut windows = 0;
    for (i, events) in per_snapshot.into_iter().enumerate() {
        windows += core
            .submit(InferRequest {
                stream: 0,
                events,
                flush: i + 1 == total,
            })
            .unwrap()
            .wait()
            .unwrap()
            .windows
            .len();
    }
    assert_eq!(windows, 2, "rejection must not corrupt the stream");
    core.shutdown();
}

/// Served results must be bit-identical for ANY shard count: the vertex
/// universe partitions across N ingest lanes, but the arrival-ordered
/// seal merge reconstructs the exact single-engine event order.
#[test]
fn served_results_are_shard_count_invariant() {
    let g = graph();
    let offline = engine(&g).run(&g);
    let offline_digests: Vec<u64> = offline
        .final_features
        .chunks(WINDOW)
        .map(digest_matrices)
        .collect();
    let offline_macs =
        offline.stats.gnn_aggregate_macs + offline.stats.gnn_combine_macs + offline.stats.rnn_macs;

    for shards in [1usize, 2, 4, 8] {
        let mut cfg = serve_config(&g);
        cfg.shards = shards;
        let core = ServeCore::start(cfg);
        let per_snapshot = events_from_graph(&g);
        let total = per_snapshot.len();
        let mut served = Vec::new();
        for (i, events) in per_snapshot.into_iter().enumerate() {
            let reply = core
                .submit(InferRequest {
                    stream: 0,
                    events,
                    flush: i + 1 == total,
                })
                .expect("no backlog in a closed loop")
                .wait()
                .expect("canonical trace is valid");
            served.extend(reply.windows);
        }
        let stats = core.shard_stats();
        core.shutdown();

        let digests: Vec<u64> = served.iter().map(|w| w.digest).collect();
        assert_eq!(
            digests, offline_digests,
            "{shards} shards: served digests must match the single-engine run"
        );
        let macs: u64 = served.iter().map(|w| w.macs).sum();
        assert_eq!(macs, offline_macs, "{shards} shards: MAC totals must match");
        assert_eq!(stats.routed.len(), shards);
        assert!(stats.routed.iter().sum::<u64>() > 0);
        if shards == 1 {
            assert_eq!(stats.cross_shard_edges, 0);
        } else {
            assert!(
                stats.cross_shard_edges > 0,
                "384 hashed edges over {shards} shards must cross somewhere"
            );
        }
    }
}

/// The overlap sidecar (plan acquisition + dispatch prefetch staged off
/// the execute thread) must serve the exact offline digests and MAC
/// totals at every lookahead depth and shard count.
#[test]
fn overlap_serving_is_bit_identical_to_offline() {
    let g = graph();
    let offline = engine(&g).run(&g);
    let offline_digests: Vec<u64> = offline
        .final_features
        .chunks(WINDOW)
        .map(digest_matrices)
        .collect();
    let offline_macs =
        offline.stats.gnn_aggregate_macs + offline.stats.gnn_combine_macs + offline.stats.rnn_macs;

    for shards in [1usize, 2] {
        for lookahead in [1usize, 2] {
            let mut cfg = serve_config(&g);
            cfg.shards = shards;
            cfg.overlap = true;
            cfg.lookahead = lookahead;
            let core = ServeCore::start(cfg);
            let per_snapshot = events_from_graph(&g);
            let total = per_snapshot.len();
            let mut served = Vec::new();
            for (i, events) in per_snapshot.into_iter().enumerate() {
                let reply = core
                    .submit(InferRequest {
                        stream: 0,
                        events,
                        flush: i + 1 == total,
                    })
                    .expect("no backlog in a closed loop")
                    .wait()
                    .expect("canonical trace is valid");
                served.extend(reply.windows);
            }
            core.shutdown();

            let digests: Vec<u64> = served.iter().map(|w| w.digest).collect();
            assert_eq!(
                digests, offline_digests,
                "shards={shards} lookahead={lookahead}: overlap serving must \
                 match the offline digests"
            );
            let macs: u64 = served.iter().map(|w| w.macs).sum();
            assert_eq!(
                macs, offline_macs,
                "shards={shards} lookahead={lookahead}: MAC totals must match"
            );
        }
    }
}

/// Binary wire round-trip over loopback TCP: the served digests seen by
/// a real client over the default length-prefixed protocol match the
/// offline run exactly (digests travel as raw u64, no precision loss).
#[test]
fn tcp_frontend_round_trips_offline_digests() {
    use std::io::{Read, Write};
    use tagnn_serve::binwire;

    let g = graph();
    let offline = engine(&g).run(&g);
    let offline_digests: Vec<u64> = offline
        .final_features
        .chunks(WINDOW)
        .map(digest_matrices)
        .collect();

    let server =
        tagnn_serve::Server::bind(ServeCore::start(serve_config(&g)), "127.0.0.1:0").unwrap();
    let mut conn = std::net::TcpStream::connect(server.local_addr()).unwrap();

    let read_reply = |conn: &mut std::net::TcpStream| {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(frame) = binwire::try_decode_frame(&buf).expect("well-formed reply") {
                assert_eq!(frame.kind, binwire::kind::INFER_REPLY);
                return binwire::decode_reply(frame.body).expect("valid reply body");
            }
            let n = conn.read(&mut chunk).expect("server open");
            assert!(n > 0, "server closed mid-frame");
            buf.extend_from_slice(&chunk[..n]);
        }
    };

    let per_snapshot = events_from_graph(&g);
    let total = per_snapshot.len();
    let mut digests = Vec::new();
    for (i, events) in per_snapshot.iter().enumerate() {
        let mut out = Vec::new();
        binwire::encode_infer(&mut out, i as u64, 0, events, i + 1 == total);
        conn.write_all(&out).unwrap();
        let reply = read_reply(&mut conn);
        assert_eq!(reply.accepted_events, events.len());
        digests.extend(reply.windows.iter().map(|w| w.digest));
    }
    assert_eq!(digests, offline_digests, "wire digests must match offline");
    drop(conn);
    server.shutdown();
}

/// The JSON-lines debug protocol (behind `--wire json`) still round-trips
/// the same digests — hex-string digests survive JSON's 53-bit numbers.
#[test]
fn json_debug_frontend_round_trips_offline_digests() {
    use std::io::{BufRead, BufReader, Write};
    use tagnn_serve::wire;

    let g = graph();
    let offline = engine(&g).run(&g);
    let offline_digests: Vec<u64> = offline
        .final_features
        .chunks(WINDOW)
        .map(digest_matrices)
        .collect();

    let server = tagnn_serve::Server::bind_with(
        ServeCore::start(serve_config(&g)),
        "127.0.0.1:0",
        tagnn_serve::WireFormat::Json,
    )
    .unwrap();
    let mut conn = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    let per_snapshot = events_from_graph(&g);
    let total = per_snapshot.len();
    let mut digests = Vec::new();
    for (i, events) in per_snapshot.iter().enumerate() {
        let line = wire::encode_infer(i as u64, 0, events, i + 1 == total);
        conn.write_all(line.as_bytes()).unwrap();
        conn.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let doc = tagnn_serve::json::parse(reply.trim()).unwrap();
        assert_eq!(
            doc.get("ok").and_then(tagnn_serve::json::Value::as_bool),
            Some(true),
            "line {i}: {reply}"
        );
        for w in doc.get("windows").unwrap().as_array().unwrap() {
            digests.push(wire::parse_digest(w.get("digest").unwrap()).unwrap());
        }
    }
    assert_eq!(digests, offline_digests, "wire digests must match offline");
    drop(conn);
    server.shutdown();
}
