//! End-to-end pipeline integration: every dataset preset x model family
//! builds, runs, and produces consistent artefacts.

use tagnn::prelude::*;

fn pipeline(ds: DatasetPreset, model: ModelKind) -> TagnnPipeline {
    TagnnPipeline::builder()
        .dataset(ds)
        .model(model)
        .snapshots(5)
        .window(2)
        .hidden(8)
        .scale(0.02)
        .build()
}

#[test]
fn every_preset_builds_and_runs() {
    for ds in DatasetPreset::ALL {
        let p = pipeline(ds, ModelKind::TGcn);
        let out = p.run_concurrent();
        assert_eq!(out.final_features.len(), 5, "{}", ds.abbrev());
        assert_eq!(out.final_features[0].rows(), p.graph().num_vertices());
    }
}

#[test]
fn every_model_family_runs() {
    for model in ModelKind::ALL {
        let p = pipeline(DatasetPreset::Gdelt, model);
        let reference = p.run_reference();
        let concurrent = p.run_concurrent();
        assert_eq!(
            reference.final_features.len(),
            concurrent.final_features.len()
        );
        assert_eq!(
            concurrent.final_features[0].cols(),
            8,
            "{model:?} hidden dim"
        );
    }
}

#[test]
fn workload_counters_are_consistent() {
    let p = pipeline(DatasetPreset::HepPh, ModelKind::GcLstm);
    let w = p.workload();
    // The reference pattern can never do less work than the concurrent one.
    assert!(w.reference.feature_rows_loaded >= w.concurrent.feature_rows_loaded);
    assert!(w.reference.rnn_macs >= w.concurrent.rnn_macs);
    assert!(w.reference.total_macs() >= w.concurrent.total_macs());
    // And the reference never reuses.
    assert_eq!(w.reference.feature_rows_reused, 0);
    assert_eq!(w.reference.skip.skipped, 0);
}

#[test]
fn pipelines_are_deterministic_end_to_end() {
    let a = pipeline(DatasetPreset::MovieLens, ModelKind::CdGcn).run_concurrent();
    let b = pipeline(DatasetPreset::MovieLens, ModelKind::CdGcn).run_concurrent();
    assert_eq!(a.final_features, b.final_features);
    assert_eq!(a.stats.skip, b.stats.skip);
}

#[test]
fn different_seeds_give_different_graphs() {
    let a = TagnnPipeline::builder()
        .dataset(DatasetPreset::Gdelt)
        .seed(1)
        .snapshots(3)
        .scale(0.02)
        .build();
    let b = TagnnPipeline::builder()
        .dataset(DatasetPreset::Gdelt)
        .seed(2)
        .snapshots(3)
        .scale(0.02)
        .build();
    assert_ne!(a.graph(), b.graph());
}

#[test]
fn simulation_consumes_every_pipeline() {
    for model in ModelKind::ALL {
        let p = pipeline(DatasetPreset::Epinions, model);
        let r = p.simulate(&AcceleratorConfig::tagnn_default());
        assert!(r.cycles > 0, "{model:?}");
        assert!(r.energy_mj > 0.0);
        assert!(r.dram.feature_bytes > 0);
    }
}

#[test]
fn window_size_flows_through() {
    for k in [1usize, 2, 4] {
        let p = TagnnPipeline::builder()
            .dataset(DatasetPreset::Gdelt)
            .snapshots(4)
            .window(k)
            .hidden(8)
            .scale(0.02)
            .build();
        assert_eq!(p.window(), k);
        assert_eq!(p.workload().window, k);
        // Output count never depends on the window.
        assert_eq!(p.run_concurrent().final_features.len(), 4);
    }
}
