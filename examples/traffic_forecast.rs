//! Traffic forecasting with T-GCN — the workload T-GCN was designed for
//! (Zhao et al., TITS'20) and one of the three models the paper evaluates.
//!
//! A road network barely changes topology (roads are fixed) while sensor
//! features (speeds/volumes) mutate on a subset of segments per timestep —
//! an extreme case of the overlap structure TaGNN exploits: almost every
//! vertex is stable, so the affected subgraph is tiny and cell skipping
//! fires constantly.
//!
//! ```text
//! cargo run --release --example traffic_forecast
//! ```

use tagnn::prelude::*;
use tagnn_graph::generate::ChurnConfig;

fn main() {
    // Grid-ish road network: fixed topology, feature-only churn on 3% of
    // the sensors per timestep.
    let generator = GeneratorConfig {
        num_vertices: 1_024,
        num_edges: 4_096,
        feature_dim: 16, // speed/volume/occupancy history per segment
        num_snapshots: 12,
        power_law_alpha: 0.2, // near-uniform degrees, like a road grid
        churn: ChurnConfig {
            feature_mutation_rate: 0.03,
            edge_rewire_rate: 0.0, // roads do not move
            vertex_churn_rate: 0.0,
            mutation_smoothness: 0.8, // sensor readings drift smoothly
        },
        seed: 2026,
        feature_row_sparsity: 0.0,
        burst: None,
    };

    let pipeline = TagnnPipeline::builder()
        .generator(generator)
        .model(ModelKind::TGcn)
        .window(4)
        .hidden(32)
        .build();

    println!(
        "road network: {} segments, {} links, {} timesteps",
        pipeline.graph().num_vertices(),
        pipeline.graph().snapshot(0).num_edges(),
        pipeline.graph().num_snapshots()
    );

    let reference = pipeline.run_reference();
    let concurrent = pipeline.run_concurrent();

    let w = pipeline.workload();
    println!("\ntopology-aware concurrent execution on a fixed-topology graph:");
    println!(
        "  feature-row loads: {} -> {} ({:.1}% eliminated)",
        w.reference.feature_rows_loaded,
        w.concurrent.feature_rows_loaded,
        100.0
            * (1.0
                - w.concurrent.feature_rows_loaded as f64 / w.reference.feature_rows_loaded as f64)
    );
    println!(
        "  RNN cell updates:  {} -> {} full + {} delta + {} skipped",
        w.reference.skip.normal,
        w.concurrent.skip.normal,
        w.concurrent.skip.delta,
        w.concurrent.skip.skipped
    );
    println!(
        "  forecast drift:    max |H_exact - H_tagnn| = {:.5}",
        reference.max_final_feature_diff(&concurrent)
    );

    // Forecast readout: next-step feature magnitude per segment from the
    // final features (a linear probe, as in T-GCN's regression head).
    let last = concurrent.final_features.len() - 1;
    let h = &concurrent.final_features[last];
    let busiest = (0..h.rows())
        .max_by(|&a, &b| {
            let na: f32 = h.row(a).iter().map(|v| v * v).sum();
            let nb: f32 = h.row(b).iter().map(|v| v * v).sum();
            na.partial_cmp(&nb).unwrap()
        })
        .unwrap();
    println!("\n  segment with the strongest temporal signal: v{busiest}");

    let report = pipeline.simulate(&AcceleratorConfig::tagnn_default());
    println!(
        "\nsimulated accelerator: {:.4} ms per 12-step horizon, {:.3} mJ",
        report.time_ms, report.energy_mj
    );
}
