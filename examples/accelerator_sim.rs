//! Accelerator design-space exploration: TaGNN against every baseline
//! platform, plus the OADL/ADSC ablations and a DCU sweep — the simulator
//! workflow behind Figures 9-14.
//!
//! ```text
//! cargo run --release --example accelerator_sim
//! ```

use tagnn::prelude::*;
use tagnn_sim::baselines::{cambricon_dg, cpu_dgl, dgnn_booster, edgcn, gpu_pipad};

fn main() {
    let pipeline = TagnnPipeline::builder()
        .dataset(DatasetPreset::MovieLens)
        .model(ModelKind::CdGcn)
        .snapshots(8)
        .window(4)
        .hidden(32)
        .build();
    let w = pipeline.workload();
    println!(
        "workload: {} on CD-GCN — {} vertices, {} total edges, D={}",
        pipeline.name(),
        w.num_vertices,
        w.total_edges,
        w.feature_dim
    );

    // TaGNN on the Table-4 configuration.
    let tagnn = pipeline.simulate(&AcceleratorConfig::tagnn_default());
    println!("\nplatform comparison (time / energy, normalised to TaGNN):");
    println!("  {:<14} {:>10} {:>10}", "platform", "time", "energy");
    println!("  {:<14} {:>10} {:>10}", "TaGNN", "1.0x", "1.0x");
    for p in [
        cambricon_dg::cambricon_dg(),
        edgcn::edgcn(),
        dgnn_booster::dgnn_booster(),
        gpu_pipad::tagnn_s(),
        gpu_pipad::pipad(),
        cpu_dgl::dgl_cpu(),
    ] {
        let r = p.estimate(w);
        println!(
            "  {:<14} {:>9.1}x {:>9.1}x",
            p.name,
            r.time_ms / tagnn.time_ms,
            r.energy_mj / tagnn.energy_mj
        );
    }

    // Ablations (Fig. 12 / 13a).
    println!("\nablations:");
    for cfg in [
        AcceleratorConfig::tagnn_default().without_oadl(),
        AcceleratorConfig::tagnn_default().without_adsc(),
        AcceleratorConfig::tagnn_default().without_balanced_dispatch(),
    ] {
        let r = pipeline.simulate(&cfg);
        println!(
            "  {:<22} {:>6.2}x slower",
            cfg.name,
            r.time_ms / tagnn.time_ms
        );
    }

    // DCU sweep (Fig. 14b).
    println!("\nDCU scaling:");
    let mut prev = None;
    for dcus in [1usize, 2, 4, 8, 16, 32] {
        let r = pipeline.simulate(&AcceleratorConfig::tagnn_default().with_dcus(dcus));
        let marginal = prev.map(|p: f64| p / r.time_ms).unwrap_or(1.0);
        println!(
            "  {:>2} DCUs: {:>8.4} ms  (x{:.2} vs previous)",
            dcus, r.time_ms, marginal
        );
        prev = Some(r.time_ms);
    }

    println!("\nper-unit cycle breakdown at 16 DCUs:");
    let b = tagnn.breakdown;
    println!(
        "  msdl={} agg={} comb={} rnn={} arnn={} dram={}",
        b.msdl, b.aggregation, b.combination, b.rnn, b.arnn, b.dram
    );
}
