//! Quickstart: generate a dynamic graph, run topology-aware DGNN inference,
//! and simulate it on the TaGNN accelerator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tagnn::prelude::*;

fn main() {
    // A scaled synthetic equivalent of the paper's Gdelt dataset: 8
    // snapshots, T-GCN (2 GCN layers + GRU), window of 4 snapshots.
    let pipeline = TagnnPipeline::builder()
        .dataset(DatasetPreset::Gdelt)
        .model(ModelKind::TGcn)
        .snapshots(8)
        .window(4)
        .hidden(32)
        .build();

    let graph = pipeline.graph();
    println!(
        "graph: {} vertices, {} edges in snapshot 0, {} snapshots, D={}",
        graph.num_vertices(),
        graph.snapshot(0).num_edges(),
        graph.num_snapshots(),
        graph.feature_dim()
    );

    // Exact snapshot-by-snapshot inference (what every baseline does).
    let reference = pipeline.run_reference();
    // Topology-aware concurrent inference with similarity-aware skipping.
    let concurrent = pipeline.run_concurrent();

    let r = &reference.stats;
    let c = &concurrent.stats;
    println!("\nexecution pattern comparison:");
    println!(
        "  feature rows loaded   reference={:>10}  concurrent={:>10}",
        r.feature_rows_loaded, c.feature_rows_loaded
    );
    println!(
        "  GNN MACs              reference={:>10}  concurrent={:>10}",
        r.gnn_aggregate_macs + r.gnn_combine_macs,
        c.gnn_aggregate_macs + c.gnn_combine_macs
    );
    println!(
        "  RNN MACs              reference={:>10}  concurrent={:>10}",
        r.rnn_macs, c.rnn_macs
    );
    println!(
        "  cell updates          full={} delta={} skipped={} (skip ratio {:.1}%)",
        c.skip.normal,
        c.skip.delta,
        c.skip.skipped,
        100.0 * c.skip.skip_ratio()
    );
    println!(
        "  approximation error   max |H_exact - H_tagnn| = {:.4}",
        reference.max_final_feature_diff(&concurrent)
    );

    // Map the measured work onto the Table-4 accelerator.
    let report = pipeline.simulate(&AcceleratorConfig::tagnn_default());
    println!("\nsimulated on TaGNN (Alveo U280 config):");
    println!("  cycles          {}", report.cycles);
    println!("  time            {:.4} ms", report.time_ms);
    println!(
        "  DRAM traffic    {:.2} MB",
        report.dram.total() as f64 / 1e6
    );
    println!("  energy          {:.3} mJ", report.energy_mj);
    println!(
        "  DCU utilisation {:.1}%",
        100.0 * report.dispatch_utilization
    );
}
