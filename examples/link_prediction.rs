//! Dynamic link prediction with GC-LSTM — the task GC-LSTM was proposed
//! for (Chen et al.) and a flagship DGNN application in the paper's intro.
//!
//! Final features from consecutive snapshots score candidate edges by dot
//! product; we compare how well approximate executions (TaGNN's cell
//! skipping vs DeltaRNN/ALSTM/ATLAS) preserve the exact model's ranking of
//! real edges over random non-edges.
//!
//! ```text
//! cargo run --release --example link_prediction
//! ```

use tagnn::prelude::*;
use tagnn_models::approx::{run_approx_rnn, ApproxMethod};
use tagnn_tensor::similarity::dot;

/// AUC-style ranking score: fraction of (real edge, non-edge) pairs where
/// the real edge scores higher under `h`-based dot-product scoring.
fn ranking_auc(graph: &DynamicGraph, h: &tagnn_tensor::DenseMatrix, seed: u64) -> f64 {
    let last = graph.num_snapshots() - 1;
    let snap = graph.snapshot(last);
    let n = snap.num_vertices() as u32;
    let edges: Vec<(u32, u32)> = snap.csr().edges().take(2_000).collect();
    let mut rng_state = seed | 1;
    let mut rand = move || {
        // xorshift64 — deterministic, dependency-free sampling.
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let mut wins = 0usize;
    let mut total = 0usize;
    for &(s, t) in &edges {
        let (mut a, mut b) = (rand() as u32 % n, rand() as u32 % n);
        // Resample until (a, b) is a genuine non-edge.
        for _ in 0..8 {
            if a != b && !snap.csr().has_edge(a, b) {
                break;
            }
            a = rand() as u32 % n;
            b = rand() as u32 % n;
        }
        let pos = dot(h.row(s as usize), h.row(t as usize));
        let neg = dot(h.row(a as usize), h.row(b as usize));
        if pos > neg {
            wins += 1;
        }
        total += 1;
    }
    wins as f64 / total.max(1) as f64
}

fn main() {
    let pipeline = TagnnPipeline::builder()
        .dataset(DatasetPreset::HepPh) // citation links evolving over time
        .model(ModelKind::GcLstm)
        .snapshots(10)
        .window(4)
        .hidden(32)
        .build();

    println!(
        "citation graph: {} vertices, {} edges, {} snapshots",
        pipeline.graph().num_vertices(),
        pipeline.graph().snapshot(0).num_edges(),
        pipeline.graph().num_snapshots()
    );

    let exact = pipeline.run_reference();
    let last = exact.final_features.len() - 1;
    let graph = pipeline.graph();

    println!("\nlink-prediction ranking quality (AUC vs random non-edges):");
    let auc_exact = ranking_auc(graph, &exact.final_features[last], 42);
    println!("  exact (baseline)        {:.3}", auc_exact);

    let tagnn = pipeline.run_concurrent();
    println!(
        "  TaGNN (cell skipping)   {:.3}   skip ratio {:.1}%",
        ranking_auc(graph, &tagnn.final_features[last], 42),
        100.0 * tagnn.stats.skip.skip_ratio()
    );

    for method in ApproxMethod::paper_variants() {
        let hs = run_approx_rnn(pipeline.model(), graph, &exact.gnn_outputs, method);
        println!(
            "  {:<22}  {:.3}",
            method.name(),
            ranking_auc(graph, &hs[last], 42)
        );
    }

    println!("\nwork saved by the topology-aware pattern:");
    let w = pipeline.workload();
    println!(
        "  feature loads {} -> {}, RNN MACs {} -> {}",
        w.reference.feature_rows_loaded,
        w.concurrent.feature_rows_loaded,
        w.reference.rnn_macs,
        w.concurrent.rnn_macs
    );
}
