//! Working with real-world temporal edge lists: export a generated graph
//! to the standard `src dst time` format, load it back with a snapshot
//! bucketing policy, and run the full TaGNN pipeline on the result — the
//! exact workflow for dropping in the paper's actual datasets (HepPh,
//! Gdelt, ... are distributed in this format).
//!
//! ```text
//! cargo run --release --example dataset_io
//! ```

use tagnn::prelude::*;
use tagnn_graph::io::{load_temporal_edge_list, write_temporal_edge_list};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("tagnn_dataset_io");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("hepph_scaled.txt");

    // 1. Export: generate a scaled HepPh equivalent and write it out.
    let source = TagnnPipeline::builder()
        .dataset(DatasetPreset::HepPh)
        .snapshots(8)
        .window(4)
        .hidden(16)
        .build();
    let file = std::fs::File::create(&path)?;
    let written = write_temporal_edge_list(source.graph(), std::io::BufWriter::new(file))?;
    println!("exported {written} temporal edges to {}", path.display());

    // 2. Load: bucket the stream into 8 snapshots, each retaining 4
    //    buckets of history (a sliding activity window, like Table 2's
    //    per-dataset granularities), with 16-dimensional features derived
    //    from per-vertex activity.
    let graph = load_temporal_edge_list(&path, 8, 4, 16, 7)?;
    println!(
        "loaded: {} vertices, {} snapshots, {} edges in the last snapshot",
        graph.num_vertices(),
        graph.num_snapshots(),
        graph.snapshot(graph.num_snapshots() - 1).num_edges()
    );

    // 3. Run the full pipeline on the loaded data.
    let pipeline = TagnnPipeline::from_graph(
        graph,
        "hepph-loaded",
        ModelKind::TGcn,
        16,
        4,
        SkipConfig::paper_default(),
        ReuseMode::PaperWindow,
        7,
    );
    let out = pipeline.run_concurrent();
    let w = pipeline.workload();
    println!(
        "\ninference over loaded data: {:.1}% of feature-row fetches eliminated, skip ratio {:.1}%",
        100.0
            * (1.0
                - w.concurrent.feature_rows_loaded as f64 / w.reference.feature_rows_loaded as f64),
        100.0 * out.stats.skip.skip_ratio()
    );

    let report = pipeline.simulate(&AcceleratorConfig::tagnn_default());
    println!(
        "simulated accelerator: {:.4} ms, {:.3} mJ, {:.1}% DCU utilisation",
        report.time_ms,
        report.energy_mj,
        100.0 * report.dispatch_utilization
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
