//! Flag parsing and option resolution shared by the `tagnn-cli` binary.

use std::collections::HashMap;
use tagnn::prelude::*;

/// Bare boolean flags accepted by the CLI.
pub const BOOLEAN_FLAGS: [&str; 5] = ["no-skip", "no-oadl", "no-adsc", "round-robin", "smoke"];

/// Minimal flag parser: `--key value` pairs plus bare boolean flags.
pub fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        if BOOLEAN_FLAGS.contains(&key) {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            flags.insert(key.to_string(), value.clone());
            i += 2;
        }
    }
    Ok(flags)
}

/// Resolves `--dataset` (default GT).
pub fn dataset_of(flags: &HashMap<String, String>) -> Result<DatasetPreset, String> {
    match flags.get("dataset").map(String::as_str).unwrap_or("GT") {
        "HP" => Ok(DatasetPreset::HepPh),
        "GT" => Ok(DatasetPreset::Gdelt),
        "ML" => Ok(DatasetPreset::MovieLens),
        "EP" => Ok(DatasetPreset::Epinions),
        "FK" => Ok(DatasetPreset::Flickr),
        other => Err(format!("unknown dataset `{other}` (use HP|GT|ML|EP|FK)")),
    }
}

/// Resolves `--model` (default tgcn).
pub fn model_of(flags: &HashMap<String, String>) -> Result<ModelKind, String> {
    match flags.get("model").map(String::as_str).unwrap_or("tgcn") {
        "cdgcn" => Ok(ModelKind::CdGcn),
        "gclstm" => Ok(ModelKind::GcLstm),
        "tgcn" => Ok(ModelKind::TGcn),
        other => Err(format!("unknown model `{other}` (use cdgcn|gclstm|tgcn)")),
    }
}

/// Parses a numeric flag with a default.
pub fn num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse `{v}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_key_value_pairs() {
        let f = parse_flags(&args(&["--dataset", "HP", "--window", "3"])).unwrap();
        assert_eq!(f["dataset"], "HP");
        assert_eq!(f["window"], "3");
    }

    #[test]
    fn parses_boolean_flags_without_values() {
        let f = parse_flags(&args(&["--no-skip", "--dataset", "ML", "--round-robin"])).unwrap();
        assert_eq!(f["no-skip"], "true");
        assert_eq!(f["round-robin"], "true");
        assert_eq!(f["dataset"], "ML");
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse_flags(&args(&["--window"])).is_err());
    }

    #[test]
    fn rejects_bare_positional() {
        assert!(parse_flags(&args(&["oops"])).is_err());
    }

    #[test]
    fn dataset_and_model_resolution() {
        let f = parse_flags(&args(&["--dataset", "FK", "--model", "cdgcn"])).unwrap();
        assert_eq!(dataset_of(&f).unwrap(), DatasetPreset::Flickr);
        assert_eq!(model_of(&f).unwrap(), ModelKind::CdGcn);
        // Defaults.
        let empty = HashMap::new();
        assert_eq!(dataset_of(&empty).unwrap(), DatasetPreset::Gdelt);
        assert_eq!(model_of(&empty).unwrap(), ModelKind::TGcn);
    }

    #[test]
    fn rejects_unknown_enum_values() {
        let f = parse_flags(&args(&["--dataset", "XX"])).unwrap();
        assert!(dataset_of(&f).is_err());
        let f = parse_flags(&args(&["--model", "rnn"])).unwrap();
        assert!(model_of(&f).is_err());
    }

    #[test]
    fn numeric_defaults_and_errors() {
        let f = parse_flags(&args(&["--window", "5"])).unwrap();
        assert_eq!(num::<usize>(&f, "window", 4).unwrap(), 5);
        assert_eq!(num::<usize>(&f, "hidden", 32).unwrap(), 32);
        let bad = parse_flags(&args(&["--window", "five"])).unwrap();
        assert!(num::<usize>(&bad, "window", 4).is_err());
    }
}
