//! `experiments overlap-bench`: the plan/execute overlap ablation.
//!
//! Times the same workload twice on the concurrent engine — overlap OFF
//! (plan-everything-then-run, plan build inside the timed region) and
//! overlap ON ([`ConcurrentEngine::run_pipelined`], a bounded-lookahead
//! planner thread building window W+1 while W executes) — checks the two
//! runs are bit-identical, and writes `BENCH_9.json`: both wall-clocks
//! plus the steady-state `plan_build_us` and the fraction of it the
//! overlap hid.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use tagnn::TagnnPipeline;
use tagnn_graph::generate::GeneratorConfig;
use tagnn_graph::WindowPlanner;
use tagnn_models::{ConcurrentEngine, InferenceOutput, ReuseMode, SkipConfig};

use crate::cli::{dataset_of, model_of, num, parse_flags};

struct OverlapArgs {
    dataset: String,
    graph: GeneratorConfig,
    model: tagnn_models::ModelKind,
    hidden: usize,
    window: usize,
    seed: u64,
    lookahead: usize,
    repeats: u32,
    smoke: bool,
    out: String,
}

fn parse(args: &[String]) -> Result<OverlapArgs, String> {
    let flags: HashMap<String, String> = parse_flags(args)?;
    for key in flags.keys() {
        const KNOWN: [&str; 11] = [
            "dataset",
            "scale",
            "snapshots",
            "window",
            "model",
            "hidden",
            "seed",
            "lookahead",
            "repeats",
            "smoke",
            "out",
        ];
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!("unknown flag --{key}"));
        }
    }
    let smoke = flags.contains_key("smoke");
    // The overlap win only shows at steady state — enough windows that
    // the pipeline fill/drain transient amortises away — and on a
    // working set large enough that plan locality matters, hence the
    // EP default (smoke keeps the small GT preset for CI turnaround).
    let snapshots: usize = num(&flags, "snapshots", if smoke { 6 } else { 32 })?;
    let scale: f64 = num(&flags, "scale", 0.05)?;
    let dataset = flags
        .get("dataset")
        .cloned()
        .unwrap_or_else(|| if smoke { "GT" } else { "EP" }.to_string());
    let mut graph = if dataset == "tiny" {
        let mut g = GeneratorConfig::tiny();
        g.num_snapshots = snapshots;
        g
    } else if dataset == "sparse" || dataset == "SP" {
        GeneratorConfig::sparse_high_churn(snapshots)
    } else {
        // Resolve through the *defaulted* name, not the raw flags — the
        // smoke/full default datasets differ from `dataset_of`'s own.
        let mut named = flags.clone();
        named.insert("dataset".to_string(), dataset.clone());
        dataset_of(&named)?.config(scale, snapshots)
    };
    graph.seed = num(&flags, "seed", graph.seed)?;
    let lookahead: usize = num(&flags, "lookahead", 2)?;
    if lookahead == 0 {
        return Err("--lookahead wants a positive depth".to_string());
    }
    Ok(OverlapArgs {
        dataset,
        graph,
        model: model_of(&flags)?,
        hidden: num(&flags, "hidden", 32)?,
        window: num(&flags, "window", 4)?,
        seed: num(&flags, "seed", 0xD6)?,
        lookahead,
        repeats: num(&flags, "repeats", if smoke { 1 } else { 5 })?,
        smoke,
        out: flags
            .get("out")
            .cloned()
            .unwrap_or_else(|| "BENCH_9.json".to_string()),
    })
}

/// Best-of-`repeats` wall times for the two arms, measured *interleaved*
/// (off, on, off, on, …) after one untimed warm-up of each — so host
/// noise and frequency drift hit both arms alike instead of biasing
/// whichever arm ran last. Returns the last outputs for the bit-identity
/// check.
fn best_pair<F, G>(
    repeats: u32,
    mut off: F,
    mut on: G,
) -> (f64, f64, InferenceOutput, InferenceOutput)
where
    F: FnMut() -> InferenceOutput,
    G: FnMut() -> InferenceOutput,
{
    let mut off_out = off(); // warm-ups, untimed
    let mut on_out = on();
    let mut off_best = f64::INFINITY;
    let mut on_best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        off_out = off();
        off_best = off_best.min(t.elapsed().as_secs_f64() * 1e6);
        let t = Instant::now();
        on_out = on();
        on_best = on_best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    (off_best, on_best, off_out, on_out)
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// `experiments overlap-bench`: run the ablation and write the report.
pub fn run_overlap_bench(args: &[String]) -> Result<(), String> {
    let a = parse(args)?;
    let pipeline = TagnnPipeline::builder()
        .generator(a.graph.clone())
        .model(a.model)
        .hidden(a.hidden)
        .window(a.window)
        .snapshots(a.graph.num_snapshots)
        .seed(a.seed)
        .build();
    let graph = pipeline.graph();
    let engine = ConcurrentEngine::with_options(
        pipeline.model().clone(),
        SkipConfig::paper_default(),
        a.window,
        ReuseMode::PaperWindow,
    );
    // Which executor `run_pipelined` resolves to on this host: with a
    // spare core for the planner it overlaps for real; on a single-core
    // host it degrades to just-in-time planning (plan W built right
    // before W executes, one plan resident) — see the engine docs.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let executor = if cores < 2 {
        "just-in-time"
    } else {
        "threaded"
    };
    eprintln!(
        "overlap-bench: {} ({} vertices, D={}, {} snapshots) model={} hidden={} K={} \
         lookahead={} repeats={} executor={executor}",
        a.dataset,
        a.graph.num_vertices,
        a.graph.feature_dim,
        a.graph.num_snapshots,
        a.model.name(),
        a.hidden,
        a.window,
        a.lookahead,
        a.repeats,
    );

    // Steady-state plan cost: what the OFF run pays inline and the ON run
    // tries to hide behind execution.
    let plan_build_us = WindowPlanner::new(a.window)
        .plan_graph(graph)
        .iter()
        .map(|p| p.stats().build_ns)
        .sum::<u64>() as f64
        / 1e3;

    let (off_us, on_us, off_out, on_out) = best_pair(
        a.repeats,
        || engine.run_traced(graph, None),
        || engine.run_pipelined(graph, None, a.lookahead),
    );

    if off_out.final_features != on_out.final_features || off_out.gnn_outputs != on_out.gnn_outputs
    {
        return Err(
            "overlap bit-identity violated: pipelined run produced different bits".to_string(),
        );
    }

    // Fraction of the inline plan cost the overlap hid. Clamped: noise
    // can push the saving past the plan cost (or below zero) on small
    // hosts.
    let hidden_fraction = if plan_build_us > 0.0 {
        ((off_us - on_us) / plan_build_us).clamp(0.0, 1.0)
    } else {
        0.0
    };

    println!(
        "  overlap off: {off_us:.0}us   on (lookahead {}): {on_us:.0}us   \
         plan_build {plan_build_us:.0}us   hidden fraction {hidden_fraction:.2}",
        a.lookahead,
    );

    let mut report = String::with_capacity(1024);
    report.push_str("{\n  \"schema\": \"tagnn-overlap/1\",\n");
    let _ = writeln!(report, "  \"dataset\": \"{}\",", a.dataset);
    let _ = writeln!(
        report,
        "  \"config\": {{\"vertices\": {}, \"edges\": {}, \"feature_dim\": {}, \
         \"snapshots\": {}, \"graph_seed\": {}, \"model\": \"{}\", \"hidden\": {}, \
         \"window\": {}, \"lookahead\": {}, \"repeats\": {}, \"threads\": {}, \
         \"cores\": {}}},",
        a.graph.num_vertices,
        a.graph.num_edges,
        a.graph.feature_dim,
        a.graph.num_snapshots,
        a.graph.seed,
        a.model.name(),
        a.hidden,
        a.window,
        a.lookahead,
        a.repeats,
        rayon::current_num_threads(),
        cores,
    );
    let _ = writeln!(report, "  \"executor\": \"{executor}\",");
    report.push_str("  \"digest_check\": \"ok\",\n");
    let _ = writeln!(
        report,
        "  \"overlap_off\": {{\"total_us\": {}}},",
        json_f64(off_us)
    );
    let _ = writeln!(
        report,
        "  \"overlap_on\": {{\"total_us\": {}}},",
        json_f64(on_us)
    );
    let _ = writeln!(report, "  \"plan_build_us\": {},", json_f64(plan_build_us));
    let _ = writeln!(
        report,
        "  \"hidden_plan_fraction\": {}",
        json_f64(hidden_fraction)
    );
    report.push_str("}\n");
    std::fs::write(&a.out, &report).map_err(|e| format!("cannot write {}: {e}", a.out))?;
    println!("report written to {}", a.out);

    if !a.smoke && on_us >= off_us {
        return Err(format!(
            "overlap regression: pipelined run ({on_us:.0}us) is not faster than \
             plan-then-run ({off_us:.0}us)"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagnn_serve::json;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_overrides() {
        let a = parse(&args(&[])).unwrap();
        assert_eq!(a.dataset, "EP", "full runs need a large working set");
        assert_eq!(a.graph.num_snapshots, 32, "steady state needs windows");
        assert_eq!(a.lookahead, 2);
        assert_eq!(a.out, "BENCH_9.json");
        assert!(!a.smoke);
        let a = parse(&args(&[
            "--dataset",
            "tiny",
            "--smoke",
            "--lookahead",
            "1",
            "--out",
            "/tmp/o.json",
        ]))
        .unwrap();
        assert!(a.smoke);
        assert_eq!(a.graph.num_snapshots, 6, "smoke shrinks the stream");
        assert_eq!(a.lookahead, 1);
        assert_eq!(a.repeats, 1);
        assert!(parse(&args(&["--lookahead", "0"])).is_err());
        assert!(parse(&args(&["--bogus", "1"])).is_err());
    }

    /// End-to-end in smoke mode: runs both arms, enforces bit-identity,
    /// and writes a parseable report with the headline fields.
    #[test]
    fn overlap_bench_end_to_end_smoke() {
        let out = std::env::temp_dir().join("tagnn_overlap_smoke.json");
        let out_s = out.to_string_lossy().to_string();
        run_overlap_bench(&args(&[
            "--dataset",
            "tiny",
            "--smoke",
            "--window",
            "2",
            "--hidden",
            "8",
            "--out",
            &out_s,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(json::Value::as_str),
            Some("tagnn-overlap/1")
        );
        assert_eq!(
            doc.get("digest_check").and_then(json::Value::as_str),
            Some("ok")
        );
        for key in ["overlap_off", "overlap_on"] {
            let us = doc
                .get(key)
                .and_then(|o| o.get("total_us"))
                .and_then(json::Value::as_f64)
                .unwrap();
            assert!(us > 0.0, "{key} must record a wall time");
        }
        let frac = doc
            .get("hidden_plan_fraction")
            .and_then(json::Value::as_f64)
            .unwrap();
        assert!((0.0..=1.0).contains(&frac));
        assert!(
            doc.get("plan_build_us")
                .and_then(json::Value::as_f64)
                .unwrap()
                > 0.0,
            "plan work must be nonzero for the ablation to mean anything"
        );
        let _ = std::fs::remove_file(&out);
    }
}
