#![warn(missing_docs)]

//! Benchmark harness support for TaGNN.
//!
//! The `experiments` binary regenerates every table and figure of the
//! paper (see `tagnn::experiments`); the Criterion benches under
//! `benches/` measure the library's own kernels (formats, classification,
//! engines, simulator).

pub mod cli;
pub mod crash;
pub mod overlap;
pub mod perf;
pub mod serve;

use std::path::PathBuf;
use tagnn::experiments::{ExperimentContext, ExperimentResult};

/// Resolved harness CLI options.
#[derive(Debug)]
pub struct CliOptions {
    /// Experiment ids to run, in order.
    pub ids: Vec<String>,
    /// The (possibly overridden) experiment context.
    pub ctx: ExperimentContext,
    /// Emit JSON lines instead of text tables.
    pub json: bool,
    /// Write a tagnn-obs trace of the whole run to this path (and print
    /// its summary table to stdout afterwards).
    pub trace: Option<PathBuf>,
    /// Pin the global rayon pool to this many threads (`--threads N`,
    /// falling back to the `TAGNN_THREADS` env var) for reproducible
    /// bench numbers. `None` keeps rayon's default.
    pub threads: Option<usize>,
    /// `bench-json PATH`: run the perf suite (see [`perf`]) instead of
    /// the paper experiments and write its JSON report to PATH.
    pub bench_json: Option<PathBuf>,
}

/// Parses harness CLI arguments.
///
/// Grammar:
/// `experiments [all | <id>... | bench-json PATH] [--quick] [--json]
/// [--trace PATH] [--threads N] [--scale F] [--hidden N] [--window K]
/// [--snapshots N] [--seed N] [--overlap] [--lookahead N]`.
///
/// `--threads` falls back to the `TAGNN_THREADS` environment variable
/// when the flag is absent.
pub fn parse_args<I: Iterator<Item = String>>(args: I) -> CliOptions {
    let mut ids: Vec<String> = Vec::new();
    let mut quick = false;
    let mut json = false;
    let mut trace: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut bench_json: Option<PathBuf> = None;
    let mut overlap = false;
    let mut lookahead: Option<usize> = None;
    let mut overrides: Vec<(String, String)> = Vec::new();
    let mut iter = args.peekable();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--overlap" => overlap = true,
            "--lookahead" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("error: --lookahead needs a depth");
                    std::process::exit(2);
                });
                lookahead = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| {
                            eprintln!(
                                "error: --lookahead: wants a positive integer, got `{value}`"
                            );
                            std::process::exit(2);
                        }),
                );
            }
            "--trace" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("error: --trace needs a path");
                    std::process::exit(2);
                });
                trace = Some(PathBuf::from(value));
            }
            "--threads" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("error: --threads needs a count");
                    std::process::exit(2);
                });
                threads = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("error: --threads: cannot parse `{value}`");
                    std::process::exit(2);
                }));
            }
            "bench-json" => {
                let value = iter
                    .next()
                    .filter(|v| !v.starts_with("--"))
                    .unwrap_or_else(|| {
                        eprintln!("error: bench-json needs an output path");
                        std::process::exit(2);
                    });
                bench_json = Some(PathBuf::from(value));
            }
            key @ ("--scale" | "--hidden" | "--window" | "--snapshots" | "--seed") => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("error: {key} needs a value");
                    std::process::exit(2);
                });
                overrides.push((key.trim_start_matches('-').to_string(), value));
            }
            "all" => ids.extend(
                tagnn::experiments::ALL_EXPERIMENTS
                    .iter()
                    .map(|s| s.to_string()),
            ),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids.extend(
            tagnn::experiments::ALL_EXPERIMENTS
                .iter()
                .map(|s| s.to_string()),
        );
    }
    let mut ctx = if quick {
        ExperimentContext::quick()
    } else {
        ExperimentContext::default()
    };
    for (key, value) in overrides {
        fn fail(k: &str, v: &str) -> ! {
            eprintln!("error: --{k}: cannot parse `{v}`");
            std::process::exit(2);
        }
        match key.as_str() {
            "scale" => ctx.scale = value.parse().unwrap_or_else(|_| fail("scale", &value)),
            "hidden" => ctx.hidden = value.parse().unwrap_or_else(|_| fail("hidden", &value)),
            "window" => ctx.window = value.parse().unwrap_or_else(|_| fail("window", &value)),
            "snapshots" => {
                ctx.snapshots = value.parse().unwrap_or_else(|_| fail("snapshots", &value))
            }
            "seed" => ctx.seed = value.parse().unwrap_or_else(|_| fail("seed", &value)),
            _ => unreachable!(),
        }
    }
    ctx.overlap = overlap;
    if let Some(depth) = lookahead {
        ctx.lookahead = depth;
    }
    if threads.is_none() {
        if let Ok(env) = std::env::var("TAGNN_THREADS") {
            threads = Some(env.parse().unwrap_or_else(|_| {
                eprintln!("error: TAGNN_THREADS: cannot parse `{env}`");
                std::process::exit(2);
            }));
        }
    }
    CliOptions {
        ids,
        ctx,
        json,
        trace,
        threads,
        bench_json,
    }
}

/// Pins the global rayon pool to `threads` workers (when given) and
/// returns the effective pool width. Call once, before any parallel
/// work; a second build attempt on an already-initialised pool is
/// reported but non-fatal.
///
/// With `TAGNN_PIN_THREADS=1` each rayon worker is pinned to the core
/// matching its pool index (the overlap planner thread pins itself one
/// core past the pool), which steadies bench numbers on idle multi-core
/// hosts. Pinning requires an explicit `--threads`/`TAGNN_THREADS`
/// width so the core assignment is deliberate.
pub fn init_thread_pool(threads: Option<usize>) -> usize {
    if let Some(n) = threads {
        let mut builder = rayon::ThreadPoolBuilder::new().num_threads(n.max(1));
        if tagnn_tensor::pinning_enabled() {
            builder = builder.start_handler(|i| {
                let _ = tagnn_tensor::pin_current_thread(i);
            });
        }
        if let Err(e) = builder.build_global() {
            eprintln!("warning: rayon pool already initialised: {e:?}");
        }
    }
    rayon::current_num_threads()
}

/// Renders a batch of results, as text or JSON lines.
pub fn render_results(results: &[ExperimentResult], json: bool) -> String {
    if json {
        results
            .iter()
            .map(|r| serde_json::to_string(r).expect("results serialise"))
            .collect::<Vec<_>>()
            .join("\n")
    } else {
        results
            .iter()
            .map(ExperimentResult::render)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_select_all() {
        let opts = parse_args(std::iter::empty());
        assert_eq!(opts.ids.len(), tagnn::experiments::ALL_EXPERIMENTS.len());
        assert!(!opts.json);
        assert!(opts.trace.is_none());
    }

    #[test]
    fn quick_flag_shrinks_context() {
        let opts = parse_args(vec!["--quick".to_string()].into_iter());
        assert_eq!(opts.ctx.models.len(), 1);
    }

    #[test]
    fn explicit_ids_pass_through() {
        let opts = parse_args(vec!["fig9".to_string(), "--json".to_string()].into_iter());
        assert_eq!(opts.ids, vec!["fig9"]);
        assert!(opts.json);
    }

    #[test]
    fn context_overrides_apply() {
        let opts = parse_args(
            vec![
                "--quick", "--scale", "0.1", "--hidden", "24", "--window", "2",
            ]
            .into_iter()
            .map(String::from),
        );
        assert_eq!(opts.ctx.scale, 0.1);
        assert_eq!(opts.ctx.hidden, 24);
        assert_eq!(opts.ctx.window, 2);
    }

    #[test]
    fn trace_flag_captures_the_path() {
        let opts = parse_args(
            vec!["fig8a", "--trace", "out/trace.json"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(
            opts.trace.as_deref(),
            Some(std::path::Path::new("out/trace.json"))
        );
    }

    #[test]
    fn threads_flag_is_parsed() {
        let opts = parse_args(vec!["fig9", "--threads", "3"].into_iter().map(String::from));
        assert_eq!(opts.threads, Some(3));
        assert!(opts.bench_json.is_none());
    }

    #[test]
    fn bench_json_subcommand_captures_the_path() {
        let opts = parse_args(
            vec!["bench-json", "BENCH_4.json", "--threads", "1"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(
            opts.bench_json.as_deref(),
            Some(std::path::Path::new("BENCH_4.json"))
        );
        assert_eq!(opts.threads, Some(1));
    }

    #[test]
    fn render_json_is_parseable() {
        let ctx = ExperimentContext::quick();
        let r = vec![tagnn::experiments::run("table4", &ctx)];
        let out = render_results(&r, true);
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["id"], "table4");
    }
}
