//! The `experiments bench-json` performance suite.
//!
//! Runs a fixed set of engine and kernel stages on an ML-scale
//! (MovieLens preset) pipeline and serialises wall-times plus the
//! engines' work counters to a small hand-rolled JSON report
//! (`BENCH_4.json` in the repo root records the committed numbers).
//! Stage names are stable across PRs so before/after comparisons are a
//! field-by-field diff.

use std::fmt::Write as _;
use std::time::Instant;

use tagnn::TagnnPipeline;
use tagnn_graph::DatasetPreset;
use tagnn_models::{ExecutionStats, ModelKind, ReuseMode, SkipConfig};
use tagnn_tensor::{init, ops};

/// One timed stage of the suite.
#[derive(Debug, Clone)]
pub struct BenchStage {
    /// Stable stage name (used as the comparison key across reports).
    pub name: String,
    /// Timed iterations (after one untimed warm-up).
    pub iters: u32,
    /// Sum of all timed iterations, milliseconds.
    pub total_ms: f64,
    /// Fastest single iteration, milliseconds.
    pub best_ms: f64,
    /// Work counters for the stage (ops / bytes from the engines'
    /// existing accounting; empty for raw kernel stages).
    pub metrics: Vec<(String, f64)>,
}

/// A full suite run: configuration echo plus every stage.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Dataset preset abbreviation (always "ML" for the committed report).
    pub preset: String,
    /// Rayon threads the run was pinned to.
    pub threads: usize,
    /// Dataset scale fraction.
    pub scale: f64,
    /// Hidden dimension.
    pub hidden: usize,
    /// Window size K.
    pub window: usize,
    /// Snapshot count.
    pub snapshots: usize,
    /// The timed stages, in execution order.
    pub stages: Vec<BenchStage>,
}

/// Suite configuration; [`SuiteParams::ml_default`] is what the
/// committed `BENCH_4.json` uses.
#[derive(Debug, Clone)]
pub struct SuiteParams {
    /// Dataset preset to scale.
    pub preset: DatasetPreset,
    /// Scale fraction in `(0, 1]`.
    pub scale: f64,
    /// Hidden dimension.
    pub hidden: usize,
    /// Window size K.
    pub window: usize,
    /// Snapshot count.
    pub snapshots: usize,
    /// Weight / generator seed.
    pub seed: u64,
    /// Timed iterations for raw kernel stages.
    pub kernel_iters: u32,
    /// Timed iterations for end-to-end engine stages.
    pub engine_iters: u32,
}

impl SuiteParams {
    /// The ML-scale default the committed report uses.
    pub fn ml_default() -> Self {
        Self {
            preset: DatasetPreset::MovieLens,
            scale: 0.05,
            hidden: 48,
            window: 4,
            snapshots: 8,
            seed: 0xD6,
            kernel_iters: 8,
            engine_iters: 3,
        }
    }
}

fn time_stage<F: FnMut()>(
    name: &str,
    iters: u32,
    metrics: Vec<(String, f64)>,
    mut f: F,
) -> BenchStage {
    f(); // warm-up, untimed
    let mut total_ms = 0.0f64;
    let mut best_ms = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t = Instant::now();
        f();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        total_ms += ms;
        best_ms = best_ms.min(ms);
    }
    BenchStage {
        name: name.to_string(),
        iters: iters.max(1),
        total_ms,
        best_ms,
        metrics,
    }
}

/// Engine work counters as report metrics. Derived values first, then
/// every counter from [`ExecutionStats::named_counters`] verbatim — the
/// single enumeration the engines maintain — so a counter added there
/// (e.g. a new `kernel.*` family) can never silently vanish from the
/// summary table by being missing from a hand-kept list here.
fn stat_metrics(stats: &ExecutionStats) -> Vec<(String, f64)> {
    let mut out = vec![
        ("total_macs".into(), stats.total_macs() as f64),
        ("kernel.input_density".into(), stats.dispatch_density()),
    ];
    out.extend(
        stats
            .named_counters()
            .into_iter()
            // Wall time is already the stage's headline number.
            .filter(|&(k, _)| k != "wall_ns")
            .map(|(k, v)| (k.to_string(), v as f64)),
    );
    out
}

/// Runs the suite and returns the report. `threads` is only echoed into
/// the report — pin the pool with [`crate::init_thread_pool`] first.
pub fn run_suite(params: &SuiteParams, threads: usize) -> BenchReport {
    let build = |reuse: ReuseMode, skip: SkipConfig| {
        TagnnPipeline::builder()
            .dataset(params.preset)
            .model(ModelKind::TGcn)
            .hidden(params.hidden)
            .window(params.window)
            .snapshots(params.snapshots)
            .scale(params.scale)
            .seed(params.seed)
            .reuse(reuse)
            .skip(skip)
            .build()
    };
    let exact = build(ReuseMode::Exact, SkipConfig::disabled());
    let paper = build(ReuseMode::PaperWindow, SkipConfig::paper_default());

    let mut stages = Vec::new();

    // --- raw kernel stages -------------------------------------------------
    let a = init::xavier_uniform(256, 256, 0xB0);
    let b = init::xavier_uniform(256, 256, 0xB1);
    stages.push(time_stage(
        "gemm_256",
        params.kernel_iters,
        vec![("flops".into(), 2.0 * 256.0 * 256.0 * 256.0)],
        || {
            std::hint::black_box(ops::matmul(&a, &b));
        },
    ));

    let snap0 = exact.graph().snapshot(0);
    let feat = snap0.features();
    let w0 = init::xavier_uniform(feat.cols(), params.hidden, 0xB2);
    stages.push(time_stage(
        "gemm_feat_hidden",
        params.kernel_iters,
        vec![(
            "flops".into(),
            2.0 * feat.rows() as f64 * feat.cols() as f64 * params.hidden as f64,
        )],
        || {
            std::hint::black_box(ops::matmul(feat, &w0));
        },
    ));

    // --- model-layer stages ------------------------------------------------
    let layer0 = &exact.model().layers()[0];
    stages.push(time_stage(
        "gcn_layer0_forward",
        params.kernel_iters,
        vec![
            ("vertices".into(), snap0.num_vertices() as f64),
            ("edges".into(), snap0.num_edges() as f64),
        ],
        || {
            std::hint::black_box(layer0.forward(snap0, feat));
        },
    ));

    let cell = exact.model().cell();
    let n = snap0.num_vertices();
    let (in_dim, hidden) = (cell.in_dim(), cell.hidden());
    let gh = cell.kind().gates() * hidden;
    let z = init::xavier_uniform(n, in_dim, 0xB3);
    let mut states: Vec<_> = (0..n)
        .map(|_| tagnn_models::rnn::VertexState::zeros(hidden, cell.kind().gates()))
        .collect();
    // Batched gate path, as both engines now run it: gather, two GEMMs,
    // scatter + in-place gates. Buffers are hoisted so the timed body is
    // allocation-free like the engines' steady state.
    let mut h_batch = vec![0.0f32; n * hidden];
    let mut x_pre = vec![0.0f32; n * gh];
    let mut h_pre = vec![0.0f32; n * gh];
    stages.push(time_stage(
        "rnn_step_all",
        params.kernel_iters,
        vec![("vertices".into(), n as f64)],
        || {
            for (v, state) in states.iter().enumerate() {
                h_batch[v * hidden..][..hidden].copy_from_slice(&state.h);
            }
            cell.batch_preactivations(n, z.as_slice(), &h_batch, &mut x_pre, &mut h_pre);
            for (v, state) in states.iter_mut().enumerate() {
                state.x_pre.copy_from_slice(&x_pre[v * gh..][..gh]);
                let tagnn_models::rnn::VertexState { h, c, x_pre } = state;
                cell.apply_gates(x_pre, &h_pre[v * gh..][..gh], h, c);
            }
        },
    ));

    // --- end-to-end engine stages ------------------------------------------
    let mut ref_stats = None;
    stages.push(time_stage(
        "engine_reference",
        params.engine_iters,
        vec![],
        || {
            let out = exact.run_reference();
            ref_stats.get_or_insert(out.stats);
        },
    ));
    if let Some(stats) = &ref_stats {
        let last = stages.last_mut().expect("stage pushed");
        last.metrics = stat_metrics(stats);
    }

    let mut exact_stats = None;
    stages.push(time_stage(
        "engine_concurrent_exact",
        params.engine_iters,
        vec![],
        || {
            let out = exact.run_concurrent();
            exact_stats.get_or_insert(out.stats);
        },
    ));
    if let Some(stats) = &exact_stats {
        let last = stages.last_mut().expect("stage pushed");
        last.metrics = stat_metrics(stats);
    }

    let mut paper_stats = None;
    stages.push(time_stage(
        "engine_concurrent_paper",
        params.engine_iters,
        vec![],
        || {
            let out = paper.run_concurrent();
            paper_stats.get_or_insert(out.stats);
        },
    ));
    if let Some(stats) = &paper_stats {
        let last = stages.last_mut().expect("stage pushed");
        last.metrics = stat_metrics(stats);
    }

    BenchReport {
        preset: params.preset.abbrev().to_string(),
        threads,
        scale: params.scale,
        hidden: params.hidden,
        window: params.window,
        snapshots: params.snapshots,
        stages,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            format!("{}", x as i64)
        } else {
            format!("{x}")
        }
    } else {
        "null".to_string()
    }
}

impl BenchReport {
    /// Serialises the report as pretty-printed JSON (hand-rolled, in the
    /// same spirit as `tagnn_obs::Trace::to_json`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"tagnn-bench/1\",");
        let _ = writeln!(s, "  \"preset\": \"{}\",", json_escape(&self.preset));
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"scale\": {},", json_f64(self.scale));
        let _ = writeln!(s, "  \"hidden\": {},", self.hidden);
        let _ = writeln!(s, "  \"window\": {},", self.window);
        let _ = writeln!(s, "  \"snapshots\": {},", self.snapshots);
        s.push_str("  \"stages\": [\n");
        for (i, st) in self.stages.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"name\": \"{}\",", json_escape(&st.name));
            let _ = writeln!(s, "      \"iters\": {},", st.iters);
            let _ = writeln!(s, "      \"total_ms\": {},", json_f64(st.total_ms));
            let _ = writeln!(s, "      \"best_ms\": {},", json_f64(st.best_ms));
            s.push_str("      \"metrics\": {");
            for (j, (k, v)) in st.metrics.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\": {}", json_escape(k), json_f64(*v));
            }
            s.push_str("}\n");
            s.push_str(if i + 1 == self.stages.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// One-line-per-stage summary for stdout.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "bench-json: preset={} threads={} scale={} hidden={} window={} snapshots={}\n",
            self.preset, self.threads, self.scale, self.hidden, self.window, self.snapshots
        );
        for st in &self.stages {
            let _ = writeln!(
                s,
                "  {:<26} best {:>10.3} ms   mean {:>10.3} ms   ({} iters)",
                st.name,
                st.best_ms,
                st.total_ms / st.iters as f64,
                st.iters
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> SuiteParams {
        SuiteParams {
            preset: DatasetPreset::Gdelt,
            scale: 0.01,
            hidden: 8,
            window: 2,
            snapshots: 4,
            seed: 7,
            kernel_iters: 1,
            engine_iters: 1,
        }
    }

    #[test]
    fn suite_runs_and_serialises() {
        let report = run_suite(&tiny_params(), 1);
        assert_eq!(report.stages.len(), 7);
        let names: Vec<_> = report.stages.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"engine_reference"));
        assert!(names.contains(&"engine_concurrent_exact"));
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"tagnn-bench/1\""));
        assert!(json.contains("\"engine_concurrent_paper\""));
        // Every engine stage carries the work counters — including the
        // full kernel.* dispatch family, straight from named_counters()
        // rather than a hand-kept list that could drop newcomers.
        for st in &report.stages {
            if st.name.starts_with("engine_") {
                assert!(st.metrics.iter().any(|(k, _)| k == "rnn_macs"));
                assert!(st.metrics.iter().any(|(k, _)| k == "kernel.dispatch.dense"));
                let density = st
                    .metrics
                    .iter()
                    .find(|(k, _)| k == "kernel.input_density")
                    .map(|(_, v)| *v)
                    .expect("density gauge present");
                assert!((0.0..=1.0).contains(&density));
            }
            assert!(st.best_ms <= st.total_ms + 1e-9);
        }
    }

    #[test]
    fn stat_metrics_carries_every_named_counter() {
        let stats = ExecutionStats::default();
        let metrics = stat_metrics(&stats);
        for (name, _) in stats.named_counters() {
            if name == "wall_ns" {
                continue;
            }
            assert!(
                metrics.iter().any(|(k, _)| k == name),
                "counter {name} dropped from the summary table"
            );
        }
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(2.0), "2");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
