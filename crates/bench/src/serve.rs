//! `experiments serve` / `serve-bench` / `serve-scale` / `serve-ab`:
//! boot the TCP frontend from `tagnn-serve` (binary wire by default,
//! JSON-lines via `--wire json`) and drive it with the built-in load
//! generator. `serve-bench` emits a `BENCH_5.json` report with latency
//! quantiles, throughput, shed counts, and plan-cache behaviour;
//! `serve-scale` sweeps the shard count, checks shard-count
//! bit-identity, and pins the scaling curve in `BENCH_7.json`;
//! `serve-ab` A/Bs the sparsity-adaptive kernel dispatcher
//! (`--dispatch auto` vs `dense`), checks bit-identity across modes,
//! and pins per-run dispatch-decision counts in `BENCH_8.json`.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Duration;

use tagnn_graph::generate::GeneratorConfig;
use tagnn_serve::json;
use tagnn_serve::loadgen::{self, LoadgenConfig, LoadgenSummary};
use tagnn_serve::server::stats_view;
use tagnn_serve::{InferRequest, ServeConfig, ServeCore, Server, ShardAssignment, WireFormat};
use tagnn_tensor::DispatchMode;

use crate::cli::{dataset_of, model_of, num, parse_flags};

/// Everything the serve subcommands share: the trace graph, the serving
/// envelope, and (for the benches) the load shape.
struct ServeArgs {
    addr: String,
    dataset: String,
    graph: GeneratorConfig,
    serve: ServeConfig,
    wire: WireFormat,
    connections: usize,
    rate: f64,
    duration: Duration,
    max_fallback_rate: f64,
    shards_list: Vec<usize>,
    out: Option<String>,
}

fn parse(args: &[String], default_duration_s: f64) -> Result<ServeArgs, String> {
    let flags: HashMap<String, String> = parse_flags(args)?;
    for key in flags.keys() {
        const KNOWN: [&str; 27] = [
            "dispatch",
            "overlap",
            "lookahead",
            "addr",
            "dataset",
            "snapshots",
            "seed",
            "window",
            "model",
            "hidden",
            "shards",
            "shard-assignment",
            "shards-list",
            "wire",
            "queue-capacity",
            "max-batch",
            "max-delay-us",
            "connections",
            "rate",
            "duration-s",
            "incremental",
            "max-fallback-rate",
            "out",
            "durable-dir",
            "group-commit",
            "checkpoint-every",
            "keep-checkpoints",
        ];
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!("unknown flag --{key}"));
        }
    }

    let snapshots: usize = num(&flags, "snapshots", 8)?;
    let dataset = flags
        .get("dataset")
        .cloned()
        .unwrap_or_else(|| "tiny".to_string());
    let mut graph = if dataset == "tiny" {
        let mut g = GeneratorConfig::tiny();
        g.num_snapshots = snapshots;
        g
    } else if dataset == "sparse" || dataset == "SP" {
        // High-churn preset with ~12% nonzero feature rows: the operand
        // shape that actually flips the auto dispatcher to SpMM (all
        // Table 2 presets are fully dense, which leaves that A/B dead).
        GeneratorConfig::sparse_high_churn(snapshots)
    } else if dataset == "flash" || dataset == "flash_crowd" {
        // Hostile-churn preset: bursty hub rewires that collapse
        // inter-snapshot similarity — the worst case for incremental
        // planning, delta-skip, and (here) WAL/checkpoint overhead.
        GeneratorConfig::flash_crowd(snapshots)
    } else {
        dataset_of(&flags)?.config_small(snapshots)
    };
    graph.seed = num(&flags, "seed", graph.seed)?;

    let incremental: u64 = num(&flags, "incremental", 1)?;
    let overlap: u64 = num(&flags, "overlap", 0)?;
    let assignment_spelling = flags
        .get("shard-assignment")
        .map(String::as_str)
        .unwrap_or("hash");
    let shard_assignment = ShardAssignment::parse(assignment_spelling).ok_or_else(|| {
        format!("--shard-assignment must be hash or degree, got {assignment_spelling}")
    })?;
    let dispatch_spelling = flags.get("dispatch").map(String::as_str).unwrap_or("auto");
    let dispatch = DispatchMode::parse(dispatch_spelling)
        .ok_or_else(|| format!("--dispatch must be auto or dense, got {dispatch_spelling}"))?;
    let serve = ServeConfig {
        universe: graph.num_vertices,
        dispatch,
        feature_dim: graph.feature_dim,
        window: num(&flags, "window", 4)?,
        model: model_of(&flags)?,
        hidden: num(&flags, "hidden", 16)?,
        shards: num(&flags, "shards", 2)?,
        shard_assignment,
        queue_capacity: num(&flags, "queue-capacity", 256)?,
        max_batch: num(&flags, "max-batch", 8)?,
        max_delay_us: num(&flags, "max-delay-us", 500)?,
        incremental_planning: incremental != 0,
        overlap: overlap != 0,
        lookahead: num(&flags, "lookahead", 1)?,
        durability: match flags.get("durable-dir") {
            Some(dir) => {
                let mut d = tagnn_serve::DurabilityConfig::new(dir.as_str());
                d.group_commit = num(&flags, "group-commit", d.group_commit)?;
                d.checkpoint_every_windows =
                    num(&flags, "checkpoint-every", d.checkpoint_every_windows)?;
                d.keep_checkpoints = num(&flags, "keep-checkpoints", d.keep_checkpoints)?;
                Some(d)
            }
            None => None,
        },
        ..ServeConfig::default()
    };

    let wire_spelling = flags.get("wire").map(String::as_str).unwrap_or("binary");
    let wire = WireFormat::parse(wire_spelling)
        .ok_or_else(|| format!("--wire must be binary or json, got {wire_spelling}"))?;

    let shards_list = flags
        .get("shards-list")
        .map(String::as_str)
        .unwrap_or("1,2,4,8")
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("--shards-list wants positive integers, got {s:?}"))
        })
        .collect::<Result<Vec<_>, _>>()?;

    Ok(ServeArgs {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7433".to_string()),
        dataset,
        graph,
        serve,
        wire,
        connections: num(&flags, "connections", 4)?,
        rate: num(&flags, "rate", 0.0)?,
        duration: Duration::from_secs_f64(num(&flags, "duration-s", default_duration_s)?),
        max_fallback_rate: num(&flags, "max-fallback-rate", 0.05)?,
        shards_list,
        out: flags.get("out").cloned(),
    })
}

fn describe(a: &ServeArgs) -> String {
    format!(
        "{} ({} vertices, D={}, {} snapshots) model={} hidden={} K={} shards={} wire={} queue={} plan={} dispatch={}",
        a.dataset,
        a.graph.num_vertices,
        a.graph.feature_dim,
        a.graph.num_snapshots,
        a.serve.model.name(),
        a.serve.hidden,
        a.serve.window,
        a.serve.shards,
        match a.wire {
            WireFormat::Binary => "binary",
            WireFormat::Json => "json",
        },
        a.serve.queue_capacity,
        if a.serve.incremental_planning {
            "incremental"
        } else {
            "cache/scratch"
        },
        a.serve.dispatch.as_str(),
    )
}

/// Fails loudly when the incremental-planning fallback rate (fallbacks
/// over windows that entered the maintainer-enabled path) exceeds the
/// `--max-fallback-rate` threshold.
fn check_fallback_rate(stats: &tagnn_serve::wire::StatsView, max_rate: f64) -> Result<(), String> {
    let attempted = stats.plan_incremental + stats.plan_fallbacks;
    if attempted == 0 {
        return Ok(());
    }
    let rate = stats.plan_fallbacks as f64 / attempted as f64;
    if rate > max_rate {
        return Err(format!(
            "incremental-planning fallback rate {rate:.4} exceeds --max-fallback-rate {max_rate:.4} \
             ({} fallbacks over {attempted} maintainer windows)",
            stats.plan_fallbacks,
        ));
    }
    Ok(())
}

/// `experiments serve`: boot the TCP frontend and block. `--duration-s 0`
/// (the default here) serves until the process is killed; a positive
/// duration serves that long, prints the core's counters, and exits —
/// which is what the CI smoke job uses.
pub fn run_serve(args: &[String]) -> Result<(), String> {
    let a = parse(args, 0.0)?;
    let core = ServeCore::start(a.serve.clone());
    if let Some(r) = core.recovery_report() {
        println!(
            "recovered: checkpoint={} replayed_requests={} replayed_events={} \
             truncated_tail_bytes={} replay_us={}",
            r.checkpoint_seq
                .map_or_else(|| "none".to_string(), |s| s.to_string()),
            r.replayed_requests,
            r.replayed_events,
            r.truncated_tail_bytes,
            r.replay_us,
        );
    }
    let server =
        Server::bind_with(core, &a.addr, a.wire).map_err(|e| format!("bind {}: {e}", a.addr))?;
    println!("tagnn-serve listening on {}", server.local_addr());
    println!("  {}", describe(&a));
    if a.duration.is_zero() {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(a.duration);
    let stats = stats_view(server.core());
    println!(
        "served for {:?}: shed={} degrade_level={} (max {}) cache hits={} misses={} evictions={}",
        a.duration,
        stats.shed,
        stats.degrade_level,
        stats.max_degrade_level,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
    );
    println!(
        "  plans: incremental={} cached={} scratch={} fallbacks={}",
        stats.plan_incremental, stats.plan_cached, stats.plan_scratch, stats.plan_fallbacks,
    );
    println!(
        "  dispatch: dense={} spmm={} delta_skip={} input_density={:.3}",
        stats.dispatch_dense,
        stats.dispatch_spmm,
        stats.dispatch_delta_skip,
        stats.dispatch_density,
    );
    server.shutdown();
    check_fallback_rate(&stats, a.max_fallback_rate)
}

/// `experiments serve-bench`: boot an in-process server on an ephemeral
/// loopback port, replay the trace through the load generator, and write
/// the combined client/server report to `--out` (default `BENCH_5.json`).
pub fn run_serve_bench(args: &[String]) -> Result<(), String> {
    let a = parse(args, 10.0)?;
    let out = a.out.clone().unwrap_or_else(|| "BENCH_5.json".to_string());
    let core = ServeCore::start(a.serve.clone());
    let server = Server::bind_with(core, "127.0.0.1:0", a.wire)
        .map_err(|e| format!("bind loopback: {e}"))?;
    eprintln!(
        "serve-bench: {} connections ({} loop) for {:?} against {}",
        a.connections,
        if a.rate > 0.0 { "open" } else { "closed" },
        a.duration,
        describe(&a),
    );

    let load = LoadgenConfig {
        addr: server.local_addr().to_string(),
        connections: a.connections,
        rate: a.rate,
        duration: a.duration,
        graph: a.graph.clone(),
        wire: a.wire,
    };
    let summary = loadgen::run(&load).map_err(|e| format!("loadgen: {e}"))?;
    let stats = stats_view(server.core());
    let plan_build_us = server.core().recorder().histogram("serve.plan_build_us");
    server.shutdown();

    let report = render_report(&a, &summary, &stats, plan_build_us.as_ref());
    std::fs::write(&out, &report).map_err(|e| format!("cannot write {out}: {e}"))?;

    println!(
        "serve-bench: {} requests, {} replies ({:.1}/s), {} shed, {} errors, {} windows",
        summary.requests,
        summary.replies,
        summary.replies_per_sec(),
        summary.shed,
        summary.errors,
        summary.windows,
    );
    println!(
        "  latency p50={}us p95={}us p99={}us max={}us | plan cache {}h/{}m/{}e | max degrade level {}",
        summary.latency_us.quantile(0.50),
        summary.latency_us.quantile(0.95),
        summary.latency_us.quantile(0.99),
        summary.latency_us.max(),
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.max_degrade_level,
    );
    println!(
        "  plans: incremental={} cached={} scratch={} fallbacks={}",
        stats.plan_incremental, stats.plan_cached, stats.plan_scratch, stats.plan_fallbacks,
    );
    println!(
        "  dispatch: dense={} spmm={} delta_skip={} input_density={:.3}",
        stats.dispatch_dense,
        stats.dispatch_spmm,
        stats.dispatch_delta_skip,
        stats.dispatch_density,
    );
    if let Some(h) = &plan_build_us {
        println!(
            "  plan build p50={}us p95={}us p99={}us max={}us over {} windows",
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            h.max(),
            h.count(),
        );
    }
    println!("report written to {out}");
    if summary.replies == 0 && summary.requests > 0 {
        return Err("no request got a reply".to_string());
    }
    check_fallback_rate(&stats, a.max_fallback_rate)
}

/// Replays the canonical trace synchronously through a fresh core and
/// returns the served window digests — the shard-count bit-identity
/// probe used by `serve-scale`.
fn served_digests(serve: &ServeConfig, graph: &GeneratorConfig) -> Result<Vec<u64>, String> {
    let core = ServeCore::start(serve.clone());
    let g = graph.generate();
    let per_snapshot = tagnn_serve::events_from_graph(&g);
    let total = per_snapshot.len();
    let mut digests = Vec::new();
    for (i, events) in per_snapshot.into_iter().enumerate() {
        let ticket = core
            .submit(InferRequest {
                stream: 0,
                events,
                flush: i + 1 == total,
            })
            .map_err(|e| format!("submit: {e}"))?;
        let reply = ticket.wait().map_err(|e| format!("serve: {e}"))?;
        digests.extend(reply.windows.iter().map(|w| w.digest));
    }
    core.shutdown();
    Ok(digests)
}

/// `experiments serve-scale`: sweep `--shards-list` (default 1,2,4,8).
/// For each shard count, first replay the trace synchronously and check
/// the served digests are bit-identical to the 1-shard baseline, then
/// run the closed/open-loop load for `--duration-s` and record the
/// throughput/latency row. Writes the curve to `--out` (default
/// `BENCH_7.json`) with host metadata — scaling numbers are only
/// meaningful relative to the recorded core count.
pub fn run_serve_scale(args: &[String]) -> Result<(), String> {
    let a = parse(args, 3.0)?;
    let out = a.out.clone().unwrap_or_else(|| "BENCH_7.json".to_string());
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "serve-scale: shards {:?}, {} connections for {:?} each against {} ({} cpus)",
        a.shards_list,
        a.connections,
        a.duration,
        describe(&a),
        cpus,
    );

    let mut baseline: Option<Vec<u64>> = None;
    let mut rows = String::new();
    for (row, &shards) in a.shards_list.iter().enumerate() {
        let mut serve = a.serve.clone();
        serve.shards = shards;

        let digests = served_digests(&serve, &a.graph)?;
        if digests.is_empty() {
            return Err("trace produced no windows; digest check is vacuous".to_string());
        }
        match &baseline {
            None => baseline = Some(digests),
            Some(b) => {
                if *b != digests {
                    return Err(format!(
                        "shard-count invariance violated: {} shards served different digests \
                         than {} shards",
                        shards, a.shards_list[0],
                    ));
                }
            }
        }

        let server = Server::bind_with(ServeCore::start(serve), "127.0.0.1:0", a.wire)
            .map_err(|e| format!("bind loopback: {e}"))?;
        let load = LoadgenConfig {
            addr: server.local_addr().to_string(),
            connections: a.connections,
            rate: a.rate,
            duration: a.duration,
            graph: a.graph.clone(),
            wire: a.wire,
        };
        let summary = loadgen::run(&load).map_err(|e| format!("loadgen: {e}"))?;
        let stats = stats_view(server.core());
        server.shutdown();
        if summary.replies == 0 && summary.requests > 0 {
            return Err(format!("{shards} shards: no request got a reply"));
        }

        println!(
            "  {shards} shards: {:.1} replies/s, p50={}us p95={}us p99={}us, shed={} cross_seal={}",
            summary.replies_per_sec(),
            summary.latency_us.quantile(0.50),
            summary.latency_us.quantile(0.95),
            summary.latency_us.quantile(0.99),
            summary.shed,
            stats.cross_shard_edges,
        );
        if row > 0 {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            r#"    {{"shards": {shards}, "digest_check": "ok", "replies_per_sec": "#
        );
        json::write_f64(&mut rows, summary.replies_per_sec());
        let _ = write!(
            rows,
            concat!(
                r#", "requests": {}, "replies": {}, "shed": {}, "errors": {}, "#,
                r#""windows": {}, "latency_us": {{"p50": {}, "p95": {}, "p99": {}, "max": {}}}, "#,
                r#""cross_seal_edges": {}}}"#
            ),
            summary.requests,
            summary.replies,
            summary.shed,
            summary.errors,
            summary.windows,
            summary.latency_us.quantile(0.50),
            summary.latency_us.quantile(0.95),
            summary.latency_us.quantile(0.99),
            summary.latency_us.max(),
            stats.cross_shard_edges,
        );
    }

    let mut report = String::with_capacity(2048);
    report.push_str("{\n  \"bench\": \"serve-scale\",\n  \"config\": {");
    let _ = write!(report, "\"dataset\": ");
    json::write_string(&mut report, &a.dataset);
    let _ = write!(
        report,
        concat!(
            r#", "vertices": {}, "edges": {}, "feature_dim": {}, "snapshots": {}, "#,
            r#""graph_seed": {}, "model": "{}", "hidden": {}, "window": {}, "#,
            r#""wire": "{}", "connections": {}, "rate": "#
        ),
        a.graph.num_vertices,
        a.graph.num_edges,
        a.graph.feature_dim,
        a.graph.num_snapshots,
        a.graph.seed,
        a.serve.model.name(),
        a.serve.hidden,
        a.serve.window,
        match a.wire {
            WireFormat::Binary => "binary",
            WireFormat::Json => "json",
        },
        a.connections,
    );
    json::write_f64(&mut report, a.rate);
    report.push_str(", \"duration_s\": ");
    json::write_f64(&mut report, a.duration.as_secs_f64());
    let _ = write!(
        report,
        "}},\n  \"host\": {{\"cpus\": {cpus}, \"note\": \"throughput scaling saturates at the \
         host core count; the digest_check column is the load-bearing result on small hosts\"}},\n"
    );
    report.push_str("  \"curve\": [\n");
    report.push_str(&rows);
    report.push_str("\n  ]\n}\n");
    std::fs::write(&out, &report).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("report written to {out}");
    Ok(())
}

/// `experiments serve-ab`: A/B the sparsity-adaptive kernel dispatcher.
/// Defaults to the sparse high-churn preset — the Table 2 presets are
/// fully dense, so under them the auto dispatcher (correctly) never
/// picks SpMM and the A/B degenerates — `--dataset` overrides. For each
/// mode — `auto` (density-measured dispatch) then `dense` (legacy
/// baseline) — it first replays the trace synchronously and checks the
/// served digests are bit-identical across modes, then runs the
/// closed/open-loop load for `--duration-s` and records the
/// throughput/latency row together with that run's dispatch-decision
/// counts. Writes the pair of rows to `--out` (default `BENCH_8.json`).
pub fn run_serve_ab(args: &[String]) -> Result<(), String> {
    let mut full = vec!["--dataset".to_string(), "sparse".to_string()];
    full.extend_from_slice(args);
    let a = parse(&full, 3.0)?;
    let out = a.out.clone().unwrap_or_else(|| "BENCH_8.json".to_string());
    eprintln!(
        "serve-ab: auto vs dense, {} connections for {:?} each against {}",
        a.connections,
        a.duration,
        describe(&a),
    );

    let mut baseline: Option<Vec<u64>> = None;
    let mut rows = String::new();
    for (row, mode) in [DispatchMode::Auto, DispatchMode::Dense]
        .into_iter()
        .enumerate()
    {
        let mut serve = a.serve.clone();
        serve.dispatch = mode;

        let digests = served_digests(&serve, &a.graph)?;
        if digests.is_empty() {
            return Err("trace produced no windows; digest check is vacuous".to_string());
        }
        match &baseline {
            None => baseline = Some(digests),
            Some(b) => {
                if *b != digests {
                    return Err(format!(
                        "dispatch bit-identity violated: {} mode served different digests \
                         than auto mode",
                        mode.as_str(),
                    ));
                }
            }
        }

        let server = Server::bind_with(ServeCore::start(serve), "127.0.0.1:0", a.wire)
            .map_err(|e| format!("bind loopback: {e}"))?;
        let load = LoadgenConfig {
            addr: server.local_addr().to_string(),
            connections: a.connections,
            rate: a.rate,
            duration: a.duration,
            graph: a.graph.clone(),
            wire: a.wire,
        };
        let summary = loadgen::run(&load).map_err(|e| format!("loadgen: {e}"))?;
        let stats = stats_view(server.core());
        server.shutdown();
        if summary.replies == 0 && summary.requests > 0 {
            return Err(format!("{} mode: no request got a reply", mode.as_str()));
        }
        if mode == DispatchMode::Dense && stats.dispatch_spmm > 0 {
            return Err(format!(
                "dense mode must never dispatch an SpMM, counted {}",
                stats.dispatch_spmm,
            ));
        }

        println!(
            "  {}: {:.1} replies/s, p50={}us p95={}us p99={}us | dispatch dense={} spmm={} \
             delta_skip={} density={:.3}",
            mode.as_str(),
            summary.replies_per_sec(),
            summary.latency_us.quantile(0.50),
            summary.latency_us.quantile(0.95),
            summary.latency_us.quantile(0.99),
            stats.dispatch_dense,
            stats.dispatch_spmm,
            stats.dispatch_delta_skip,
            stats.dispatch_density,
        );
        if row > 0 {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            r#"    {{"dispatch": "{}", "digest_check": "ok", "replies_per_sec": "#,
            mode.as_str(),
        );
        json::write_f64(&mut rows, summary.replies_per_sec());
        let _ = write!(
            rows,
            concat!(
                r#", "requests": {}, "replies": {}, "shed": {}, "errors": {}, "#,
                r#""windows": {}, "latency_us": {{"p50": {}, "p95": {}, "p99": {}, "max": {}}}, "#,
                r#""decisions": {{"dense": {}, "spmm": {}, "delta_skip": {}, "input_density": "#
            ),
            summary.requests,
            summary.replies,
            summary.shed,
            summary.errors,
            summary.windows,
            summary.latency_us.quantile(0.50),
            summary.latency_us.quantile(0.95),
            summary.latency_us.quantile(0.99),
            summary.latency_us.max(),
            stats.dispatch_dense,
            stats.dispatch_spmm,
            stats.dispatch_delta_skip,
        );
        json::write_f64(&mut rows, stats.dispatch_density);
        rows.push_str("}}");
    }

    let mut report = String::with_capacity(2048);
    report.push_str("{\n  \"bench\": \"serve-ab\",\n  \"config\": {");
    let _ = write!(report, "\"dataset\": ");
    json::write_string(&mut report, &a.dataset);
    let _ = write!(
        report,
        concat!(
            r#", "vertices": {}, "edges": {}, "feature_dim": {}, "snapshots": {}, "#,
            r#""graph_seed": {}, "model": "{}", "hidden": {}, "window": {}, "#,
            r#""shards": {}, "wire": "{}", "connections": {}, "rate": "#
        ),
        a.graph.num_vertices,
        a.graph.num_edges,
        a.graph.feature_dim,
        a.graph.num_snapshots,
        a.graph.seed,
        a.serve.model.name(),
        a.serve.hidden,
        a.serve.window,
        a.serve.shards,
        match a.wire {
            WireFormat::Binary => "binary",
            WireFormat::Json => "json",
        },
        a.connections,
    );
    json::write_f64(&mut report, a.rate);
    report.push_str(", \"duration_s\": ");
    json::write_f64(&mut report, a.duration.as_secs_f64());
    report.push_str(
        "},\n  \"note\": \"digest_check pins auto/dense bit-identity; decisions are the \
         per-run kernel dispatch counts\",\n",
    );
    report.push_str("  \"runs\": [\n");
    report.push_str(&rows);
    report.push_str("\n  ]\n}\n");
    std::fs::write(&out, &report).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("report written to {out}");
    Ok(())
}

fn render_report(
    a: &ServeArgs,
    summary: &LoadgenSummary,
    stats: &tagnn_serve::wire::StatsView,
    plan_build_us: Option<&tagnn_obs::Histogram>,
) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"bench\": \"serve\",\n  \"config\": {");
    let _ = write!(out, "\"dataset\": ");
    json::write_string(&mut out, &a.dataset);
    let _ = write!(
        out,
        concat!(
            r#", "vertices": {}, "edges": {}, "feature_dim": {}, "snapshots": {}, "#,
            r#""graph_seed": {}, "model": "{}", "hidden": {}, "window": {}, "#,
            r#""shards": {}, "wire": "{}", "queue_capacity": {}, "max_batch": {}, "#,
            r#""max_delay_us": {}, "connections": {}, "rate": "#
        ),
        a.graph.num_vertices,
        a.graph.num_edges,
        a.graph.feature_dim,
        a.graph.num_snapshots,
        a.graph.seed,
        a.serve.model.name(),
        a.serve.hidden,
        a.serve.window,
        a.serve.shards,
        match a.wire {
            WireFormat::Binary => "binary",
            WireFormat::Json => "json",
        },
        a.serve.queue_capacity,
        a.serve.max_batch,
        a.serve.max_delay_us,
        a.connections,
    );
    json::write_f64(&mut out, a.rate);
    let _ = write!(
        out,
        r#", "incremental_planning": {}, "dispatch": "{}", "duration_s": "#,
        a.serve.incremental_planning,
        a.serve.dispatch.as_str(),
    );
    json::write_f64(&mut out, a.duration.as_secs_f64());
    out.push_str("},\n  \"load\": ");
    out.push_str(&summary.to_json());
    let _ = write!(
        out,
        concat!(
            ",\n  \"server\": {{\"shed\": {}, \"max_degrade_level\": {}, ",
            "\"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}}, ",
            "\"plan_sources\": {{\"scratch\": {}, \"cached\": {}, \"incremental\": {}, ",
            "\"fallbacks\": {}}}"
        ),
        stats.shed,
        stats.max_degrade_level,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.plan_scratch,
        stats.plan_cached,
        stats.plan_incremental,
        stats.plan_fallbacks,
    );
    let _ = write!(
        out,
        r#", "dispatch": {{"dense": {}, "spmm": {}, "delta_skip": {}, "input_density": "#,
        stats.dispatch_dense, stats.dispatch_spmm, stats.dispatch_delta_skip,
    );
    json::write_f64(&mut out, stats.dispatch_density);
    out.push('}');
    let _ = write!(
        out,
        r#", "shards": {{"count": {}, "cross_seal_edges": {}, "routed": ["#,
        stats.shard_routed.len(),
        stats.cross_shard_edges,
    );
    for (i, n) in stats.shard_routed.iter().enumerate() {
        let _ = write!(out, "{}{n}", if i > 0 { ", " } else { "" });
    }
    out.push_str("]}");
    // Plan work done per window (maintainer seal or scratch build; cache
    // hits do no plan work and record nothing).
    if let Some(h) = plan_build_us {
        let _ = write!(
            out,
            r#", "plan_build_us": {{"count": {}, "p50": {}, "p95": {}, "p99": {}, "max": {}}}"#,
            h.count(),
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            h.max(),
        );
    }
    out.push_str("}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagnn_models::ModelKind;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_defaults_to_tiny_graph_and_matching_universe() {
        let a = parse(&args(&[]), 10.0).unwrap();
        assert_eq!(a.dataset, "tiny");
        assert_eq!(a.serve.universe, a.graph.num_vertices);
        assert_eq!(a.serve.feature_dim, a.graph.feature_dim);
        assert_eq!(a.duration, Duration::from_secs(10));
        assert_eq!(a.out, None, "out defaults per subcommand");
    }

    #[test]
    fn parse_threads_flags_through() {
        let a = parse(
            &args(&[
                "--dataset",
                "GT",
                "--snapshots",
                "6",
                "--window",
                "3",
                "--model",
                "gclstm",
                "--shards",
                "3",
                "--shard-assignment",
                "degree",
                "--wire",
                "json",
                "--shards-list",
                "1, 2,4",
                "--rate",
                "50",
                "--duration-s",
                "0.5",
                "--out",
                "/tmp/x.json",
            ]),
            10.0,
        )
        .unwrap();
        assert_eq!(a.graph.num_snapshots, 6);
        assert_eq!(a.serve.window, 3);
        assert_eq!(a.serve.model, ModelKind::GcLstm);
        assert_eq!(a.serve.shards, 3);
        assert_eq!(a.serve.shard_assignment, ShardAssignment::DegreeBalanced);
        assert_eq!(a.wire, WireFormat::Json);
        assert_eq!(a.shards_list, vec![1, 2, 4]);
        assert!((a.rate - 50.0).abs() < 1e-9);
        assert_eq!(a.out.as_deref(), Some("/tmp/x.json"));
    }

    #[test]
    fn parse_rejects_bad_wire_and_shard_spellings() {
        assert!(parse(&args(&["--wire", "carrier-pigeon"]), 10.0).is_err());
        assert!(parse(&args(&["--shard-assignment", "vibes"]), 10.0).is_err());
        assert!(parse(&args(&["--shards-list", "1,0,4"]), 10.0).is_err());
    }

    #[test]
    fn parse_rejects_unknown_flags() {
        assert!(parse(&args(&["--bogus", "1"]), 10.0).is_err());
    }

    #[test]
    fn serve_bench_report_is_valid_json() {
        let a = parse(&args(&[]), 10.0).unwrap();
        let mut summary = LoadgenSummary {
            requests: 4,
            replies: 4,
            shed: 0,
            errors: 0,
            events: 12,
            windows: 2,
            elapsed: Duration::from_millis(250),
            latency_us: tagnn_obs::Histogram::new(),
        };
        summary.latency_us.record(120);
        summary.latency_us.record(480);
        let stats = tagnn_serve::wire::StatsView {
            max_degrade_level: 1,
            cache_hits: 7,
            cache_misses: 2,
            plan_scratch: 1,
            plan_cached: 7,
            plan_incremental: 12,
            plan_fallbacks: 1,
            dispatch_dense: 20,
            dispatch_spmm: 6,
            dispatch_delta_skip: 15,
            dispatch_density: 0.5,
            shard_routed: vec![5, 9],
            cross_shard_edges: 3,
            ..Default::default()
        };
        let mut build = tagnn_obs::Histogram::new();
        build.record(40);
        build.record(90);
        let report = render_report(&a, &summary, &stats, Some(&build));
        let doc = json::parse(&report).expect("report must parse");
        assert_eq!(
            doc.get("bench").and_then(json::Value::as_str),
            Some("serve")
        );
        assert_eq!(
            doc.get("config")
                .and_then(|c| c.get("vertices"))
                .and_then(json::Value::as_u64),
            Some(a.graph.num_vertices as u64)
        );
        assert_eq!(
            doc.get("config")
                .and_then(|c| c.get("incremental_planning"))
                .and_then(json::Value::as_bool),
            Some(true)
        );
        assert_eq!(
            doc.get("load")
                .and_then(|l| l.get("replies"))
                .and_then(json::Value::as_u64),
            Some(4)
        );
        assert_eq!(
            doc.get("server")
                .and_then(|s| s.get("max_degrade_level"))
                .and_then(json::Value::as_u64),
            Some(1)
        );
        let sources = doc
            .get("server")
            .and_then(|s| s.get("plan_sources"))
            .unwrap();
        assert_eq!(
            sources.get("incremental").and_then(json::Value::as_u64),
            Some(12)
        );
        assert_eq!(
            sources.get("fallbacks").and_then(json::Value::as_u64),
            Some(1)
        );
        let dispatch = doc.get("server").and_then(|s| s.get("dispatch")).unwrap();
        assert_eq!(
            dispatch.get("dense").and_then(json::Value::as_u64),
            Some(20)
        );
        assert_eq!(dispatch.get("spmm").and_then(json::Value::as_u64), Some(6));
        assert_eq!(
            dispatch.get("delta_skip").and_then(json::Value::as_u64),
            Some(15)
        );
        assert_eq!(
            dispatch.get("input_density").and_then(json::Value::as_f64),
            Some(0.5)
        );
        assert_eq!(
            doc.get("config")
                .and_then(|c| c.get("dispatch"))
                .and_then(json::Value::as_str),
            Some("auto"),
            "auto is the default mode"
        );
        let shards = doc.get("server").and_then(|s| s.get("shards")).unwrap();
        assert_eq!(shards.get("count").and_then(json::Value::as_u64), Some(2));
        assert_eq!(
            shards.get("cross_seal_edges").and_then(json::Value::as_u64),
            Some(3)
        );
        assert_eq!(
            shards
                .get("routed")
                .and_then(json::Value::as_array)
                .map(|a| a.len()),
            Some(2)
        );
        let build = doc
            .get("server")
            .and_then(|s| s.get("plan_build_us"))
            .unwrap();
        assert_eq!(build.get("count").and_then(json::Value::as_u64), Some(2));
        // Without a histogram the key is simply absent, still valid JSON.
        let report = render_report(&a, &summary, &stats, None);
        let doc = json::parse(&report).expect("report must parse");
        assert!(doc
            .get("server")
            .and_then(|s| s.get("plan_build_us"))
            .is_none());
    }

    #[test]
    fn parse_threads_incremental_flags() {
        let a = parse(&args(&[]), 10.0).unwrap();
        assert!(a.serve.incremental_planning, "on by default");
        assert!((a.max_fallback_rate - 0.05).abs() < 1e-9);
        let a = parse(
            &args(&["--incremental", "0", "--max-fallback-rate", "0.2"]),
            10.0,
        )
        .unwrap();
        assert!(!a.serve.incremental_planning);
        assert!((a.max_fallback_rate - 0.2).abs() < 1e-9);
    }

    #[test]
    fn fallback_rate_threshold_fails_loudly() {
        let mut stats = tagnn_serve::wire::StatsView {
            plan_incremental: 95,
            plan_fallbacks: 5,
            ..Default::default()
        };
        assert!(check_fallback_rate(&stats, 0.05).is_ok(), "5% at threshold");
        stats.plan_fallbacks = 6;
        let err = check_fallback_rate(&stats, 0.05).unwrap_err();
        assert!(err.contains("max-fallback-rate"), "got: {err}");
        // Disabled or idle servers never trip the check.
        assert!(check_fallback_rate(&tagnn_serve::wire::StatsView::default(), 0.0).is_ok());
    }

    /// End-to-end: the bench harness boots a real server, drives it, and
    /// writes a parseable report.
    #[test]
    fn serve_bench_end_to_end_smoke() {
        let out = std::env::temp_dir().join("tagnn_serve_bench_smoke.json");
        let out_s = out.to_string_lossy().to_string();
        run_serve_bench(&args(&[
            "--connections",
            "2",
            "--duration-s",
            "0.4",
            "--snapshots",
            "4",
            "--out",
            &out_s,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let doc = json::parse(&text).unwrap();
        let replies = doc
            .get("load")
            .and_then(|l| l.get("replies"))
            .and_then(json::Value::as_u64)
            .unwrap();
        assert!(replies > 0, "smoke run must complete requests");
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn parse_resolves_sparse_dataset_and_overlap_flags() {
        let a = parse(&args(&["--dataset", "sparse"]), 10.0).unwrap();
        assert_eq!(a.graph.num_vertices, 512);
        assert!(a.graph.feature_row_sparsity > 0.0);
        assert_eq!(a.serve.universe, a.graph.num_vertices);
        assert!(!a.serve.overlap, "overlap is opt-in");
        let a = parse(
            &args(&["--dataset", "SP", "--overlap", "1", "--lookahead", "2"]),
            10.0,
        )
        .unwrap();
        assert!(a.graph.feature_row_sparsity > 0.0);
        assert!(a.serve.overlap);
        assert_eq!(a.serve.lookahead, 2);
    }

    /// The dispatch A/B is only meaningful when the auto arm actually
    /// takes the SpMM path sometimes; the sparse default guarantees it.
    #[test]
    fn serve_ab_sparse_default_counts_spmm_decisions() {
        let out = std::env::temp_dir().join("tagnn_serve_ab_sparse.json");
        let out_s = out.to_string_lossy().to_string();
        run_serve_ab(&args(&[
            "--connections",
            "1",
            "--duration-s",
            "0.4",
            "--snapshots",
            "4",
            "--window",
            "2",
            "--out",
            &out_s,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("config")
                .and_then(|c| c.get("dataset"))
                .and_then(json::Value::as_str),
            Some("sparse")
        );
        let runs = doc.get("runs").and_then(json::Value::as_array).unwrap();
        let auto = runs
            .iter()
            .find(|r| r.get("dispatch").and_then(json::Value::as_str) == Some("auto"))
            .unwrap();
        let decisions = auto.get("decisions").unwrap();
        let spmm = decisions.get("spmm").and_then(json::Value::as_u64).unwrap();
        assert!(spmm > 0, "sparse preset must flip auto dispatch to SpMM");
        let density = decisions
            .get("input_density")
            .and_then(json::Value::as_f64)
            .unwrap();
        assert!(
            density < 0.5,
            "measured input density {density} should reflect the sparse rows"
        );
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn parse_threads_dispatch_flag() {
        let a = parse(&args(&[]), 10.0).unwrap();
        assert_eq!(a.serve.dispatch, DispatchMode::Auto, "auto by default");
        let a = parse(&args(&["--dispatch", "dense"]), 10.0).unwrap();
        assert_eq!(a.serve.dispatch, DispatchMode::Dense);
        assert!(parse(&args(&["--dispatch", "vibes"]), 10.0).is_err());
    }

    /// End-to-end: serve-ab runs both dispatch modes, enforces
    /// bit-identity between them, and writes both rows with their
    /// per-run dispatch-decision counts.
    #[test]
    fn serve_ab_end_to_end_smoke() {
        let out = std::env::temp_dir().join("tagnn_serve_ab_smoke.json");
        let out_s = out.to_string_lossy().to_string();
        run_serve_ab(&args(&[
            "--dataset",
            "tiny",
            "--connections",
            "1",
            "--duration-s",
            "0.3",
            "--snapshots",
            "4",
            "--window",
            "2",
            "--out",
            &out_s,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let doc = json::parse(&text).unwrap();
        let runs = doc.get("runs").and_then(json::Value::as_array).unwrap();
        assert_eq!(runs.len(), 2, "one row per dispatch mode");
        let modes: Vec<_> = runs
            .iter()
            .map(|r| r.get("dispatch").and_then(json::Value::as_str).unwrap())
            .collect();
        assert_eq!(modes, vec!["auto", "dense"]);
        for row in runs {
            assert_eq!(
                row.get("digest_check").and_then(json::Value::as_str),
                Some("ok")
            );
            let decisions = row.get("decisions").unwrap();
            let dense = decisions
                .get("dense")
                .and_then(json::Value::as_u64)
                .unwrap();
            let spmm = decisions.get("spmm").and_then(json::Value::as_u64).unwrap();
            if row.get("dispatch").and_then(json::Value::as_str) == Some("auto") {
                assert!(dense + spmm > 0, "auto run must tally its decisions");
            } else {
                assert_eq!(spmm, 0, "dense mode never SpMMs");
            }
        }
        let _ = std::fs::remove_file(&out);
    }

    /// End-to-end: serve-scale sweeps shard counts, enforces digest
    /// bit-identity, and writes a parseable curve.
    #[test]
    fn serve_scale_end_to_end_smoke() {
        let out = std::env::temp_dir().join("tagnn_serve_scale_smoke.json");
        let out_s = out.to_string_lossy().to_string();
        run_serve_scale(&args(&[
            "--shards-list",
            "1,2",
            "--connections",
            "1",
            "--duration-s",
            "0.3",
            "--snapshots",
            "4",
            "--window",
            "2",
            "--out",
            &out_s,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let doc = json::parse(&text).unwrap();
        let curve = doc.get("curve").and_then(json::Value::as_array).unwrap();
        assert_eq!(curve.len(), 2);
        for row in curve {
            assert_eq!(
                row.get("digest_check").and_then(json::Value::as_str),
                Some("ok")
            );
            assert!(
                row.get("replies").and_then(json::Value::as_u64).unwrap() > 0,
                "each shard count must serve load"
            );
        }
        assert!(
            doc.get("host")
                .and_then(|h| h.get("cpus"))
                .and_then(json::Value::as_u64)
                .unwrap()
                >= 1,
            "host metadata keeps the scaling numbers honest"
        );
        let _ = std::fs::remove_file(&out);
    }
}
