//! `experiments crash-bench` / `crash-child`: the fault-injection
//! harness behind `BENCH_10.json`.
//!
//! The parent (`crash-bench`) spawns the current executable as
//! `crash-child` processes with `TAGNN_CRASH_AT` set, so each child is
//! hard-killed (`std::process::abort`, no destructors, no flushes) at a
//! randomized durability-critical instant — mid group-commit fsync, mid
//! WAL append (torn record), between checkpoint temp-write and rename,
//! or between rename and prune. A final child without injection recovers
//! and finishes the trace. The differential: the union of every window
//! digest the children emitted must be bit-identical to an uninterrupted
//! run — same `(stream, seq) → digest` map, no extras, no gaps, no
//! conflicting re-serves. `TAGNN_COST_MODEL` is pinned in every child so
//! plan choices cannot drift between processes.
//!
//! The report also carries the price of durability: trace wall-clock
//! with durability off vs on, and a checkpoint-cadence ablation.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use tagnn_graph::generate::GeneratorConfig;
use tagnn_models::ModelKind;
use tagnn_serve::event::events_from_graph;
use tagnn_serve::{DurabilityConfig, EdgeEvent, InferRequest, ServeConfig, ServeCore};

use crate::cli::{num, parse_flags};

/// Cost-model coefficients pinned into every child process (and the
/// in-process overhead runs) so kernel/plan choices are identical across
/// process boundaries — a prerequisite for bit-identity differentials.
const PINNED_COST_MODEL: &str = "0.25,0.25,16.0,1.0";

/// The durability-critical injection points the harness samples, with
/// the countdown range each one draws from.
const KILL_POINTS: [(&str, u64); 4] = [
    ("wal_fsync", 2), // mid group-commit: acknowledged-but-unsynced tail
    ("wal_torn", 6),  // mid append: torn record for recovery to truncate
    ("ckpt_tmp", 2),  // after tmp write, before rename
    ("ckpt_done", 2), // after rename, before prune
];

/// SplitMix64: deterministic kill-point sampling from `--seed`.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

struct TraceSpec {
    graph: GeneratorConfig,
    model: ModelKind,
    shards: usize,
    window: usize,
    hidden: usize,
    group_commit: usize,
    checkpoint_every: u64,
}

impl TraceSpec {
    fn serve_config(&self, dir: Option<&Path>) -> ServeConfig {
        ServeConfig {
            universe: self.graph.num_vertices,
            feature_dim: self.graph.feature_dim,
            window: self.window,
            model: self.model,
            hidden: self.hidden,
            shards: self.shards,
            // Digests must be load-independent across children, so the
            // backlog-driven skip-band widening stays off.
            degradation: tagnn_serve::DegradationPolicy::disabled(),
            durability: dir.map(|d| {
                let mut cfg = DurabilityConfig::new(d.to_path_buf());
                cfg.group_commit = self.group_commit;
                cfg.checkpoint_every_windows = self.checkpoint_every;
                cfg
            }),
            ..ServeConfig::default()
        }
    }

    /// Per-stream request groups: every stream (one per shard) replays
    /// the canonical trace; each group seals exactly one snapshot.
    fn request_groups(&self) -> Vec<Vec<InferRequest>> {
        let g = self.graph.generate();
        let groups = events_from_graph(&g);
        let last = groups.len() - 1;
        let streams = self.shards as u64;
        groups
            .into_iter()
            .enumerate()
            .map(|(i, events)| {
                (0..streams)
                    .map(|stream| InferRequest {
                        stream,
                        events: events.clone(),
                        flush: i == last,
                    })
                    .collect()
            })
            .collect()
    }
}

fn model_spelling(m: ModelKind) -> &'static str {
    match m {
        ModelKind::CdGcn => "cdgcn",
        ModelKind::GcLstm => "gclstm",
        ModelKind::TGcn => "tgcn",
    }
}

/// `experiments crash-child`: serve the spec'd trace with durability on,
/// resuming from whatever the durability directory already holds, and
/// print every served window digest. Killed mid-run by `TAGNN_CRASH_AT`
/// when the parent injected a fault; runs to `DONE` otherwise.
pub fn run_crash_child(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let model = crate::cli::model_of(&flags)?;
    let dir = PathBuf::from(
        flags
            .get("durable-dir")
            .ok_or("crash-child requires --durable-dir")?,
    );
    let mut graph = GeneratorConfig::tiny();
    graph.num_snapshots = num(&flags, "snapshots", 8)?;
    graph.seed = num(&flags, "seed", graph.seed)?;
    let spec = TraceSpec {
        graph,
        model,
        shards: num(&flags, "shards", 2)?,
        window: num(&flags, "window", 3)?,
        hidden: num(&flags, "hidden", 8)?,
        group_commit: num(&flags, "group-commit", 4)?,
        checkpoint_every: num(&flags, "checkpoint-every", 2)?,
    };

    let core = ServeCore::start(spec.serve_config(Some(&dir)));
    let report = core
        .recovery_report()
        .ok_or("durability must be on in crash-child")?
        .clone();
    println!(
        "REPORT ckpt={} replayed_requests={} replayed_events={} truncated={}",
        report
            .checkpoint_seq
            .map_or(-1i64, |s| i64::try_from(s).unwrap_or(i64::MAX)),
        report.replayed_requests,
        report.replayed_events,
        report.truncated_tail_bytes,
    );
    // Windows re-served by WAL replay never reached a client — their
    // digests only surface through the recovery report, and the
    // differential needs them to prove re-served bits match the
    // original serve.
    for w in &report.replayed_windows {
        println!("W {} {} {}", w.stream, w.seq, w.digest);
    }
    // Continue each stream from its recovered cursor. The WAL logs whole
    // requests, so recovery always lands on a group boundary: a stream's
    // resumed tick count equals the ticks of some prefix of its groups.
    let resume: HashMap<u64, u64> = report.resume_ticks.iter().copied().collect();
    let mut cursor: HashMap<u64, u64> = HashMap::new();
    for group in spec.request_groups() {
        for req in group {
            let ticks = req
                .events
                .iter()
                .filter(|e| matches!(e, EdgeEvent::Tick))
                .count() as u64;
            let pos = cursor.entry(req.stream).or_insert(0);
            let start = *pos;
            *pos += ticks;
            if start + ticks <= resume.get(&req.stream).copied().unwrap_or(0) {
                continue; // already applied before the crash
            }
            let reply = core
                .submit(req)
                .map_err(|e| format!("submit: {e}"))?
                .wait()
                .map_err(|e| format!("serve: {e}"))?;
            for w in reply.windows {
                println!("W {} {} {}", w.stream, w.seq, w.digest);
            }
        }
    }
    let d = core.durable_stats();
    println!(
        "DONE wal_appends={} wal_fsyncs={} checkpoints={}",
        d.wal_appends, d.wal_fsyncs, d.checkpoints_written
    );
    core.shutdown();
    Ok(())
}

/// `experiments crash-bench`: the kill-and-recover differential plus the
/// durability-overhead rows, written to `--out` (default BENCH_10.json).
pub fn run_crash_bench(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    for key in flags.keys() {
        const KNOWN: [&str; 5] = ["out", "smoke", "kills", "seed", "snapshots"];
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!("unknown flag --{key}"));
        }
    }
    let smoke = flags.contains_key("smoke");
    let kills: usize = num(&flags, "kills", 3)?;
    let seed: u64 = num(&flags, "seed", 1)?;
    let snapshots: usize = num(&flags, "snapshots", 8)?;
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_10.json".to_string());

    let models: &[ModelKind] = if smoke {
        &[ModelKind::TGcn]
    } else {
        &ModelKind::ALL
    };
    let shard_counts: &[usize] = if smoke { &[2] } else { &[1, 2, 4] };

    let mut rng = SplitMix(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    let mut diff_rows = String::new();
    let mut combos = 0usize;
    for &model in models {
        for &shards in shard_counts {
            let mut graph = GeneratorConfig::tiny();
            graph.num_snapshots = snapshots;
            graph.seed = seed;
            let spec = TraceSpec {
                graph,
                model,
                shards,
                window: 3,
                hidden: 8,
                group_commit: 4,
                checkpoint_every: 2,
            };
            let row = differential(&spec, kills, &mut rng)?;
            if combos > 0 {
                diff_rows.push_str(",\n");
            }
            combos += 1;
            let _ = write!(
                diff_rows,
                concat!(
                    r#"    {{"model": "{}", "shards": {}, "kills": [{}], "#,
                    r#""child_runs": {}, "windows": {}, "bit_identical": true}}"#
                ),
                model.name(),
                shards,
                row.kills.join(", "),
                row.child_runs,
                row.windows,
            );
            println!(
                "crash-bench: {} shards={} — {} windows bit-identical across {} kills",
                model.name(),
                shards,
                row.windows,
                row.kills.len()
            );
        }
    }

    // Durability price: wall-clock with durability off, on at the
    // default cadence, and a cadence ablation — all in-process (no
    // cross-process digest comparison, so no cost-model pinning needed).
    let mut overhead_rows = String::new();
    let cadences: &[(&str, Option<u64>)] = if smoke {
        &[("off", None), ("every_2", Some(2))]
    } else {
        &[
            ("off", None),
            ("every_1", Some(1)),
            ("every_2", Some(2)),
            ("every_8", Some(8)),
            ("every_64", Some(64)),
        ]
    };
    for (i, (label, cadence)) in cadences.iter().enumerate() {
        let mut graph = GeneratorConfig::tiny();
        graph.num_snapshots = snapshots;
        graph.seed = seed;
        let spec = TraceSpec {
            graph,
            model: ModelKind::TGcn,
            shards: 2,
            window: 3,
            hidden: 8,
            group_commit: 4,
            checkpoint_every: cadence.unwrap_or(2),
        };
        let row = overhead_run(&spec, cadence.is_some())?;
        if i > 0 {
            overhead_rows.push_str(",\n");
        }
        let _ = write!(
            overhead_rows,
            concat!(
                r#"    {{"durability": "{}", "wall_us": {}, "wal_appends": {}, "#,
                r#""wal_fsyncs": {}, "checkpoints": {}}}"#
            ),
            label, row.wall_us, row.wal_appends, row.wal_fsyncs, row.checkpoints
        );
        println!(
            "crash-bench: durability={label} wall={}us wal_appends={} fsyncs={} checkpoints={}",
            row.wall_us, row.wal_appends, row.wal_fsyncs, row.checkpoints
        );
    }

    let mut report = String::with_capacity(2048);
    let _ = write!(
        report,
        concat!(
            "{{\n  \"bench\": \"crash\",\n",
            "  \"config\": {{\"snapshots\": {}, \"seed\": {}, \"kills_per_combo\": {}, ",
            "\"smoke\": {}, \"cost_model\": \"{}\"}},\n",
            "  \"note\": \"differential: union of child window digests across randomized ",
            "hard kills equals an uninterrupted run bit for bit\",\n",
            "  \"differential\": [\n{}\n  ],\n",
            "  \"overhead\": [\n{}\n  ]\n}}\n"
        ),
        snapshots, seed, kills, smoke, PINNED_COST_MODEL, diff_rows, overhead_rows
    );
    std::fs::write(&out, &report).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("report written to {out}");
    Ok(())
}

struct DiffRow {
    kills: Vec<String>,
    child_runs: usize,
    windows: usize,
}

struct OverheadRow {
    wall_us: u64,
    wal_appends: u64,
    wal_fsyncs: u64,
    checkpoints: u64,
}

/// A scratch directory for one differential, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Result<Self, String> {
        let dir = std::env::temp_dir().join(format!(
            "tagnn-crash-{}-{}",
            std::process::id(),
            tag.replace(['/', ' '], "_")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        Ok(Scratch(dir))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn child_command(spec: &TraceSpec, dir: &Path, crash_at: Option<&str>) -> Result<Command, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg("crash-child")
        .arg("--durable-dir")
        .arg(dir)
        .args(["--model", model_spelling(spec.model)])
        .args(["--shards", &spec.shards.to_string()])
        .args(["--snapshots", &spec.graph.num_snapshots.to_string()])
        .args(["--seed", &spec.graph.seed.to_string()])
        .args(["--window", &spec.window.to_string()])
        .args(["--hidden", &spec.hidden.to_string()])
        .args(["--group-commit", &spec.group_commit.to_string()])
        .args(["--checkpoint-every", &spec.checkpoint_every.to_string()])
        .env("TAGNN_COST_MODEL", PINNED_COST_MODEL)
        .env_remove("TAGNN_CRASH_AT");
    if let Some(at) = crash_at {
        cmd.env("TAGNN_CRASH_AT", at);
    }
    Ok(cmd)
}

/// Runs one child, merging its `W stream seq digest` lines into
/// `digests`. A window re-served after recovery must re-serve the SAME
/// bits — a conflicting digest fails the differential immediately.
fn run_child_into(
    spec: &TraceSpec,
    dir: &Path,
    crash_at: Option<&str>,
    digests: &mut HashMap<(u64, u64), u64>,
) -> Result<bool, String> {
    let output = child_command(spec, dir, crash_at)?
        .output()
        .map_err(|e| format!("spawn crash-child: {e}"))?;
    let stdout = String::from_utf8_lossy(&output.stdout);
    let mut finished = false;
    for line in stdout.lines() {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("W") => {
                let stream: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("bad W line: {line}"))?;
                let seq: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("bad W line: {line}"))?;
                let digest: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("bad W line: {line}"))?;
                if let Some(old) = digests.insert((stream, seq), digest) {
                    if old != digest {
                        return Err(format!(
                            "window (stream {stream}, seq {seq}) re-served with different bits: \
                             {old:#x} then {digest:#x} (kill {crash_at:?})"
                        ));
                    }
                }
            }
            Some("DONE") => finished = true,
            _ => {}
        }
    }
    if crash_at.is_none() && !finished {
        return Err(format!(
            "uninjected crash-child died (status {:?}): {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok(finished)
}

fn differential(spec: &TraceSpec, kills: usize, rng: &mut SplitMix) -> Result<DiffRow, String> {
    let tag = format!("{}-{}", model_spelling(spec.model), spec.shards);
    // Uninterrupted baseline: one clean child in its own directory.
    let base_dir = Scratch::new(&format!("base-{tag}"))?;
    let mut baseline = HashMap::new();
    run_child_into(spec, &base_dir.0, None, &mut baseline)?;

    // Kill sequence: `kills` children with randomized injection points
    // sharing one durability directory, then a clean child to finish.
    let dir = Scratch::new(&format!("kill-{tag}"))?;
    let mut merged = HashMap::new();
    let mut specs = Vec::new();
    let mut runs = 0usize;
    let mut crashed = 0usize;
    for _ in 0..kills {
        let (point, range) = KILL_POINTS[rng.below(KILL_POINTS.len() as u64) as usize];
        let at = format!("{point}:{}", 1 + rng.below(range));
        let finished = run_child_into(spec, &dir.0, Some(&at), &mut merged)?;
        runs += 1;
        crashed += usize::from(!finished);
        specs.push(format!(
            "\"{at}{}\"",
            if finished { " (ran through)" } else { "" }
        ));
    }
    run_child_into(spec, &dir.0, None, &mut merged)?;
    runs += 1;
    if crashed == 0 {
        // A countdown that never fires yields a clean run — valid, but if
        // every draw missed, the differential would be vacuous. Rerun the
        // trace in a fresh directory with a kill on the very first WAL
        // append (guaranteed to fire), then recover and finish it; the
        // digests merge into the same differential.
        let forced = Scratch::new(&format!("forced-{tag}"))?;
        let finished = run_child_into(spec, &forced.0, Some("wal_torn:1"), &mut merged)?;
        assert!(!finished, "wal_torn:1 must kill the child");
        run_child_into(spec, &forced.0, None, &mut merged)?;
        runs += 2;
        specs.push("\"wal_torn:1 (forced)\"".to_string());
    }

    if merged != baseline {
        let missing = baseline.keys().filter(|k| !merged.contains_key(k)).count();
        let extra = merged.keys().filter(|k| !baseline.contains_key(k)).count();
        let diverged = baseline
            .iter()
            .filter(|(k, v)| merged.get(k).is_some_and(|m| m != *v))
            .count();
        return Err(format!(
            "kill-and-recover differential failed for {} shards={}: \
             {missing} missing, {extra} extra, {diverged} diverged of {} windows",
            spec.model.name(),
            spec.shards,
            baseline.len()
        ));
    }
    Ok(DiffRow {
        kills: specs,
        child_runs: runs,
        windows: baseline.len(),
    })
}

fn overhead_run(spec: &TraceSpec, durable: bool) -> Result<OverheadRow, String> {
    let dir = if durable {
        Some(Scratch::new(&format!("ovh-{}", spec.checkpoint_every))?)
    } else {
        None
    };
    let core = ServeCore::start(spec.serve_config(dir.as_ref().map(|d| d.0.as_path())));
    let t0 = Instant::now();
    for group in spec.request_groups() {
        for req in group {
            core.submit(req)
                .map_err(|e| format!("submit: {e}"))?
                .wait()
                .map_err(|e| format!("serve: {e}"))?;
        }
    }
    let wall_us = t0.elapsed().as_micros() as u64;
    let d = core.durable_stats();
    core.shutdown();
    Ok(OverheadRow {
        wall_us,
        wal_appends: d.wal_appends,
        wal_fsyncs: d.wal_fsyncs,
        checkpoints: d.checkpoints_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let mut a = SplitMix(42);
        let mut b = SplitMix(42);
        for _ in 0..100 {
            let x = a.below(7);
            assert_eq!(x, b.below(7));
            assert!(x < 7);
        }
    }

    #[test]
    fn crash_bench_rejects_unknown_flags() {
        let args = vec!["--bogus".to_string(), "1".to_string()];
        let err = run_crash_bench(&args).unwrap_err();
        assert!(err.contains("unknown flag"), "got: {err}");
    }

    #[test]
    fn overhead_run_counts_wal_work_only_when_durable() {
        let mut graph = GeneratorConfig::tiny();
        graph.num_snapshots = 4;
        let spec = TraceSpec {
            graph,
            model: ModelKind::TGcn,
            shards: 1,
            window: 2,
            hidden: 6,
            group_commit: 2,
            checkpoint_every: 1,
        };
        let off = overhead_run(&spec, false).expect("durability off");
        assert_eq!(off.wal_appends, 0);
        let on = overhead_run(&spec, true).expect("durability on");
        assert!(on.wal_appends > 0, "durable run must log requests");
        assert!(on.checkpoints > 0, "cadence 1 must cut checkpoints");
    }
}
