//! Command-line front end for the TaGNN library.
//!
//! ```text
//! tagnn-cli run      --dataset GT [--model tgcn] [--snapshots 8] [--window 4]
//!                    [--hidden 32] [--scale 0.05] [--seed 214] [--no-skip]
//!                    [--reuse exact|paper] [--file edges.txt]
//! tagnn-cli simulate <run options> [--dcus 16] [--macs 4096]
//!                    [--no-oadl] [--no-adsc] [--round-robin]
//! tagnn-cli info     --dataset GT [--snapshots 8] [--scale 0.05]
//! tagnn-cli export   --dataset GT --out edges.txt [--snapshots 8]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use tagnn::prelude::*;
use tagnn_bench::cli::{dataset_of, model_of, num, parse_flags};
use tagnn_graph::stats::{degree_stats, unaffected_ratio};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tagnn-cli <run|simulate|info|export> [--dataset HP|GT|ML|EP|FK] \
         [--model cdgcn|gclstm|tgcn] [--snapshots N] [--window K] [--hidden H] \
         [--scale F] [--seed N] [--no-skip] [--reuse exact|paper] [--file edges.txt] \
         [--dcus N] [--macs N] [--no-oadl] [--no-adsc] [--round-robin] [--out PATH]"
    );
    ExitCode::FAILURE
}

fn build_pipeline(flags: &HashMap<String, String>) -> Result<TagnnPipeline, String> {
    let snapshots: usize = num(flags, "snapshots", 8)?;
    let window: usize = num(flags, "window", 4)?;
    let hidden: usize = num(flags, "hidden", 32)?;
    let seed: u64 = num(flags, "seed", 0xD6)?;
    let skip = if flags.contains_key("no-skip") {
        SkipConfig::disabled()
    } else {
        SkipConfig::paper_default()
    };
    let reuse = match flags.get("reuse").map(String::as_str).unwrap_or("paper") {
        "exact" => ReuseMode::Exact,
        "paper" => ReuseMode::PaperWindow,
        other => return Err(format!("unknown reuse mode `{other}` (use exact|paper)")),
    };

    let mut builder = TagnnPipeline::builder()
        .model(model_of(flags)?)
        .snapshots(snapshots)
        .window(window)
        .hidden(hidden)
        .seed(seed)
        .skip(skip)
        .reuse(reuse);

    if let Some(path) = flags.get("file") {
        let feature_dim: usize = num(flags, "dim", 32)?;
        let graph =
            tagnn_graph::io::load_temporal_edge_list(path, snapshots, window, feature_dim, seed)
                .map_err(|e| format!("loading {path}: {e}"))?;
        return Ok(TagnnPipeline::from_graph(
            graph,
            path,
            model_of(flags)?,
            hidden,
            window,
            skip,
            reuse,
            seed,
        ));
    }

    builder = builder
        .dataset(dataset_of(flags)?)
        .scale(num(flags, "scale", 0.05)?);
    Ok(builder.build())
}

fn print_run_summary(
    reference: &tagnn_models::InferenceOutput,
    concurrent: &tagnn_models::InferenceOutput,
) {
    let r = &reference.stats;
    let c = &concurrent.stats;
    println!("snapshots processed: {}", reference.final_features.len());
    println!(
        "feature rows loaded : {} -> {} ({:.1}% saved)",
        r.feature_rows_loaded,
        c.feature_rows_loaded,
        100.0 * (1.0 - c.feature_rows_loaded as f64 / r.feature_rows_loaded.max(1) as f64)
    );
    println!(
        "total MACs          : {} -> {} ({:.1}% saved)",
        r.total_macs(),
        c.total_macs(),
        100.0 * (1.0 - c.total_macs() as f64 / r.total_macs().max(1) as f64)
    );
    println!(
        "cell updates        : {} full / {} delta / {} skipped (skip ratio {:.1}%)",
        c.skip.normal,
        c.skip.delta,
        c.skip.skipped,
        100.0 * c.skip.skip_ratio()
    );
    println!(
        "max |H_ref - H_conc|: {:.5}",
        reference.max_final_feature_diff(concurrent)
    );
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let p = build_pipeline(flags)?;
    println!(
        "dataset {} | {} vertices, {} edges, {} snapshots, D={}",
        p.name(),
        p.graph().num_vertices(),
        p.graph().snapshot(0).num_edges(),
        p.graph().num_snapshots(),
        p.graph().feature_dim()
    );
    let reference = p.run_reference();
    let concurrent = p.run_concurrent();
    print_run_summary(&reference, &concurrent);
    Ok(())
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let p = build_pipeline(flags)?;
    let mut cfg = AcceleratorConfig::tagnn_default();
    if let Some(d) = flags.get("dcus") {
        cfg = cfg.with_dcus(d.parse().map_err(|_| "--dcus: bad value".to_string())?);
    }
    if let Some(m) = flags.get("macs") {
        cfg = cfg.with_macs(m.parse().map_err(|_| "--macs: bad value".to_string())?);
    }
    if flags.contains_key("no-oadl") {
        cfg = cfg.without_oadl();
    }
    if flags.contains_key("no-adsc") {
        cfg = cfg.without_adsc();
    }
    if flags.contains_key("round-robin") {
        cfg = cfg.without_balanced_dispatch();
    }
    let r = p.simulate(&cfg);
    println!("configuration : {}", r.name);
    println!("cycles        : {}", r.cycles);
    println!("time          : {:.4} ms", r.time_ms);
    println!("DRAM traffic  : {:.3} MB", r.dram.total() as f64 / 1e6);
    println!("energy        : {:.3} mJ", r.energy_mj);
    println!("DCU util      : {:.1}%", 100.0 * r.dispatch_utilization);
    println!(
        "breakdown     : msdl={} agg={} comb={} rnn={} arnn={} dram={}",
        r.breakdown.msdl,
        r.breakdown.aggregation,
        r.breakdown.combination,
        r.breakdown.rnn,
        r.breakdown.arnn,
        r.breakdown.dram
    );
    println!(
        "pipeline      : compute stalls={} cycles, memory idle={} cycles",
        r.compute_stall_cycles, r.memory_idle_cycles
    );
    Ok(())
}

fn cmd_info(flags: &HashMap<String, String>) -> Result<(), String> {
    let p = build_pipeline(flags)?;
    let g = p.graph();
    println!("dataset {}", p.name());
    println!("vertices      : {}", g.num_vertices());
    println!("feature dim   : {}", g.feature_dim());
    println!("snapshots     : {}", g.num_snapshots());
    for t in 0..g.num_snapshots().min(4) {
        let d = degree_stats(g.snapshot(t));
        println!(
            "  snapshot {t}: {} edges, mean degree {:.2}, max {}, isolated {}",
            g.snapshot(t).num_edges(),
            d.mean,
            d.max,
            d.isolated
        );
    }
    for k in [2usize, 3, 4] {
        println!(
            "unaffected ratio @ window {k}: {:.1}%",
            100.0 * unaffected_ratio(g, k)
        );
    }
    Ok(())
}

fn cmd_export(flags: &HashMap<String, String>) -> Result<(), String> {
    let p = build_pipeline(flags)?;
    let out = flags.get("out").ok_or("--out is required for export")?;
    let file = std::fs::File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
    let written =
        tagnn_graph::io::write_temporal_edge_list(p.graph(), std::io::BufWriter::new(file))
            .map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {written} edges to {out}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(&flags),
        "simulate" => cmd_simulate(&flags),
        "info" => cmd_info(&flags),
        "export" => cmd_export(&flags),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
