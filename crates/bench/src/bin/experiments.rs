//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [all | <id>... | bench-json PATH | serve ... | serve-bench ...
//!              | serve-scale ... | serve-ab ...] [--quick] [--json]
//!              [--trace PATH] [--threads N]
//!
//!   all             run every experiment (default)
//!   <id>            e.g. fig9, table5, fig14a
//!   bench-json PATH run the engine/kernel perf suite on the ML-scale
//!                   preset and write its JSON report to PATH
//!   serve           boot the tagnn-serve TCP frontend (binary wire by
//!                   default; --wire json for the JSON-lines debug mode;
//!                   --addr HOST:PORT, --dataset, --window, --shards,
//!                   --shard-assignment hash|degree, ...;
//!                   --duration-s 0 serves until killed)
//!   serve-bench     boot an in-process server on loopback, replay the
//!                   trace through the load generator, and write the
//!                   latency/throughput report (--out, default BENCH_5.json)
//!   serve-scale     sweep --shards-list (default 1,2,4,8): check served
//!                   digests are shard-count-invariant, measure each
//!                   point, write the curve (--out, default BENCH_7.json)
//!   serve-ab        A/B the sparsity-adaptive kernel dispatcher on the
//!                   sparse high-churn preset: run --dispatch auto vs
//!                   dense, check served digests are bit-identical, and
//!                   write both rows with their per-run dispatch-decision
//!                   counts (--out, default BENCH_8.json)
//!   overlap-bench   ablate the plan/execute overlap: time the engine
//!                   with plans built inline vs the pipelined executor
//!                   (--lookahead), check bit-identity, and write both
//!                   wall-clocks with the hidden-plan-time fraction
//!                   (--out, default BENCH_9.json; --smoke skips the
//!                   on-faster-than-off assertion)
//!   crash-bench     fault-injection differential for durable serving:
//!                   spawn crash-child processes hard-killed at
//!                   randomized WAL/checkpoint instants, recover, and
//!                   check the union of served window digests is
//!                   bit-identical to an uninterrupted run across
//!                   models x shard counts; also measures the
//!                   durability overhead and checkpoint-cadence
//!                   ablation (--kills, --seed, --smoke for a reduced
//!                   matrix; --out, default BENCH_10.json)
//!   crash-child     internal: one durable serving run used by
//!                   crash-bench (killed via TAGNN_CRASH_AT)
//!   --quick         reduced context (2 datasets, 1 model) for smoke runs
//!   --json          emit one JSON object per experiment instead of text tables
//!   --trace PATH    record a tagnn-obs trace of the whole run (spans per
//!                   pipeline stage plus every published counter) to PATH
//!                   as JSON, and print its summary table afterwards
//!   --threads N     pin the rayon pool to N workers (TAGNN_THREADS env
//!                   var is the fallback) for reproducible numbers
//! ```

use std::io::Write;
use std::sync::Arc;
use tagnn_obs::Recorder;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("serve") => {
            if let Err(e) = tagnn_bench::serve::run_serve(&raw[1..]) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            return;
        }
        Some("serve-bench") => {
            if let Err(e) = tagnn_bench::serve::run_serve_bench(&raw[1..]) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            return;
        }
        Some("serve-scale") => {
            if let Err(e) = tagnn_bench::serve::run_serve_scale(&raw[1..]) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            return;
        }
        Some("serve-ab") => {
            if let Err(e) = tagnn_bench::serve::run_serve_ab(&raw[1..]) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            return;
        }
        Some("overlap-bench") => {
            if let Err(e) = tagnn_bench::overlap::run_overlap_bench(&raw[1..]) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            return;
        }
        Some("crash-bench") => {
            if let Err(e) = tagnn_bench::crash::run_crash_bench(&raw[1..]) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            return;
        }
        Some("crash-child") => {
            if let Err(e) = tagnn_bench::crash::run_crash_child(&raw[1..]) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            return;
        }
        _ => {}
    }
    let mut opts = tagnn_bench::parse_args(raw.into_iter());
    let threads = tagnn_bench::init_thread_pool(opts.threads);
    if let Some(path) = &opts.bench_json {
        let mut params = tagnn_bench::perf::SuiteParams::ml_default();
        params.scale = opts.ctx.scale;
        params.hidden = opts.ctx.hidden;
        params.window = opts.ctx.window;
        params.snapshots = opts.ctx.snapshots;
        params.seed = opts.ctx.seed;
        let report = tagnn_bench::perf::run_suite(&params, threads);
        std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("error: cannot write report to {}: {e}", path.display());
            std::process::exit(1);
        });
        print!("{}", report.summary());
        println!("report written to {}", path.display());
        return;
    }
    let recorder = opts.trace.as_ref().map(|_| Arc::new(Recorder::new()));
    if let Some(rec) = &recorder {
        opts.ctx = opts.ctx.with_recorder(Arc::clone(rec));
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in &opts.ids {
        let result = tagnn::experiments::run(id, &opts.ctx);
        let rendered = tagnn_bench::render_results(std::slice::from_ref(&result), opts.json);
        writeln!(out, "{rendered}").expect("stdout");
    }
    if let (Some(path), Some(rec)) = (&opts.trace, &recorder) {
        let trace = rec.snapshot();
        std::fs::write(path, trace.to_json()).unwrap_or_else(|e| {
            eprintln!("error: cannot write trace to {}: {e}", path.display());
            std::process::exit(1);
        });
        writeln!(out, "\n{}", trace.summary()).expect("stdout");
        writeln!(out, "trace written to {}", path.display()).expect("stdout");
    }
}
