//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [all | <id>...] [--quick] [--json]
//!
//!   all       run every experiment (default)
//!   <id>      e.g. fig9, table5, fig14a
//!   --quick   reduced context (2 datasets, 1 model) for smoke runs
//!   --json    emit one JSON object per experiment instead of text tables
//! ```

use std::io::Write;

fn main() {
    let (ids, ctx, json) = tagnn_bench::parse_args(std::env::args().skip(1));
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in &ids {
        let result = tagnn::experiments::run(id, &ctx);
        let rendered = tagnn_bench::render_results(std::slice::from_ref(&result), json);
        writeln!(out, "{rendered}").expect("stdout");
    }
}
