//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [all | <id>...] [--quick] [--json] [--trace PATH]
//!
//!   all           run every experiment (default)
//!   <id>          e.g. fig9, table5, fig14a
//!   --quick       reduced context (2 datasets, 1 model) for smoke runs
//!   --json        emit one JSON object per experiment instead of text tables
//!   --trace PATH  record a tagnn-obs trace of the whole run (spans per
//!                 pipeline stage plus every published counter) to PATH
//!                 as JSON, and print its summary table afterwards
//! ```

use std::io::Write;
use std::sync::Arc;
use tagnn_obs::Recorder;

fn main() {
    let mut opts = tagnn_bench::parse_args(std::env::args().skip(1));
    let recorder = opts.trace.as_ref().map(|_| Arc::new(Recorder::new()));
    if let Some(rec) = &recorder {
        opts.ctx = opts.ctx.with_recorder(Arc::clone(rec));
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in &opts.ids {
        let result = tagnn::experiments::run(id, &opts.ctx);
        let rendered = tagnn_bench::render_results(std::slice::from_ref(&result), opts.json);
        writeln!(out, "{rendered}").expect("stdout");
    }
    if let (Some(path), Some(rec)) = (&opts.trace, &recorder) {
        let trace = rec.snapshot();
        std::fs::write(path, trace.to_json()).unwrap_or_else(|e| {
            eprintln!("error: cannot write trace to {}: {e}", path.display());
            std::process::exit(1);
        });
        writeln!(out, "\n{}", trace.summary()).expect("stdout");
        writeln!(out, "trace written to {}", path.display()).expect("stdout");
    }
}
