//! Benchmarks of the two inference engines — the snapshot-by-snapshot
//! reference versus the topology-aware concurrent engine with and without
//! cell skipping (the software-level Fig. 8 comparison).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tagnn_graph::{DatasetPreset, DynamicGraph};
use tagnn_models::{
    ConcurrentEngine, DgnnModel, ModelKind, ReferenceEngine, ReuseMode, SkipConfig,
};

fn setup() -> (DynamicGraph, DgnnModel) {
    let g = DatasetPreset::Gdelt.config_small(6).generate();
    let m = DgnnModel::new(ModelKind::TGcn, g.feature_dim(), 16, 7);
    (g, m)
}

fn bench_engines(c: &mut Criterion) {
    let (g, m) = setup();
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    group.bench_function("reference", |b| {
        let engine = ReferenceEngine::new(m.clone());
        b.iter(|| engine.run(black_box(&g)));
    });
    group.bench_function("concurrent_noskip", |b| {
        let engine = ConcurrentEngine::with_options(
            m.clone(),
            SkipConfig::disabled(),
            3,
            ReuseMode::PaperWindow,
        );
        b.iter(|| engine.run(black_box(&g)));
    });
    group.bench_function("concurrent_skip", |b| {
        let engine = ConcurrentEngine::with_options(
            m.clone(),
            SkipConfig::paper_default(),
            3,
            ReuseMode::PaperWindow,
        );
        b.iter(|| engine.run(black_box(&g)));
    });
    group.bench_function("concurrent_exact", |b| {
        let engine =
            ConcurrentEngine::with_options(m.clone(), SkipConfig::disabled(), 3, ReuseMode::Exact);
        b.iter(|| engine.run(black_box(&g)));
    });
    group.finish();
}

fn bench_window_sizes(c: &mut Criterion) {
    let (g, m) = setup();
    let mut group = c.benchmark_group("window_size");
    group.sample_size(10);
    for k in [1usize, 2, 3, 6] {
        group.bench_function(k.to_string(), |b| {
            let engine = ConcurrentEngine::with_window(m.clone(), SkipConfig::paper_default(), k);
            b.iter(|| engine.run(black_box(&g)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_window_sizes);
criterion_main!(benches);
