//! Fig. 13(b) microbenchmarks: building and scanning the three dynamic
//! graph formats — O-CSR, per-snapshot CSR replication, and PMA.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tagnn_graph::classify::classify_window;
use tagnn_graph::multi_csr::MultiCsr;
use tagnn_graph::pma::Pma;
use tagnn_graph::subgraph::AffectedSubgraph;
use tagnn_graph::{DatasetPreset, OCsr, Snapshot};

fn window() -> Vec<Snapshot> {
    let g = DatasetPreset::Gdelt.config_small(4).generate();
    g.snapshots().to_vec()
}

fn bench_build(c: &mut Criterion) {
    let snaps = window();
    let refs: Vec<&Snapshot> = snaps.iter().collect();
    let cls = classify_window(&refs);
    let sg = AffectedSubgraph::extract(&refs, &cls);

    let mut group = c.benchmark_group("format_build");
    group.bench_function("ocsr", |b| {
        b.iter(|| OCsr::from_subgraph(black_box(&refs), &cls, &sg));
    });
    group.bench_function("multi_csr", |b| {
        b.iter(|| MultiCsr::from_window(black_box(&refs)));
    });
    group.bench_function("pma", |b| {
        b.iter(|| {
            let mut pma = Pma::new();
            for e in sg.edges() {
                pma.insert((e.src, e.snapshot, e.dst));
            }
            black_box(pma)
        });
    });
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let snaps = window();
    let refs: Vec<&Snapshot> = snaps.iter().collect();
    let cls = classify_window(&refs);
    let sg = AffectedSubgraph::extract(&refs, &cls);
    let ocsr = OCsr::from_subgraph(&refs, &cls, &sg);
    let csr = MultiCsr::from_window(&refs);
    let mut pma = Pma::new();
    for e in sg.edges() {
        pma.insert((e.src, e.snapshot, e.dst));
    }
    let sources: Vec<u32> = ocsr.sources().to_vec();

    let mut group = c.benchmark_group("format_scan");
    group.bench_function("ocsr_neighbors", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &sources {
                for (u, t) in ocsr.neighbors(v) {
                    acc += u as u64 + t as u64;
                }
            }
            black_box(acc)
        });
    });
    group.bench_function("multi_csr_neighbors", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &sources {
                for t in 0..csr.window() as u32 {
                    for &u in csr.neighbors_at(v, t) {
                        acc += u as u64 + t as u64;
                    }
                }
            }
            black_box(acc)
        });
    });
    group.bench_function("pma_neighbors", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &sources {
                for (t, u) in pma.neighbors(v) {
                    acc += u as u64 + t as u64;
                }
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_scan);
criterion_main!(benches);
