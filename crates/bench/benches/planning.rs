//! Window-planning cost: building a window's plan once versus the old
//! path where every consumer (engine, simulator structural sweep, traffic
//! accounting) re-ran the classify → extract → pack triple itself.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;
use tagnn_graph::classify::classify_window;
use tagnn_graph::plan::{PlanCache, WindowPlanner};
use tagnn_graph::subgraph::AffectedSubgraph;
use tagnn_graph::{DatasetPreset, DynamicGraph, OCsr, Snapshot};

/// Number of production consumers that used to recompute the frontend
/// triple independently before plans existed.
const CONSUMERS: usize = 3;

fn graph() -> DynamicGraph {
    DatasetPreset::HepPh.config_small(8).generate()
}

/// The pre-plan world: each consumer runs the full triple per window.
fn triple_recompute(g: &DynamicGraph, k: usize, consumers: usize) -> usize {
    let mut edges = 0;
    for _ in 0..consumers {
        for batch in g.batches(k) {
            let refs: Vec<&Snapshot> = batch.iter().collect();
            let cls = classify_window(&refs);
            let sg = AffectedSubgraph::extract(&refs, &cls);
            let ocsr = OCsr::from_subgraph(&refs, &cls, &sg);
            edges += ocsr.num_edges();
        }
    }
    edges
}

fn bench_plan_vs_triple(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("planning");
    group.sample_size(20);
    for k in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("plan_once", k), &k, |b, &k| {
            b.iter(|| WindowPlanner::new(k).plan_graph(black_box(&g)));
        });
        group.bench_with_input(BenchmarkId::new("triple_recompute_x3", k), &k, |b, &k| {
            b.iter(|| triple_recompute(black_box(&g), k, CONSUMERS));
        });
        group.bench_with_input(BenchmarkId::new("cached_warm", k), &k, |b, &k| {
            let cache = PlanCache::new();
            let planner = WindowPlanner::new(k);
            // Warm the cache so the measured loop is pure hits.
            let _ = planner.plan_graph_cached(&g, &cache);
            b.iter(|| planner.plan_graph_cached(black_box(&g), &cache));
        });
    }
    group.finish();

    // One-shot headline: how much frontend work the planning layer saves
    // the three consumers at the paper's default K=4.
    let t0 = Instant::now();
    let plans = WindowPlanner::new(4).plan_graph(&g);
    let plan_once = t0.elapsed();
    let t1 = Instant::now();
    let edges = triple_recompute(&g, 4, CONSUMERS);
    let triple = t1.elapsed();
    eprintln!(
        "planning speedup (K=4, {CONSUMERS} consumers): {:.2}x \
         (plan_once {plan_once:?} vs triple {triple:?}; {} plans, {edges} edges packed)",
        triple.as_secs_f64() / plan_once.as_secs_f64().max(1e-12),
        plans.len(),
    );
}

criterion_group!(benches, bench_plan_vs_triple);
criterion_main!(benches);
