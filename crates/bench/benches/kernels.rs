//! Microbenchmarks of the arithmetic kernels shared by the engines and the
//! simulator: dense matmul, cosine similarity, delta condensing, and the
//! recurrent cell steps.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tagnn_models::rnn::{RnnCell, RnnKind};
use tagnn_tensor::similarity::{cosine, CondensedDelta};
use tagnn_tensor::{init, ops};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [64usize, 128, 256] {
        let a = init::xavier_uniform(n, n, 1);
        let b = init::xavier_uniform(n, n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| ops::matmul(black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

/// The tiled dense GEMM against the zero-skipping loop it replaced in
/// `ops::matmul` — on dense data (where the tiled kernel must win) and on
/// a 90 %-zero LHS (where the explicit sparse entry point earns its keep).
fn bench_matmul_dense_vs_sparse_lhs(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_lhs");
    let n = 256usize;
    let dense = init::xavier_uniform(n, n, 3);
    let sparse = tagnn_tensor::DenseMatrix::from_fn(n, n, |i, j| {
        if (i * n + j).is_multiple_of(10) {
            0.5
        } else {
            0.0
        }
    });
    let b = init::xavier_uniform(n, n, 4);
    group.bench_function("tiled_dense", |bencher| {
        bencher.iter(|| ops::matmul(black_box(&dense), black_box(&b)));
    });
    group.bench_function("skipping_dense", |bencher| {
        bencher.iter(|| ops::matmul_sparse_lhs(black_box(&dense), black_box(&b)));
    });
    group.bench_function("tiled_sparse", |bencher| {
        bencher.iter(|| ops::matmul(black_box(&sparse), black_box(&b)));
    });
    group.bench_function("skipping_sparse", |bencher| {
        bencher.iter(|| ops::matmul_sparse_lhs(black_box(&sparse), black_box(&b)));
    });
    group.finish();
}

/// The density-vs-winning-kernel crossover curve behind the dispatcher's
/// cost model: `gemm_into` against `spmm_csr_into` on the same
/// 512×64 · 64×64 product as the LHS zero-row fraction sweeps from fully
/// dense to fully empty. Dense wins on the left of the crossover, the
/// row-skipping SpMM on the right; `CostModel::calibrated` exists to
/// find that point at startup without running this sweep.
fn bench_spmm_crossover(c: &mut Criterion) {
    use tagnn_tensor::kernels;

    let mut group = c.benchmark_group("spmm_crossover");
    let (m, k, n) = (512usize, 64usize, 64usize);
    let b = init::xavier_uniform(k, n, 12);
    for zero_pct in [0u32, 25, 50, 75, 90, 99] {
        // Row r is zero iff r mod 100 < zero_pct — deterministic, and the
        // nonzero rows stay spread across the matrix like real churn.
        let a = tagnn_tensor::DenseMatrix::from_fn(m, k, |i, j| {
            if ((i % 100) as u32) < zero_pct {
                0.0
            } else {
                ((i * k + j) as f32 * 0.37).sin()
            }
        });
        let rows: Vec<u32> = (0..m as u32).filter(|&r| (r % 100) >= zero_pct).collect();
        let mut out = vec![0.0f32; m * n];
        group.bench_with_input(
            BenchmarkId::new("gemm", zero_pct),
            &zero_pct,
            |bencher, _| {
                bencher.iter(|| {
                    kernels::gemm_into(m, k, n, black_box(a.as_slice()), b.as_slice(), &mut out);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("spmm", zero_pct),
            &zero_pct,
            |bencher, _| {
                bencher.iter(|| {
                    kernels::spmm_csr_into(
                        m,
                        k,
                        n,
                        black_box(&rows),
                        a.as_slice(),
                        b.as_slice(),
                        &mut out,
                    );
                });
            },
        );
    }
    group.finish();
}

/// The batched gate path (gather-free here: one contiguous batch) against
/// the per-vertex `step` loop it replaced in both engines.
fn bench_batched_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("rnn_gates");
    let (n, dim) = (512usize, 64usize);
    for (name, kind) in [("lstm", RnnKind::Lstm), ("gru", RnnKind::Gru)] {
        let cell = RnnCell::new(kind, dim, dim, 7);
        let gh = cell.kind().gates() * dim;
        let x = init::xavier_uniform(n, dim, 8);
        group.bench_function(format!("{name}_per_vertex"), |bencher| {
            let mut states: Vec<_> = (0..n).map(|_| cell.zero_state()).collect();
            bencher.iter(|| {
                for (v, state) in states.iter_mut().enumerate() {
                    cell.step(black_box(x.row(v)), state);
                }
            });
        });
        group.bench_function(format!("{name}_batched"), |bencher| {
            let mut states: Vec<_> = (0..n).map(|_| cell.zero_state()).collect();
            let mut h_batch = vec![0.0f32; n * dim];
            let mut x_pre = vec![0.0f32; n * gh];
            let mut h_pre = vec![0.0f32; n * gh];
            bencher.iter(|| {
                for (v, state) in states.iter().enumerate() {
                    h_batch[v * dim..][..dim].copy_from_slice(&state.h);
                }
                cell.batch_preactivations(n, x.as_slice(), &h_batch, &mut x_pre, &mut h_pre);
                for (v, state) in states.iter_mut().enumerate() {
                    state.x_pre.copy_from_slice(&x_pre[v * gh..][..gh]);
                    let tagnn_models::rnn::VertexState { h, c, x_pre } = state;
                    cell.apply_gates(x_pre, &h_pre[v * gh..][..gh], h, c);
                }
            });
        });
    }
    group.finish();
}

/// The fused layer forward against the per-vertex loop the incremental
/// path falls back to — same layer, same snapshot, same output.
fn bench_gcn_forward(c: &mut Criterion) {
    use tagnn_graph::generate::GeneratorConfig;
    use tagnn_models::gcn::GcnLayer;
    use tagnn_tensor::activation::Activation;

    let mut group = c.benchmark_group("gcn_forward");
    let g = GeneratorConfig {
        num_vertices: 512,
        num_edges: 2048,
        feature_dim: 48,
        num_snapshots: 1,
        ..GeneratorConfig::tiny()
    }
    .generate();
    let snap = g.snapshot(0);
    let x = snap.features();
    let layer = GcnLayer::new(48, 48, Activation::Relu, 9);
    group.bench_function("fused", |bencher| {
        bencher.iter(|| layer.forward(black_box(snap), black_box(x)));
    });
    group.bench_function("per_vertex", |bencher| {
        bencher.iter(|| {
            let n = snap.num_vertices();
            let mut out = tagnn_tensor::DenseMatrix::zeros(n, layer.out_dim());
            for v in 0..n as tagnn_graph::types::VertexId {
                out.set_row(v as usize, &layer.forward_vertex(snap, x, v));
            }
            out
        });
    });
    group.finish();
}

fn bench_cosine(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosine");
    for dim in [64usize, 256, 1024] {
        let a: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.11).cos()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bencher, _| {
            bencher.iter(|| cosine(black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

fn bench_condense(c: &mut Criterion) {
    let mut group = c.benchmark_group("condense");
    for density in [10usize, 50, 90] {
        let dim = 512;
        let dense: Vec<f32> = (0..dim)
            .map(|i| if i % 100 < density { 0.5 } else { 0.0 })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(density),
            &density,
            |bencher, _| {
                bencher.iter(|| CondensedDelta::from_dense(black_box(&dense), 0.0));
            },
        );
    }
    group.finish();
}

fn bench_cell_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_step");
    for (name, kind) in [("lstm", RnnKind::Lstm), ("gru", RnnKind::Gru)] {
        let cell = RnnCell::new(kind, 64, 64, 7);
        let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.21).sin()).collect();
        group.bench_function(name, |bencher| {
            let mut state = cell.zero_state();
            bencher.iter(|| cell.step(black_box(&x), &mut state));
        });
    }
    group.finish();
}

fn bench_delta_patch(c: &mut Criterion) {
    let cell = RnnCell::new(RnnKind::Gru, 64, 64, 7);
    let x0: Vec<f32> = (0..64).map(|i| (i as f32 * 0.21).sin()).collect();
    let mut x1 = x0.clone();
    for v in x1.iter_mut().take(8) {
        *v += 0.1;
    }
    let delta = CondensedDelta::from_dense(&ops::sub(&x1, &x0), 0.0);
    c.bench_function("delta_patch_step", |bencher| {
        let mut state = cell.zero_state();
        cell.step(&x0, &mut state);
        bencher.iter(|| {
            let mut pre = state.x_pre.clone();
            cell.patch_preactivation(&mut pre, black_box(&delta));
            black_box(pre);
        });
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_dense_vs_sparse_lhs,
    bench_spmm_crossover,
    bench_gcn_forward,
    bench_batched_gates,
    bench_cosine,
    bench_condense,
    bench_cell_step,
    bench_delta_patch
);
criterion_main!(benches);
