//! Microbenchmarks of the arithmetic kernels shared by the engines and the
//! simulator: dense matmul, cosine similarity, delta condensing, and the
//! recurrent cell steps.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tagnn_models::rnn::{RnnCell, RnnKind};
use tagnn_tensor::similarity::{cosine, CondensedDelta};
use tagnn_tensor::{init, ops};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [64usize, 128, 256] {
        let a = init::xavier_uniform(n, n, 1);
        let b = init::xavier_uniform(n, n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| ops::matmul(black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

fn bench_cosine(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosine");
    for dim in [64usize, 256, 1024] {
        let a: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.11).cos()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bencher, _| {
            bencher.iter(|| cosine(black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

fn bench_condense(c: &mut Criterion) {
    let mut group = c.benchmark_group("condense");
    for density in [10usize, 50, 90] {
        let dim = 512;
        let dense: Vec<f32> = (0..dim)
            .map(|i| if i % 100 < density { 0.5 } else { 0.0 })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(density),
            &density,
            |bencher, _| {
                bencher.iter(|| CondensedDelta::from_dense(black_box(&dense), 0.0));
            },
        );
    }
    group.finish();
}

fn bench_cell_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_step");
    for (name, kind) in [("lstm", RnnKind::Lstm), ("gru", RnnKind::Gru)] {
        let cell = RnnCell::new(kind, 64, 64, 7);
        let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.21).sin()).collect();
        group.bench_function(name, |bencher| {
            let mut state = cell.zero_state();
            bencher.iter(|| cell.step(black_box(&x), &mut state));
        });
    }
    group.finish();
}

fn bench_delta_patch(c: &mut Criterion) {
    let cell = RnnCell::new(RnnKind::Gru, 64, 64, 7);
    let x0: Vec<f32> = (0..64).map(|i| (i as f32 * 0.21).sin()).collect();
    let mut x1 = x0.clone();
    for v in x1.iter_mut().take(8) {
        *v += 0.1;
    }
    let delta = CondensedDelta::from_dense(&ops::sub(&x1, &x0), 0.0);
    c.bench_function("delta_patch_step", |bencher| {
        let mut state = cell.zero_state();
        cell.step(&x0, &mut state);
        bencher.iter(|| {
            let mut pre = state.x_pre.clone();
            cell.patch_preactivation(&mut pre, black_box(&delta));
            black_box(pre);
        });
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_cosine,
    bench_condense,
    bench_cell_step,
    bench_delta_patch
);
criterion_main!(benches);
