//! Benchmarks of the MSDL software path: window classification and
//! affected-subgraph extraction across window sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tagnn_graph::classify::classify_window;
use tagnn_graph::subgraph::AffectedSubgraph;
use tagnn_graph::{DatasetPreset, Snapshot};

fn bench_classify(c: &mut Criterion) {
    let g = DatasetPreset::HepPh.config_small(8).generate();
    let mut group = c.benchmark_group("classify_window");
    for k in [2usize, 4, 8] {
        let refs: Vec<&Snapshot> = g.snapshots()[..k].iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| classify_window(black_box(&refs)));
        });
    }
    group.finish();
}

fn bench_extract(c: &mut Criterion) {
    let g = DatasetPreset::HepPh.config_small(8).generate();
    let mut group = c.benchmark_group("subgraph_extract");
    for k in [2usize, 4, 8] {
        let refs: Vec<&Snapshot> = g.snapshots()[..k].iter().collect();
        let cls = classify_window(&refs);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| AffectedSubgraph::extract(black_box(&refs), &cls));
        });
    }
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    for ds in [DatasetPreset::Gdelt, DatasetPreset::HepPh] {
        group.bench_with_input(BenchmarkId::from_parameter(ds.abbrev()), &ds, |b, &ds| {
            b.iter(|| ds.config_small(4).generate());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classify, bench_extract, bench_generation);
criterion_main!(benches);
