//! Benchmarks of the accelerator simulator and the baseline platform
//! models (the machinery behind Figures 9-14).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tagnn_graph::{DatasetPreset, DynamicGraph};
use tagnn_models::{ModelKind, SkipConfig};
use tagnn_sim::baselines::{cambricon_dg, cpu_dgl, dgnn_booster, edgcn, gpu_pipad};
use tagnn_sim::{AcceleratorConfig, TagnnSimulator, Workload};

fn setup() -> (DynamicGraph, Workload) {
    let g = DatasetPreset::Gdelt.config_small(6).generate();
    let w = Workload::measure(
        &g,
        "GT",
        ModelKind::TGcn,
        16,
        3,
        SkipConfig::paper_default(),
        7,
    );
    (g, w)
}

fn bench_simulator(c: &mut Criterion) {
    let (g, w) = setup();
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.bench_function("tagnn_full", |b| {
        let sim = TagnnSimulator::new(AcceleratorConfig::tagnn_default());
        b.iter(|| sim.simulate(black_box(&g), black_box(&w)));
    });
    group.bench_function("tagnn_wo_oadl", |b| {
        let sim = TagnnSimulator::new(AcceleratorConfig::tagnn_default().without_oadl());
        b.iter(|| sim.simulate(black_box(&g), black_box(&w)));
    });
    group.finish();
}

fn bench_platform_models(c: &mut Criterion) {
    let (_, w) = setup();
    let mut group = c.benchmark_group("platform_estimate");
    for p in [
        cpu_dgl::dgl_cpu(),
        gpu_pipad::pipad(),
        gpu_pipad::tagnn_s(),
        dgnn_booster::dgnn_booster(),
        edgcn::edgcn(),
        cambricon_dg::cambricon_dg(),
    ] {
        group.bench_function(p.name.clone(), |b| {
            b.iter(|| p.estimate(black_box(&w)));
        });
    }
    group.finish();
}

fn bench_workload_measure(c: &mut Criterion) {
    let g = DatasetPreset::Gdelt.config_small(6).generate();
    let mut group = c.benchmark_group("workload_measure");
    group.sample_size(10);
    group.bench_function("measure", |b| {
        b.iter(|| {
            Workload::measure(
                black_box(&g),
                "GT",
                ModelKind::TGcn,
                16,
                3,
                SkipConfig::paper_default(),
                7,
            )
        });
    });
    group.finish();
}

fn bench_timeline(c: &mut Criterion) {
    use tagnn_sim::timeline::{simulate_timeline, WindowWork};
    let windows: Vec<WindowWork> = (0..256)
        .map(|i| WindowWork {
            load_cycles: 100 + (i * 13) % 200,
            msdl_cycles: 20,
            compute_cycles: 150 + (i * 7) % 100,
            writeback_cycles: 10,
        })
        .collect();
    c.bench_function("timeline_256_windows", |b| {
        b.iter(|| simulate_timeline(black_box(&windows)));
    });
}

fn bench_event_pipeline(c: &mut Criterion) {
    use tagnn_sim::event::{simulate_pipeline, StageSpec};
    let stages: Vec<StageSpec> = (0..6)
        .map(|i| StageSpec::new(&format!("s{i}"), 4))
        .collect();
    c.bench_function("pipeline_6_stages_10k_items", |b| {
        b.iter(|| simulate_pipeline(black_box(&stages), 10_000, |s, i| 1 + (s as u64 + i) % 4));
    });
}

criterion_group!(
    benches,
    bench_simulator,
    bench_platform_models,
    bench_workload_measure,
    bench_timeline,
    bench_event_pipeline
);
criterion_main!(benches);
