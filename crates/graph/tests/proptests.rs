//! Property-based tests of the graph substrate: CSR construction, update
//! application, window classification, affected-subgraph extraction, O-CSR
//! invariants, and the PMA against a BTreeSet model.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tagnn_graph::classify::classify_window;
use tagnn_graph::delta::{apply_updates, diff_snapshots, GraphUpdate};
use tagnn_graph::pma::{Pma, PmaEdge};
use tagnn_graph::subgraph::AffectedSubgraph;
use tagnn_graph::types::VertexClass;
use tagnn_graph::{Csr, OCsr, Snapshot};
use tagnn_tensor::DenseMatrix;

const N: usize = 12;

fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..N as u32, 0u32..N as u32), 0..40)
}

fn updates_strategy() -> impl Strategy<Value = Vec<GraphUpdate>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..N as u32, 0u32..N as u32)
                .prop_map(|(src, dst)| GraphUpdate::AddEdge { src, dst }),
            (0u32..N as u32, 0u32..N as u32)
                .prop_map(|(src, dst)| GraphUpdate::RemoveEdge { src, dst }),
            (0u32..N as u32, -2.0f32..2.0).prop_map(|(v, x)| GraphUpdate::MutateFeature {
                v,
                feature: vec![x, -x]
            }),
            (0u32..N as u32).prop_map(|v| GraphUpdate::RemoveVertex { v }),
        ],
        0..10,
    )
}

fn base_snapshot(edges: &[(u32, u32)]) -> Snapshot {
    let edges: Vec<(u32, u32)> = edges.iter().filter(|(s, t)| s != t).copied().collect();
    Snapshot::fully_active(
        Csr::from_edges(N, &edges),
        DenseMatrix::from_fn(N, 2, |r, c| (r + c) as f32),
    )
}

proptest! {
    #[test]
    fn csr_neighbor_lists_are_sorted_and_deduped(edges in edges_strategy()) {
        let csr = Csr::from_edges(N, &edges);
        let mut expected: BTreeSet<(u32, u32)> = edges.into_iter().collect();
        expected = expected.into_iter().collect();
        prop_assert_eq!(csr.num_edges(), expected.len());
        for v in 0..N as u32 {
            let nbrs = csr.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted+unique");
            prop_assert_eq!(nbrs.len(), csr.degree(v));
        }
        let roundtrip: BTreeSet<(u32, u32)> = csr.edges().collect();
        prop_assert_eq!(roundtrip, expected);
    }

    #[test]
    fn degree_sum_equals_edge_count(edges in edges_strategy()) {
        let csr = Csr::from_edges(N, &edges);
        let total: usize = (0..N as u32).map(|v| csr.degree(v)).sum();
        prop_assert_eq!(total, csr.num_edges());
    }

    #[test]
    fn updates_never_leave_dangling_edges(edges in edges_strategy(), updates in updates_strategy()) {
        let base = base_snapshot(&edges);
        let next = apply_updates(&base, &updates);
        for (s, t) in next.csr().edges() {
            prop_assert!(next.is_active(s), "edge source must be active");
            prop_assert!(next.is_active(t), "edge target must be active");
        }
    }

    #[test]
    fn classification_unaffected_implies_feature_stable(
        edges in edges_strategy(),
        updates in updates_strategy(),
    ) {
        let s0 = base_snapshot(&edges);
        let s1 = apply_updates(&s0, &updates);
        let cls = classify_window(&[&s0, &s1]);
        for v in 0..N as u32 {
            match cls.class(v) {
                VertexClass::Unaffected | VertexClass::Stable => {
                    prop_assert!(s0.is_active(v) == s1.is_active(v));
                    if s0.is_active(v) {
                        prop_assert_eq!(s0.feature(v), s1.feature(v), "v{} feature-stable", v);
                    }
                }
                VertexClass::Affected => {}
            }
            if cls.class(v) == VertexClass::Unaffected {
                prop_assert_eq!(s0.neighbors(v), s1.neighbors(v), "v{} topo-stable", v);
            }
        }
    }

    #[test]
    fn identical_window_is_fully_unaffected(edges in edges_strategy()) {
        let s = base_snapshot(&edges);
        let cls = classify_window(&[&s, &s, &s]);
        prop_assert_eq!(cls.count(VertexClass::Unaffected), N);
    }

    #[test]
    fn subgraph_covers_affected_and_excludes_unaffected(
        edges in edges_strategy(),
        updates in updates_strategy(),
    ) {
        let s0 = base_snapshot(&edges);
        let s1 = apply_updates(&s0, &updates);
        let cls = classify_window(&[&s0, &s1]);
        let sg = AffectedSubgraph::extract(&[&s0, &s1], &cls);
        for v in 0..N as u32 {
            match cls.class(v) {
                VertexClass::Affected => prop_assert!(sg.contains(v), "affected v{} must be covered", v),
                VertexClass::Unaffected => prop_assert!(!sg.contains(v), "unaffected v{} must be excluded", v),
                VertexClass::Stable => {}
            }
        }
        // Every root is stable.
        for &r in sg.roots() {
            prop_assert_eq!(cls.class(r), VertexClass::Stable);
        }
    }

    #[test]
    fn ocsr_respects_space_bound_and_adjacency(
        edges in edges_strategy(),
        updates in updates_strategy(),
    ) {
        let s0 = base_snapshot(&edges);
        let s1 = apply_updates(&s0, &updates);
        let refs = [&s0, &s1];
        let cls = classify_window(&refs);
        let sg = AffectedSubgraph::extract(&refs, &cls);
        let ocsr = OCsr::from_subgraph(&refs, &cls, &sg);

        // Paper space bound (in 4-byte elements).
        prop_assert!(ocsr.storage_bytes() <= ocsr.paper_space_bound(s0.feature_dim()) * 4);

        // Per-snapshot adjacency matches the snapshots exactly.
        for &v in ocsr.sources() {
            for (t, snap) in refs.iter().enumerate() {
                let from_ocsr: Vec<u32> = ocsr.neighbors_at(v, t as u32).collect();
                let expected: Vec<u32> =
                    if snap.is_active(v) { snap.neighbors(v).to_vec() } else { vec![] };
                prop_assert_eq!(from_ocsr, expected, "v{} t{}", v, t);
            }
        }

        // Features of affected vertices match per snapshot.
        for &v in ocsr.sources() {
            if cls.class(v) == VertexClass::Affected {
                for (t, snap) in refs.iter().enumerate() {
                    if snap.is_active(v) {
                        prop_assert_eq!(ocsr.feature(v, t as u32).unwrap(), snap.feature(v));
                    }
                }
            }
        }
    }

    #[test]
    fn diff_apply_roundtrip(edges in edges_strategy(), updates in updates_strategy()) {
        let from = base_snapshot(&edges);
        let to = apply_updates(&from, &updates);
        let diff = diff_snapshots(&from, &to);
        let rebuilt = apply_updates(&from, &diff);
        prop_assert_eq!(rebuilt, to);
    }

    #[test]
    fn edge_list_text_roundtrip(
        edges in proptest::collection::vec((0u32..40, 0u32..40, 0u64..10_000), 1..60),
    ) {
        use tagnn_graph::io::{parse_temporal_edges, TemporalEdge};
        let text: String = edges
            .iter()
            .map(|&(s, d, t)| format!("{s} {d} {t}\n"))
            .collect();
        let parsed = parse_temporal_edges(std::io::Cursor::new(text)).unwrap();
        let expected: Vec<TemporalEdge> = edges
            .iter()
            .map(|&(src, dst, time)| TemporalEdge { src, dst, time })
            .collect();
        prop_assert_eq!(parsed, expected);
    }

    #[test]
    fn snapshot_bucketing_conserves_edges(
        edges in proptest::collection::vec((0u32..20, 0u32..20, 0u64..1_000), 1..40),
        snapshots in 1usize..6,
    ) {
        use tagnn_graph::io::{snapshots_from_edges, TemporalEdge};
        let tedges: Vec<TemporalEdge> = edges
            .iter()
            .map(|&(src, dst, time)| TemporalEdge { src, dst, time })
            .collect();
        // Full retention: the last snapshot holds every distinct non-loop edge.
        let g = snapshots_from_edges(&tedges, snapshots, snapshots, 2, 1);
        let distinct: BTreeSet<(u32, u32)> = edges
            .iter()
            .filter(|(s, d, _)| s != d)
            .map(|&(s, d, _)| (s, d))
            .collect();
        let got: BTreeSet<(u32, u32)> = g.snapshot(snapshots - 1).csr().edges().collect();
        prop_assert_eq!(got, distinct);
    }

    #[test]
    fn pma_behaves_like_a_sorted_set(
        ops in proptest::collection::vec((0u32..6, 0u32..3, 0u32..6, proptest::bool::ANY), 0..60),
    ) {
        let mut pma = Pma::new();
        let mut model: BTreeSet<PmaEdge> = BTreeSet::new();
        for (s, t, d, insert) in ops {
            let edge = (s, t, d);
            if insert {
                prop_assert_eq!(pma.insert(edge), model.insert(edge));
            } else {
                prop_assert_eq!(pma.remove(edge), model.remove(&edge));
            }
            prop_assert_eq!(pma.len(), model.len());
        }
        let got: Vec<PmaEdge> = pma.iter().collect();
        let want: Vec<PmaEdge> = model.into_iter().collect();
        prop_assert_eq!(got, want, "PMA must iterate in sorted order with the model's content");
    }
}
