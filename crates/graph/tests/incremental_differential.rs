//! Randomized incremental-vs-scratch differential suite.
//!
//! Drives a [`PlanMaintainer`] exactly as a serving window roller would —
//! per-tick update batches derived from consecutive snapshots, sealed at
//! every window boundary — and pins that every incrementally sealed
//! [`WindowPlan`] is **bit-identical** to the from-scratch
//! [`WindowPlanner`] oracle: equal plan (classification, subgraph, O-CSR
//! arrays and feature bytes, `PlanStats` work counters) and equal content
//! fingerprint. Three stream flavours stress the three dirty-set rules
//! (edge rewires, feature mutations, vertex churn), each across a fixed
//! seed matrix — the same matrix the CI `plan-differential` job runs.

use tagnn_graph::delta::{diff_snapshots, try_apply_updates};
use tagnn_graph::generate::{ChurnConfig, GeneratorConfig};
use tagnn_graph::incremental::PlanMaintainer;
use tagnn_graph::plan::PlanSource;
use tagnn_graph::{Csr, Snapshot, WindowPlanner};
use tagnn_tensor::DenseMatrix;

/// Fixed seed matrix (keep in sync with `.github/workflows/ci.yml`'s
/// `plan-differential` job description).
const SEEDS: [u64; 5] = [1, 7, 42, 1234, 0xD1FF];

/// Window size K; 8 snapshots per stream gives two full windows plus a
/// short tail window, so the flush path is sealed too.
const K: usize = 3;
const SNAPSHOTS: usize = 8;

fn presets() -> Vec<(&'static str, GeneratorConfig)> {
    let base = || {
        let mut cfg = GeneratorConfig::tiny();
        cfg.num_snapshots = SNAPSHOTS;
        cfg
    };
    let mut edge_heavy = base();
    edge_heavy.churn = ChurnConfig {
        feature_mutation_rate: 0.005,
        edge_rewire_rate: 0.08,
        vertex_churn_rate: 0.0,
        mutation_smoothness: 0.7,
    };
    let mut feature_heavy = base();
    feature_heavy.churn = ChurnConfig {
        feature_mutation_rate: 0.10,
        edge_rewire_rate: 0.004,
        vertex_churn_rate: 0.0,
        mutation_smoothness: 0.5,
    };
    let mut churn_heavy = base();
    churn_heavy.churn = ChurnConfig {
        feature_mutation_rate: 0.02,
        edge_rewire_rate: 0.02,
        vertex_churn_rate: 0.05,
        mutation_smoothness: 0.7,
    };
    vec![
        ("edge-heavy", edge_heavy),
        ("feature-heavy", feature_heavy),
        ("vertex-churn-heavy", churn_heavy),
    ]
}

/// Replays `graph` through a maintainer tick by tick, sealing windows of
/// `k`, and differentially checks every sealed plan against the scratch
/// planner. Returns the number of windows compared.
fn check_stream(label: &str, seed: u64, graph_cfg: &GeneratorConfig, k: usize) -> usize {
    let mut cfg = graph_cfg.clone();
    cfg.seed = seed;
    let graph = cfg.generate();
    let planner = WindowPlanner::new(k);
    let mut maintainer = PlanMaintainer::new();

    let mut prev = Snapshot::fully_active(
        Csr::empty(graph.num_vertices()),
        DenseMatrix::zeros(graph.num_vertices(), graph.feature_dim()),
    );
    let mut sealed: Vec<Snapshot> = Vec::new();
    let mut compared = 0usize;
    let check_window = |sealed: &[Snapshot], maintainer: &mut PlanMaintainer| {
        let refs: Vec<&Snapshot> = sealed.iter().collect();
        let incremental = maintainer
            .seal(&refs, 0)
            .unwrap_or_else(|| panic!("{label}/seed {seed}: unexpected fallback"));
        let scratch = planner.try_plan_window(&refs, 0).expect("valid window");
        assert_eq!(
            incremental, scratch,
            "{label}/seed {seed}: sealed plan diverged from scratch oracle"
        );
        assert_eq!(
            incremental.fingerprint(),
            scratch.fingerprint(),
            "{label}/seed {seed}: fingerprint diverged"
        );
        assert_eq!(incremental.ocsr(), scratch.ocsr());
        assert_eq!(incremental.stats(), scratch.stats());
        assert_eq!(incremental.source(), PlanSource::Incremental);
        assert_eq!(scratch.source(), PlanSource::Scratch);
    };
    for snap in graph.snapshots() {
        // The per-tick update batch a streaming client would send.
        let updates = diff_snapshots(&prev, snap);
        let next = try_apply_updates(&prev, &updates).expect("diff replays exactly");
        assert_eq!(&next, snap, "replay must reconstruct the snapshot");
        sealed.push(next.clone());
        maintainer.absorb(&sealed, &updates);
        prev = next;
        if sealed.len() == k {
            check_window(&sealed, &mut maintainer);
            compared += 1;
            sealed.clear();
        }
    }
    if !sealed.is_empty() {
        // Short tail window (stream flush).
        check_window(&sealed, &mut maintainer);
        compared += 1;
    }
    assert_eq!(maintainer.stats().fallbacks, 0, "{label}/seed {seed}");
    compared
}

#[test]
fn incremental_plans_are_bit_identical_across_presets_and_seeds() {
    let mut windows = 0usize;
    for (label, cfg) in presets() {
        for seed in SEEDS {
            windows += check_stream(label, seed, &cfg, K);
        }
    }
    // 3 presets x 5 seeds x (two full windows + one tail window) each.
    assert_eq!(windows, 3 * SEEDS.len() * (SNAPSHOTS / K + 1));
}

#[test]
fn single_snapshot_windows_seal_incrementally() {
    // K = 1 degenerates every window to its own reference snapshot; the
    // maintainer must still agree with scratch (all-unaffected classes
    // except inactive vertices).
    for (label, cfg) in presets() {
        check_stream(label, SEEDS[0], &cfg, 1);
    }
}

#[test]
fn wide_windows_cover_multi_tick_accumulation() {
    // K = 5 over 8 snapshots: one 5-window plus a 3-tail, so instability
    // accumulates over more ticks before sealing.
    for (label, cfg) in presets() {
        check_stream(label, SEEDS[1], &cfg, 5);
    }
}
