//! Typed validation errors for graph construction and event ingestion.
//!
//! The offline pipeline asserts its invariants — a malformed dataset is a
//! bug and aborting is the right call. A long-running server cannot
//! afford that: one bad event over the wire must become a rejected
//! request, not a process abort. [`GraphError`] is the typed form of
//! every construction/update invariant; the panicking constructors
//! (`Snapshot::new`, `DynamicGraph::new`, `apply_updates`) now delegate
//! to the `try_*` variants so both paths enforce exactly the same checks
//! with exactly the same messages.

use crate::classify::WindowError;
use crate::types::VertexId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a snapshot, dynamic graph, or update batch is invalid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GraphError {
    /// A dynamic graph was built from zero snapshots.
    EmptyGraph,
    /// A snapshot's vertex universe disagrees with the sequence's first.
    UniverseMismatch {
        /// Universe size of the first snapshot.
        expected: usize,
        /// Universe size of the offending snapshot.
        found: usize,
        /// Index of the offending snapshot.
        snapshot: usize,
    },
    /// A snapshot's feature dimension disagrees with the sequence's first.
    FeatureDimMismatch {
        /// Feature dimension of the first snapshot.
        expected: usize,
        /// Feature dimension of the offending snapshot.
        found: usize,
        /// Index of the offending snapshot.
        snapshot: usize,
    },
    /// The feature table's row count disagrees with the CSR vertex count.
    FeatureRowsMismatch {
        /// Vertex count of the CSR.
        vertices: usize,
        /// Row count of the feature table.
        rows: usize,
    },
    /// The activity bitmap's length disagrees with the CSR vertex count.
    ActivityLenMismatch {
        /// Vertex count of the CSR.
        vertices: usize,
        /// Length of the bitmap.
        len: usize,
    },
    /// An edge update names an endpoint outside the vertex universe.
    EdgeEndpointOutOfUniverse {
        /// Source vertex of the offending edge.
        src: VertexId,
        /// Target vertex of the offending edge.
        dst: VertexId,
        /// Size of the vertex universe.
        universe: usize,
    },
    /// A vertex update names a vertex outside the universe.
    VertexOutOfUniverse {
        /// The offending vertex.
        v: VertexId,
        /// Size of the vertex universe.
        universe: usize,
    },
    /// A feature mutation carries a vector of the wrong dimension.
    FeatureLenMismatch {
        /// The vertex whose feature was mutated.
        v: VertexId,
        /// The universe's feature dimension.
        expected: usize,
        /// Length of the offending vector.
        found: usize,
    },
    /// A window-classification error, forwarded from [`WindowError`].
    Window(WindowError),
}

impl fmt::Display for GraphError {
    // The messages deliberately contain the historical panic strings
    // (`should_panic(expected = ...)` tests and downstream log scrapers
    // match on those substrings).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyGraph => {
                write!(f, "a dynamic graph needs at least one snapshot")
            }
            GraphError::UniverseMismatch {
                expected,
                found,
                snapshot,
            } => write!(
                f,
                "snapshot {snapshot} universe size mismatch (expected {expected}, found {found})"
            ),
            GraphError::FeatureDimMismatch {
                expected,
                found,
                snapshot,
            } => write!(
                f,
                "snapshot {snapshot} feature dim mismatch (expected {expected}, found {found})"
            ),
            GraphError::FeatureRowsMismatch { vertices, rows } => write!(
                f,
                "feature rows must match vertex count ({rows} rows for {vertices} vertices)"
            ),
            GraphError::ActivityLenMismatch { vertices, len } => write!(
                f,
                "bitmap must match vertex count ({len} flags for {vertices} vertices)"
            ),
            GraphError::EdgeEndpointOutOfUniverse { src, dst, universe } => write!(
                f,
                "edge endpoint out of universe (edge ({src}, {dst}), universe {universe})"
            ),
            GraphError::VertexOutOfUniverse { v, universe } => {
                write!(
                    f,
                    "vertex out of universe (vertex {v}, universe {universe})"
                )
            }
            GraphError::FeatureLenMismatch { v, expected, found } => write!(
                f,
                "feature dimension mismatch for vertex {v} (expected {expected}, found {found})"
            ),
            GraphError::Window(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<WindowError> for GraphError {
    fn from(e: WindowError) -> Self {
        GraphError::Window(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_historical_panic_substrings() {
        let cases: Vec<(GraphError, &str)> = vec![
            (GraphError::EmptyGraph, "at least one snapshot"),
            (
                GraphError::UniverseMismatch {
                    expected: 4,
                    found: 5,
                    snapshot: 1,
                },
                "snapshot 1 universe size mismatch",
            ),
            (
                GraphError::FeatureDimMismatch {
                    expected: 2,
                    found: 3,
                    snapshot: 2,
                },
                "snapshot 2 feature dim mismatch",
            ),
            (
                GraphError::FeatureRowsMismatch {
                    vertices: 2,
                    rows: 3,
                },
                "feature rows must match vertex count",
            ),
            (
                GraphError::ActivityLenMismatch {
                    vertices: 2,
                    len: 1,
                },
                "bitmap must match vertex count",
            ),
            (
                GraphError::EdgeEndpointOutOfUniverse {
                    src: 9,
                    dst: 0,
                    universe: 4,
                },
                "edge endpoint out of universe",
            ),
            (
                GraphError::VertexOutOfUniverse { v: 9, universe: 4 },
                "vertex out of universe",
            ),
            (
                GraphError::FeatureLenMismatch {
                    v: 0,
                    expected: 2,
                    found: 1,
                },
                "feature dimension mismatch",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} missing substring {needle:?}"
            );
        }
    }

    #[test]
    fn window_errors_convert() {
        let e: GraphError = WindowError::EmptyWindow.into();
        assert_eq!(e, GraphError::Window(WindowError::EmptyWindow));
        assert!(!e.to_string().is_empty());
    }
}
