//! Loading dynamic graphs from temporal edge lists.
//!
//! The paper's datasets (HepPh, Gdelt, MovieLens, Epinions, Flickr) are
//! distributed as temporal edge lists — one `src dst timestamp` triple per
//! line — and sliced into snapshots at a fixed time granularity (Table 2's
//! "Granularity" column). This module parses that format, so real datasets
//! can be dropped in wherever the synthetic generator is used.
//!
//! Vertex features are not part of edge-list distributions; loaded graphs
//! get deterministic feature vectors (seeded from the vertex id), with a
//! feature *mutation* applied to a vertex whenever it gains or loses an
//! edge in a snapshot — the activity-coupled feature churn real DGNN
//! pipelines derive from interaction payloads.

use crate::csr::Csr;
use crate::dynamic::DynamicGraph;
use crate::snapshot::Snapshot;
use crate::types::VertexId;
use std::io::BufRead;
use std::path::Path;
use tagnn_tensor::DenseMatrix;

/// A parsed temporal edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalEdge {
    /// Source vertex id.
    pub src: VertexId,
    /// Destination vertex id.
    pub dst: VertexId,
    /// Raw timestamp (any monotone unit).
    pub time: u64,
}

use serde::{Deserialize, Serialize};

/// Errors raised while loading a temporal edge list.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed; carries the 1-based line number.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The file contained no edges.
    Empty,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, content } => {
                write!(f, "parse error on line {line}: {content:?}")
            }
            LoadError::Empty => write!(f, "no edges in input"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses a temporal edge list from a reader. Lines are
/// `src dst time` (whitespace- or comma-separated); `#`- or `%`-prefixed
/// lines are comments.
pub fn parse_temporal_edges<R: BufRead>(reader: R) -> Result<Vec<TemporalEdge>, LoadError> {
    let mut edges = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|s| !s.is_empty());
        let parse = |s: Option<&str>| -> Option<u64> { s?.parse().ok() };
        match (
            parse(parts.next()),
            parse(parts.next()),
            parse(parts.next()),
        ) {
            (Some(s), Some(d), Some(t)) if s <= u32::MAX as u64 && d <= u32::MAX as u64 => {
                edges.push(TemporalEdge {
                    src: s as VertexId,
                    dst: d as VertexId,
                    time: t,
                });
            }
            _ => {
                return Err(LoadError::Parse {
                    line: i + 1,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    if edges.is_empty() {
        return Err(LoadError::Empty);
    }
    Ok(edges)
}

/// Builds a [`DynamicGraph`] from temporal edges: the time range is sliced
/// into `num_snapshots` equal buckets; snapshot `t` contains every edge
/// whose timestamp falls in bucket `<= t` within a sliding retention of
/// `retention` buckets (Table 2's granularity windows). Features are
/// deterministic per vertex and mutate whenever the vertex's incident edge
/// set changes between snapshots.
///
/// # Panics
/// Panics if `num_snapshots == 0`, `retention == 0`, or `feature_dim == 0`.
pub fn snapshots_from_edges(
    edges: &[TemporalEdge],
    num_snapshots: usize,
    retention: usize,
    feature_dim: usize,
    seed: u64,
) -> DynamicGraph {
    assert!(num_snapshots > 0, "need at least one snapshot");
    assert!(retention > 0, "retention must be positive");
    assert!(feature_dim > 0, "feature dim must be positive");
    assert!(!edges.is_empty(), "need at least one edge");

    let n = edges
        .iter()
        .map(|e| e.src.max(e.dst) as usize + 1)
        .max()
        .unwrap_or(1);
    let t_min = edges.iter().map(|e| e.time).min().unwrap();
    let t_max = edges.iter().map(|e| e.time).max().unwrap();
    let span = (t_max - t_min + 1).max(1);
    let bucket_of = |time: u64| -> usize {
        (((time - t_min) as u128 * num_snapshots as u128 / span as u128) as usize)
            .min(num_snapshots - 1)
    };

    // Bucketise.
    let mut buckets: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); num_snapshots];
    for e in edges {
        if e.src != e.dst {
            buckets[bucket_of(e.time)].push((e.src, e.dst));
        }
    }

    // Base features: deterministic per vertex; version counters bump a
    // feature whenever the vertex's incident edges changed.
    let base_feature = |v: usize, version: u32, k: usize| -> f32 {
        let mut h = (v as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(k as u64)
            .wrapping_add((version as u64) << 32)
            .wrapping_add(seed);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h % 2000) as f32 / 1000.0 - 1.0
    };

    let mut versions = vec![0u32; n];
    let mut prev_incident: Vec<usize> = vec![0; n];
    let mut snapshots = Vec::with_capacity(num_snapshots);
    for t in 0..num_snapshots {
        let lo = t.saturating_sub(retention - 1);
        let mut window_edges: Vec<(VertexId, VertexId)> = Vec::new();
        for bucket in &buckets[lo..=t] {
            window_edges.extend_from_slice(bucket);
        }
        let csr = Csr::from_edges(n, &window_edges);

        // Bump feature versions of vertices whose incident degree changed.
        let mut incident = vec![0usize; n];
        for (s, d) in csr.edges() {
            incident[s as usize] += 1;
            incident[d as usize] += 1;
        }
        if t > 0 {
            for v in 0..n {
                if incident[v] != prev_incident[v] {
                    versions[v] += 1;
                }
            }
        }
        prev_incident = incident;

        let features = DenseMatrix::from_fn(n, feature_dim, |v, k| base_feature(v, versions[v], k));
        snapshots.push(Snapshot::fully_active(csr, features));
    }
    DynamicGraph::new(snapshots)
}

/// Writes a dynamic graph as a temporal edge list: each edge is emitted
/// once, stamped with the first snapshot it appears in. Deletions are not
/// representable in the plain edge-list format, so loading the file back
/// with full retention reproduces the *union* topology — the export is a
/// data-interchange convenience, not a lossless serialisation (use serde
/// on [`DynamicGraph`] for that).
pub fn write_temporal_edge_list<W: std::io::Write>(
    graph: &crate::dynamic::DynamicGraph,
    mut writer: W,
) -> std::io::Result<usize> {
    let mut written = 0usize;
    writeln!(writer, "# tagnn temporal edge list: src dst first_snapshot")?;
    let mut seen: std::collections::BTreeSet<(VertexId, VertexId)> =
        std::collections::BTreeSet::new();
    for (t, snap) in graph.snapshots().iter().enumerate() {
        for (s, d) in snap.csr().edges() {
            if seen.insert((s, d)) {
                writeln!(writer, "{s} {d} {t}")?;
                written += 1;
            }
        }
    }
    Ok(written)
}

/// Loads a dynamic graph from a temporal edge-list file.
pub fn load_temporal_edge_list<P: AsRef<Path>>(
    path: P,
    num_snapshots: usize,
    retention: usize,
    feature_dim: usize,
    seed: u64,
) -> Result<DynamicGraph, LoadError> {
    let file = std::fs::File::open(path)?;
    let edges = parse_temporal_edges(std::io::BufReader::new(file))?;
    Ok(snapshots_from_edges(
        &edges,
        num_snapshots,
        retention,
        feature_dim,
        seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_edges() -> Vec<TemporalEdge> {
        vec![
            TemporalEdge {
                src: 0,
                dst: 1,
                time: 0,
            },
            TemporalEdge {
                src: 1,
                dst: 2,
                time: 10,
            },
            TemporalEdge {
                src: 2,
                dst: 3,
                time: 20,
            },
            TemporalEdge {
                src: 3,
                dst: 0,
                time: 30,
            },
        ]
    }

    #[test]
    fn parses_whitespace_and_commas_and_comments() {
        let input = "# comment\n0 1 100\n2,3,200\n% another\n\n4\t5\t300\n";
        let edges = parse_temporal_edges(Cursor::new(input)).unwrap();
        assert_eq!(edges.len(), 3);
        assert_eq!(
            edges[1],
            TemporalEdge {
                src: 2,
                dst: 3,
                time: 200
            }
        );
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let input = "0 1 100\nnot an edge\n";
        match parse_temporal_edges(Cursor::new(input)) {
            Err(LoadError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(
            parse_temporal_edges(Cursor::new("# nothing\n")),
            Err(LoadError::Empty)
        ));
    }

    #[test]
    fn buckets_edges_into_snapshots() {
        let g = snapshots_from_edges(&sample_edges(), 4, 1, 3, 7);
        assert_eq!(g.num_snapshots(), 4);
        assert_eq!(g.num_vertices(), 4);
        // With retention 1 each snapshot holds exactly its bucket's edge.
        for t in 0..4 {
            assert_eq!(g.snapshot(t).num_edges(), 1, "snapshot {t}");
        }
        assert!(g.snapshot(0).csr().has_edge(0, 1));
        assert!(g.snapshot(3).csr().has_edge(3, 0));
    }

    #[test]
    fn retention_accumulates_history() {
        let g = snapshots_from_edges(&sample_edges(), 4, 2, 3, 7);
        assert_eq!(g.snapshot(0).num_edges(), 1);
        assert_eq!(g.snapshot(1).num_edges(), 2, "bucket 0 + bucket 1");
        assert_eq!(g.snapshot(3).num_edges(), 2, "bucket 2 + bucket 3");
    }

    #[test]
    fn features_mutate_with_incident_edge_changes() {
        let g = snapshots_from_edges(&sample_edges(), 4, 1, 3, 7);
        // v0 is incident to the bucket-0 edge but not the bucket-1 edge:
        // its feature must change between snapshots 0 and 1.
        assert_ne!(g.snapshot(0).feature(0), g.snapshot(1).feature(0));
        // v3 is untouched between snapshots 0 and 1.
        assert_eq!(g.snapshot(0).feature(3), g.snapshot(1).feature(3));
    }

    #[test]
    fn loading_is_deterministic() {
        let a = snapshots_from_edges(&sample_edges(), 4, 2, 4, 1);
        let b = snapshots_from_edges(&sample_edges(), 4, 2, 4, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("tagnn_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        std::fs::write(&path, "0 1 0\n1 2 5\n2 0 9\n").unwrap();
        let g = load_temporal_edge_list(&path, 3, 1, 2, 0).unwrap();
        assert_eq!(g.num_snapshots(), 3);
        assert_eq!(g.num_vertices(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn export_emits_each_edge_once_with_first_snapshot() {
        let g = snapshots_from_edges(&sample_edges(), 4, 2, 2, 0);
        let mut buf = Vec::new();
        let written = write_temporal_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let reloaded = parse_temporal_edges(std::io::Cursor::new(&text)).unwrap();
        assert_eq!(written, reloaded.len());
        // Every edge appears exactly once.
        let mut pairs: Vec<(u32, u32)> = reloaded.iter().map(|e| (e.src, e.dst)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), written);
    }

    #[test]
    fn export_load_roundtrip_preserves_union_topology() {
        let g = snapshots_from_edges(&sample_edges(), 3, 3, 2, 0);
        let mut buf = Vec::new();
        write_temporal_edge_list(&g, &mut buf).unwrap();
        let edges = parse_temporal_edges(std::io::Cursor::new(&buf)).unwrap();
        let reloaded = snapshots_from_edges(&edges, 1, 1, 2, 0);
        // The single full-retention snapshot holds the union of all edges.
        let union: std::collections::BTreeSet<(u32, u32)> = g
            .snapshots()
            .iter()
            .flat_map(|s| s.csr().edges().collect::<Vec<_>>())
            .collect();
        let got: std::collections::BTreeSet<(u32, u32)> =
            reloaded.snapshot(0).csr().edges().collect();
        assert_eq!(got, union);
    }

    #[test]
    fn self_loops_are_dropped() {
        let edges = vec![
            TemporalEdge {
                src: 0,
                dst: 0,
                time: 0,
            },
            TemporalEdge {
                src: 0,
                dst: 1,
                time: 0,
            },
        ];
        let g = snapshots_from_edges(&edges, 1, 1, 2, 0);
        assert_eq!(g.snapshot(0).num_edges(), 1);
    }
}
