//! Update events that evolve one snapshot into the next.
//!
//! Real dynamic graphs arrive as streams of edge insertions/deletions,
//! vertex churn, and feature mutations (§2.1). The generator emits these
//! events and [`apply_updates`] materialises the successor snapshot; the
//! same events drive the PMA baseline's edit path.

use crate::csr::Csr;
use crate::error::GraphError;
use crate::snapshot::Snapshot;
use crate::types::VertexId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A single graph mutation between consecutive snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GraphUpdate {
    /// Insert directed edge `(src, dst)`.
    AddEdge {
        /// Source vertex.
        src: VertexId,
        /// Target vertex.
        dst: VertexId,
    },
    /// Remove directed edge `(src, dst)`.
    RemoveEdge {
        /// Source vertex.
        src: VertexId,
        /// Target vertex.
        dst: VertexId,
    },
    /// Activate a vertex (it appears in the next snapshot).
    AddVertex {
        /// The vertex to activate.
        v: VertexId,
    },
    /// Deactivate a vertex and drop all its incident edges.
    RemoveVertex {
        /// The vertex to deactivate.
        v: VertexId,
    },
    /// Replace the feature vector of `v`.
    MutateFeature {
        /// The vertex whose feature changes.
        v: VertexId,
        /// The new feature vector (must match the universe's dimension).
        feature: Vec<f32>,
    },
}

impl GraphUpdate {
    /// The vertex whose row/features this update primarily touches.
    pub fn primary_vertex(&self) -> VertexId {
        match self {
            GraphUpdate::AddEdge { src, .. } | GraphUpdate::RemoveEdge { src, .. } => *src,
            GraphUpdate::AddVertex { v }
            | GraphUpdate::RemoveVertex { v }
            | GraphUpdate::MutateFeature { v, .. } => *v,
        }
    }
}

/// Applies a batch of updates to `base`, producing the successor snapshot.
///
/// Edges incident to removed vertices are dropped; edges whose endpoints are
/// inactive after the batch are ignored. Feature mutations of inactive
/// vertices still land in the feature table (they become visible once the
/// vertex is re-activated).
///
/// # Panics
/// Panics if a mutated feature vector has the wrong dimension or an id is
/// out of the universe.
pub fn apply_updates(base: &Snapshot, updates: &[GraphUpdate]) -> Snapshot {
    match try_apply_updates(base, updates) {
        Ok(s) => s,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`apply_updates`], returning a typed
/// [`GraphError`] instead of panicking. On error no snapshot is produced;
/// the base is untouched either way (updates apply to a copy).
pub fn try_apply_updates(base: &Snapshot, updates: &[GraphUpdate]) -> Result<Snapshot, GraphError> {
    let n = base.num_vertices();
    let dim = base.feature_dim();
    let mut active = base.active().to_vec();
    let mut features = base.features().clone();
    let mut edges: BTreeSet<(VertexId, VertexId)> = base.csr().edges().collect();

    for u in updates {
        match u {
            GraphUpdate::AddEdge { src, dst } => {
                if (*src as usize) >= n || (*dst as usize) >= n {
                    return Err(GraphError::EdgeEndpointOutOfUniverse {
                        src: *src,
                        dst: *dst,
                        universe: n,
                    });
                }
                edges.insert((*src, *dst));
            }
            GraphUpdate::RemoveEdge { src, dst } => {
                edges.remove(&(*src, *dst));
            }
            GraphUpdate::AddVertex { v } | GraphUpdate::RemoveVertex { v } => {
                if (*v as usize) >= n {
                    return Err(GraphError::VertexOutOfUniverse { v: *v, universe: n });
                }
                active[*v as usize] = matches!(u, GraphUpdate::AddVertex { .. });
            }
            GraphUpdate::MutateFeature { v, feature } => {
                if (*v as usize) >= n {
                    return Err(GraphError::VertexOutOfUniverse { v: *v, universe: n });
                }
                if feature.len() != dim {
                    return Err(GraphError::FeatureLenMismatch {
                        v: *v,
                        expected: dim,
                        found: feature.len(),
                    });
                }
                features.set_row(*v as usize, feature);
            }
        }
    }

    let edge_list: Vec<(VertexId, VertexId)> = edges
        .into_iter()
        .filter(|&(s, t)| active[s as usize] && active[t as usize])
        .collect();
    Snapshot::try_new(Csr::from_edges(n, &edge_list), features, active)
}

/// [`try_apply_updates`] plus O(touched rows) density maintenance: while
/// each `MutateFeature` row is in hand anyway, re-measure its nonzero
/// state into `density` (a row-nonzero bitmap over the feature table).
/// This is the measurement point the sparsity-adaptive dispatch layer
/// piggybacks on — the bitmap stays exact across a whole update stream
/// without ever re-scanning the table (seed it once with
/// [`tagnn_tensor::RowBitmap::from_rows`] at warm-up).
///
/// The bitmap tracks the *feature table*, which persists across vertex
/// deactivation, so `AddVertex`/`RemoveVertex` deliberately leave it
/// untouched — exactly like the table itself.
pub fn try_apply_updates_tracked(
    base: &Snapshot,
    updates: &[GraphUpdate],
    density: &mut tagnn_tensor::RowBitmap,
) -> Result<Snapshot, GraphError> {
    let next = try_apply_updates(base, updates)?;
    if density.rows() != base.num_vertices() {
        density.resize(base.num_vertices());
    }
    for u in updates {
        if let GraphUpdate::MutateFeature { v, feature } = u {
            density.update_row(*v as usize, feature);
        }
    }
    Ok(next)
}

/// Computes a minimal update batch that turns `from` into `to`:
/// vertex activations/deactivations, edge insertions/removals, and feature
/// mutations — the inverse of [`apply_updates`], useful for recording an
/// update stream from externally produced snapshots (e.g. loaded data).
///
/// # Panics
/// Panics if the snapshots disagree on universe size or feature dimension.
pub fn diff_snapshots(from: &Snapshot, to: &Snapshot) -> Vec<GraphUpdate> {
    assert_eq!(
        from.num_vertices(),
        to.num_vertices(),
        "universe size mismatch"
    );
    assert_eq!(from.feature_dim(), to.feature_dim(), "feature dim mismatch");
    let n = from.num_vertices();
    let mut updates = Vec::new();

    // Vertex activity first, so edge updates land on active endpoints.
    for v in 0..n as VertexId {
        match (from.is_active(v), to.is_active(v)) {
            (false, true) => updates.push(GraphUpdate::AddVertex { v }),
            (true, false) => updates.push(GraphUpdate::RemoveVertex { v }),
            _ => {}
        }
    }

    // Edge set difference via merge over the sorted neighbour lists.
    for v in 0..n as VertexId {
        let a = from.neighbors(v);
        let b = to.neighbors(v);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                }
                (Some(&x), Some(&y)) if x < y => {
                    updates.push(GraphUpdate::RemoveEdge { src: v, dst: x });
                    i += 1;
                }
                (Some(_), Some(&y)) => {
                    updates.push(GraphUpdate::AddEdge { src: v, dst: y });
                    j += 1;
                }
                (Some(&x), None) => {
                    updates.push(GraphUpdate::RemoveEdge { src: v, dst: x });
                    i += 1;
                }
                (None, Some(&y)) => {
                    updates.push(GraphUpdate::AddEdge { src: v, dst: y });
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
    }

    // Feature mutations — inactive vertices' rows persist in the table
    // (they become visible on re-activation), so compare every row.
    for v in 0..n as VertexId {
        if from.feature(v) != to.feature(v) {
            updates.push(GraphUpdate::MutateFeature {
                v,
                feature: to.feature(v).to_vec(),
            });
        }
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagnn_tensor::DenseMatrix;

    fn base() -> Snapshot {
        let csr = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        Snapshot::fully_active(csr, DenseMatrix::zeros(4, 2))
    }

    #[test]
    fn add_edge_appears() {
        let next = apply_updates(&base(), &[GraphUpdate::AddEdge { src: 3, dst: 0 }]);
        assert!(next.csr().has_edge(3, 0));
        assert_eq!(next.num_edges(), 4);
    }

    #[test]
    fn remove_edge_disappears() {
        let next = apply_updates(&base(), &[GraphUpdate::RemoveEdge { src: 0, dst: 1 }]);
        assert!(!next.csr().has_edge(0, 1));
        assert_eq!(next.num_edges(), 2);
    }

    #[test]
    fn remove_vertex_drops_incident_edges() {
        let next = apply_updates(&base(), &[GraphUpdate::RemoveVertex { v: 1 }]);
        assert!(!next.is_active(1));
        assert!(!next.csr().has_edge(0, 1));
        assert!(!next.csr().has_edge(1, 2));
        assert_eq!(next.num_edges(), 1); // only (2,3) survives
    }

    #[test]
    fn readd_vertex_restores_presence_not_edges() {
        let removed = apply_updates(&base(), &[GraphUpdate::RemoveVertex { v: 1 }]);
        let restored = apply_updates(&removed, &[GraphUpdate::AddVertex { v: 1 }]);
        assert!(restored.is_active(1));
        assert!(
            !restored.csr().has_edge(0, 1),
            "edges do not come back automatically"
        );
    }

    #[test]
    fn mutate_feature_updates_row() {
        let next = apply_updates(
            &base(),
            &[GraphUpdate::MutateFeature {
                v: 2,
                feature: vec![1.0, -1.0],
            }],
        );
        assert_eq!(next.feature(2), &[1.0, -1.0]);
        assert_eq!(next.feature(0), &[0.0, 0.0]);
    }

    #[test]
    fn idempotent_duplicate_add() {
        let next = apply_updates(
            &base(),
            &[
                GraphUpdate::AddEdge { src: 0, dst: 1 },
                GraphUpdate::AddEdge { src: 0, dst: 1 },
            ],
        );
        assert_eq!(next.num_edges(), 3);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn rejects_bad_feature_dim() {
        let _ = apply_updates(
            &base(),
            &[GraphUpdate::MutateFeature {
                v: 0,
                feature: vec![1.0],
            }],
        );
    }

    #[test]
    fn try_apply_rejects_out_of_universe_ids_with_typed_errors() {
        use crate::error::GraphError;
        let b = base();
        assert_eq!(
            try_apply_updates(&b, &[GraphUpdate::AddEdge { src: 0, dst: 9 }]),
            Err(GraphError::EdgeEndpointOutOfUniverse {
                src: 0,
                dst: 9,
                universe: 4
            })
        );
        assert_eq!(
            try_apply_updates(&b, &[GraphUpdate::AddVertex { v: 4 }]),
            Err(GraphError::VertexOutOfUniverse { v: 4, universe: 4 })
        );
        assert_eq!(
            try_apply_updates(
                &b,
                &[GraphUpdate::MutateFeature {
                    v: 0,
                    feature: vec![1.0]
                }]
            ),
            Err(GraphError::FeatureLenMismatch {
                v: 0,
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn try_apply_matches_panicking_apply_on_valid_input() {
        let b = base();
        let updates = [
            GraphUpdate::AddEdge { src: 3, dst: 0 },
            GraphUpdate::RemoveVertex { v: 2 },
        ];
        assert_eq!(
            try_apply_updates(&b, &updates).unwrap(),
            apply_updates(&b, &updates)
        );
    }

    #[test]
    fn diff_roundtrips_through_apply() {
        let b = base();
        let target = apply_updates(
            &b,
            &[
                GraphUpdate::AddEdge { src: 3, dst: 1 },
                GraphUpdate::RemoveEdge { src: 0, dst: 1 },
                GraphUpdate::MutateFeature {
                    v: 2,
                    feature: vec![5.0, 6.0],
                },
                GraphUpdate::RemoveVertex { v: 1 },
            ],
        );
        let diff = diff_snapshots(&b, &target);
        let rebuilt = apply_updates(&b, &diff);
        assert_eq!(rebuilt, target);
    }

    #[test]
    fn diff_of_identical_snapshots_is_empty() {
        let b = base();
        assert!(diff_snapshots(&b, &b).is_empty());
    }

    #[test]
    fn diff_detects_each_update_kind() {
        let b = base();
        let with_edge = apply_updates(&b, &[GraphUpdate::AddEdge { src: 3, dst: 0 }]);
        let d = diff_snapshots(&b, &with_edge);
        assert_eq!(d, vec![GraphUpdate::AddEdge { src: 3, dst: 0 }]);

        let with_feature = apply_updates(
            &b,
            &[GraphUpdate::MutateFeature {
                v: 1,
                feature: vec![9.0, 9.0],
            }],
        );
        let d = diff_snapshots(&b, &with_feature);
        assert_eq!(
            d,
            vec![GraphUpdate::MutateFeature {
                v: 1,
                feature: vec![9.0, 9.0]
            }]
        );
    }

    #[test]
    fn tracked_apply_keeps_the_density_bitmap_exact() {
        use tagnn_tensor::RowBitmap;
        let b = base(); // 4 vertices, all-zero 4x2 features
        let mut bm = RowBitmap::from_rows(4, 2, b.features().as_slice());
        assert_eq!(bm.nnz_rows(), 0);
        let next = try_apply_updates_tracked(
            &b,
            &[
                GraphUpdate::MutateFeature {
                    v: 2,
                    feature: vec![1.0, 0.0],
                },
                GraphUpdate::RemoveVertex { v: 1 },
            ],
            &mut bm,
        )
        .unwrap();
        assert_eq!(bm.nnz_rows(), 1);
        assert!(bm.get(2));
        // The incrementally maintained bitmap matches a full re-scan.
        let rescan = RowBitmap::from_rows(4, 2, next.features().as_slice());
        assert_eq!(rescan.nnz_rows(), bm.nnz_rows());
        // Mutating back to zero clears the bit.
        let _ = try_apply_updates_tracked(
            &next,
            &[GraphUpdate::MutateFeature {
                v: 2,
                feature: vec![0.0, 0.0],
            }],
            &mut bm,
        )
        .unwrap();
        assert_eq!(bm.nnz_rows(), 0);
    }

    #[test]
    fn primary_vertex_extraction() {
        assert_eq!(GraphUpdate::AddEdge { src: 3, dst: 1 }.primary_vertex(), 3);
        assert_eq!(
            GraphUpdate::MutateFeature {
                v: 2,
                feature: vec![]
            }
            .primary_vertex(),
            2
        );
    }
}
