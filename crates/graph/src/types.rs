//! Core identifier types and the vertex classification taxonomy of §3.1.

use serde::{Deserialize, Serialize};

/// Vertex identifier. Dynamic graphs in the paper top out at ~2.3 M vertices
/// (Flickr), so `u32` halves index memory versus `usize` with headroom.
pub type VertexId = u32;

/// Index of a snapshot within a [`crate::DynamicGraph`] (the paper's
/// timestamp `t`).
pub type SnapshotId = u32;

/// Classification of a vertex across a window of consecutive snapshots
/// (paper §3.1).
///
/// The taxonomy is hierarchical: the unaffected set is a subset of the
/// stable set. A vertex is
///
/// * **Unaffected** — its feature, its neighbour set, *and* all its
///   neighbours' features are identical in every snapshot of the window.
///   Its GNN output is byte-identical across the window, so TaGNN loads and
///   computes it exactly once per layer.
/// * **Stable** — its own feature is unchanged but its neighbourhood (the
///   neighbour IDs or their features) changed somewhere in the window.
///   Stable vertices act as *cut vertices* separating the affected region
///   from the unaffected one, and serve as DFS roots for affected-subgraph
///   extraction.
/// * **Affected** — its own feature changed, or the vertex is absent from
///   some snapshot of the window. Everything about it must be recomputed per
///   snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VertexClass {
    /// Identical feature, neighbours, and neighbour features across the
    /// window: compute once.
    Unaffected,
    /// Unchanged feature but changed neighbourhood: recompute aggregation,
    /// DFS root for the affected subgraph.
    Stable,
    /// Changed feature or presence: fully recompute.
    Affected,
}

impl VertexClass {
    /// Whether the vertex belongs to the stable *superset* (stable or
    /// unaffected), i.e. its own feature never changes within the window.
    #[inline]
    pub fn is_feature_stable(self) -> bool {
        matches!(self, VertexClass::Unaffected | VertexClass::Stable)
    }

    /// Whether the vertex participates in the affected subgraph (stable
    /// roots and affected vertices do; unaffected vertices do not).
    #[inline]
    pub fn in_affected_subgraph(self) -> bool {
        matches!(self, VertexClass::Stable | VertexClass::Affected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unaffected_is_feature_stable_but_not_in_subgraph() {
        assert!(VertexClass::Unaffected.is_feature_stable());
        assert!(!VertexClass::Unaffected.in_affected_subgraph());
    }

    #[test]
    fn stable_is_both() {
        assert!(VertexClass::Stable.is_feature_stable());
        assert!(VertexClass::Stable.in_affected_subgraph());
    }

    #[test]
    fn affected_is_only_in_subgraph() {
        assert!(!VertexClass::Affected.is_feature_stable());
        assert!(VertexClass::Affected.in_affected_subgraph());
    }
}
