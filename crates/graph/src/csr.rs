//! Compressed Sparse Row adjacency for a single graph snapshot.

use crate::types::VertexId;
use serde::{Deserialize, Serialize};

/// Static CSR adjacency: `offsets[v]..offsets[v+1]` indexes the (sorted)
/// out-neighbours of `v` in `targets`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR from an edge list over `num_vertices` vertices.
    /// Duplicate edges are collapsed; neighbour lists come out sorted.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut degree = vec![0usize; num_vertices];
        for &(s, t) in edges {
            assert!(
                (s as usize) < num_vertices && (t as usize) < num_vertices,
                "edge endpoint out of range"
            );
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0);
        for v in 0..num_vertices {
            offsets.push(offsets[v] + degree[v]);
        }
        let mut targets = vec![0 as VertexId; edges.len()];
        let mut cursor = offsets[..num_vertices].to_vec();
        for &(s, t) in edges {
            targets[cursor[s as usize]] = t;
            cursor[s as usize] += 1;
        }
        // Sort and dedup each neighbour list, then re-pack.
        let mut packed_targets = Vec::with_capacity(targets.len());
        let mut packed_offsets = Vec::with_capacity(num_vertices + 1);
        packed_offsets.push(0);
        for v in 0..num_vertices {
            let list = &mut targets[offsets[v]..offsets[v + 1]];
            list.sort_unstable();
            let mut prev: Option<VertexId> = None;
            for &t in list.iter() {
                if prev != Some(t) {
                    packed_targets.push(t);
                    prev = Some(t);
                }
            }
            packed_offsets.push(packed_targets.len());
        }
        Self {
            offsets: packed_offsets,
            targets: packed_targets,
        }
    }

    /// An empty graph over `num_vertices` isolated vertices.
    pub fn empty(num_vertices: usize) -> Self {
        Self {
            offsets: vec![0; num_vertices + 1],
            targets: Vec::new(),
        }
    }

    /// Number of vertices (including isolated ones).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Sorted out-neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        debug_assert!(v < self.num_vertices());
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Whether the directed edge `(s, t)` exists (binary search).
    pub fn has_edge(&self, s: VertexId, t: VertexId) -> bool {
        self.neighbors(s).binary_search(&t).is_ok()
    }

    /// Start/end offsets of `v`'s neighbour range — what the MSDL
    /// `Fetch_Offsets` stage reads from the `Vertex_Offset` array.
    #[inline]
    pub fn offset_range(&self, v: VertexId) -> (usize, usize) {
        let v = v as usize;
        (self.offsets[v], self.offsets[v + 1])
    }

    /// Iterates over all edges as `(src, dst)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&t| (v, t)))
    }

    /// In-memory footprint in bytes (offset array + target array), used for
    /// the storage-overhead comparison of Fig. 13(b).
    pub fn storage_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn builds_sorted_neighbor_lists() {
        let g = Csr::from_edges(3, &[(0, 2), (0, 1)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn collapses_duplicate_edges() {
        let g = Csr::from_edges(2, &[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn degree_and_counts() {
        let g = sample();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn has_edge_works() {
        let g = sample();
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(3, 2));
    }

    #[test]
    fn empty_graph_has_isolated_vertices() {
        let g = Csr::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.neighbors(4), &[] as &[VertexId]);
    }

    #[test]
    fn edges_iterator_roundtrips() {
        let g = sample();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        let rebuilt = Csr::from_edges(4, &edges);
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn offset_range_matches_degree() {
        let g = sample();
        let (s, e) = g.offset_range(0);
        assert_eq!(e - s, g.degree(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let _ = Csr::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn storage_bytes_scales_with_edges() {
        let small = Csr::from_edges(4, &[(0, 1)]);
        let large = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(large.storage_bytes() > small.storage_bytes());
    }
}
