//! Incremental plan maintenance: stream the MSDL frontend as deltas
//! instead of re-planning every window.
//!
//! The from-scratch [`WindowPlanner`](crate::plan::WindowPlanner) pays
//! `O(K·V·D + K·E)` per sealed window, dominated by the classification
//! stage's feature and adjacency comparisons across all K snapshots —
//! even when consecutive windows overlap almost entirely. The
//! [`PlanMaintainer`] instead absorbs each tick's update batch as it
//! arrives and maintains the classification state incrementally, so the
//! window-boundary [`PlanMaintainer::seal`] only has to combine bitmaps
//! (`O(V + E₀)`) and run the output-proportional extraction/packing
//! stages that any plan must materialise anyway.
//!
//! # The monotone-instability invariant
//!
//! Windows tumble (they never share snapshots), so every comparison in
//! [`try_classify_window`](crate::classify::try_classify_window) is
//! against the window's *first* snapshot. Within one window, once a
//! vertex's activity, feature row, or neighbour list deviates from
//! snapshot 0 it can "revert" in a later snapshot, but the window-level
//! predicate (*equal in all snapshots*) is already false — instability is
//! monotone. The [`IncrementalClassifier`] therefore keeps two grow-only
//! bitmaps, `feature_unstable` and `topo_unstable`, and re-compares only
//! the vertices actually dirtied by a tick's updates.
//!
//! # Dirty-set rules
//!
//! Per [`GraphUpdate`], the vertices whose window-level stability can
//! change at this tick:
//!
//! * `AddEdge`/`RemoveEdge { src }` → `src` is topology-dirty;
//! * `MutateFeature { v }` → `v` is feature-dirty;
//! * `AddVertex`/`RemoveVertex { v }` → `v` is feature- and
//!   topology-dirty, **and** every in-neighbour of `v` in the previous
//!   snapshot is topology-dirty: materialisation filters edges by
//!   endpoint activity, so deactivating `v` silently removes `x → v`
//!   from `x`'s neighbour list without `x` appearing in the update batch.
//!   (Re-activation does not resurrect dropped edges, so the previous
//!   snapshot's in-neighbours are the complete suspect set.)
//!
//! Over-approximating the dirty set is safe — dirty vertices are settled
//! by exact comparison against snapshot 0 — while under-approximating
//! would be a correctness bug. The randomized differential test
//! (`tests/incremental_differential.rs`) pins bit-identity of every
//! incrementally sealed plan against the from-scratch oracle.
//!
//! # Fallback to scratch
//!
//! [`PlanMaintainer::seal`] returns `None` — and counts a fallback —
//! whenever its state cannot vouch for the window: the maintainer was
//! attached mid-window, a tick was absorbed out of order, or the sealed
//! snapshot count disagrees with the ticks absorbed. The caller then
//! plans from scratch; serving layers surface the fallback rate so a
//! wiring regression is loud, not silent.

use crate::classify::WindowClassification;
use crate::delta::GraphUpdate;
use crate::plan::{PlanSource, WindowPlan};
use crate::snapshot::Snapshot;
use crate::types::{VertexClass, VertexId};
use serde::{Deserialize, Serialize};

/// The patch one absorbed tick applied to the maintained plan state —
/// the "plan delta" streamed per tick instead of a per-window rebuild.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanDelta {
    /// 0-based tick (snapshot index) within the forming window.
    pub tick: usize,
    /// Vertices whose feature row was re-compared against snapshot 0.
    pub feature_dirty: usize,
    /// Vertices whose neighbour list was re-compared against snapshot 0.
    pub topo_dirty: usize,
    /// Bitmap flips this tick (vertices newly marked unstable) — the
    /// patch size actually applied to the maintained state.
    pub newly_unstable: usize,
}

/// Cumulative [`PlanMaintainer`] counters, surfaced by the serving layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintainerStats {
    /// Ticks absorbed across all windows.
    pub ticks_absorbed: u64,
    /// Windows sealed incrementally.
    pub windows_sealed: u64,
    /// Seals that could not be served incrementally (caller fell back to
    /// the scratch planner).
    pub fallbacks: u64,
    /// Total dirty vertices re-compared across all ticks.
    pub dirty_vertices: u64,
    /// Total bitmap flips (patched vertices) across all ticks.
    pub patched_vertices: u64,
}

/// Exported forming-window classifier state — the checkpoint surface for
/// [`IncrementalClassifier`]. Field-for-field image of the private state
/// so a restored classifier continues sealing bit-identical plans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassifierStateExport {
    /// Snapshots absorbed so far in the forming window.
    pub ticks: u64,
    /// Monotone feature-instability bitmap.
    pub feature_unstable: Vec<bool>,
    /// Monotone topology-instability bitmap.
    pub topo_unstable: Vec<bool>,
    /// Whether the forming window cannot be vouched for.
    pub poisoned: bool,
}

/// Exported [`PlanMaintainer`] state: the forming-window classifier (if
/// one is in flight) plus the cumulative counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaintainerState {
    /// Forming-window classifier state, `None` between windows.
    pub forming: Option<ClassifierStateExport>,
    /// Cumulative maintainer counters.
    pub stats: MaintainerStats,
}

#[derive(Debug)]
struct ClassifierState {
    /// Snapshots absorbed so far in the forming window.
    ticks: usize,
    /// Monotone: vertex deviated from snapshot 0 in activity or feature.
    feature_unstable: Vec<bool>,
    /// Monotone: vertex's neighbour list deviated from snapshot 0.
    topo_unstable: Vec<bool>,
    /// State cannot vouch for this window (attached mid-window, tick gap,
    /// or universe change) — seal must fall back.
    poisoned: bool,
}

/// Maintains window-classification state from per-tick update batches
/// (stage 1 of the MSDL frontend, made incremental).
#[derive(Debug, Default)]
pub struct IncrementalClassifier {
    state: Option<ClassifierState>,
}

impl IncrementalClassifier {
    /// A classifier with no forming window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one sealed tick. `sealed` is the forming window's
    /// snapshots so far (the last entry is the snapshot this tick
    /// produced) and `updates` the batch that produced it.
    ///
    /// Cost: `O(V)` bookkeeping plus exact re-comparison of the dirty
    /// vertices only; ticks with vertex churn add one scan of the
    /// previous snapshot's edges to find silent in-neighbour edits.
    pub fn absorb(&mut self, sealed: &[Snapshot], updates: &[GraphUpdate]) -> PlanDelta {
        let Some(tick) = sealed.len().checked_sub(1) else {
            // No snapshot to absorb; nothing to maintain.
            return PlanDelta::default();
        };
        let newest = &sealed[tick];
        let n = newest.num_vertices();

        if tick == 0 {
            // Window start: snapshot 0 is the reference everything is
            // compared against. A vertex inactive here can never satisfy
            // "active in all snapshots", so it is feature-unstable from
            // the outset; topology is vacuously stable against itself.
            self.state = Some(ClassifierState {
                ticks: 1,
                feature_unstable: (0..n as VertexId).map(|v| !newest.is_active(v)).collect(),
                topo_unstable: vec![false; n],
                poisoned: false,
            });
            return PlanDelta::default();
        }

        let state = match self.state.as_mut() {
            Some(s) => s,
            None => {
                // Attached mid-window: earlier ticks were never absorbed,
                // so this window cannot be vouched for.
                self.state = Some(ClassifierState {
                    ticks: tick + 1,
                    feature_unstable: Vec::new(),
                    topo_unstable: Vec::new(),
                    poisoned: true,
                });
                return PlanDelta {
                    tick,
                    ..PlanDelta::default()
                };
            }
        };
        if state.poisoned || state.ticks != tick || state.feature_unstable.len() != n {
            state.poisoned = true;
            state.ticks = tick + 1;
            return PlanDelta {
                tick,
                ..PlanDelta::default()
            };
        }
        state.ticks = tick + 1;

        let snap0 = &sealed[0];
        let prev = &sealed[tick - 1];
        let mut feat_dirty = vec![false; n];
        let mut topo_dirty = vec![false; n];
        let mut churned: Vec<VertexId> = Vec::new();
        for u in updates {
            match u {
                GraphUpdate::AddEdge { src, .. } | GraphUpdate::RemoveEdge { src, .. } => {
                    topo_dirty[*src as usize] = true;
                }
                GraphUpdate::MutateFeature { v, .. } => feat_dirty[*v as usize] = true,
                GraphUpdate::AddVertex { v } | GraphUpdate::RemoveVertex { v } => {
                    feat_dirty[*v as usize] = true;
                    topo_dirty[*v as usize] = true;
                    churned.push(*v);
                }
            }
        }
        if !churned.is_empty() {
            let mut is_churned = vec![false; n];
            for &v in &churned {
                is_churned[v as usize] = true;
            }
            // Churn edits in-neighbours' adjacency without naming them in
            // the batch (their edges to the churned vertex are dropped by
            // the activity filter): mark every previous-snapshot
            // in-neighbour a topology suspect.
            for v in 0..n as VertexId {
                if !topo_dirty[v as usize]
                    && prev.neighbors(v).iter().any(|&u| is_churned[u as usize])
                {
                    topo_dirty[v as usize] = true;
                }
            }
        }

        let mut delta = PlanDelta {
            tick,
            ..PlanDelta::default()
        };
        for v in 0..n {
            let vid = v as VertexId;
            if feat_dirty[v] && !state.feature_unstable[v] {
                delta.feature_dirty += 1;
                if !newest.is_active(vid) || newest.feature(vid) != snap0.feature(vid) {
                    state.feature_unstable[v] = true;
                    delta.newly_unstable += 1;
                }
            }
            if topo_dirty[v] && !state.topo_unstable[v] {
                delta.topo_dirty += 1;
                if newest.neighbors(vid) != snap0.neighbors(vid) {
                    state.topo_unstable[v] = true;
                    delta.newly_unstable += 1;
                }
            }
        }
        delta
    }

    /// Combines the maintained bitmaps into final per-vertex classes —
    /// pass 2 of [`crate::classify::try_classify_window`], `O(V + E₀)`.
    /// Consumes the forming-window state; `None` when it cannot vouch for
    /// the window (fallback to scratch).
    fn seal_classes(&mut self, snaps: &[&Snapshot]) -> Option<Vec<VertexClass>> {
        let state = self.state.take()?;
        if state.poisoned || state.ticks != snaps.len() {
            return None;
        }
        let n = snaps[0].num_vertices();
        if state.feature_unstable.len() != n {
            return None;
        }
        let classes = (0..n)
            .map(|v| {
                if state.feature_unstable[v] {
                    VertexClass::Affected
                } else if !state.topo_unstable[v]
                    && snaps[0]
                        .neighbors(v as VertexId)
                        .iter()
                        .all(|&u| !state.feature_unstable[u as usize])
                {
                    VertexClass::Unaffected
                } else {
                    VertexClass::Stable
                }
            })
            .collect();
        Some(classes)
    }

    /// Drops any forming-window state (stream reset).
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Snapshots the forming-window state (`None` between windows).
    pub fn export_state(&self) -> Option<ClassifierStateExport> {
        self.state.as_ref().map(|s| ClassifierStateExport {
            ticks: s.ticks as u64,
            feature_unstable: s.feature_unstable.clone(),
            topo_unstable: s.topo_unstable.clone(),
            poisoned: s.poisoned,
        })
    }

    /// Restores a previously exported forming-window state, replacing
    /// whatever this classifier held.
    pub fn import_state(&mut self, state: Option<ClassifierStateExport>) {
        self.state = state.map(|s| ClassifierState {
            ticks: s.ticks as usize,
            feature_unstable: s.feature_unstable,
            topo_unstable: s.topo_unstable,
            poisoned: s.poisoned,
        });
    }
}

/// Streams the MSDL frontend: absorbs per-tick deltas during the window
/// and seals a ready [`WindowPlan`] — bit-identical to the from-scratch
/// planner's — at the window boundary.
///
/// Stage split: the [`IncrementalClassifier`] carries the only state
/// whose from-scratch cost scales with `K·V·D`; the affected-subgraph
/// extraction and O-CSR packing stages run at seal through the exact
/// code path the scratch planner uses (`WindowPlan::assemble`), because
/// their cost is proportional to the output that must be materialised
/// regardless (and sharing the path makes divergence impossible anywhere
/// but classification).
#[derive(Debug, Default)]
pub struct PlanMaintainer {
    classifier: IncrementalClassifier,
    stats: MaintainerStats,
}

impl PlanMaintainer {
    /// A maintainer with no forming window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative maintainer counters.
    pub fn stats(&self) -> MaintainerStats {
        self.stats
    }

    /// Absorbs one sealed tick (see [`IncrementalClassifier::absorb`]).
    pub fn absorb(&mut self, sealed: &[Snapshot], updates: &[GraphUpdate]) -> PlanDelta {
        let delta = self.classifier.absorb(sealed, updates);
        self.stats.ticks_absorbed += 1;
        self.stats.dirty_vertices += (delta.feature_dirty + delta.topo_dirty) as u64;
        self.stats.patched_vertices += delta.newly_unstable as u64;
        delta
    }

    /// Seals the forming window into a ready [`WindowPlan`] stamped
    /// [`PlanSource::Incremental`]. `snaps` must be exactly the sealed
    /// snapshots absorbed; `index` the window index the from-scratch
    /// planner would use (0 for a rolled serving window).
    ///
    /// Returns `None` — counting a fallback — when the maintained state
    /// cannot vouch for the window; the caller must then plan from
    /// scratch. Either way the forming-window state is consumed, so the
    /// next absorbed tick starts a fresh window.
    pub fn seal(&mut self, snaps: &[&Snapshot], index: usize) -> Option<WindowPlan> {
        let started = std::time::Instant::now();
        if snaps.is_empty() {
            self.classifier.reset();
            self.stats.fallbacks += 1;
            return None;
        }
        match self.classifier.seal_classes(snaps) {
            Some(classes) => {
                let cls = WindowClassification::from_parts(classes, snaps.len());
                let mut plan = WindowPlan::assemble(snaps, index, cls, started);
                plan.set_source(PlanSource::Incremental);
                self.stats.windows_sealed += 1;
                Some(plan)
            }
            None => {
                self.stats.fallbacks += 1;
                None
            }
        }
    }

    /// Drops any forming-window state (stream reset).
    pub fn reset(&mut self) {
        self.classifier.reset();
    }

    /// Snapshots the maintainer: forming-window classifier state plus
    /// cumulative counters — the serving checkpoint surface.
    pub fn export_state(&self) -> MaintainerState {
        MaintainerState {
            forming: self.classifier.export_state(),
            stats: self.stats,
        }
    }

    /// Restores a previously exported maintainer state, replacing this
    /// maintainer's forming window and counters.
    pub fn import_state(&mut self, state: MaintainerState) {
        self.classifier.import_state(state.forming);
        self.stats = state.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{diff_snapshots, try_apply_updates};
    use crate::dynamic::DynamicGraph;
    use crate::plan::WindowPlanner;

    /// Drives a maintainer over `graph` exactly as a window roller would:
    /// per-tick diffs absorbed as they arrive, seal at every K-th tick.
    fn roll(
        graph: &DynamicGraph,
        k: usize,
        maintainer: &mut PlanMaintainer,
    ) -> Vec<Option<WindowPlan>> {
        let mut plans = Vec::new();
        let mut sealed: Vec<Snapshot> = Vec::new();
        let mut prev = crate::snapshot::Snapshot::fully_active(
            crate::csr::Csr::empty(graph.num_vertices()),
            tagnn_tensor::DenseMatrix::zeros(graph.num_vertices(), graph.feature_dim()),
        );
        for snap in graph.snapshots() {
            let updates = diff_snapshots(&prev, snap);
            let next = try_apply_updates(&prev, &updates).unwrap();
            assert_eq!(&next, snap, "replay must be exact");
            sealed.push(next.clone());
            maintainer.absorb(&sealed, &updates);
            prev = next;
            if sealed.len() == k {
                let refs: Vec<&Snapshot> = sealed.iter().collect();
                plans.push(maintainer.seal(&refs, 0));
                sealed.clear();
            }
        }
        if !sealed.is_empty() {
            let refs: Vec<&Snapshot> = sealed.iter().collect();
            plans.push(maintainer.seal(&refs, 0));
        }
        plans
    }

    #[test]
    fn sealed_plans_match_scratch_on_tiny_graph() {
        let g = crate::generate::GeneratorConfig::tiny().generate();
        let k = 3;
        let mut m = PlanMaintainer::new();
        let plans = roll(&g, k, &mut m);
        assert_eq!(m.stats().fallbacks, 0);
        let planner = WindowPlanner::new(k);
        for (plan, batch) in plans.iter().zip(g.batches(k)) {
            let plan = plan.as_ref().expect("sealed incrementally");
            let refs: Vec<&Snapshot> = batch.iter().collect();
            let scratch = planner.try_plan_window(&refs, 0).unwrap();
            assert_eq!(plan, &scratch, "incremental plan must be bit-identical");
            assert_eq!(plan.fingerprint(), scratch.fingerprint());
            assert_eq!(plan.source(), PlanSource::Incremental);
            assert_eq!(scratch.source(), PlanSource::Scratch);
        }
    }

    #[test]
    fn mid_window_attach_falls_back_then_recovers() {
        let g = crate::generate::GeneratorConfig::tiny().generate(); // 6 snaps
        let k = 3;
        let mut m = PlanMaintainer::new();
        let mut sealed: Vec<Snapshot> = Vec::new();
        let mut prev = crate::snapshot::Snapshot::fully_active(
            crate::csr::Csr::empty(g.num_vertices()),
            tagnn_tensor::DenseMatrix::zeros(g.num_vertices(), g.feature_dim()),
        );
        let mut plans = Vec::new();
        for (i, snap) in g.snapshots().iter().enumerate() {
            let updates = diff_snapshots(&prev, snap);
            sealed.push(snap.clone());
            if i > 0 {
                // Tick 0 of the first window is never absorbed.
                m.absorb(&sealed, &updates);
            }
            prev = snap.clone();
            if sealed.len() == k {
                let refs: Vec<&Snapshot> = sealed.iter().collect();
                plans.push(m.seal(&refs, 0));
                sealed.clear();
            }
        }
        assert!(plans[0].is_none(), "unvouched window must fall back");
        assert!(plans[1].is_some(), "next window seals incrementally");
        assert_eq!(m.stats().fallbacks, 1);
        assert_eq!(m.stats().windows_sealed, 1);
    }

    #[test]
    fn deltas_shrink_with_quiet_ticks() {
        let s0 = crate::snapshot::Snapshot::fully_active(
            crate::csr::Csr::from_edges(4, &[(0, 1), (1, 2)]),
            tagnn_tensor::DenseMatrix::zeros(4, 2),
        );
        let mut m = PlanMaintainer::new();
        let d0 = m.absorb(std::slice::from_ref(&s0), &[]);
        assert_eq!(d0, PlanDelta::default());
        // A quiet tick dirties nothing.
        let sealed = vec![s0.clone(), s0.clone()];
        let d1 = m.absorb(&sealed, &[]);
        assert_eq!(d1.feature_dirty + d1.topo_dirty, 0);
        assert_eq!(d1.tick, 1);
        // One feature mutation re-compares exactly one vertex.
        let u = GraphUpdate::MutateFeature {
            v: 2,
            feature: vec![9.0, 9.0],
        };
        let s2 = try_apply_updates(&s0, std::slice::from_ref(&u)).unwrap();
        let sealed = vec![s0.clone(), s0.clone(), s2];
        let d2 = m.absorb(&sealed, &[u]);
        assert_eq!(d2.feature_dirty, 1);
        assert_eq!(d2.newly_unstable, 1);
        let refs: Vec<&Snapshot> = sealed.iter().collect();
        let plan = m.seal(&refs, 0).expect("vouched window");
        let scratch = WindowPlanner::new(3).try_plan_window(&refs, 0).unwrap();
        assert_eq!(plan, scratch);
    }

    #[test]
    fn exported_state_resumes_mid_window_bit_identically() {
        // Export after every tick of a forming window; a fresh maintainer
        // importing the state and absorbing the remaining ticks must seal
        // the exact plan the uninterrupted maintainer seals.
        let g = crate::generate::GeneratorConfig::tiny().generate();
        let k = 3;
        let mut sealed: Vec<Snapshot> = Vec::new();
        let mut prev = crate::snapshot::Snapshot::fully_active(
            crate::csr::Csr::empty(g.num_vertices()),
            tagnn_tensor::DenseMatrix::zeros(g.num_vertices(), g.feature_dim()),
        );
        let mut ticks: Vec<(Vec<Snapshot>, Vec<GraphUpdate>)> = Vec::new();
        for snap in g.snapshots().iter().take(k) {
            let updates = diff_snapshots(&prev, snap);
            sealed.push(snap.clone());
            ticks.push((sealed.clone(), updates));
            prev = snap.clone();
        }
        for cut in 1..k {
            let mut a = PlanMaintainer::new();
            let mut b = PlanMaintainer::new();
            for (sealed, updates) in &ticks[..cut] {
                a.absorb(sealed, updates);
            }
            let exported = a.export_state();
            assert!(exported.forming.is_some(), "window is forming at cut {cut}");
            b.import_state(exported.clone());
            assert_eq!(b.export_state(), exported, "round trip at cut {cut}");
            for (sealed, updates) in &ticks[cut..] {
                a.absorb(sealed, updates);
                b.absorb(sealed, updates);
            }
            let refs: Vec<&Snapshot> = ticks[k - 1].0.iter().collect();
            let pa = a.seal(&refs, 0).expect("vouched");
            let pb = b.seal(&refs, 0).expect("vouched after import");
            assert_eq!(pa, pb, "restored maintainer must seal identical plans");
        }
    }

    #[test]
    fn vertex_churn_marks_silent_in_neighbors() {
        // 0 -> 1; removing v1 silently edits v0's adjacency.
        let s0 = crate::snapshot::Snapshot::fully_active(
            crate::csr::Csr::from_edges(3, &[(0, 1)]),
            tagnn_tensor::DenseMatrix::zeros(3, 2),
        );
        let u = GraphUpdate::RemoveVertex { v: 1 };
        let s1 = try_apply_updates(&s0, std::slice::from_ref(&u)).unwrap();
        let mut m = PlanMaintainer::new();
        m.absorb(std::slice::from_ref(&s0), &[]);
        let sealed = vec![s0.clone(), s1];
        let d = m.absorb(&sealed, &[u]);
        assert!(
            d.topo_dirty >= 2,
            "v1 (churned) and v0 (in-neighbour) must both be re-compared, got {d:?}"
        );
        let refs: Vec<&Snapshot> = sealed.iter().collect();
        let plan = m.seal(&refs, 0).expect("vouched window");
        let scratch = WindowPlanner::new(2).try_plan_window(&refs, 0).unwrap();
        assert_eq!(plan, scratch);
    }
}
