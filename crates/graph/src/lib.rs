#![warn(missing_docs)]

//! Dynamic-graph substrate for TaGNN.
//!
//! This crate provides everything the paper's execution model needs from the
//! graph side:
//!
//! * [`csr::Csr`] — static per-snapshot adjacency in Compressed Sparse Row
//!   form (the paper stores each snapshot in CSR, §2.1);
//! * [`snapshot::Snapshot`] / [`dynamic::DynamicGraph`] — feature-carrying
//!   snapshots and their temporal sequence with sliding-window batching;
//! * [`delta`] — the update events (edge/vertex/feature churn) that evolve a
//!   snapshot into its successor;
//! * [`error::GraphError`] — typed validation errors behind the fallible
//!   `try_new`/`try_apply_updates` constructors (the ingestion-safe path
//!   for servers that must reject malformed events instead of aborting);
//! * [`classify`] — the window-level classification of vertices into
//!   *unaffected*, *stable*, and *affected* (paper §3.1);
//! * [`subgraph`] — affected-subgraph extraction by concurrent DFS from
//!   stable roots;
//! * [`ocsr::OCsr`] — the Overlap-aware CSR storage format;
//! * [`plan`] — the window-planning layer: one [`plan::WindowPlan`] per
//!   window bundling classification, affected subgraph, O-CSR, and
//!   dispatch statistics, built once by [`plan::WindowPlanner`] and shared
//!   (via [`plan::PlanCache`]) by the engine, simulator, and experiments;
//! * [`incremental`] — streaming plan maintenance: a
//!   [`incremental::PlanMaintainer`] absorbs per-tick update deltas and
//!   seals window plans bit-identical to the from-scratch planner at
//!   delta-proportional cost;
//! * [`pma::Pma`] and [`multi_csr::MultiCsr`] — the dynamic-format baselines
//!   O-CSR is compared against in Fig. 13(b);
//! * [`generate`] — synthetic dynamic-graph generation with presets matching
//!   the paper's Table 2 datasets;
//! * [`stats`] — overlap/degree statistics backing Fig. 3(a).

pub mod classify;
pub mod csr;
pub mod delta;
pub mod dynamic;
pub mod error;
pub mod generate;
pub mod incremental;
pub mod io;
pub mod multi_csr;
pub mod ocsr;
pub mod plan;
pub mod pma;
pub mod snapshot;
pub mod stats;
pub mod subgraph;
pub mod types;

pub use classify::{classify_window, try_classify_window, WindowClassification, WindowError};
pub use csr::Csr;
pub use dynamic::DynamicGraph;
pub use error::GraphError;
pub use generate::{BurstConfig, DatasetPreset, GeneratorConfig};
pub use incremental::{
    ClassifierStateExport, IncrementalClassifier, MaintainerState, MaintainerStats, PlanDelta,
    PlanMaintainer,
};
pub use ocsr::OCsr;
pub use plan::{CacheStats, PlanCache, PlanInstrumentation, PlanSource, WindowPlan, WindowPlanner};
pub use snapshot::Snapshot;
pub use subgraph::AffectedSubgraph;
pub use types::{SnapshotId, VertexClass, VertexId};
