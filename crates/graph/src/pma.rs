//! Packed Memory Array (PMA) dynamic-graph storage — the second baseline
//! format of Fig. 13(b) (as used by GPMA/GraSU-style systems).
//!
//! A PMA keeps sorted elements in an array with deliberate gaps so that an
//! insertion only shifts elements within one small window. The price is that
//! every scan touches the gaps too, and the index overhead grows with the
//! rebalancing slack — exactly the locality disadvantage O-CSR is compared
//! against.

use crate::types::{SnapshotId, VertexId};
use serde::{Deserialize, Serialize};

/// A timestamped directed edge, the PMA's element type. Ordering is
/// `(src, snapshot, dst)` so a per-source scan is contiguous.
pub type PmaEdge = (VertexId, SnapshotId, VertexId);

/// Minimum capacity of the backing array.
const MIN_CAPACITY: usize = 8;
/// Maximum root density before the array doubles.
const ROOT_MAX_DENSITY: f64 = 0.75;

/// A Packed Memory Array of timestamped edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pma {
    slots: Vec<Option<PmaEdge>>,
    len: usize,
    segment_size: usize,
    /// Elements moved by rebalances since construction (edit-cost metric).
    moves: u64,
}

impl Default for Pma {
    fn default() -> Self {
        Self::new()
    }
}

impl Pma {
    /// An empty PMA.
    pub fn new() -> Self {
        Self {
            slots: vec![None; MIN_CAPACITY],
            len: 0,
            segment_size: MIN_CAPACITY,
            moves: 0,
        }
    }

    /// Bulk-loads a PMA from an unsorted edge list.
    pub fn from_edges(edges: &[PmaEdge]) -> Self {
        let mut pma = Self::new();
        for &e in edges {
            pma.insert(e);
        }
        pma
    }

    /// Number of stored edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the PMA is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity of the backing array (stored slots, occupied or not).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total elements moved by rebalances so far.
    #[inline]
    pub fn rebalance_moves(&self) -> u64 {
        self.moves
    }

    /// Inserts an edge; duplicates are ignored. Returns whether it was new.
    pub fn insert(&mut self, edge: PmaEdge) -> bool {
        if self.contains(edge) {
            return false;
        }
        // Grow when the whole array is too dense.
        if (self.len + 1) as f64 / self.slots.len() as f64 > ROOT_MAX_DENSITY {
            self.resize(self.slots.len() * 2);
        }
        // `pos` is the slot index such that every occupied slot before it
        // holds an element `< edge` and every occupied slot at/after it
        // holds an element `>= edge` (may be `slots.len()` for appends).
        let pos = self.insertion_point(edge);
        let seg = (pos / self.segment_size).min(self.slots.len() / self.segment_size.max(1));
        let seg_start = seg * self.segment_size;
        let seg_end = ((seg + 1) * self.segment_size).min(self.slots.len());

        // Prefer a free slot inside the leaf segment (cheap local shift),
        // then widen the window to the whole array — mimicking a PMA's
        // cascading window rebalance while keeping the sorted invariant.
        let free_right = (pos..seg_end)
            .find(|&i| self.slots[i].is_none())
            .or_else(|| (seg_end..self.slots.len()).find(|&i| self.slots[i].is_none()));
        let free_left = if pos == 0 {
            None
        } else {
            (seg_start..pos.min(self.slots.len()))
                .rev()
                .find(|&i| self.slots[i].is_none())
                .or_else(|| (0..seg_start).rev().find(|&i| self.slots[i].is_none()))
        };
        // Pick the nearer free slot so shifts stay short.
        let choice = match (free_right, free_left) {
            (Some(r), Some(l)) => {
                if r - pos <= pos - 1 - l {
                    Some((r, true))
                } else {
                    Some((l, false))
                }
            }
            (Some(r), None) => Some((r, true)),
            (None, Some(l)) => Some((l, false)),
            (None, None) => None,
        };
        match choice {
            Some((free, true)) => {
                // Shift [pos, free) one step right; the gap opens at pos.
                for i in (pos..free).rev() {
                    self.slots[i + 1] = self.slots[i].take();
                    self.moves += 1;
                }
                self.slots[pos] = Some(edge);
            }
            Some((free, false)) => {
                // Shift (free, pos) one step left; the gap opens at pos-1.
                // Every slot in (free, pos) is occupied by elements < edge,
                // so the element stays sorted at pos-1.
                for i in free..pos - 1 {
                    self.slots[i] = self.slots[i + 1].take();
                    self.moves += 1;
                }
                self.slots[pos - 1] = Some(edge);
            }
            None => {
                // Array completely full (root density guard should prevent
                // this, but stay safe): grow and retry.
                self.resize(self.slots.len() * 2);
                return self.insert(edge);
            }
        }
        self.len += 1;
        true
    }

    /// Removes an edge; returns whether it was present.
    pub fn remove(&mut self, edge: PmaEdge) -> bool {
        match self.find(edge) {
            Some(i) => {
                self.slots[i] = None;
                self.len -= 1;
                // Shrink when very sparse, keeping the minimum capacity.
                if self.slots.len() > MIN_CAPACITY
                    && (self.len as f64) < self.slots.len() as f64 * 0.125
                {
                    self.resize((self.slots.len() / 2).max(MIN_CAPACITY));
                }
                true
            }
            None => false,
        }
    }

    /// Whether `edge` is stored.
    pub fn contains(&self, edge: PmaEdge) -> bool {
        self.find(edge).is_some()
    }

    /// Iterates over stored edges in sorted order, skipping gaps.
    pub fn iter(&self) -> impl Iterator<Item = PmaEdge> + '_ {
        self.slots.iter().filter_map(|s| *s)
    }

    /// Edges of one source across all snapshots, in `(snapshot, dst)` order.
    pub fn neighbors(&self, src: VertexId) -> impl Iterator<Item = (SnapshotId, VertexId)> + '_ {
        self.iter()
            .filter(move |&(s, _, _)| s == src)
            .map(|(_, t, d)| (t, d))
    }

    /// In-memory footprint: the full slot array, including gaps.
    pub fn storage_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Option<PmaEdge>>()
    }

    /// Cost (slots touched) of a full scan — gaps are touched too, which is
    /// the PMA's access-cost disadvantage against O-CSR in Fig. 13(b).
    pub fn scan_cost(&self) -> usize {
        self.slots.len()
    }

    /// Nearest occupied slot to `mid` within `[lo, hi)`: scans right first,
    /// then left. Gap runs are short after rebalancing, so this is cheap.
    fn nearest_occupied(&self, mid: usize, lo: usize, hi: usize) -> Option<usize> {
        (mid..hi)
            .find(|&i| self.slots[i].is_some())
            .or_else(|| (lo..mid).rev().find(|&i| self.slots[i].is_some()))
    }

    /// Index of the first slot whose element is `>= edge`, or `slots.len()`
    /// when every stored element is smaller (append position). Binary
    /// search over the gapped array: occupied slots are sorted by index, so
    /// probing the occupied slot nearest each midpoint halves the range.
    fn insertion_point(&self, edge: PmaEdge) -> usize {
        let (mut lo, mut hi) = (0usize, self.slots.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.nearest_occupied(mid, lo, hi) {
                // [lo, hi) holds no elements: any slot there preserves
                // order; attach to the right boundary.
                None => return hi,
                Some(i) => {
                    let e = self.slots[i].expect("occupied slot");
                    if e < edge {
                        lo = i + 1;
                    } else {
                        hi = i;
                    }
                }
            }
        }
        hi
    }

    fn find(&self, edge: PmaEdge) -> Option<usize> {
        let pos = self.insertion_point(edge);
        // The element, if present, is the first occupied slot at/after pos.
        let off = self.slots[pos..].iter().position(Option::is_some)?;
        (self.slots[pos + off] == Some(edge)).then_some(pos + off)
    }

    fn resize(&mut self, new_capacity: usize) {
        let elems: Vec<PmaEdge> = self.iter().collect();
        self.slots = vec![None; new_capacity.max(MIN_CAPACITY)];
        self.segment_size = (self.slots.len().ilog2() as usize)
            .next_power_of_two()
            .max(4)
            .min(self.slots.len());
        self.place_evenly(&elems);
    }

    fn place_evenly(&mut self, elems: &[PmaEdge]) {
        if elems.is_empty() {
            return;
        }
        let cap = self.slots.len();
        for (i, &e) in elems.iter().enumerate() {
            let pos = i * cap / elems.len();
            self.slots[pos] = Some(e);
            self.moves += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_iterate_sorted() {
        let mut pma = Pma::new();
        for e in [(2, 0, 1), (0, 0, 3), (1, 1, 0), (0, 1, 2), (0, 0, 1)] {
            assert!(pma.insert(e));
        }
        let got: Vec<PmaEdge> = pma.iter().collect();
        let mut want = vec![(0, 0, 1), (0, 0, 3), (0, 1, 2), (1, 1, 0), (2, 0, 1)];
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut pma = Pma::new();
        assert!(pma.insert((1, 0, 2)));
        assert!(!pma.insert((1, 0, 2)));
        assert_eq!(pma.len(), 1);
    }

    #[test]
    fn remove_deletes_and_reports() {
        let mut pma = Pma::from_edges(&[(0, 0, 1), (0, 0, 2), (1, 0, 0)]);
        assert!(pma.remove((0, 0, 2)));
        assert!(!pma.remove((0, 0, 2)));
        assert_eq!(pma.len(), 2);
        assert!(!pma.contains((0, 0, 2)));
    }

    #[test]
    fn grows_under_load_and_stays_sorted() {
        let mut pma = Pma::new();
        let mut edges = Vec::new();
        for src in 0..40u32 {
            for dst in 0..5u32 {
                edges.push((src * 7 % 40, (dst % 3) as SnapshotId, dst));
            }
        }
        for &e in &edges {
            pma.insert(e);
        }
        let got: Vec<PmaEdge> = pma.iter().collect();
        let mut want: Vec<PmaEdge> = edges.clone();
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
        assert!(pma.capacity() >= pma.len());
    }

    #[test]
    fn neighbors_filters_by_source() {
        let pma = Pma::from_edges(&[(0, 0, 1), (0, 1, 2), (1, 0, 3)]);
        let n0: Vec<_> = pma.neighbors(0).collect();
        assert_eq!(n0, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn shrinks_when_sparse() {
        let mut pma = Pma::new();
        for i in 0..100u32 {
            pma.insert((i, 0, i));
        }
        let grown = pma.capacity();
        for i in 0..99u32 {
            pma.remove((i, 0, i));
        }
        assert!(
            pma.capacity() < grown,
            "PMA must shrink after mass deletion"
        );
        assert!(pma.contains((99, 0, 99)));
    }

    #[test]
    fn scan_cost_exceeds_len_due_to_gaps() {
        let mut pma = Pma::new();
        for i in 0..50u32 {
            pma.insert((i, 0, 0));
        }
        assert!(
            pma.scan_cost() > pma.len(),
            "gaps make scans cost more than |E|"
        );
    }

    #[test]
    fn random_order_inserts_match_sorted_inserts() {
        let forward: Vec<PmaEdge> = (0..64u32)
            .map(|i| (i % 8, (i / 8) as SnapshotId, i))
            .collect();
        let mut shuffled = forward.clone();
        shuffled.reverse();
        shuffled.swap(0, 10);
        shuffled.swap(5, 40);
        let a = Pma::from_edges(&forward);
        let b = Pma::from_edges(&shuffled);
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }
}
