//! The Overlap-aware Compressed Sparse Row (O-CSR) format (paper §3.1,
//! Fig. 4c).
//!
//! O-CSR packs the affected subgraph of a whole window into five arrays:
//!
//! * `Sindex`  — the source vertex id of every vertex that owns edges;
//! * `Enum`    — the number of timestamped edges each source owns;
//! * `Tindex`  — the target ids of those edges, contiguous per source;
//! * `Timestamp` — the snapshot each target entry belongs to;
//! * `Feature` — the feature rows of subgraph vertices, where vertices whose
//!   own feature never changes within the window (stable roots) are stored
//!   **once**, and affected vertices get one row per snapshot.
//!
//! Sources are laid out in DFS discovery order so that a traversal of the
//! affected subgraph streams the arrays sequentially — the cache-friendliness
//! argument of the paper.

use crate::classify::WindowClassification;
use crate::snapshot::Snapshot;
use crate::subgraph::AffectedSubgraph;
use crate::types::{SnapshotId, VertexId};
use serde::{Deserialize, Serialize};
use tagnn_tensor::DenseMatrix;

/// Sentinel for "vertex not present in the O-CSR".
const NO_SLOT: u32 = u32::MAX;

/// The O-CSR representation of one window's affected subgraph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OCsr {
    /// Source vertex ids, in DFS discovery order (`Sindex`).
    sindex: Vec<VertexId>,
    /// Edge count per source (`Enum`).
    enums: Vec<u32>,
    /// Prefix offsets over `enums` (derived, one entry per source + 1).
    offsets: Vec<usize>,
    /// Target vertex ids (`Tindex`).
    tindex: Vec<VertexId>,
    /// Snapshot of each target entry (`Timestamp`).
    timestamps: Vec<SnapshotId>,
    /// Deduplicated feature rows (`Feature`).
    features: DenseMatrix,
    /// Per-source slot: first feature row of that source.
    feat_offsets: Vec<u32>,
    /// Per-source: `true` when the source's feature is stored once.
    feat_stable: Vec<bool>,
    /// Dense vertex-id -> slot map (NO_SLOT when absent).
    slot_of: Vec<u32>,
    /// Window size K.
    window: usize,
}

impl OCsr {
    /// Builds the O-CSR for `sg` over the window `snaps`.
    ///
    /// # Panics
    /// Panics if the window is empty or inconsistent with the subgraph.
    pub fn from_subgraph(
        snaps: &[&Snapshot],
        cls: &WindowClassification,
        sg: &AffectedSubgraph,
    ) -> Self {
        assert!(
            !snaps.is_empty(),
            "window must contain at least one snapshot"
        );
        assert_eq!(sg.window(), snaps.len(), "subgraph window mismatch");
        let n = snaps[0].num_vertices();
        let k = snaps.len();
        let dim = snaps[0].feature_dim();

        let order = sg.visit_order();
        let mut slot_of = vec![NO_SLOT; n];
        for (i, &v) in order.iter().enumerate() {
            slot_of[v as usize] = i as u32;
        }

        // Edges grouped by source in DFS order, then snapshot, then target.
        let mut sindex = Vec::with_capacity(order.len());
        let mut enums = Vec::with_capacity(order.len());
        let mut offsets = Vec::with_capacity(order.len() + 1);
        offsets.push(0usize);
        let mut tindex = Vec::new();
        let mut timestamps = Vec::new();
        for &v in order {
            sindex.push(v);
            let mut count = 0u32;
            for (t, snap) in snaps.iter().enumerate() {
                if !snap.is_active(v) {
                    continue;
                }
                for &u in snap.neighbors(v) {
                    tindex.push(u);
                    timestamps.push(t as SnapshotId);
                    count += 1;
                }
            }
            enums.push(count);
            offsets.push(tindex.len());
        }

        // Feature rows: stable vertices once, affected vertices once per
        // snapshot (zeros where inactive, keeping row addressing trivial).
        let mut feat_offsets = Vec::with_capacity(order.len());
        let mut feat_stable = Vec::with_capacity(order.len());
        let mut rows: Vec<f32> = Vec::new();
        let mut num_rows = 0u32;
        for &v in order {
            feat_offsets.push(num_rows);
            let stable = cls.class(v).is_feature_stable();
            feat_stable.push(stable);
            if stable {
                let src = snaps
                    .iter()
                    .find(|s| s.is_active(v))
                    .map(|s| s.feature(v))
                    .expect("feature-stable vertex active somewhere in window");
                rows.extend_from_slice(src);
                num_rows += 1;
            } else {
                for snap in snaps {
                    if snap.is_active(v) {
                        rows.extend_from_slice(snap.feature(v));
                    } else {
                        rows.extend(std::iter::repeat_n(0.0, dim));
                    }
                }
                num_rows += k as u32;
            }
        }
        let features = DenseMatrix::from_vec(num_rows as usize, dim, rows);

        Self {
            sindex,
            enums,
            offsets,
            tindex,
            timestamps,
            features,
            feat_offsets,
            feat_stable,
            slot_of,
            window: k,
        }
    }

    /// Source ids in layout (DFS) order.
    #[inline]
    pub fn sources(&self) -> &[VertexId] {
        &self.sindex
    }

    /// `Enum` array: timestamped-edge count per source.
    #[inline]
    pub fn enums(&self) -> &[u32] {
        &self.enums
    }

    /// Number of source vertices |V_S|.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.sindex.len()
    }

    /// Number of timestamped edges |E_S|.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.tindex.len()
    }

    /// Window size K.
    #[inline]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Whether vertex `v` is a source in this O-CSR.
    pub fn contains(&self, v: VertexId) -> bool {
        (v as usize) < self.slot_of.len() && self.slot_of[v as usize] != NO_SLOT
    }

    fn slot(&self, v: VertexId) -> Option<usize> {
        let s = *self.slot_of.get(v as usize)?;
        (s != NO_SLOT).then_some(s as usize)
    }

    /// All timestamped neighbours of `v`: `(target, snapshot)` pairs, in
    /// snapshot order — one contiguous scan.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, SnapshotId)> + '_ {
        let range = self
            .slot(v)
            .map(|s| self.offsets[s]..self.offsets[s + 1])
            .unwrap_or(0..0);
        self.tindex[range.clone()]
            .iter()
            .copied()
            .zip(self.timestamps[range].iter().copied())
    }

    /// Neighbours of `v` within snapshot `t` of the window.
    pub fn neighbors_at(&self, v: VertexId, t: SnapshotId) -> impl Iterator<Item = VertexId> + '_ {
        self.neighbors(v)
            .filter(move |&(_, ts)| ts == t)
            .map(|(u, _)| u)
    }

    /// Feature row of vertex `v` at snapshot `t`, honouring the
    /// store-stable-once rule. `None` when `v` is not in the O-CSR.
    pub fn feature(&self, v: VertexId, t: SnapshotId) -> Option<&[f32]> {
        let s = self.slot(v)?;
        let base = self.feat_offsets[s] as usize;
        let row = if self.feat_stable[s] {
            base
        } else {
            base + t as usize
        };
        Some(self.features.row(row))
    }

    /// Number of stored feature rows (after stable deduplication).
    #[inline]
    pub fn num_feature_rows(&self) -> usize {
        self.features.rows()
    }

    /// Actual in-memory footprint of the five arrays, in bytes.
    pub fn storage_bytes(&self) -> usize {
        use std::mem::size_of;
        self.sindex.len() * size_of::<VertexId>()
            + self.enums.len() * size_of::<u32>()
            + self.tindex.len() * size_of::<VertexId>()
            + self.timestamps.len() * size_of::<SnapshotId>()
            + self.features.rows() * self.features.cols() * size_of::<f32>()
    }

    /// The paper's space bound `2|E_S| + (K·D + 2)|V_S|`, in elements.
    pub fn paper_space_bound(&self, feature_dim: usize) -> usize {
        2 * self.num_edges() + (self.window * feature_dim + 2) * self.num_vertices()
    }

    /// Inserts a timestamped edge, shifting later sources' ranges (the
    /// "adjusting the appropriate entries" edit path of §3.1). The source
    /// must already be present in the O-CSR.
    ///
    /// # Panics
    /// Panics when `src` is not a source or `t` is outside the window.
    pub fn insert_edge(&mut self, src: VertexId, dst: VertexId, t: SnapshotId) {
        assert!((t as usize) < self.window, "snapshot outside window");
        let s = self.slot(src).expect("source not present in O-CSR");
        // Keep each source's run sorted by (snapshot, target).
        let range = self.offsets[s]..self.offsets[s + 1];
        let rel = self.timestamps[range.clone()]
            .iter()
            .zip(&self.tindex[range.clone()])
            .position(|(&ts, &u)| (ts, u) >= (t, dst))
            .unwrap_or(range.len());
        let pos = range.start + rel;
        if pos < range.end && self.timestamps[pos] == t && self.tindex[pos] == dst {
            return; // duplicate
        }
        self.tindex.insert(pos, dst);
        self.timestamps.insert(pos, t);
        self.enums[s] += 1;
        for off in &mut self.offsets[s + 1..] {
            *off += 1;
        }
    }

    /// Removes a timestamped edge if present; returns whether it existed.
    pub fn remove_edge(&mut self, src: VertexId, dst: VertexId, t: SnapshotId) -> bool {
        let Some(s) = self.slot(src) else {
            return false;
        };
        let range = self.offsets[s]..self.offsets[s + 1];
        let Some(rel) = self.timestamps[range.clone()]
            .iter()
            .zip(&self.tindex[range.clone()])
            .position(|(&ts, &u)| ts == t && u == dst)
        else {
            return false;
        };
        let pos = range.start + rel;
        self.tindex.remove(pos);
        self.timestamps.remove(pos);
        self.enums[s] -= 1;
        for off in &mut self.offsets[s + 1..] {
            *off -= 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_window;
    use crate::csr::Csr;
    use crate::delta::{apply_updates, GraphUpdate};

    fn snap(n: usize, edges: &[(u32, u32)]) -> Snapshot {
        Snapshot::fully_active(
            Csr::from_edges(n, edges),
            DenseMatrix::from_fn(n, 2, |r, _| r as f32),
        )
    }

    /// Same Figure-4 style fixture as the subgraph tests.
    fn fixture() -> (Vec<Snapshot>, WindowClassification, AffectedSubgraph) {
        let s0 = snap(8, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (4, 6), (5, 7)]);
        let s1 = apply_updates(
            &s0,
            &[
                GraphUpdate::RemoveEdge { src: 4, dst: 6 },
                GraphUpdate::MutateFeature {
                    v: 5,
                    feature: vec![9.0, 9.0],
                },
                GraphUpdate::MutateFeature {
                    v: 6,
                    feature: vec![8.0, 8.0],
                },
                GraphUpdate::MutateFeature {
                    v: 7,
                    feature: vec![7.5, 7.5],
                },
            ],
        );
        let s2 = apply_updates(
            &s1,
            &[
                GraphUpdate::AddEdge { src: 4, dst: 6 },
                GraphUpdate::RemoveEdge { src: 4, dst: 5 },
                GraphUpdate::MutateFeature {
                    v: 5,
                    feature: vec![9.5, 9.5],
                },
            ],
        );
        let snaps = vec![s0, s1, s2];
        let refs: Vec<&Snapshot> = snaps.iter().collect();
        let cls = classify_window(&refs);
        let sg = AffectedSubgraph::extract(&refs, &cls);
        (snaps, cls, sg)
    }

    fn build() -> (Vec<Snapshot>, WindowClassification, OCsr) {
        let (snaps, cls, sg) = fixture();
        let refs: Vec<&Snapshot> = snaps.iter().collect();
        let ocsr = OCsr::from_subgraph(&refs, &cls, &sg);
        (snaps, cls, ocsr)
    }

    #[test]
    fn matches_paper_example_layout_for_v4() {
        let (_, _, ocsr) = build();
        assert_eq!(ocsr.sources()[0], 4, "stable root first in DFS order");
        let nbrs: Vec<_> = ocsr.neighbors(4).collect();
        // Paper: Tindex[0:3] = [5, 6, 5, 6], Timestamp[0:3] = [t-1,t-1,t,t+1].
        assert_eq!(nbrs, vec![(5, 0), (6, 0), (5, 1), (6, 2)]);
        assert_eq!(ocsr.enums()[0], 4, "Enum[0] = 4 per the paper example");
    }

    #[test]
    fn stable_feature_stored_once() {
        let (snaps, _, ocsr) = build();
        // v4 is stable: same row for every t.
        let f0 = ocsr.feature(4, 0).unwrap().to_vec();
        let f2 = ocsr.feature(4, 2).unwrap().to_vec();
        assert_eq!(f0, f2);
        assert_eq!(f0.as_slice(), snaps[0].feature(4));
        // 1 stable row + 3 affected vertices x 3 snapshots = 10 rows.
        assert_eq!(ocsr.num_feature_rows(), 10);
    }

    #[test]
    fn affected_feature_per_snapshot() {
        let (snaps, _, ocsr) = build();
        assert_eq!(ocsr.feature(5, 0).unwrap(), snaps[0].feature(5));
        assert_eq!(ocsr.feature(5, 1).unwrap(), snaps[1].feature(5));
        assert_eq!(ocsr.feature(5, 2).unwrap(), snaps[2].feature(5));
        assert_ne!(ocsr.feature(5, 0).unwrap(), ocsr.feature(5, 1).unwrap());
    }

    #[test]
    fn absent_vertices_have_no_feature() {
        let (_, _, ocsr) = build();
        assert!(
            ocsr.feature(0, 0).is_none(),
            "unaffected vertices are not stored"
        );
        assert!(!ocsr.contains(0));
        assert!(ocsr.contains(4));
    }

    #[test]
    fn neighbors_at_filters_by_snapshot() {
        let (_, _, ocsr) = build();
        let at1: Vec<_> = ocsr.neighbors_at(4, 1).collect();
        assert_eq!(at1, vec![5]);
        let at2: Vec<_> = ocsr.neighbors_at(4, 2).collect();
        assert_eq!(at2, vec![6]);
    }

    #[test]
    fn storage_within_paper_bound() {
        let (snaps, _, ocsr) = build();
        let dim = snaps[0].feature_dim();
        // Bound is in elements; every element here is 4 bytes.
        let bound_bytes = ocsr.paper_space_bound(dim) * 4;
        assert!(
            ocsr.storage_bytes() <= bound_bytes,
            "O-CSR {}B must fit the paper bound {}B",
            ocsr.storage_bytes(),
            bound_bytes
        );
    }

    #[test]
    fn insert_edge_keeps_order_and_counts() {
        let (_, _, mut ocsr) = build();
        let before = ocsr.num_edges();
        ocsr.insert_edge(4, 7, 1);
        assert_eq!(ocsr.num_edges(), before + 1);
        let nbrs: Vec<_> = ocsr.neighbors(4).collect();
        assert_eq!(nbrs, vec![(5, 0), (6, 0), (5, 1), (7, 1), (6, 2)]);
        // Duplicate insert is a no-op.
        ocsr.insert_edge(4, 7, 1);
        assert_eq!(ocsr.num_edges(), before + 1);
    }

    #[test]
    fn remove_edge_shifts_following_sources() {
        let (_, _, mut ocsr) = build();
        let v5_before: Vec<_> = ocsr.neighbors(5).collect();
        assert!(ocsr.remove_edge(4, 5, 0));
        assert!(!ocsr.remove_edge(4, 5, 0), "second removal is a no-op");
        let v5_after: Vec<_> = ocsr.neighbors(5).collect();
        assert_eq!(
            v5_before, v5_after,
            "other sources' views must be unchanged"
        );
        assert_eq!(ocsr.enums()[0], 3);
    }

    #[test]
    fn empty_subgraph_yields_empty_ocsr() {
        let s = snap(4, &[(0, 1)]);
        let refs = [&s, &s];
        let cls = classify_window(&refs);
        let sg = AffectedSubgraph::extract(&refs, &cls);
        let ocsr = OCsr::from_subgraph(&refs, &cls, &sg);
        assert_eq!(ocsr.num_vertices(), 0);
        assert_eq!(ocsr.num_edges(), 0);
        assert_eq!(ocsr.num_feature_rows(), 0);
    }
}
