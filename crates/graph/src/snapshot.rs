//! A feature-carrying graph snapshot `G_t = (V_t, E_t, X_t)`.

use crate::csr::Csr;
use crate::error::GraphError;
use crate::types::VertexId;
use serde::{Deserialize, Serialize};
use tagnn_tensor::DenseMatrix;

/// One snapshot of a dynamic graph: adjacency in CSR, a dense vertex-feature
/// table, and an activity bitmap (vertices can be added/removed over time,
/// so all snapshots share the vertex id universe `0..num_vertices` and mark
/// presence per snapshot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    csr: Csr,
    features: DenseMatrix,
    active: Vec<bool>,
}

impl Snapshot {
    /// Assembles a snapshot.
    ///
    /// # Panics
    /// Panics if the CSR, feature table, and bitmap disagree on vertex count.
    pub fn new(csr: Csr, features: DenseMatrix, active: Vec<bool>) -> Self {
        match Self::try_new(csr, features, active) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Self::new`]: validates that the CSR, feature
    /// table, and bitmap agree on vertex count, returning a typed
    /// [`GraphError`] instead of panicking — the ingestion-safe path for
    /// snapshots assembled from untrusted events.
    pub fn try_new(csr: Csr, features: DenseMatrix, active: Vec<bool>) -> Result<Self, GraphError> {
        if csr.num_vertices() != features.rows() {
            return Err(GraphError::FeatureRowsMismatch {
                vertices: csr.num_vertices(),
                rows: features.rows(),
            });
        }
        if csr.num_vertices() != active.len() {
            return Err(GraphError::ActivityLenMismatch {
                vertices: csr.num_vertices(),
                len: active.len(),
            });
        }
        Ok(Self {
            csr,
            features,
            active,
        })
    }

    /// A snapshot where every vertex is active.
    pub fn fully_active(csr: Csr, features: DenseMatrix) -> Self {
        let n = csr.num_vertices();
        Self::new(csr, features, vec![true; n])
    }

    /// The adjacency structure.
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The vertex-feature table (one row per vertex).
    #[inline]
    pub fn features(&self) -> &DenseMatrix {
        &self.features
    }

    /// Mutable feature table (used when applying feature-mutation deltas).
    #[inline]
    pub fn features_mut(&mut self) -> &mut DenseMatrix {
        &mut self.features
    }

    /// Whether vertex `v` exists in this snapshot.
    #[inline]
    pub fn is_active(&self, v: VertexId) -> bool {
        self.active[v as usize]
    }

    /// The activity bitmap.
    #[inline]
    pub fn active(&self) -> &[bool] {
        &self.active
    }

    /// Size of the shared vertex-id universe.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Number of active vertices.
    pub fn num_active(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// Feature dimensionality `D`.
    #[inline]
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Feature row of vertex `v`.
    #[inline]
    pub fn feature(&self, v: VertexId) -> &[f32] {
        self.features.row(v as usize)
    }

    /// Sorted out-neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.csr.neighbors(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> Snapshot {
        let csr = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let feats = DenseMatrix::from_fn(3, 2, |r, c| (r + c) as f32);
        Snapshot::fully_active(csr, feats)
    }

    #[test]
    fn accessors_are_consistent() {
        let s = snap();
        assert_eq!(s.num_vertices(), 3);
        assert_eq!(s.num_edges(), 2);
        assert_eq!(s.feature_dim(), 2);
        assert_eq!(s.feature(1), &[1.0, 2.0]);
        assert_eq!(s.neighbors(0), &[1]);
        assert_eq!(s.num_active(), 3);
    }

    #[test]
    fn inactive_vertices_tracked() {
        let csr = Csr::empty(2);
        let feats = DenseMatrix::zeros(2, 1);
        let s = Snapshot::new(csr, feats, vec![true, false]);
        assert!(s.is_active(0));
        assert!(!s.is_active(1));
        assert_eq!(s.num_active(), 1);
    }

    #[test]
    #[should_panic(expected = "feature rows")]
    fn rejects_mismatched_features() {
        let csr = Csr::empty(2);
        let feats = DenseMatrix::zeros(3, 1);
        let _ = Snapshot::fully_active(csr, feats);
    }

    #[test]
    #[should_panic(expected = "bitmap")]
    fn rejects_mismatched_bitmap() {
        let csr = Csr::empty(2);
        let feats = DenseMatrix::zeros(2, 1);
        let _ = Snapshot::new(csr, feats, vec![true]);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        use crate::error::GraphError;
        assert_eq!(
            Snapshot::try_new(Csr::empty(2), DenseMatrix::zeros(3, 1), vec![true; 2]),
            Err(GraphError::FeatureRowsMismatch {
                vertices: 2,
                rows: 3
            })
        );
        assert_eq!(
            Snapshot::try_new(Csr::empty(2), DenseMatrix::zeros(2, 1), vec![true]),
            Err(GraphError::ActivityLenMismatch {
                vertices: 2,
                len: 1
            })
        );
        assert!(Snapshot::try_new(Csr::empty(2), DenseMatrix::zeros(2, 1), vec![true; 2]).is_ok());
    }
}
