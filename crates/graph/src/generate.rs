//! Synthetic dynamic-graph generation.
//!
//! The paper evaluates on five real dynamic graphs (Table 2) that are not
//! redistributable here, so this module generates synthetic equivalents: a
//! power-law (Chung-Lu style) base graph evolved by per-snapshot churn
//! (feature mutations, edge rewiring, rare vertex churn). The presets below
//! carry Table 2's vertex/edge/dimension counts and churn levels calibrated
//! so the unaffected-vertex ratios of Fig. 3(a) land in the reported bands
//! (27.3–45.3 % at window 3, 10.6–24.4 % at window 4, averaged across
//! datasets).

use crate::csr::Csr;
use crate::delta::{apply_updates, GraphUpdate};
use crate::dynamic::DynamicGraph;
use crate::snapshot::Snapshot;
use crate::types::VertexId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tagnn_tensor::DenseMatrix;

/// Churn applied between consecutive snapshots, as fractions per snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Fraction of vertices whose feature vector mutates.
    pub feature_mutation_rate: f64,
    /// Fraction of edges removed and replaced by fresh random edges.
    pub edge_rewire_rate: f64,
    /// Fraction of vertices toggled (removed if active, added if not).
    pub vertex_churn_rate: f64,
    /// How much of the previous feature a mutation retains, in `[0, 1]`:
    /// `x' = s*x + (1-s)*fresh`. Real vertex features drift smoothly
    /// rather than being resampled wholesale (the temporal stability of
    /// §2.3 that similarity-aware skipping exploits); `0.0` reproduces a
    /// full resample.
    pub mutation_smoothness: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            feature_mutation_rate: 0.02,
            edge_rewire_rate: 0.01,
            vertex_churn_rate: 0.001,
            mutation_smoothness: 0.7,
        }
    }
}

/// Full generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Vertex universe size.
    pub num_vertices: usize,
    /// Target directed-edge count of the base snapshot.
    pub num_edges: usize,
    /// Feature dimensionality D.
    pub feature_dim: usize,
    /// Number of snapshots T to generate.
    pub num_snapshots: usize,
    /// Power-law exponent of the degree weights (higher = more skewed).
    pub power_law_alpha: f64,
    /// Per-snapshot churn.
    pub churn: ChurnConfig,
    /// RNG seed (ChaCha8; fully deterministic).
    pub seed: u64,
    /// Fraction of vertices whose feature row is forced all-zero, in
    /// `[0, 1)`. At `0.0` (the default, and what every Table 2 preset
    /// uses) the generator draws every entry exactly as it always has —
    /// the RNG stream, and thus every existing golden digest, is
    /// unchanged. Above 0.0 each row first draws a support coin;
    /// winners of the sparsity coin stay all-zero (sparse one-hot-like
    /// inputs, the operand shape the SpMM dispatch path exists for),
    /// and feature mutations re-toss the coin so the expected density
    /// stays stationary under churn.
    #[serde(default)]
    pub feature_row_sparsity: f64,
    /// Periodic churn bursts — the flash-crowd hostile regime. `None`
    /// (the default, and what every pre-existing preset uses) leaves the
    /// per-step churn draw exactly as it always was, so legacy RNG
    /// streams and golden digests are unchanged. With a burst config,
    /// every `period`-th evolution step multiplies the churn rates,
    /// collapsing the unaffected-vertex ratio toward zero on burst
    /// steps — the regime where TaGNN's reuse premise degrades
    /// (ROADMAP item 4b).
    #[serde(default)]
    pub burst: Option<BurstConfig>,
}

/// Flash-crowd burst shape: every `period`-th step runs the base churn
/// rates multiplied up (capped at 1.0), quiet steps run them as-is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstConfig {
    /// Burst every `period` steps (steps `period`, `2·period`, …);
    /// `0` disables bursts.
    pub period: usize,
    /// Multiplier on `feature_mutation_rate` during a burst.
    pub feature_multiplier: f64,
    /// Multiplier on `edge_rewire_rate` during a burst.
    pub edge_multiplier: f64,
    /// Multiplier on `vertex_churn_rate` during a burst.
    pub vertex_multiplier: f64,
}

impl GeneratorConfig {
    /// A small default config suitable for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_vertices: 64,
            num_edges: 256,
            feature_dim: 8,
            num_snapshots: 6,
            power_law_alpha: 0.8,
            churn: ChurnConfig::default(),
            seed: 42,
            feature_row_sparsity: 0.0,
            burst: None,
        }
    }

    /// A sparse, high-churn serving preset: ~12 % of feature rows are
    /// nonzero and churn runs hot, so the dispatch layer's density
    /// measurement actually sees sparse operands and the auto-vs-dense
    /// A/B exercises the SpMM path (the Table 2 presets are fully
    /// dense, which left that A/B dead).
    pub fn sparse_high_churn(num_snapshots: usize) -> Self {
        Self {
            num_vertices: 512,
            num_edges: 2_048,
            feature_dim: 32,
            num_snapshots,
            power_law_alpha: 0.9,
            churn: ChurnConfig {
                feature_mutation_rate: 0.30,
                edge_rewire_rate: 0.05,
                vertex_churn_rate: 0.002,
                mutation_smoothness: 0.5,
            },
            seed: 0x5BA3,
            feature_row_sparsity: 0.88,
            burst: None,
        }
    }

    /// The flash-crowd hostile-churn preset (ROADMAP item 4b): already-hot
    /// baseline churn with periodic burst steps that multiply it to
    /// saturation — burst snapshots mutate over half the universe's
    /// features and rewire a quarter of the edges, so the window
    /// classification's unaffected ratio collapses toward zero and the
    /// serving layer's skip-band degradation, plan fallbacks, and (with
    /// durability on) WAL/checkpoint machinery are exercised under
    /// adversarial load instead of well-behaved churn.
    pub fn flash_crowd(num_snapshots: usize) -> Self {
        Self {
            num_vertices: 512,
            num_edges: 2_048,
            feature_dim: 32,
            num_snapshots,
            power_law_alpha: 0.9,
            churn: ChurnConfig {
                feature_mutation_rate: 0.08,
                edge_rewire_rate: 0.04,
                vertex_churn_rate: 0.004,
                mutation_smoothness: 0.3,
            },
            seed: 0xF1A5,
            feature_row_sparsity: 0.0,
            burst: Some(BurstConfig {
                period: 3,
                feature_multiplier: 8.0,
                edge_multiplier: 6.0,
                vertex_multiplier: 4.0,
            }),
        }
    }

    /// Generates the dynamic graph described by this config.
    pub fn generate(&self) -> DynamicGraph {
        assert!(self.num_vertices > 1, "need at least two vertices");
        assert!(self.num_snapshots >= 1, "need at least one snapshot");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let n = self.num_vertices;

        // Chung-Lu style weights: w_i proportional to (i+1)^(-alpha).
        let weights: Vec<f64> = (0..n)
            .map(|i| ((i + 1) as f64).powf(-self.power_law_alpha))
            .collect();
        let cumulative: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        let total = *cumulative.last().unwrap();
        let sample_vertex = |rng: &mut ChaCha8Rng| -> VertexId {
            let x = rng.gen_range(0.0..total);
            cumulative.partition_point(|&c| c < x).min(n - 1) as VertexId
        };

        // Base edges.
        let mut edges = Vec::with_capacity(self.num_edges);
        while edges.len() < self.num_edges {
            let s = sample_vertex(&mut rng);
            let t = sample_vertex(&mut rng);
            if s != t {
                edges.push((s, t));
            }
        }
        // Zero sparsity must take exactly the historical draw sequence
        // (presets and golden digests depend on it); the sparse path
        // draws one support coin per row, then fills only winners.
        let features = if self.feature_row_sparsity <= 0.0 {
            DenseMatrix::from_fn(n, self.feature_dim, |_, _| rng.gen_range(-1.0..1.0))
        } else {
            let density = (1.0 - self.feature_row_sparsity).max(0.0);
            let d = self.feature_dim;
            let mut data = vec![0.0f32; n * d];
            for row in data.chunks_exact_mut(d) {
                if rng.gen_range(0.0..1.0) < density {
                    for x in row {
                        *x = rng.gen_range(-1.0..1.0);
                    }
                }
            }
            DenseMatrix::from_vec(n, d, data)
        };
        let mut snapshots = Vec::with_capacity(self.num_snapshots);
        snapshots.push(Snapshot::fully_active(Csr::from_edges(n, &edges), features));

        // Evolve.
        for step in 1..self.num_snapshots {
            let prev = snapshots.last().unwrap();
            let updates = self.churn_updates(prev, &mut rng, step);
            snapshots.push(apply_updates(prev, &updates));
        }
        DynamicGraph::new(snapshots)
    }

    /// The churn rates in effect at evolution step `step`: the base
    /// config on quiet steps, multiplied (and capped at 1.0) on
    /// flash-crowd burst steps. With `burst: None` this is the identity,
    /// so legacy configs draw the exact historical RNG stream.
    fn effective_churn(&self, step: usize) -> ChurnConfig {
        match self.burst {
            Some(b) if b.period > 0 && step % b.period == 0 => ChurnConfig {
                feature_mutation_rate: (self.churn.feature_mutation_rate * b.feature_multiplier)
                    .min(1.0),
                edge_rewire_rate: (self.churn.edge_rewire_rate * b.edge_multiplier).min(1.0),
                vertex_churn_rate: (self.churn.vertex_churn_rate * b.vertex_multiplier).min(1.0),
                mutation_smoothness: self.churn.mutation_smoothness,
            },
            _ => self.churn,
        }
    }

    /// Produces one snapshot's worth of churn events against `prev`.
    fn churn_updates(
        &self,
        prev: &Snapshot,
        rng: &mut ChaCha8Rng,
        step: usize,
    ) -> Vec<GraphUpdate> {
        let n = prev.num_vertices();
        let churn = self.effective_churn(step);

        let mut updates = Vec::new();

        // Feature mutations: bounded drift away from the previous value.
        let mutations = (n as f64 * churn.feature_mutation_rate).round() as usize;
        let keep = churn.mutation_smoothness.clamp(0.0, 1.0) as f32;
        for _ in 0..mutations {
            let v = rng.gen_range(0..n) as VertexId;
            let feature: Vec<f32> = if self.feature_row_sparsity <= 0.0 {
                prev.feature(v)
                    .iter()
                    .map(|&x| keep * x + (1.0 - keep) * rng.gen_range(-1.0f32..1.0))
                    .collect()
            } else if rng.gen_range(0.0..1.0) < (1.0 - self.feature_row_sparsity).max(0.0) {
                // Re-tossing the support coin per mutation keeps the
                // expected row density stationary across snapshots. A
                // previously-zero row that wins simply drifts up from
                // zero (`keep * 0 + fresh`).
                prev.feature(v)
                    .iter()
                    .map(|&x| keep * x + (1.0 - keep) * rng.gen_range(-1.0f32..1.0))
                    .collect()
            } else {
                vec![0.0; prev.feature(v).len()]
            };
            updates.push(GraphUpdate::MutateFeature { v, feature });
        }

        // Edge rewires: remove existing edges, add fresh ones.
        let edges: Vec<(VertexId, VertexId)> = prev.csr().edges().collect();
        let rewires = (edges.len() as f64 * churn.edge_rewire_rate).round() as usize;
        for _ in 0..rewires.min(edges.len()) {
            let (s, t) = edges[rng.gen_range(0..edges.len())];
            updates.push(GraphUpdate::RemoveEdge { src: s, dst: t });
            let ns = rng.gen_range(0..n) as VertexId;
            let nt = rng.gen_range(0..n) as VertexId;
            if ns != nt {
                updates.push(GraphUpdate::AddEdge { src: ns, dst: nt });
            }
        }

        // Rare vertex churn.
        let churns = (n as f64 * churn.vertex_churn_rate).round() as usize;
        for _ in 0..churns {
            let v = rng.gen_range(0..n) as VertexId;
            if prev.is_active(v) {
                updates.push(GraphUpdate::RemoveVertex { v });
            } else {
                updates.push(GraphUpdate::AddVertex { v });
            }
        }
        updates
    }
}

/// The five Table 2 datasets as generator presets.
///
/// `scale` shrinks vertex/edge counts (feature dims and snapshot counts are
/// preserved) so experiments run on laptop-class machines; `scale = 1.0`
/// reproduces the paper's sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetPreset {
    /// HepPh citation graph: 28 k vertices, 1.5 M edges, D=172, T=243.
    HepPh,
    /// Gdelt event graph: 7.4 k vertices, 239 k edges, D=248, T=288.
    Gdelt,
    /// MovieLens ratings: 10 k vertices, 1 M edges, D=500, T=100.
    MovieLens,
    /// Epinions trust graph: 876 k vertices, 13.7 M edges, D=220, T=51.
    Epinions,
    /// Flickr social graph: 2.3 M vertices, 33 M edges, D=162, T=134.
    Flickr,
}

impl DatasetPreset {
    /// All five presets in Table 2 order.
    pub const ALL: [DatasetPreset; 5] = [
        DatasetPreset::HepPh,
        DatasetPreset::Gdelt,
        DatasetPreset::MovieLens,
        DatasetPreset::Epinions,
        DatasetPreset::Flickr,
    ];

    /// The paper's two-letter abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            DatasetPreset::HepPh => "HP",
            DatasetPreset::Gdelt => "GT",
            DatasetPreset::MovieLens => "ML",
            DatasetPreset::Epinions => "EP",
            DatasetPreset::Flickr => "FK",
        }
    }

    /// Full-scale Table 2 parameters:
    /// `(num_vertices, num_edges, feature_dim, num_snapshots)`.
    pub fn full_size(self) -> (usize, usize, usize, usize) {
        match self {
            DatasetPreset::HepPh => (28_090, 1_543_901, 172, 243),
            DatasetPreset::Gdelt => (7_398, 238_765, 248, 288),
            DatasetPreset::MovieLens => (9_992, 1_000_209, 500, 100),
            DatasetPreset::Epinions => (876_252, 13_668_320, 220, 51),
            DatasetPreset::Flickr => (2_302_925, 33_140_017, 162, 134),
        }
    }

    /// Per-dataset churn, calibrated so the Fig. 3(a) unaffected ratios fall
    /// in the paper's bands. Denser, faster-moving graphs (ML, FK) churn
    /// more; slow citation/trust graphs (HP, EP) churn less.
    pub fn churn(self) -> ChurnConfig {
        match self {
            DatasetPreset::HepPh => ChurnConfig {
                feature_mutation_rate: 0.010,
                edge_rewire_rate: 0.004,
                vertex_churn_rate: 0.0005,
                mutation_smoothness: 0.7,
            },
            DatasetPreset::Gdelt => ChurnConfig {
                feature_mutation_rate: 0.016,
                edge_rewire_rate: 0.008,
                vertex_churn_rate: 0.0005,
                mutation_smoothness: 0.7,
            },
            DatasetPreset::MovieLens => ChurnConfig {
                feature_mutation_rate: 0.022,
                edge_rewire_rate: 0.012,
                vertex_churn_rate: 0.001,
                mutation_smoothness: 0.7,
            },
            DatasetPreset::Epinions => ChurnConfig {
                feature_mutation_rate: 0.012,
                edge_rewire_rate: 0.006,
                vertex_churn_rate: 0.0005,
                mutation_smoothness: 0.7,
            },
            DatasetPreset::Flickr => ChurnConfig {
                feature_mutation_rate: 0.026,
                edge_rewire_rate: 0.014,
                vertex_churn_rate: 0.001,
                mutation_smoothness: 0.7,
            },
        }
    }

    /// A [`GeneratorConfig`] for this preset at the given `scale`, producing
    /// `num_snapshots` snapshots (Table 2's full snapshot counts are rarely
    /// needed; a window study needs only a handful).
    ///
    /// # Panics
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn config(self, scale: f64, num_snapshots: usize) -> GeneratorConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let (v, e, d, _) = self.full_size();
        let num_vertices = ((v as f64 * scale) as usize).max(16);
        let num_edges = ((e as f64 * scale) as usize).max(32);
        GeneratorConfig {
            num_vertices,
            num_edges,
            feature_dim: d,
            num_snapshots,
            power_law_alpha: 0.9,
            churn: self.churn(),
            // Seed derived from the preset so datasets differ deterministically.
            seed: 0xD6_0000 + self as u64,
            feature_row_sparsity: 0.0,
            burst: None,
        }
    }

    /// A small config for tests/benches: ~1k vertices, reduced feature dim.
    pub fn config_small(self, num_snapshots: usize) -> GeneratorConfig {
        let mut cfg = self.config(0.05_f64.min(1.0), num_snapshots);
        cfg.num_vertices = cfg.num_vertices.min(1_500);
        cfg.num_edges = cfg.num_edges.min(8_000);
        cfg.feature_dim = cfg.feature_dim.min(32);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::tiny();
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = GeneratorConfig::tiny();
        let a = cfg.generate();
        cfg.seed += 1;
        let b = cfg.generate();
        assert_ne!(a, b);
    }

    #[test]
    fn respects_shape_parameters() {
        let cfg = GeneratorConfig::tiny();
        let g = cfg.generate();
        assert_eq!(g.num_snapshots(), cfg.num_snapshots);
        assert_eq!(g.num_vertices(), cfg.num_vertices);
        assert_eq!(g.feature_dim(), cfg.feature_dim);
        // Duplicate sampling may collapse a few edges, but the base snapshot
        // should be near the target.
        assert!(g.snapshot(0).num_edges() > cfg.num_edges / 2);
    }

    #[test]
    fn churn_changes_consecutive_snapshots() {
        let g = GeneratorConfig::tiny().generate();
        assert_ne!(g.snapshot(0), g.snapshot(1), "churn must modify the graph");
    }

    #[test]
    fn zero_churn_freezes_the_graph() {
        let mut cfg = GeneratorConfig::tiny();
        cfg.churn = ChurnConfig {
            feature_mutation_rate: 0.0,
            edge_rewire_rate: 0.0,
            vertex_churn_rate: 0.0,
            mutation_smoothness: 0.7,
        };
        let g = cfg.generate();
        assert_eq!(g.snapshot(0), g.snapshot(1));
    }

    #[test]
    fn sparse_preset_sustains_row_sparsity_under_churn() {
        let cfg = GeneratorConfig::sparse_high_churn(4);
        let g = cfg.generate();
        for s in 0..g.num_snapshots() {
            let snap = g.snapshot(s);
            let n = snap.num_vertices();
            let nonzero = (0..n)
                .filter(|&v| snap.feature(v as VertexId).iter().any(|&x| x != 0.0))
                .count();
            let density = nonzero as f64 / n as f64;
            // Target density is 1 - 0.88 = 0.12; allow generous slack for
            // the coin tosses while staying clearly in SpMM territory.
            assert!(
                density > 0.04 && density < 0.30,
                "snapshot {s}: row density {density} drifted out of the sparse regime"
            );
        }
    }

    #[test]
    fn zero_sparsity_matches_legacy_dense_generation() {
        // `feature_row_sparsity: 0.0` (the deserialization default) must
        // reproduce the historical RNG stream bit-for-bit.
        let cfg = GeneratorConfig::tiny();
        let g = cfg.generate();
        let any_zero_row = (0..g.num_vertices()).any(|v| {
            g.snapshot(0)
                .feature(v as VertexId)
                .iter()
                .all(|&x| x == 0.0)
        });
        assert!(!any_zero_row, "dense generation must fill every row");
    }

    #[test]
    fn no_burst_config_leaves_legacy_generation_untouched() {
        // `burst: None` (the deserialization default) must be a pure
        // pass-through: the effective churn is the config's own and the
        // RNG draw sequence — and thus every golden digest — unchanged.
        let cfg = GeneratorConfig::tiny();
        for step in 1..8 {
            assert_eq!(cfg.effective_churn(step), cfg.churn);
        }
    }

    #[test]
    fn flash_crowd_bursts_collapse_the_unaffected_ratio() {
        use crate::classify::classify_window;
        use crate::types::VertexClass;
        let cfg = GeneratorConfig::flash_crowd(6);
        let g = cfg.generate();
        assert_eq!(g.num_snapshots(), 6);

        // Burst steps must actually multiply churn.
        let burst = cfg.effective_churn(3);
        assert!(burst.feature_mutation_rate > cfg.churn.feature_mutation_rate * 4.0);
        assert!(burst.edge_rewire_rate > cfg.churn.edge_rewire_rate * 4.0);

        // A window spanning a burst has (close to) no unaffected
        // vertices — the hostile regime where TaGNN's premise degrades.
        let snaps: Vec<&Snapshot> = (2..5).map(|i| g.snapshot(i)).collect();
        let cls = classify_window(&snaps);
        let unaffected = cls.count(VertexClass::Unaffected) as f64 / g.num_vertices() as f64;
        // Well-behaved churn lands 27–45 % unaffected at window 3
        // (Fig. 3(a) bands); the hostile preset must collapse that.
        assert!(
            unaffected < 0.10,
            "burst window should collapse the unaffected ratio, got {unaffected}"
        );
    }

    #[test]
    fn presets_have_table2_dimensions() {
        assert_eq!(DatasetPreset::HepPh.full_size().2, 172);
        assert_eq!(DatasetPreset::MovieLens.full_size().2, 500);
        assert_eq!(DatasetPreset::Flickr.full_size().0, 2_302_925);
        assert_eq!(DatasetPreset::ALL.len(), 5);
    }

    #[test]
    fn preset_configs_scale() {
        let full = DatasetPreset::Gdelt.config(1.0, 4);
        let half = DatasetPreset::Gdelt.config(0.5, 4);
        assert!(half.num_vertices < full.num_vertices);
        assert_eq!(half.feature_dim, full.feature_dim);
    }

    #[test]
    fn small_configs_generate_quickly() {
        let g = DatasetPreset::HepPh.config_small(4).generate();
        assert_eq!(g.num_snapshots(), 4);
        assert!(g.num_vertices() <= 1_500);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_bad_scale() {
        let _ = DatasetPreset::HepPh.config(0.0, 4);
    }

    #[test]
    fn presets_have_distinct_abbrevs() {
        let mut abbrevs: Vec<_> = DatasetPreset::ALL.iter().map(|p| p.abbrev()).collect();
        abbrevs.sort_unstable();
        abbrevs.dedup();
        assert_eq!(abbrevs.len(), 5);
    }
}
