//! The window-planning layer: one frontend pass per window, shared by
//! every consumer.
//!
//! The MSDL frontend (classification → affected-subgraph extraction →
//! O-CSR packing, §3.1) used to be recomputed independently by the
//! concurrent engine, the accelerator simulator, and the format
//! experiments — three identical sweeps over the same windows. A
//! [`WindowPlan`] bundles the three artefacts plus the degree/dispatch
//! statistics the Task Dispatcher and traffic accounting need, built once
//! by the [`WindowPlanner`] and handed to every consumer. A [`PlanCache`]
//! keyed by `(dataset fingerprint, window index, K)` lets separate
//! pipelines over the same graph reuse plans across experiment runs.

use crate::classify::{try_classify_window, WindowClassification, WindowError};
use crate::dynamic::DynamicGraph;
use crate::ocsr::OCsr;
use crate::snapshot::Snapshot;
use crate::stats::ClassCounts;
use crate::subgraph::AffectedSubgraph;
use crate::types::{VertexClass, VertexId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tagnn_obs::{span as obs_span, Recorder};

/// Cache key: `(graph fingerprint, window index, window size K)`.
pub type PlanKey = (u64, usize, usize);

/// How a [`WindowPlan`] was obtained.
///
/// Recorded in [`PlanStats`] (excluded from equality: the same window
/// planned scratch, served from cache, or maintained incrementally is the
/// same plan) and surfaced by the serving layer so operators can see where
/// plan-build work actually happens.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanSource {
    /// Built from scratch by the [`WindowPlanner`] pipeline
    /// (classify → DFS extract → O-CSR pack over the whole window).
    #[default]
    Scratch,
    /// Served from a [`PlanCache`] hit.
    Cached,
    /// Sealed by a [`crate::incremental::PlanMaintainer`] that absorbed
    /// the window's events as they arrived.
    Incremental,
}

impl PlanSource {
    /// Short stable name (used in counters and JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            PlanSource::Scratch => "scratch",
            PlanSource::Cached => "cached",
            PlanSource::Incremental => "incremental",
        }
    }
}

/// Per-window statistics derived while planning — everything downstream
/// cost models read without touching the raw snapshots again.
///
/// `build_ns` is wall-clock instrumentation and deliberately excluded
/// from equality: two plans of the same window are equal however long
/// they took to build.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanStats {
    /// Vertices classified (= universe size).
    pub classified_vertices: u64,
    /// Per-class vertex counts.
    pub counts: ClassCounts,
    /// Affected-subgraph vertex count |V_S|.
    pub subgraph_vertices: u64,
    /// Affected-subgraph timestamped edge count |E_S|.
    pub subgraph_edges: u64,
    /// Degree-weighted dispatch items: every vertex once (the
    /// compute-once pass over the window's first snapshot) followed by
    /// each subgraph vertex's degree per later snapshot — the task list
    /// the Task Dispatcher balances over DCUs.
    pub degree_items: Vec<u64>,
    /// Feature rows travelling in the cold pass (sum of the first
    /// `classified_vertices` dispatch items).
    pub cold_rows: u64,
    /// Estimated re-fetched rows for affected vertices over the window's
    /// remaining snapshots.
    pub affected_rows: u64,
    /// Affected-subgraph feature rows measured nonzero in the window's
    /// first snapshot — the sparsity-adaptive dispatch layer's density
    /// numerator for the window's incremental work (denominator:
    /// `subgraph_vertices`). Measured during assembly while the subgraph
    /// rows are in hand, so it costs O(touched rows), never a full
    /// feature-table scan. Advisory: excluded from equality and the
    /// fingerprint (both build paths compute it identically anyway).
    #[serde(default)]
    pub nz_subgraph_rows: u64,
    /// Wall-clock nanoseconds spent building this plan (excluded from
    /// equality).
    pub build_ns: u64,
    /// How the plan was obtained (excluded from equality — the
    /// incremental path must produce bit-identical plans).
    #[serde(default)]
    pub source: PlanSource,
}

impl PartialEq for PlanStats {
    fn eq(&self, other: &Self) -> bool {
        self.classified_vertices == other.classified_vertices
            && self.counts == other.counts
            && self.subgraph_vertices == other.subgraph_vertices
            && self.subgraph_edges == other.subgraph_edges
            && self.degree_items == other.degree_items
            && self.cold_rows == other.cold_rows
            && self.affected_rows == other.affected_rows
    }
}

/// The frontend artefacts of one window, built once and shared by the
/// engine, the simulator, and the experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowPlan {
    index: usize,
    window_len: usize,
    classification: WindowClassification,
    subgraph: AffectedSubgraph,
    ocsr: OCsr,
    stats: PlanStats,
}

impl WindowPlan {
    /// Stamps how this plan was obtained (serving-layer bookkeeping).
    pub(crate) fn set_source(&mut self, source: PlanSource) {
        self.stats.source = source;
    }

    /// Window index in batch order.
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of snapshots in this window (the tail window may be shorter
    /// than K).
    #[inline]
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// The window's vertex classification.
    #[inline]
    pub fn classification(&self) -> &WindowClassification {
        &self.classification
    }

    /// The extracted affected subgraph.
    #[inline]
    pub fn subgraph(&self) -> &AffectedSubgraph {
        &self.subgraph
    }

    /// The O-CSR packing of the affected subgraph.
    #[inline]
    pub fn ocsr(&self) -> &OCsr {
        &self.ocsr
    }

    /// Derived statistics.
    #[inline]
    pub fn stats(&self) -> &PlanStats {
        &self.stats
    }

    /// How the plan was obtained.
    #[inline]
    pub fn source(&self) -> PlanSource {
        self.stats.source
    }

    /// Runs the window pipeline downstream of classification — subgraph
    /// extraction, O-CSR packing, dispatch statistics — and assembles the
    /// plan. Shared by the from-scratch [`WindowPlanner`] and the
    /// incremental seal path, so the two can only diverge in the
    /// classification they feed in.
    ///
    /// `started` anchors `build_ns`: the scratch path passes the instant
    /// classification began, the incremental path the instant seal began.
    pub(crate) fn assemble(
        snaps: &[&Snapshot],
        index: usize,
        classification: WindowClassification,
        started: std::time::Instant,
    ) -> Self {
        let subgraph = AffectedSubgraph::extract(snaps, &classification);
        let ocsr = OCsr::from_subgraph(snaps, &classification, &subgraph);

        let n = snaps[0].num_vertices();
        // Degree-weighted GNN tasks: every vertex once (the compute-once
        // pass) plus the subgraph per extra snapshot — the exact item
        // order matters for round-robin dispatch reproducibility.
        let mut degree_items: Vec<u64> = (0..n as VertexId)
            .map(|v| snaps[0].csr().degree(v) as u64 + 1)
            .collect();
        let cold_rows: u64 = degree_items.iter().sum();
        for &v in subgraph.vertices() {
            for snap in &snaps[1..] {
                degree_items.push(snap.csr().degree(v) as u64 + 1);
            }
        }
        let affected_rows: u64 = classification
            .vertices_of(VertexClass::Affected)
            .map(|v| snaps[0].csr().degree(v) as u64 + 1)
            .sum::<u64>()
            * (snaps.len() as u64).saturating_sub(1);
        // Density piggyback: the subgraph rows are exactly the feature
        // rows the window's incremental work will touch, so measuring
        // them here is O(touched rows) by construction.
        let nz_subgraph_rows: u64 = subgraph
            .vertices()
            .iter()
            .filter(|&&v| snaps[0].feature(v).iter().any(|&x| x != 0.0))
            .count() as u64;

        let stats = PlanStats {
            classified_vertices: n as u64,
            counts: ClassCounts::from_classification(&classification),
            subgraph_vertices: subgraph.num_vertices() as u64,
            subgraph_edges: subgraph.num_edges() as u64,
            degree_items,
            cold_rows,
            affected_rows,
            nz_subgraph_rows,
            build_ns: started.elapsed().as_nanos() as u64,
            source: PlanSource::Scratch,
        };
        Self {
            index,
            window_len: snaps.len(),
            classification,
            subgraph,
            ocsr,
            stats,
        }
    }

    /// FNV-1a content fingerprint over the plan's artefacts
    /// (classification, O-CSR arrays and feature bytes, work counters —
    /// everything except `build_ns` and `source`). Two plans of the same
    /// window compare equal iff their fingerprints match, whichever path
    /// built them; the differential suite pins this.
    pub fn fingerprint(&self) -> u64 {
        fn eat(h: &mut u64, b: u8) {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        fn eat_u64(h: &mut u64, x: u64) {
            for b in x.to_le_bytes() {
                eat(h, b);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &c in self.classification.classes() {
            eat(&mut h, c as u8);
        }
        eat_u64(&mut h, self.index as u64);
        eat_u64(&mut h, self.window_len as u64);
        for (&src, &e) in self.ocsr.sources().iter().zip(self.ocsr.enums()) {
            eat_u64(&mut h, src as u64);
            eat_u64(&mut h, e as u64);
            for (u, t) in self.ocsr.neighbors(src) {
                eat_u64(&mut h, u as u64);
                eat_u64(&mut h, t as u64);
            }
        }
        eat_u64(&mut h, self.ocsr.num_feature_rows() as u64);
        for t in 0..self.window_len {
            for &src in self.ocsr.sources() {
                if let Some(row) = self.ocsr.feature(src, t as crate::types::SnapshotId) {
                    for &x in row {
                        eat_u64(&mut h, x.to_bits() as u64);
                    }
                }
            }
        }
        for &v in self.subgraph.visit_order() {
            eat_u64(&mut h, v as u64);
        }
        eat_u64(&mut h, self.stats.cold_rows);
        eat_u64(&mut h, self.stats.affected_rows);
        for &d in &self.stats.degree_items {
            eat_u64(&mut h, d);
        }
        h
    }
}

/// Aggregate planning instrumentation, surfaced in simulator reports and
/// experiment JSON.
///
/// Equality covers only the structural counters — `build_ns` and the
/// cache tallies vary run to run and between cached and uncached paths
/// producing otherwise identical results.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PlanInstrumentation {
    /// Windows planned (or fetched from cache).
    pub windows_planned: u64,
    /// Total vertices classified across windows.
    pub vertices_classified: u64,
    /// Total affected-subgraph edges across windows.
    pub subgraph_edges: u64,
    /// Total nanoseconds spent building the plans (excluded from
    /// equality).
    pub build_ns: u64,
    /// Plan-cache hits observed when the plans were obtained (excluded
    /// from equality).
    pub cache_hits: u64,
    /// Plan-cache misses observed when the plans were obtained (excluded
    /// from equality).
    pub cache_misses: u64,
    /// Plan-cache evictions observed when the plans were obtained
    /// (excluded from equality).
    #[serde(default)]
    pub cache_evictions: u64,
}

impl PartialEq for PlanInstrumentation {
    fn eq(&self, other: &Self) -> bool {
        self.windows_planned == other.windows_planned
            && self.vertices_classified == other.vertices_classified
            && self.subgraph_edges == other.subgraph_edges
    }
}

impl PlanInstrumentation {
    /// Aggregates the instrumentation of a plan set.
    pub fn from_plans(plans: &[Arc<WindowPlan>]) -> Self {
        let mut agg = Self {
            windows_planned: plans.len() as u64,
            ..Self::default()
        };
        for p in plans {
            agg.vertices_classified += p.stats.classified_vertices;
            agg.subgraph_edges += p.stats.subgraph_edges;
            agg.build_ns += p.stats.build_ns;
        }
        agg
    }

    /// Stamps the cache-delta observed while obtaining the plans.
    pub fn with_cache(mut self, stats: CacheStats) -> Self {
        self.cache_hits = stats.hits;
        self.cache_misses = stats.misses;
        self.cache_evictions = stats.evictions;
        self
    }

    /// Publishes every field as `{prefix}.{field}` counters on `rec`.
    pub fn publish(&self, rec: &Recorder, prefix: &str) {
        rec.incr(&format!("{prefix}.windows_planned"), self.windows_planned);
        rec.incr(
            &format!("{prefix}.vertices_classified"),
            self.vertices_classified,
        );
        rec.incr(&format!("{prefix}.subgraph_edges"), self.subgraph_edges);
        rec.incr(&format!("{prefix}.build_ns"), self.build_ns);
        rec.incr(&format!("{prefix}.cache_hits"), self.cache_hits);
        rec.incr(&format!("{prefix}.cache_misses"), self.cache_misses);
        rec.incr(&format!("{prefix}.cache_evictions"), self.cache_evictions);
    }
}

/// Hit/miss/eviction tallies of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Plans served from the cache.
    pub hits: u64,
    /// Plans built because the cache had no entry.
    pub misses: u64,
    /// Plans dropped to keep the cache within its LRU capacity.
    #[serde(default)]
    pub evictions: u64,
}

impl CacheStats {
    /// Tallies accumulated since `earlier` was sampled.
    pub fn since(self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }

    /// Publishes the tallies as `{prefix}.hits` / `.misses` /
    /// `.evictions` counters on `rec`. Counters are additive, so publish
    /// deltas (see [`Self::since`]) or publish a cumulative snapshot
    /// exactly once.
    pub fn publish(&self, rec: &Recorder, prefix: &str) {
        rec.incr(&format!("{prefix}.hits"), self.hits);
        rec.incr(&format!("{prefix}.misses"), self.misses);
        rec.incr(&format!("{prefix}.evictions"), self.evictions);
    }
}

#[derive(Default)]
struct CacheMap {
    entries: HashMap<PlanKey, CacheEntry>,
    tick: u64,
}

struct CacheEntry {
    plan: Arc<WindowPlan>,
    last_used: u64,
}

/// A concurrent plan cache keyed by [`PlanKey`]. Cheap to share: clone an
/// `Arc<PlanCache>` into every pipeline that should reuse plans.
///
/// By default the cache is unbounded (the offline pipelines plan a fixed
/// number of windows). Long-running services should bound it with
/// [`Self::with_capacity`]: once full, inserting a new plan evicts the
/// least-recently-used entry and counts it in
/// [`CacheStats::evictions`].
#[derive(Default)]
pub struct PlanCache {
    map: Mutex<CacheMap>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("entries", &self.len())
            .field("capacity", &self.capacity)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("evictions", &stats.evictions)
            .finish()
    }
}

impl PlanCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` plans (LRU eviction).
    /// A capacity of `0` means unbounded.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// The configured capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative hit/miss/eviction tallies.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Fetches the plan under `key`, if cached, marking it most recently
    /// used.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<WindowPlan>> {
        let mut map = self.map.lock().unwrap();
        map.tick += 1;
        let tick = map.tick;
        let hit = map.entries.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.plan)
        });
        drop(map);
        match hit {
            Some(p) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(p)
            }
            None => None,
        }
    }

    /// Inserts a freshly built plan, counting the miss that caused it.
    /// Evicts least-recently-used entries while over capacity.
    ///
    /// Re-inserting an existing key replaces the plan and refreshes its
    /// recency but counts neither a miss nor an eviction — the entry count
    /// did not grow, so nothing needs to make room, and the miss that
    /// caused the original build was already tallied.
    pub fn insert(&self, key: PlanKey, plan: Arc<WindowPlan>) {
        let mut map = self.map.lock().unwrap();
        map.tick += 1;
        let tick = map.tick;
        let previous = map.entries.insert(
            key,
            CacheEntry {
                plan,
                last_used: tick,
            },
        );
        if previous.is_some() {
            return; // replacement: no new entry, no miss, no eviction
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        while self.capacity > 0 && map.entries.len() > self.capacity {
            // O(n) min-scan: capacities are small (hundreds of plans) and
            // insert is already off the hot engine path.
            let oldest = map
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("cache over capacity implies at least one entry");
            map.entries.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Builds [`WindowPlan`]s for the non-overlapping windows of a dynamic
/// graph, in parallel across windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowPlanner {
    k: usize,
}

impl WindowPlanner {
    /// A planner for windows of `k` snapshots.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "window size must be positive");
        Self { k }
    }

    /// Window size K.
    #[inline]
    pub fn window(&self) -> usize {
        self.k
    }

    /// Plans one window of snapshot refs.
    pub fn try_plan_window(
        &self,
        snaps: &[&Snapshot],
        index: usize,
    ) -> Result<WindowPlan, WindowError> {
        let started = std::time::Instant::now();
        let classification = try_classify_window(snaps)?;
        Ok(WindowPlan::assemble(snaps, index, classification, started))
    }

    /// Plans one window, panicking on malformed input (test/bench
    /// convenience mirroring [`crate::classify::classify_window`]).
    ///
    /// # Panics
    /// Panics if the window is empty or snapshots disagree on universe
    /// size.
    pub fn plan_window(&self, snaps: &[&Snapshot], index: usize) -> WindowPlan {
        match self.try_plan_window(snaps, index) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Plans every window of `graph`, in parallel across windows.
    pub fn plan_graph(&self, graph: &DynamicGraph) -> Vec<Arc<WindowPlan>> {
        self.plan_graph_traced(graph, None)
    }

    /// [`Self::plan_graph`] under a `plan` span, publishing the aggregate
    /// [`PlanInstrumentation`] as `plan.*` counters when a recorder is
    /// attached. With `None` this is exactly `plan_graph`.
    pub fn plan_graph_traced(
        &self,
        graph: &DynamicGraph,
        rec: Option<&Recorder>,
    ) -> Vec<Arc<WindowPlan>> {
        let _span = obs_span(rec, "plan");
        let plans = self
            .try_plan_graph(graph)
            .expect("snapshots of one DynamicGraph share the vertex universe");
        if let Some(rec) = rec {
            PlanInstrumentation::from_plans(&plans).publish(rec, "plan");
        }
        plans
    }

    /// Fallible variant of [`Self::plan_graph`].
    pub fn try_plan_graph(
        &self,
        graph: &DynamicGraph,
    ) -> Result<Vec<Arc<WindowPlan>>, WindowError> {
        let windows: Vec<&[Snapshot]> = graph.batches(self.k).collect();
        windows
            .into_par_iter()
            .enumerate()
            .map(|(i, batch)| {
                let refs: Vec<&Snapshot> = batch.iter().collect();
                self.try_plan_window(&refs, i).map(Arc::new)
            })
            .collect()
    }

    /// Plans every window of `graph`, serving cached plans where the
    /// cache already holds `(graph.fingerprint(), index, K)` and building
    /// (then inserting) the rest in parallel.
    pub fn plan_graph_cached(
        &self,
        graph: &DynamicGraph,
        cache: &PlanCache,
    ) -> Vec<Arc<WindowPlan>> {
        self.plan_graph_cached_traced(graph, cache, None)
    }

    /// [`Self::plan_graph_cached`] under a `plan` span, publishing the
    /// aggregate instrumentation (including the cache-delta of this call)
    /// as `plan.*` counters when a recorder is attached.
    pub fn plan_graph_cached_traced(
        &self,
        graph: &DynamicGraph,
        cache: &PlanCache,
        rec: Option<&Recorder>,
    ) -> Vec<Arc<WindowPlan>> {
        let _span = obs_span(rec, "plan");
        let before = cache.stats();
        let plans = self.plan_graph_cached_inner(graph, cache);
        if let Some(rec) = rec {
            PlanInstrumentation::from_plans(&plans)
                .with_cache(cache.stats().since(before))
                .publish(rec, "plan");
        }
        plans
    }

    fn plan_graph_cached_inner(
        &self,
        graph: &DynamicGraph,
        cache: &PlanCache,
    ) -> Vec<Arc<WindowPlan>> {
        let fp = graph.fingerprint();
        let windows: Vec<&[Snapshot]> = graph.batches(self.k).collect();
        let mut plans: Vec<Option<Arc<WindowPlan>>> = windows
            .iter()
            .enumerate()
            .map(|(i, _)| cache.get(&(fp, i, self.k)))
            .collect();
        let missing: Vec<usize> = plans
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| i)
            .collect();
        let built: Vec<(usize, Arc<WindowPlan>)> = missing
            .into_par_iter()
            .map(|i| {
                let refs: Vec<&Snapshot> = windows[i].iter().collect();
                (i, Arc::new(self.plan_window(&refs, i)))
            })
            .collect();
        for (i, plan) in built {
            cache.insert((fp, i, self.k), Arc::clone(&plan));
            plans[i] = Some(plan);
        }
        plans.into_iter().map(Option::unwrap).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_window;
    use crate::generate::{DatasetPreset, GeneratorConfig};

    fn graph() -> DynamicGraph {
        DatasetPreset::Gdelt.config_small(6).generate()
    }

    #[test]
    fn plan_matches_direct_kernel_calls() {
        let g = graph();
        let plans = WindowPlanner::new(3).plan_graph(&g);
        assert_eq!(plans.len(), 2);
        for (i, batch) in g.batches(3).enumerate() {
            let refs: Vec<&Snapshot> = batch.iter().collect();
            let cls = classify_window(&refs);
            let sg = AffectedSubgraph::extract(&refs, &cls);
            let ocsr = OCsr::from_subgraph(&refs, &cls, &sg);
            assert_eq!(plans[i].classification(), &cls);
            assert_eq!(plans[i].subgraph(), &sg);
            assert_eq!(plans[i].ocsr(), &ocsr);
            assert_eq!(plans[i].index(), i);
            assert_eq!(plans[i].window_len(), batch.len());
        }
    }

    #[test]
    fn plan_stats_mirror_the_dispatch_sweep() {
        let g = graph();
        let plans = WindowPlanner::new(4).plan_graph(&g);
        for (plan, batch) in plans.iter().zip(g.batches(4)) {
            let refs: Vec<&Snapshot> = batch.iter().collect();
            let s = plan.stats();
            assert_eq!(s.classified_vertices, g.num_vertices() as u64);
            assert_eq!(s.subgraph_edges, plan.subgraph().num_edges() as u64);
            let expect_items = g.num_vertices() + plan.subgraph().num_vertices() * (refs.len() - 1);
            assert_eq!(s.degree_items.len(), expect_items);
            let cold: u64 = s.degree_items[..g.num_vertices()].iter().sum();
            assert_eq!(s.cold_rows, cold);
            assert_eq!(s.counts.total(), g.num_vertices());
        }
    }

    #[test]
    fn tail_window_is_planned_short() {
        let g = graph(); // 6 snapshots
        let plans = WindowPlanner::new(4).plan_graph(&g);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].window_len(), 4);
        assert_eq!(plans[1].window_len(), 2);
    }

    #[test]
    fn cache_hits_on_second_plan_and_misses_on_first() {
        let g = graph();
        let cache = PlanCache::new();
        let planner = WindowPlanner::new(3);
        let first = planner.plan_graph_cached(&g, &cache);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 2,
                evictions: 0
            }
        );
        let second = planner.plan_graph_cached(&g, &cache);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 2,
                misses: 2,
                evictions: 0
            }
        );
        for (a, b) in first.iter().zip(&second) {
            assert!(Arc::ptr_eq(a, b), "cached plans are shared, not rebuilt");
        }
    }

    #[test]
    fn cache_distinguishes_window_sizes_and_graphs() {
        let g = graph();
        let cache = PlanCache::new();
        WindowPlanner::new(3).plan_graph_cached(&g, &cache);
        WindowPlanner::new(4).plan_graph_cached(&g, &cache);
        assert_eq!(cache.stats().hits, 0, "different K must not collide");
        let other = GeneratorConfig::tiny().generate();
        WindowPlanner::new(3).plan_graph_cached(&other, &cache);
        assert_eq!(cache.stats().hits, 0, "different graphs must not collide");
        assert_eq!(cache.len(), 2 + 2 + 2);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let g = graph();
        let planner = WindowPlanner::new(3);
        let plans = planner.plan_graph(&g); // 2 windows
        let cache = PlanCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        cache.insert((1, 0, 3), Arc::clone(&plans[0]));
        cache.insert((2, 0, 3), Arc::clone(&plans[0]));
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(cache.get(&(1, 0, 3)).is_some());
        cache.insert((3, 0, 3), Arc::clone(&plans[1]));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&(2, 0, 3)).is_none(), "LRU entry was evicted");
        assert!(cache.get(&(1, 0, 3)).is_some());
        assert!(cache.get(&(3, 0, 3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn bounded_cache_stays_within_capacity_under_churn() {
        let g = graph();
        let planner = WindowPlanner::new(3);
        let plan = Arc::clone(&planner.plan_graph(&g)[0]);
        let cache = PlanCache::with_capacity(4);
        for i in 0..32usize {
            cache.insert((i as u64, 0, 3), Arc::clone(&plan));
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().evictions, 28);
        // An unbounded cache never evicts.
        let unbounded = PlanCache::new();
        for i in 0..32usize {
            unbounded.insert((i as u64, 0, 3), Arc::clone(&plan));
        }
        assert_eq!(unbounded.len(), 32);
        assert_eq!(unbounded.stats().evictions, 0);
    }

    #[test]
    fn reinsert_same_key_neither_counts_a_miss_nor_evicts() {
        let g = graph();
        let planner = WindowPlanner::new(3);
        let plans = planner.plan_graph(&g);
        let cache = PlanCache::with_capacity(1);
        cache.insert((1, 0, 3), Arc::clone(&plans[0]));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                evictions: 0
            }
        );
        // Re-inserting the resident key replaces the plan in place: the
        // cache is exactly at capacity, so any phantom "new entry" would
        // evict the only occupant.
        cache.insert((1, 0, 3), Arc::clone(&plans[1]));
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                evictions: 0
            }
        );
        let got = cache.get(&(1, 0, 3)).expect("entry survived re-insert");
        assert!(Arc::ptr_eq(&got, &plans[1]), "re-insert replaces the plan");
        // A genuinely new key at capacity 1 churns: one miss, one eviction.
        cache.insert((2, 0, 3), Arc::clone(&plans[0]));
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                evictions: 1
            }
        );
        assert!(cache.get(&(1, 0, 3)).is_none(), "old key was the victim");
    }

    #[test]
    fn plan_stats_equality_ignores_source_and_fingerprint_pins_content() {
        let g = graph();
        let plans = WindowPlanner::new(3).plan_graph(&g);
        let mut a = (*plans[0]).clone();
        let b = (*plans[0]).clone();
        a.set_source(PlanSource::Incremental);
        assert_eq!(a, b, "source is bookkeeping, not plan content");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            plans[0].fingerprint(),
            plans[1].fingerprint(),
            "different windows hash apart"
        );
        assert_eq!(a.source(), PlanSource::Incremental);
        assert_eq!(b.source(), PlanSource::Scratch);
        assert_eq!(PlanSource::Cached.name(), "cached");
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let a = GeneratorConfig::tiny().generate();
        let b = GeneratorConfig::tiny().generate();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same content, same print");
        let mut cfg = GeneratorConfig::tiny();
        cfg.seed ^= 1;
        let c = cfg.generate();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn planner_rejects_empty_window() {
        let err = WindowPlanner::new(2).try_plan_window(&[], 0).unwrap_err();
        assert_eq!(err, WindowError::EmptyWindow);
    }

    #[test]
    fn instrumentation_equality_ignores_timing_and_cache() {
        let g = graph();
        let plans = WindowPlanner::new(3).plan_graph(&g);
        let a = PlanInstrumentation::from_plans(&plans);
        let mut b = a;
        b.build_ns = a.build_ns.wrapping_add(999);
        b.cache_hits = 7;
        b.cache_misses = 3;
        assert_eq!(a, b);
        let mut c = a;
        c.subgraph_edges += 1;
        assert_ne!(a, c);
    }
}
