//! Affected-subgraph extraction (paper §3.1, "Topology-aware Concurrent
//! Processing").
//!
//! Stable vertices act as cut vertices between the unaffected region and the
//! region perturbed by graph updates. Starting a DFS from every stable root
//! and recursing only through *affected* neighbours delineates exactly the
//! subgraph whose GNN outputs can change within the window; unaffected
//! vertices never enter it and are computed once per layer.

use crate::classify::WindowClassification;
use crate::snapshot::Snapshot;
use crate::types::{SnapshotId, VertexClass, VertexId};
use serde::{Deserialize, Serialize};

/// One timestamped edge of the affected subgraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubEdge {
    /// Source vertex (a member of the affected subgraph).
    pub src: VertexId,
    /// Target vertex (any class — aggregation needs every neighbour).
    pub dst: VertexId,
    /// Snapshot (relative to the window start) the edge belongs to.
    pub snapshot: SnapshotId,
}

/// The affected subgraph of one window: the stable + affected vertices that
/// must be recomputed per snapshot, with their timestamped adjacency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffectedSubgraph {
    vertices: Vec<VertexId>,
    roots: Vec<VertexId>,
    visit_order: Vec<VertexId>,
    edges: Vec<SubEdge>,
    window: usize,
}

impl AffectedSubgraph {
    /// Extracts the affected subgraph for `snaps` given its classification.
    ///
    /// The DFS starts from every stable vertex (the paper's roots) and
    /// recurses through affected neighbours across *all* snapshots of the
    /// window concurrently. Affected vertices unreachable from any stable
    /// root (components with no stable boundary, e.g. freshly inserted
    /// islands) are swept up afterwards so the subgraph is complete.
    ///
    /// # Panics
    /// Panics if `snaps` is empty or its universe disagrees with `cls`.
    pub fn extract(snaps: &[&Snapshot], cls: &WindowClassification) -> Self {
        assert!(
            !snaps.is_empty(),
            "window must contain at least one snapshot"
        );
        let n = snaps[0].num_vertices();
        assert_eq!(cls.classes().len(), n, "classification universe mismatch");

        let mut visited = vec![false; n];
        let mut visit_order = Vec::new();
        let mut roots = Vec::new();
        let mut stack: Vec<VertexId> = Vec::new();

        let mut dfs_from =
            |root: VertexId, visited: &mut Vec<bool>, visit_order: &mut Vec<VertexId>| {
                if visited[root as usize] {
                    return;
                }
                visited[root as usize] = true;
                visit_order.push(root);
                stack.push(root);
                while let Some(v) = stack.pop() {
                    for snap in snaps {
                        if !snap.is_active(v) {
                            continue;
                        }
                        for &u in snap.neighbors(v) {
                            if !visited[u as usize] && cls.class(u) == VertexClass::Affected {
                                visited[u as usize] = true;
                                visit_order.push(u);
                                stack.push(u);
                            }
                        }
                    }
                }
            };

        // Phase 1: stable roots, as the paper prescribes.
        for v in 0..n as VertexId {
            if cls.class(v) == VertexClass::Stable {
                roots.push(v);
                dfs_from(v, &mut visited, &mut visit_order);
            }
        }
        // Phase 2: orphan affected components (no stable boundary).
        for v in 0..n as VertexId {
            if cls.class(v) == VertexClass::Affected && !visited[v as usize] {
                dfs_from(v, &mut visited, &mut visit_order);
            }
        }

        let mut vertices: Vec<VertexId> = visit_order.clone();
        vertices.sort_unstable();

        // Timestamped adjacency: everything each subgraph vertex aggregates
        // from, per snapshot.
        let mut edges = Vec::new();
        for &v in &vertices {
            for (t, snap) in snaps.iter().enumerate() {
                if !snap.is_active(v) {
                    continue;
                }
                for &u in snap.neighbors(v) {
                    edges.push(SubEdge {
                        src: v,
                        dst: u,
                        snapshot: t as SnapshotId,
                    });
                }
            }
        }

        Self {
            vertices,
            roots,
            visit_order,
            edges,
            window: snaps.len(),
        }
    }

    /// Sorted vertex set of the subgraph.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// The stable roots the DFS started from.
    #[inline]
    pub fn roots(&self) -> &[VertexId] {
        &self.roots
    }

    /// Vertices in DFS discovery order (the locality-friendly layout order).
    #[inline]
    pub fn visit_order(&self) -> &[VertexId] {
        &self.visit_order
    }

    /// Timestamped edges, grouped by source vertex then snapshot.
    #[inline]
    pub fn edges(&self) -> &[SubEdge] {
        &self.edges
    }

    /// Window size this subgraph was extracted over.
    #[inline]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Whether `v` belongs to the subgraph.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// Number of subgraph vertices |V_S|.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of timestamped edges |E_S|.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_window;
    use crate::csr::Csr;
    use crate::delta::{apply_updates, GraphUpdate};
    use tagnn_tensor::DenseMatrix;

    fn snap(n: usize, edges: &[(u32, u32)]) -> Snapshot {
        Snapshot::fully_active(
            Csr::from_edges(n, edges),
            DenseMatrix::from_fn(n, 2, |r, _| r as f32),
        )
    }

    /// The paper's Figure 4 example: v0..v3 unaffected, v4 stable,
    /// v5..v7 affected.
    fn figure4() -> (Snapshot, Snapshot, Snapshot) {
        // Base: v0-v3 form a stable clique-ish region, v4 bridges to v5/v6.
        let s0 = snap(8, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (4, 6), (5, 7)]);
        let s1 = apply_updates(
            &s0,
            &[
                GraphUpdate::RemoveEdge { src: 4, dst: 6 },
                GraphUpdate::MutateFeature {
                    v: 5,
                    feature: vec![9.0, 9.0],
                },
                GraphUpdate::MutateFeature {
                    v: 6,
                    feature: vec![8.0, 8.0],
                },
                GraphUpdate::MutateFeature {
                    v: 7,
                    feature: vec![7.5, 7.5],
                },
            ],
        );
        let s2 = apply_updates(
            &s1,
            &[
                GraphUpdate::AddEdge { src: 4, dst: 6 },
                GraphUpdate::RemoveEdge { src: 4, dst: 5 },
                GraphUpdate::MutateFeature {
                    v: 5,
                    feature: vec![9.5, 9.5],
                },
            ],
        );
        (s0, s1, s2)
    }

    #[test]
    fn figure4_classification_matches_paper() {
        let (s0, s1, s2) = figure4();
        let cls = classify_window(&[&s0, &s1, &s2]);
        for v in 0..4 {
            assert_eq!(cls.class(v), VertexClass::Unaffected, "v{v}");
        }
        assert_eq!(cls.class(4), VertexClass::Stable);
        for v in 5..8 {
            assert_eq!(cls.class(v), VertexClass::Affected, "v{v}");
        }
    }

    #[test]
    fn figure4_subgraph_is_v4_to_v7() {
        let (s0, s1, s2) = figure4();
        let cls = classify_window(&[&s0, &s1, &s2]);
        let sg = AffectedSubgraph::extract(&[&s0, &s1, &s2], &cls);
        assert_eq!(sg.vertices(), &[4, 5, 6, 7]);
        assert_eq!(sg.roots(), &[4]);
        assert!(sg.contains(5));
        assert!(!sg.contains(0));
    }

    #[test]
    fn figure4_edges_are_timestamped() {
        let (s0, s1, s2) = figure4();
        let cls = classify_window(&[&s0, &s1, &s2]);
        let sg = AffectedSubgraph::extract(&[&s0, &s1, &s2], &cls);
        // v4's adjacency across the window: {5,6}@0, {5}@1, {6}@2.
        let v4: Vec<_> = sg.edges().iter().filter(|e| e.src == 4).collect();
        let tuples: Vec<(u32, u32)> = v4.iter().map(|e| (e.dst, e.snapshot)).collect();
        assert_eq!(tuples, vec![(5, 0), (6, 0), (5, 1), (6, 2)]);
    }

    #[test]
    fn orphan_affected_components_are_swept_up() {
        // v3 is an isolated vertex whose feature changes: affected, with no
        // stable root pointing at it.
        let s0 = snap(4, &[(0, 1), (1, 0)]);
        let s1 = apply_updates(
            &s0,
            &[GraphUpdate::MutateFeature {
                v: 3,
                feature: vec![1.0, 1.0],
            }],
        );
        let cls = classify_window(&[&s0, &s1]);
        assert_eq!(cls.class(3), VertexClass::Affected);
        let sg = AffectedSubgraph::extract(&[&s0, &s1], &cls);
        assert!(
            sg.contains(3),
            "orphan affected vertex must enter the subgraph"
        );
    }

    #[test]
    fn unaffected_vertices_never_enter_subgraph() {
        let (s0, s1, s2) = figure4();
        let cls = classify_window(&[&s0, &s1, &s2]);
        let sg = AffectedSubgraph::extract(&[&s0, &s1, &s2], &cls);
        for &v in sg.vertices() {
            assert_ne!(cls.class(v), VertexClass::Unaffected);
        }
    }

    #[test]
    fn identical_window_yields_empty_subgraph() {
        let s = snap(5, &[(0, 1), (2, 3)]);
        let cls = classify_window(&[&s, &s]);
        let sg = AffectedSubgraph::extract(&[&s, &s], &cls);
        assert_eq!(sg.num_vertices(), 0);
        assert_eq!(sg.num_edges(), 0);
    }

    #[test]
    fn visit_order_starts_at_stable_roots() {
        let (s0, s1, s2) = figure4();
        let cls = classify_window(&[&s0, &s1, &s2]);
        let sg = AffectedSubgraph::extract(&[&s0, &s1, &s2], &cls);
        assert_eq!(sg.visit_order()[0], 4, "DFS must start at the stable root");
    }
}
