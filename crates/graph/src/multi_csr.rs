//! Per-snapshot CSR replication — the plain-CSR baseline of Fig. 13(b).
//!
//! Traditional DGNN systems store each snapshot as an independent CSR plus a
//! full feature table, so a window of K snapshots replicates every unchanged
//! neighbour list and feature row K times. `MultiCsr` materialises exactly
//! that layout so its storage and access costs can be compared against
//! [`crate::OCsr`].

use crate::snapshot::Snapshot;
use crate::types::{SnapshotId, VertexId};
use serde::{Deserialize, Serialize};

/// K independent CSR snapshots with their feature tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiCsr {
    snapshots: Vec<Snapshot>,
}

impl MultiCsr {
    /// Clones the window into the replicated layout.
    ///
    /// # Panics
    /// Panics on an empty window.
    pub fn from_window(snaps: &[&Snapshot]) -> Self {
        assert!(
            !snaps.is_empty(),
            "window must contain at least one snapshot"
        );
        Self {
            snapshots: snaps.iter().map(|s| (*s).clone()).collect(),
        }
    }

    /// Window size K.
    #[inline]
    pub fn window(&self) -> usize {
        self.snapshots.len()
    }

    /// Neighbours of `v` in snapshot `t`.
    pub fn neighbors_at(&self, v: VertexId, t: SnapshotId) -> &[VertexId] {
        self.snapshots[t as usize].neighbors(v)
    }

    /// Feature of `v` in snapshot `t` (stored K times regardless of change).
    pub fn feature(&self, v: VertexId, t: SnapshotId) -> &[f32] {
        self.snapshots[t as usize].feature(v)
    }

    /// Total storage: K copies of structure plus K full feature tables.
    pub fn storage_bytes(&self) -> usize {
        self.snapshots
            .iter()
            .map(|s| {
                s.csr().storage_bytes()
                    + s.features().rows() * s.features().cols() * std::mem::size_of::<f32>()
                    + s.active().len()
            })
            .sum()
    }

    /// Words touched to gather `v`'s neighbourhood and features across the
    /// whole window: each snapshot costs two offset reads, the neighbour
    /// list, and a full feature row — with no cross-snapshot reuse.
    pub fn window_access_cost(&self, v: VertexId) -> usize {
        self.snapshots
            .iter()
            .map(|s| {
                let deg = s.csr().degree(v);
                2 + deg + s.feature_dim()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;
    use tagnn_tensor::DenseMatrix;

    fn snap(edges: &[(u32, u32)]) -> Snapshot {
        Snapshot::fully_active(
            Csr::from_edges(4, edges),
            DenseMatrix::from_fn(4, 3, |r, _| r as f32),
        )
    }

    #[test]
    fn replicates_window() {
        let s0 = snap(&[(0, 1)]);
        let s1 = snap(&[(0, 1), (1, 2)]);
        let m = MultiCsr::from_window(&[&s0, &s1]);
        assert_eq!(m.window(), 2);
        assert_eq!(m.neighbors_at(1, 0), &[] as &[u32]);
        assert_eq!(m.neighbors_at(1, 1), &[2]);
        assert_eq!(m.feature(2, 0), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn storage_scales_linearly_with_window() {
        let s = snap(&[(0, 1), (1, 2), (2, 3)]);
        let one = MultiCsr::from_window(&[&s]).storage_bytes();
        let four = MultiCsr::from_window(&[&s, &s, &s, &s]).storage_bytes();
        assert_eq!(four, 4 * one, "identical snapshots are stored 4x anyway");
    }

    #[test]
    fn access_cost_has_no_reuse() {
        let s = snap(&[(0, 1), (0, 2)]);
        let m = MultiCsr::from_window(&[&s, &s, &s]);
        // Per snapshot: 2 offsets + 2 neighbours + 3 feature words = 7.
        assert_eq!(m.window_access_cost(0), 21);
    }
}
