//! Overlap and degree statistics over dynamic graphs — the measurements
//! behind Fig. 3(a) and the neighbour-overlap factors of the θ score.

use crate::classify::WindowClassification;
use crate::dynamic::DynamicGraph;
use crate::plan::WindowPlanner;
use crate::snapshot::Snapshot;
use crate::types::{VertexClass, VertexId};
use serde::{Deserialize, Serialize};
use tagnn_tensor::similarity::NeighborOverlap;

/// Average unaffected-vertex ratio across all non-overlapping windows of
/// size `k` (the Fig. 3(a) statistic). Short tail windows are excluded —
/// the ratio is only comparable across full-size windows.
pub fn unaffected_ratio(graph: &DynamicGraph, k: usize) -> f64 {
    let full: Vec<f64> = WindowPlanner::new(k)
        .plan_graph(graph)
        .iter()
        .filter(|p| p.window_len() == k)
        .map(|p| p.classification().unaffected_ratio())
        .collect();
    if full.is_empty() {
        0.0
    } else {
        full.iter().sum::<f64>() / full.len() as f64
    }
}

/// Per-class vertex counts for one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Number of unaffected vertices.
    pub unaffected: usize,
    /// Number of stable (but not unaffected) vertices.
    pub stable: usize,
    /// Number of affected vertices.
    pub affected: usize,
}

impl ClassCounts {
    /// Derives counts from a classification.
    pub fn from_classification(cls: &WindowClassification) -> Self {
        Self {
            unaffected: cls.count(VertexClass::Unaffected),
            stable: cls.count(VertexClass::Stable),
            affected: cls.count(VertexClass::Affected),
        }
    }

    /// Total vertices.
    pub fn total(&self) -> usize {
        self.unaffected + self.stable + self.affected
    }
}

/// Neighbour-set overlap of vertex `v` between two consecutive snapshots,
/// with stability information of the common neighbours — the topological
/// factors of the θ score (§3.1).
pub fn neighbor_overlap(
    prev: &Snapshot,
    cur: &Snapshot,
    cls: &WindowClassification,
    v: VertexId,
) -> NeighborOverlap {
    let a = prev.neighbors(v);
    let b = cur.neighbors(v);
    // Both lists are sorted: merge-count.
    let (mut i, mut j) = (0usize, 0usize);
    let mut common = 0usize;
    let mut stable_common = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                if cls.class(a[i]).is_feature_stable() {
                    stable_common += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    NeighborOverlap {
        common,
        stable_common,
        union: a.len() + b.len() - common,
    }
}

/// Simple degree statistics of one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Maximum out-degree.
    pub max: usize,
    /// Mean out-degree over active vertices.
    pub mean: f64,
    /// Number of isolated (zero-degree) active vertices.
    pub isolated: usize,
}

/// Computes [`DegreeStats`] for `snap`.
pub fn degree_stats(snap: &Snapshot) -> DegreeStats {
    let mut max = 0usize;
    let mut sum = 0usize;
    let mut isolated = 0usize;
    let mut active = 0usize;
    for v in 0..snap.num_vertices() as VertexId {
        if !snap.is_active(v) {
            continue;
        }
        active += 1;
        let d = snap.csr().degree(v);
        max = max.max(d);
        sum += d;
        if d == 0 {
            isolated += 1;
        }
    }
    DegreeStats {
        max,
        mean: if active == 0 {
            0.0
        } else {
            sum as f64 / active as f64
        },
        isolated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_window;
    use crate::csr::Csr;
    use crate::delta::{apply_updates, GraphUpdate};
    use crate::generate::{DatasetPreset, GeneratorConfig};
    use tagnn_tensor::DenseMatrix;

    fn snap(n: usize, edges: &[(u32, u32)]) -> Snapshot {
        Snapshot::fully_active(Csr::from_edges(n, edges), DenseMatrix::zeros(n, 2))
    }

    #[test]
    fn unaffected_ratio_of_frozen_graph_is_one() {
        let mut cfg = GeneratorConfig::tiny();
        cfg.churn.feature_mutation_rate = 0.0;
        cfg.churn.edge_rewire_rate = 0.0;
        cfg.churn.vertex_churn_rate = 0.0;
        let g = cfg.generate();
        assert_eq!(unaffected_ratio(&g, 3), 1.0);
    }

    #[test]
    fn unaffected_ratio_decreases_with_window_size() {
        let g = DatasetPreset::Gdelt.config_small(8).generate();
        let r2 = unaffected_ratio(&g, 2);
        let r4 = unaffected_ratio(&g, 4);
        assert!(
            r4 <= r2 + 1e-9,
            "larger windows cannot have more unaffected vertices: {r2} vs {r4}"
        );
    }

    #[test]
    fn preset_churn_lands_in_paper_bands() {
        // Fig. 3(a): unaffected across 3 snapshots averages 27–45 %, across
        // 4 snapshots 10–24 % (band widened slightly for synthetic graphs).
        let g = DatasetPreset::MovieLens.config_small(8).generate();
        let r3 = unaffected_ratio(&g, 3);
        assert!((0.05..=0.95).contains(&r3), "ratio {r3} out of sane range");
    }

    #[test]
    fn class_counts_sum_to_total() {
        let g = GeneratorConfig::tiny().generate();
        let refs: Vec<&Snapshot> = g.snapshots()[0..3].iter().collect();
        let cls = classify_window(&refs);
        let counts = ClassCounts::from_classification(&cls);
        assert_eq!(counts.total(), g.num_vertices());
    }

    #[test]
    fn neighbor_overlap_counts_common_and_stable() {
        let s0 = snap(5, &[(0, 1), (0, 2), (0, 3)]);
        let s1 = apply_updates(
            &s0,
            &[
                GraphUpdate::RemoveEdge { src: 0, dst: 3 },
                GraphUpdate::AddEdge { src: 0, dst: 4 },
                GraphUpdate::MutateFeature {
                    v: 2,
                    feature: vec![1.0, 1.0],
                },
            ],
        );
        let cls = classify_window(&[&s0, &s1]);
        let o = neighbor_overlap(&s0, &s1, &cls, 0);
        assert_eq!(o.common, 2, "v1 and v2 are shared");
        assert_eq!(o.stable_common, 1, "only v1 is feature-stable");
        assert_eq!(o.union, 4);
    }

    #[test]
    fn degree_stats_basic() {
        let s = snap(4, &[(0, 1), (0, 2), (1, 2)]);
        let d = degree_stats(&s);
        assert_eq!(d.max, 2);
        assert_eq!(d.isolated, 2); // v2 and v3 have no out-edges
        assert!((d.mean - 0.75).abs() < 1e-9);
    }
}
