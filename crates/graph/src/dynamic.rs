//! The temporal sequence of snapshots and sliding-window batching.

use crate::error::GraphError;
use crate::snapshot::Snapshot;
use crate::types::VertexId;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

#[inline]
fn mix(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(FNV_PRIME)
}

/// A dynamic graph `G = {G_1, ..., G_T}` over a shared vertex universe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicGraph {
    snapshots: Vec<Snapshot>,
}

impl DynamicGraph {
    /// Wraps a snapshot sequence.
    ///
    /// # Panics
    /// Panics if the sequence is empty or snapshots disagree on universe
    /// size or feature dimension.
    pub fn new(snapshots: Vec<Snapshot>) -> Self {
        match Self::try_new(snapshots) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Self::new`], returning a typed
    /// [`GraphError`] instead of panicking — the ingestion-safe path for
    /// windows rolled from untrusted event streams.
    pub fn try_new(snapshots: Vec<Snapshot>) -> Result<Self, GraphError> {
        let Some(first) = snapshots.first() else {
            return Err(GraphError::EmptyGraph);
        };
        let n = first.num_vertices();
        let d = first.feature_dim();
        for (i, s) in snapshots.iter().enumerate() {
            if s.num_vertices() != n {
                return Err(GraphError::UniverseMismatch {
                    expected: n,
                    found: s.num_vertices(),
                    snapshot: i,
                });
            }
            if s.feature_dim() != d {
                return Err(GraphError::FeatureDimMismatch {
                    expected: d,
                    found: s.feature_dim(),
                    snapshot: i,
                });
            }
        }
        Ok(Self { snapshots })
    }

    /// Number of snapshots `T`.
    #[inline]
    pub fn num_snapshots(&self) -> usize {
        self.snapshots.len()
    }

    /// Size of the shared vertex universe.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.snapshots[0].num_vertices()
    }

    /// Feature dimensionality `D`.
    #[inline]
    pub fn feature_dim(&self) -> usize {
        self.snapshots[0].feature_dim()
    }

    /// Snapshot at timestamp `t`.
    #[inline]
    pub fn snapshot(&self, t: usize) -> &Snapshot {
        &self.snapshots[t]
    }

    /// All snapshots in order.
    #[inline]
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Non-overlapping windows ("batches" in the paper: the MSDL divides all
    /// snapshots into batches of a predefined number of snapshots). The last
    /// window may be shorter than `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn batches(&self, k: usize) -> impl Iterator<Item = &[Snapshot]> {
        assert!(k > 0, "window size must be positive");
        self.snapshots.chunks(k)
    }

    /// Overlapping sliding windows of exactly `k` snapshots, stepping by one
    /// (the classical DGNN sliding-window view of Fig. 1).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn sliding_windows(&self, k: usize) -> impl Iterator<Item = &[Snapshot]> {
        assert!(k > 0, "window size must be positive");
        self.snapshots.windows(k)
    }

    /// Total number of directed edges across all snapshots.
    pub fn total_edges(&self) -> usize {
        self.snapshots.iter().map(Snapshot::num_edges).sum()
    }

    /// A content-based fingerprint over structure, activity, and features
    /// of every snapshot — the dataset half of a
    /// [`crate::plan::PlanKey`]. Two graphs with identical content hash
    /// identically regardless of how they were produced.
    pub fn fingerprint(&self) -> u64 {
        let per_snapshot: Vec<u64> = self
            .snapshots
            .par_iter()
            .map(|s| {
                let mut h = FNV_OFFSET;
                h = mix(h, s.num_vertices() as u64);
                for v in 0..s.num_vertices() as VertexId {
                    h = mix(h, u64::from(s.is_active(v)));
                    h = mix(h, s.neighbors(v).len() as u64);
                    for &u in s.neighbors(v) {
                        h = mix(h, u64::from(u));
                    }
                    for &x in s.feature(v) {
                        h = mix(h, u64::from(x.to_bits()));
                    }
                }
                h
            })
            .collect();
        let mut h = mix(FNV_OFFSET, self.snapshots.len() as u64);
        for p in per_snapshot {
            h = mix(h, p);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;
    use tagnn_tensor::DenseMatrix;

    fn snap(n: usize, edges: &[(u32, u32)]) -> Snapshot {
        Snapshot::fully_active(Csr::from_edges(n, edges), DenseMatrix::zeros(n, 2))
    }

    fn graph(t: usize) -> DynamicGraph {
        DynamicGraph::new(
            (0..t)
                .map(|i| snap(4, &[(0, (i % 3 + 1) as u32)]))
                .collect(),
        )
    }

    #[test]
    fn basic_accessors() {
        let g = graph(5);
        assert_eq!(g.num_snapshots(), 5);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.feature_dim(), 2);
        assert_eq!(g.total_edges(), 5);
    }

    #[test]
    fn batches_chunk_without_overlap() {
        let g = graph(7);
        let sizes: Vec<usize> = g.batches(3).map(<[Snapshot]>::len).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn sliding_windows_overlap() {
        let g = graph(5);
        assert_eq!(g.sliding_windows(3).count(), 3);
        assert_eq!(g.sliding_windows(5).count(), 1);
        assert_eq!(g.sliding_windows(6).count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one snapshot")]
    fn rejects_empty() {
        let _ = DynamicGraph::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "universe size mismatch")]
    fn rejects_mismatched_universe() {
        let _ = DynamicGraph::new(vec![snap(4, &[]), snap(5, &[])]);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        use crate::error::GraphError;
        assert_eq!(DynamicGraph::try_new(vec![]), Err(GraphError::EmptyGraph));
        assert_eq!(
            DynamicGraph::try_new(vec![snap(4, &[]), snap(5, &[])]),
            Err(GraphError::UniverseMismatch {
                expected: 4,
                found: 5,
                snapshot: 1
            })
        );
        assert!(DynamicGraph::try_new(vec![snap(4, &[])]).is_ok());
    }
}
