//! Window-level vertex classification (paper §3.1).
//!
//! Given a window of K consecutive snapshots, each vertex is categorised as
//! [`VertexClass::Unaffected`], [`VertexClass::Stable`], or
//! [`VertexClass::Affected`] by comparing, across the window:
//!
//! 1. presence (a vertex absent from any snapshot is affected — its absence
//!    signifies a structural change, §4.1),
//! 2. its own feature row,
//! 3. its neighbour-id list,
//! 4. its neighbours' feature rows.

use crate::snapshot::Snapshot;
use crate::types::{VertexClass, VertexId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The classification outcome for one window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowClassification {
    classes: Vec<VertexClass>,
    window: usize,
}

impl WindowClassification {
    /// Assembles a classification from already computed per-vertex classes
    /// (the incremental maintainer's seal path). [`try_classify_window`]
    /// stays the semantic oracle; agreement is pinned by the randomized
    /// differential test.
    pub(crate) fn from_parts(classes: Vec<VertexClass>, window: usize) -> Self {
        Self { classes, window }
    }

    /// Class of vertex `v`.
    #[inline]
    pub fn class(&self, v: VertexId) -> VertexClass {
        self.classes[v as usize]
    }

    /// All per-vertex classes, indexed by vertex id.
    #[inline]
    pub fn classes(&self) -> &[VertexClass] {
        &self.classes
    }

    /// Window size K this classification was computed over.
    #[inline]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Vertices of a given class, in id order.
    pub fn vertices_of(&self, class: VertexClass) -> impl Iterator<Item = VertexId> + '_ {
        self.classes
            .iter()
            .enumerate()
            .filter(move |(_, &c)| c == class)
            .map(|(v, _)| v as VertexId)
    }

    /// Number of vertices of a given class.
    pub fn count(&self, class: VertexClass) -> usize {
        self.classes.iter().filter(|&&c| c == class).count()
    }

    /// Fraction of unaffected vertices (Fig. 3a's metric).
    pub fn unaffected_ratio(&self) -> f64 {
        if self.classes.is_empty() {
            0.0
        } else {
            self.count(VertexClass::Unaffected) as f64 / self.classes.len() as f64
        }
    }
}

/// Why a window cannot be classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowError {
    /// The window holds no snapshots.
    EmptyWindow,
    /// A snapshot's vertex universe disagrees with the window's first.
    UniverseMismatch {
        /// Universe size of the window's first snapshot.
        expected: usize,
        /// Universe size of the offending snapshot.
        found: usize,
        /// Index of the offending snapshot within the window.
        snapshot: usize,
    },
}

impl std::fmt::Display for WindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowError::EmptyWindow => write!(f, "window must contain at least one snapshot"),
            WindowError::UniverseMismatch {
                expected,
                found,
                snapshot,
            } => write!(
                f,
                "window snapshots must share the vertex universe: \
                 snapshot {snapshot} has {found} vertices, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for WindowError {}

/// Classifies every vertex of the universe across the window `snaps`.
///
/// # Panics
/// Panics if the window is empty or snapshots disagree on universe size.
/// Use [`try_classify_window`] for a fallible variant.
pub fn classify_window(snaps: &[&Snapshot]) -> WindowClassification {
    match try_classify_window(snaps) {
        Ok(cls) => cls,
        Err(e) => panic!("{e}"),
    }
}

/// Classifies every vertex of the universe across the window `snaps`,
/// returning a typed [`WindowError`] on malformed input.
pub fn try_classify_window(snaps: &[&Snapshot]) -> Result<WindowClassification, WindowError> {
    if snaps.is_empty() {
        return Err(WindowError::EmptyWindow);
    }
    let n = snaps[0].num_vertices();
    for (i, s) in snaps.iter().enumerate() {
        if s.num_vertices() != n {
            return Err(WindowError::UniverseMismatch {
                expected: n,
                found: s.num_vertices(),
                snapshot: i,
            });
        }
    }
    let first = snaps[0];

    // Pass 1: per-vertex presence + own-feature stability + topology
    // stability. These only look at the vertex's own rows and are
    // embarrassingly parallel.
    let feature_stable: Vec<bool> = (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            snaps.iter().all(|s| s.is_active(v))
                && snaps[1..].iter().all(|s| s.feature(v) == first.feature(v))
        })
        .collect();
    let topo_stable: Vec<bool> = (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            snaps[1..]
                .iter()
                .all(|s| s.neighbors(v) == first.neighbors(v))
        })
        .collect();

    // Pass 2: a feature-stable, topology-stable vertex is unaffected only if
    // every neighbour is itself feature-stable (identical "neighbors'
    // features" in the paper's definition).
    let classes: Vec<VertexClass> = (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            if !feature_stable[v as usize] {
                VertexClass::Affected
            } else if topo_stable[v as usize]
                && first
                    .neighbors(v)
                    .iter()
                    .all(|&u| feature_stable[u as usize])
            {
                VertexClass::Unaffected
            } else {
                VertexClass::Stable
            }
        })
        .collect();

    Ok(WindowClassification {
        classes,
        window: snaps.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;
    use crate::delta::{apply_updates, GraphUpdate};
    use tagnn_tensor::DenseMatrix;

    fn snap(n: usize, edges: &[(u32, u32)]) -> Snapshot {
        Snapshot::fully_active(
            Csr::from_edges(n, edges),
            DenseMatrix::from_fn(n, 2, |r, _| r as f32),
        )
    }

    #[test]
    fn identical_snapshots_are_all_unaffected() {
        let s = snap(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = classify_window(&[&s, &s, &s]);
        assert_eq!(c.count(VertexClass::Unaffected), 4);
        assert_eq!(c.unaffected_ratio(), 1.0);
    }

    #[test]
    fn feature_mutation_makes_vertex_affected_and_neighbors_stable() {
        // Path 0 -> 1 -> 2 -> 3; mutate v2's feature in snapshot 2.
        let s0 = snap(4, &[(0, 1), (1, 2), (2, 3)]);
        let s1 = apply_updates(
            &s0,
            &[GraphUpdate::MutateFeature {
                v: 2,
                feature: vec![9.0, 9.0],
            }],
        );
        let c = classify_window(&[&s0, &s1]);
        assert_eq!(c.class(2), VertexClass::Affected);
        // v1 points at v2 whose feature changed -> stable, not unaffected.
        assert_eq!(c.class(1), VertexClass::Stable);
        // v0 points at v1 whose feature is unchanged -> unaffected.
        assert_eq!(c.class(0), VertexClass::Unaffected);
        // v3 has no out-neighbours and unchanged feature -> unaffected.
        assert_eq!(c.class(3), VertexClass::Unaffected);
    }

    #[test]
    fn edge_change_makes_source_stable() {
        let s0 = snap(4, &[(0, 1), (1, 2)]);
        let s1 = apply_updates(&s0, &[GraphUpdate::AddEdge { src: 1, dst: 3 }]);
        let c = classify_window(&[&s0, &s1]);
        assert_eq!(
            c.class(1),
            VertexClass::Stable,
            "changed neighbour list, unchanged feature"
        );
        assert_eq!(c.class(0), VertexClass::Unaffected);
    }

    #[test]
    fn removed_vertex_is_affected() {
        let s0 = snap(3, &[(0, 1)]);
        let s1 = apply_updates(&s0, &[GraphUpdate::RemoveVertex { v: 2 }]);
        let c = classify_window(&[&s0, &s1]);
        assert_eq!(c.class(2), VertexClass::Affected);
    }

    #[test]
    fn unaffected_subset_of_feature_stable_invariant() {
        let s0 = snap(5, &[(0, 1), (1, 2), (3, 4)]);
        let s1 = apply_updates(
            &s0,
            &[
                GraphUpdate::MutateFeature {
                    v: 4,
                    feature: vec![7.0, 7.0],
                },
                GraphUpdate::AddEdge { src: 2, dst: 0 },
            ],
        );
        let c = classify_window(&[&s0, &s1]);
        for v in 0..5u32 {
            if c.class(v) == VertexClass::Unaffected {
                assert!(c.class(v).is_feature_stable());
            }
        }
        // v3 -> v4 whose feature changed: stable. v2 got a new edge: stable.
        assert_eq!(c.class(3), VertexClass::Stable);
        assert_eq!(c.class(2), VertexClass::Stable);
    }

    #[test]
    fn vertices_of_enumerates_in_order() {
        let s0 = snap(3, &[(0, 1)]);
        let s1 = apply_updates(
            &s0,
            &[GraphUpdate::MutateFeature {
                v: 0,
                feature: vec![5.0, 5.0],
            }],
        );
        let c = classify_window(&[&s0, &s1]);
        let affected: Vec<_> = c.vertices_of(VertexClass::Affected).collect();
        assert_eq!(affected, vec![0]);
    }

    #[test]
    fn single_snapshot_window_is_all_unaffected() {
        let s = snap(3, &[(0, 1), (1, 2)]);
        let c = classify_window(&[&s]);
        assert_eq!(c.count(VertexClass::Unaffected), 3);
        assert_eq!(c.window(), 1);
    }

    #[test]
    fn try_classify_rejects_empty_window() {
        assert_eq!(try_classify_window(&[]), Err(WindowError::EmptyWindow));
    }

    #[test]
    fn try_classify_rejects_mismatched_universe() {
        let a = snap(3, &[(0, 1)]);
        let b = snap(4, &[(0, 1)]);
        assert_eq!(
            try_classify_window(&[&a, &b]),
            Err(WindowError::UniverseMismatch {
                expected: 3,
                found: 4,
                snapshot: 1,
            })
        );
    }

    #[test]
    #[should_panic(expected = "window must contain at least one snapshot")]
    fn panicking_wrapper_keeps_the_message() {
        let _ = classify_window(&[]);
    }
}
