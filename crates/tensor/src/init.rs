//! Deterministic weight initialisation.
//!
//! Trained checkpoints for the paper's models are not available, so every
//! weight matrix is Xavier-initialised from a seeded ChaCha stream. All
//! engines and the simulator share these weights, which is what accuracy
//! comparisons between exact and approximate execution require.

use crate::matrix::DenseMatrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Xavier/Glorot-uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let a = (6.0 / (rows + cols).max(1) as f64).sqrt() as f32;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..=a))
}

/// Uniform initialisation in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, seed: u64) -> DenseMatrix {
    assert!(lo < hi, "empty range");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// A fresh deterministic RNG for ad-hoc sampling with a derived seed.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_deterministic() {
        let a = xavier_uniform(4, 8, 42);
        let b = xavier_uniform(4, 8, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn xavier_differs_across_seeds() {
        let a = xavier_uniform(4, 8, 1);
        let b = xavier_uniform(4, 8, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn xavier_respects_bound() {
        let m = xavier_uniform(10, 10, 7);
        let a = (6.0f64 / 20.0).sqrt() as f32;
        assert!(m.as_slice().iter().all(|v| v.abs() <= a + 1e-6));
    }

    #[test]
    fn uniform_respects_range() {
        let m = uniform(5, 5, -0.5, 0.5, 3);
        assert!(m.as_slice().iter().all(|v| (-0.5..0.5).contains(v)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_rejects_empty_range() {
        let _ = uniform(1, 1, 1.0, 1.0, 0);
    }
}
