#![warn(missing_docs)]

//! Dense linear algebra and similarity kernels underpinning the TaGNN stack.
//!
//! The crate deliberately implements only the operations DGNN inference
//! needs — row-major dense matrices, (parallel) matrix multiplication,
//! element-wise ops, activations, cosine similarity, and the delta/condense
//! machinery used by similarity-aware cell skipping — so that both the
//! software engines (`tagnn-models`) and the accelerator simulator
//! (`tagnn-sim`) share one arithmetic substrate and produce bit-identical
//! results.

pub mod activation;
pub mod affinity;
pub mod dispatch;
pub mod init;
pub mod kernels;
pub mod matrix;
pub mod ops;
pub mod similarity;

pub use activation::Activation;
pub use affinity::{pin_current_thread, pinning_enabled};
pub use dispatch::{DispatchMode, DispatchTally, Dispatcher, RowBitmap};
pub use kernels::{Scratch, ScratchBuf, ScratchPair};
pub use matrix::DenseMatrix;
