//! Cosine similarity, the topology-weighted similarity score θ, and the
//! delta/condense machinery of the similarity-aware cell-skipping strategy
//! (paper §3.1 and §4.2).

use serde::{Deserialize, Serialize};

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Cosine similarity in `[-1, 1]`.
///
/// Degenerate inputs follow the convention the Similarity Core Unit uses:
/// two zero vectors are identical (similarity 1), a zero vector against a
/// non-zero vector is maximally dissimilar to "unchanged" (similarity 0).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 && nb == 0.0 {
        return 1.0;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Topology statistics of a vertex across two consecutive snapshots,
/// feeding the θ score of paper §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborOverlap {
    /// |N^t(v) ∩ N^{t+1}(v)| — number of common neighbours.
    pub common: usize,
    /// |N_sv(v)| — number of *stable* vertices among the common neighbours.
    pub stable_common: usize,
    /// |N^t(v) ∪ N^{t+1}(v)| — union size (used by overlap-ratio variants).
    pub union: usize,
}

impl NeighborOverlap {
    /// The stability weighting `|N_sv(v)| / |N^t(v) ∩ N^{t+1}(v)|`.
    ///
    /// A vertex with no common neighbours has no stable local structure, so
    /// the weight collapses to 0 (forcing a full cell update downstream).
    pub fn stability_weight(&self) -> f32 {
        if self.common == 0 {
            0.0
        } else {
            self.stable_common as f32 / self.common as f32
        }
    }
}

/// The similarity score θ of paper §3.1:
///
/// ```text
/// θ(Z^t(v), Z^{t+1}(v)) = cos(Z^t(v), Z^{t+1}(v)) * |N_sv(v)| / |N^t(v) ∩ N^{t+1}(v)|
/// ```
///
/// combining feature-level cosine similarity with the proportion of stable
/// vertices among the common neighbours. The result lies in `[-1, 1]`.
pub fn theta_score(z_prev: &[f32], z_cur: &[f32], overlap: NeighborOverlap) -> f32 {
    (cosine(z_prev, z_cur) * overlap.stability_weight()).clamp(-1.0, 1.0)
}

/// Element-wise delta `cur - prev`, produced by the Delta Generation module
/// for vertices in the partial-update band.
pub fn delta(prev: &[f32], cur: &[f32]) -> Vec<f32> {
    assert_eq!(prev.len(), cur.len(), "delta length mismatch");
    cur.iter().zip(prev).map(|(c, p)| c - p).collect()
}

/// A condensed (zero-filtered) delta vector as emitted by the Condense Unit:
/// non-zero values plus the positions they came from, so the DCU only
/// multiplies the non-zero lanes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CondensedDelta {
    /// Positions of retained (non-zero) elements in the original vector.
    pub indices: Vec<u32>,
    /// Retained values, aligned with `indices`.
    pub values: Vec<f32>,
    /// Original (dense) length.
    pub dense_len: usize,
}

impl CondensedDelta {
    /// Condenses `dense`, dropping elements with `|x| <= tol`.
    pub fn from_dense(dense: &[f32], tol: f32) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v.abs() > tol {
                indices.push(i as u32);
                values.push(v);
            }
        }
        Self {
            indices,
            values,
            dense_len: dense.len(),
        }
    }

    /// Number of retained non-zero elements.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Density of the condensed representation in `[0, 1]`.
    pub fn density(&self) -> f32 {
        if self.dense_len == 0 {
            0.0
        } else {
            self.nnz() as f32 / self.dense_len as f32
        }
    }

    /// Scatters the condensed values back into a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.dense_len];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }

    /// Adds this (sparse) delta onto `target` in place.
    ///
    /// # Panics
    /// Panics if `target.len() != self.dense_len`.
    pub fn add_to(&self, target: &mut [f32]) {
        assert_eq!(
            target.len(),
            self.dense_len,
            "condensed delta length mismatch"
        );
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            target[i as usize] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let v = [1.0, 2.0, 3.0];
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_opposite_vectors_is_minus_one() {
        let a = [1.0, -2.0];
        let b = [-1.0, 2.0];
        assert!((cosine(&a, &b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        assert!(cosine(&[1.0, 0.0], &[0.0, 5.0]).abs() < 1e-7);
    }

    #[test]
    fn cosine_degenerate_conventions() {
        assert_eq!(cosine(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn stability_weight_bounds() {
        let w = NeighborOverlap {
            common: 4,
            stable_common: 3,
            union: 6,
        };
        assert!((w.stability_weight() - 0.75).abs() < 1e-7);
        let none = NeighborOverlap {
            common: 0,
            stable_common: 0,
            union: 2,
        };
        assert_eq!(none.stability_weight(), 0.0);
    }

    #[test]
    fn theta_score_is_bounded() {
        let z1 = [1.0, 0.5];
        let z2 = [1.0, 0.4];
        let o = NeighborOverlap {
            common: 2,
            stable_common: 2,
            union: 2,
        };
        let t = theta_score(&z1, &z2, o);
        assert!((-1.0..=1.0).contains(&t));
        assert!(
            t > 0.9,
            "near-identical features with fully stable hood must score high"
        );
    }

    #[test]
    fn theta_score_zero_without_stable_neighbors() {
        let z = [1.0, 1.0];
        let o = NeighborOverlap {
            common: 3,
            stable_common: 0,
            union: 3,
        };
        assert_eq!(theta_score(&z, &z, o), 0.0);
    }

    #[test]
    fn delta_and_condense_roundtrip() {
        let prev = [1.0, 2.0, 3.0, 4.0];
        let cur = [1.0, 2.5, 3.0, 3.0];
        let d = delta(&prev, &cur);
        assert_eq!(d, vec![0.0, 0.5, 0.0, -1.0]);
        let c = CondensedDelta::from_dense(&d, 0.0);
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.to_dense(), d);
        let mut out = prev.to_vec();
        c.add_to(&mut out);
        assert_eq!(out, cur.to_vec());
    }

    #[test]
    fn condense_density() {
        let c = CondensedDelta::from_dense(&[0.0, 1.0, 0.0, 0.0], 0.0);
        assert!((c.density() - 0.25).abs() < 1e-7);
        let empty = CondensedDelta::from_dense(&[], 0.0);
        assert_eq!(empty.density(), 0.0);
    }

    #[test]
    fn condense_respects_tolerance() {
        let c = CondensedDelta::from_dense(&[0.05, -0.2, 0.0], 0.1);
        assert_eq!(c.indices, vec![1]);
        assert_eq!(c.values, vec![-0.2]);
    }
}
