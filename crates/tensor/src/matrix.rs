//! Row-major dense `f32` matrix.
//!
//! Vertex feature tables throughout TaGNN are dense matrices with one row
//! per vertex, so row access must be contiguous and free; everything else
//! is built on top of [`DenseMatrix::row`] / [`DenseMatrix::row_mut`].

use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a generator called with `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Copies the contents of `src` into row `r`.
    ///
    /// # Panics
    /// Panics if `src.len() != self.cols()`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "row length mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// The whole backing buffer, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the whole backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterates over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Frobenius norm of the whole matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_content() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_populates_row_major() {
        let m = DenseMatrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn set_row_and_get() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.set_row(1, &[3.0, 4.0]);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn set_row_rejects_wrong_length() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.set_row(0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_wrong_length() {
        let _ = DenseMatrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn max_abs_diff_finds_largest_gap() {
        let a = DenseMatrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = DenseMatrix::from_vec(1, 3, vec![1.5, 2.0, 0.0]);
        assert_eq!(a.max_abs_diff(&b), 3.0);
    }

    #[test]
    fn frobenius_norm_of_unit_rows() {
        let m = DenseMatrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn rows_iter_yields_all_rows() {
        let m = DenseMatrix::from_fn(3, 2, |r, _| r as f32);
        let rows: Vec<&[f32]> = m.rows_iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[2.0, 2.0]);
    }
}
