//! Fused, allocation-free compute kernels and the scratch arena behind
//! them.
//!
//! The software engines used to lean on `ops::matmul`'s naive triple
//! loop and on per-vertex `Vec` allocations. This module supplies the
//! replacements:
//!
//! * [`gemm_into`] — a tiled (blocked over `k` and `n`), branch-free
//!   GEMM writing into a caller-provided buffer, with an AVX2+FMA
//!   microkernel behind a runtime dispatch. Each output element
//!   accumulates its `k` products in ascending order, exactly like the
//!   naive loop; on FMA hardware every multiply-add rounds once instead
//!   of twice, which moves low-order bits relative to the scalar loop
//!   but is deterministic — and because every matrix/row product in the
//!   workspace routes through this one kernel, all paths that compute
//!   the same mathematical row produce the same bits.
//! * [`rowmat_into`] — the single-row version of [`gemm_into`], sharing
//!   its row kernel verbatim: recomputing one row of a cached `X·W`
//!   product through it is bit-identical to the full GEMM.
//! * [`Scratch`] / [`ScratchBuf`] — named, growable workspaces the
//!   engines reuse across snapshots and layers so the steady-state
//!   per-snapshot loop performs no heap allocation. Each buffer counts
//!   its growth events; [`Scratch::mark_steady`] plus
//!   [`Scratch::debug_assert_steady`] turn that counter into a debug
//!   assertion that the warm-up really did reserve everything.
//!
//! * [`axpy_into`], [`lstm_gates`], [`gru_gates`] — the element-wise
//!   hot loops behind GCN aggregation and the RNN gate non-linearities,
//!   with the same runtime AVX2+FMA dispatch as the GEMM kernel. The
//!   gate kernels replace the scalar libm `exp` with an eight-lane
//!   polynomial one; every path that steps a cell shares them, so the
//!   engines remain mutually bit-identical per machine.
//!
//! None of these kernels touch the simulator's accounting: they change
//! *how* values are computed, never what the engines count.

use crate::activation::sigmoid;
use rayon::prelude::*;

/// `k`-dimension block size of [`gemm_into`]. One block of a B panel
/// (`KC × n` for the dimensions the engines use) stays L1/L2-resident
/// while every output row streams over it.
pub const GEMM_KC: usize = 64;

/// `n`-dimension block size of [`gemm_into`]. Output tiles wider than
/// this are processed in slices so the accumulator row stays hot.
pub const GEMM_NC: usize = 512;

/// Branch-free tiled GEMM: `out = A·B` for row-major `A` (`m×k`),
/// `B` (`k×n`), `out` (`m×n`), parallel over rows of `A`.
///
/// Every `out[i, j]` accumulates its `k` products in ascending-`k`
/// order — the same order as the naive triple loop — fused to one
/// rounding per multiply-add on FMA hardware (see `gemm_row` for the
/// exactness contract). Unlike [`crate::ops::matmul_sparse_lhs`] there
/// is no per-element zero test: the dense path pays for multiplies, not
/// branches.
///
/// # Panics
/// Panics if a slice length disagrees with its shape.
pub fn gemm_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm lhs shape mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs shape mismatch");
    assert_eq!(out.len(), m * n, "gemm out shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    out.par_chunks_exact_mut(n)
        .enumerate()
        .for_each(|(i, out_row)| {
            gemm_row(k, n, &a[i * k..(i + 1) * k], b, out_row);
        });
}

/// Row-sparse SpMM: `out = A·B` where only the rows of `A` listed in
/// `rows` (sorted ascending, deduplicated) carry nonzeros. Listed rows
/// are computed through `gemm_row` — the *same* row kernel as
/// [`gemm_into`], verbatim — and every unlisted row of `out` is written
/// as `+0.0`.
///
/// # Bit-identity contract
/// When every unlisted row of `A` is actually all-zero, this is
/// bit-identical to [`gemm_into`] over the same inputs: listed rows
/// share the row kernel, and an all-zero LHS row through `gemm_row`
/// produces exact `+0.0` outputs for finite `B` (`fma(+0·b, acc)`
/// starting from `acc = +0.0` stays `+0.0` under round-to-nearest),
/// which is what the skip path writes. Sparsity is deliberately
/// row-granular — skipping *elements* inside a row would change the
/// accumulation order and break the contract. The dispatch layer
/// (`crate::dispatch`) relies on this equivalence; the differential
/// suite pins it.
///
/// # Panics
/// Panics if a slice length disagrees with its shape or a row index is
/// out of range. Debug builds additionally assert `rows` is sorted.
pub fn spmm_csr_into(
    m: usize,
    k: usize,
    n: usize,
    rows: &[u32],
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "spmm lhs shape mismatch");
    assert_eq!(b.len(), k * n, "spmm rhs shape mismatch");
    assert_eq!(out.len(), m * n, "spmm out shape mismatch");
    assert!(
        rows.iter().all(|&r| (r as usize) < m),
        "spmm row index out of range"
    );
    debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "spmm rows not sorted");
    if m == 0 || n == 0 {
        return;
    }
    out.par_chunks_exact_mut(n)
        .enumerate()
        .for_each(|(i, out_row)| {
            // O(log nnz_rows) membership test per row — noise next to
            // the k·n row product, and it keeps the parallel structure
            // identical to gemm_into's (one task per output row).
            if rows.binary_search(&(i as u32)).is_ok() {
                gemm_row(k, n, &a[i * k..(i + 1) * k], b, out_row);
            } else {
                out_row.fill(0.0);
            }
        });
}

/// Branch-free row kernel: `y = x·B` for `x` of length `k` and `B`
/// (`k×n`). Shares [`gemm_into`]'s row kernel verbatim, so a row
/// recomputed here is bit-identical to the same row of a full GEMM over
/// the same inputs.
///
/// # Panics
/// Panics if a slice length disagrees with its shape.
pub fn rowmat_into(x: &[f32], b: &[f32], n: usize, y: &mut [f32]) {
    assert_eq!(b.len(), x.len() * n, "rowmat rhs shape mismatch");
    assert_eq!(y.len(), n, "rowmat out shape mismatch");
    gemm_row(x.len(), n, x, b, y);
}

/// Shared row body of [`gemm_into`] / [`rowmat_into`]: dispatches to an
/// AVX2+FMA microkernel when the CPU supports it, otherwise to the
/// scalar blocked loop.
///
/// Both paths accumulate each output element in ascending-`k` order.
/// The FMA path fuses each multiply-add into a single rounding, so its
/// low-order bits differ from the scalar path's — but the dispatch is a
/// pure function of the CPU, so on any one machine *every* row product
/// in the workspace (full GEMMs, single-row recomputes, the per-vertex
/// fallbacks in `ops::vecmat`) goes through the same kernel and stays
/// mutually bit-identical.
#[inline]
fn gemm_row(k: usize, n: usize, a_row: &[f32], b: &[f32], out_row: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: guarded by runtime AVX2 + FMA detection.
        unsafe { gemm_row_fma(k, n, a_row, b, out_row) };
        return;
    }
    gemm_row_generic(k, n, a_row, b, out_row);
}

/// AVX2+FMA row microkernel. Columns are processed in panels of four
/// 8-lane accumulators — enough independent FMA chains to hide the
/// instruction latency at the column counts the engines use — then two,
/// one, and a scalar tail (`f32::mul_add`, the same fused rounding).
/// Within each accumulator the `k` loop is a plain chain, keeping the
/// per-element accumulation order ascending-`k`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_row_fma(k: usize, n: usize, a_row: &[f32], b: &[f32], out_row: &mut [f32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(a_row.len(), k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out_row.len(), n);
    out_row.fill(0.0);
    let a = a_row.as_ptr();
    let bp = b.as_ptr();
    let op = out_row.as_mut_ptr();
    unsafe {
        let mut kb = 0;
        while kb < k {
            let ke = (kb + GEMM_KC).min(k);
            let mut j = 0;
            while j + 32 <= n {
                let mut c0 = _mm256_loadu_ps(op.add(j));
                let mut c1 = _mm256_loadu_ps(op.add(j + 8));
                let mut c2 = _mm256_loadu_ps(op.add(j + 16));
                let mut c3 = _mm256_loadu_ps(op.add(j + 24));
                for l in kb..ke {
                    let av = _mm256_set1_ps(*a.add(l));
                    let row = bp.add(l * n + j);
                    c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row), c0);
                    c1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row.add(8)), c1);
                    c2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row.add(16)), c2);
                    c3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row.add(24)), c3);
                }
                _mm256_storeu_ps(op.add(j), c0);
                _mm256_storeu_ps(op.add(j + 8), c1);
                _mm256_storeu_ps(op.add(j + 16), c2);
                _mm256_storeu_ps(op.add(j + 24), c3);
                j += 32;
            }
            while j + 16 <= n {
                let mut c0 = _mm256_loadu_ps(op.add(j));
                let mut c1 = _mm256_loadu_ps(op.add(j + 8));
                for l in kb..ke {
                    let av = _mm256_set1_ps(*a.add(l));
                    let row = bp.add(l * n + j);
                    c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row), c0);
                    c1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row.add(8)), c1);
                }
                _mm256_storeu_ps(op.add(j), c0);
                _mm256_storeu_ps(op.add(j + 8), c1);
                j += 16;
            }
            while j + 8 <= n {
                let mut c0 = _mm256_loadu_ps(op.add(j));
                for l in kb..ke {
                    let av = _mm256_set1_ps(*a.add(l));
                    c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(l * n + j)), c0);
                }
                _mm256_storeu_ps(op.add(j), c0);
                j += 8;
            }
            while j < n {
                let mut o = *op.add(j);
                for l in kb..ke {
                    o = f32::mul_add(*a.add(l), *bp.add(l * n + j), o);
                }
                *op.add(j) = o;
                j += 1;
            }
            kb = ke;
        }
    }
}

/// Blocked over `k` (panels of [`GEMM_KC`]) and `n` (slices of
/// [`GEMM_NC`]), 4-way unrolled over `k` with a single chained
/// accumulator expression so the rounding sequence per element stays
/// ascending-`k`.
#[inline(always)]
fn gemm_row_generic(k: usize, n: usize, a_row: &[f32], b: &[f32], out_row: &mut [f32]) {
    out_row.fill(0.0);
    let mut kb = 0;
    while kb < k {
        let ke = (kb + GEMM_KC).min(k);
        let mut nb = 0;
        while nb < n {
            let ne = (nb + GEMM_NC).min(n);
            let width = ne - nb;
            let out_slice = &mut out_row[nb..ne];
            let mut l = kb;
            while l + 4 <= ke {
                let (a0, a1, a2, a3) = (a_row[l], a_row[l + 1], a_row[l + 2], a_row[l + 3]);
                let b0 = &b[l * n + nb..][..width];
                let b1 = &b[(l + 1) * n + nb..][..width];
                let b2 = &b[(l + 2) * n + nb..][..width];
                let b3 = &b[(l + 3) * n + nb..][..width];
                for (j, o) in out_slice.iter_mut().enumerate() {
                    // Chained adds keep the ascending-k rounding order.
                    *o = (((*o + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
                }
                l += 4;
            }
            while l < ke {
                let al = a_row[l];
                let brow = &b[l * n + nb..][..width];
                for (o, &bv) in out_slice.iter_mut().zip(brow) {
                    *o += al * bv;
                }
                l += 1;
            }
            nb = ne;
        }
        kb = ke;
    }
}

/// `out[j] += s · x[j]` with the same dispatch policy as `gemm_row`:
/// an AVX2+FMA path (one rounding per element) when the CPU has it, a
/// scalar loop otherwise. Every axpy in the workspace — the GCN
/// aggregation above all — routes through here, so per-vertex and
/// batched aggregation stay mutually bit-identical.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn axpy_into(out: &mut [f32], s: f32, x: &[f32]) {
    assert_eq!(out.len(), x.len(), "axpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: guarded by runtime AVX2 + FMA detection.
        unsafe { axpy_fma(out, s, x) };
        return;
    }
    for (o, &v) in out.iter_mut().zip(x) {
        *o += s * v;
    }
}

/// AVX2+FMA body of [`axpy_into`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_fma(out: &mut [f32], s: f32, x: &[f32]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let op = out.as_mut_ptr();
    let xp = x.as_ptr();
    unsafe {
        let sv = _mm256_set1_ps(s);
        let mut j = 0;
        while j + 8 <= n {
            let o = _mm256_loadu_ps(op.add(j));
            _mm256_storeu_ps(
                op.add(j),
                _mm256_fmadd_ps(sv, _mm256_loadu_ps(xp.add(j)), o),
            );
            j += 8;
        }
        while j < n {
            *op.add(j) = f32::mul_add(s, *xp.add(j), *op.add(j));
            j += 1;
        }
    }
}

/// LSTM gate arithmetic for one vertex with gate layout `[i, f, g, o]`:
/// `x_pre`, `h_pre` and `bias` are `4·n` long, `h` and `c` are `n` long
/// and updated in place. On AVX2+FMA hardware the sigmoids and tanhs run
/// through a polynomial `exp` (`exp_ps`, ≈ 1 ulp); elsewhere the
/// scalar libm loop runs. The dispatch is a pure function of the CPU —
/// every RNN path (per-vertex `step`, the batched engines, the
/// delta-patched `step_cached`) funnels through this one kernel, so all
/// of them stay mutually bit-identical on any one machine.
///
/// # Panics
/// Panics on slice length mismatch.
#[inline]
pub fn lstm_gates(
    n: usize,
    x_pre: &[f32],
    h_pre: &[f32],
    bias: &[f32],
    h: &mut [f32],
    c: &mut [f32],
) {
    assert_eq!(x_pre.len(), 4 * n, "lstm x_pre length mismatch");
    assert_eq!(h_pre.len(), 4 * n, "lstm h_pre length mismatch");
    assert_eq!(bias.len(), 4 * n, "lstm bias length mismatch");
    assert_eq!(h.len(), n, "lstm h length mismatch");
    assert_eq!(c.len(), n, "lstm c length mismatch");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: guarded by runtime AVX2 + FMA detection; lengths
        // asserted above.
        unsafe { lstm_gates_fma(n, x_pre, h_pre, bias, h, c) };
        return;
    }
    lstm_gates_scalar(0, n, x_pre, h_pre, bias, h, c);
}

/// GRU gate arithmetic for one vertex with gate layout `[r, z, n]`:
/// `x_pre`, `h_pre` and `bias` are `3·n` long, `h` is `n` long and
/// updated in place (the reset gate scales only the hidden contribution
/// of the candidate). Same dispatch contract as [`lstm_gates`].
///
/// # Panics
/// Panics on slice length mismatch.
#[inline]
pub fn gru_gates(n: usize, x_pre: &[f32], h_pre: &[f32], bias: &[f32], h: &mut [f32]) {
    assert_eq!(x_pre.len(), 3 * n, "gru x_pre length mismatch");
    assert_eq!(h_pre.len(), 3 * n, "gru h_pre length mismatch");
    assert_eq!(bias.len(), 3 * n, "gru bias length mismatch");
    assert_eq!(h.len(), n, "gru h length mismatch");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: guarded by runtime AVX2 + FMA detection; lengths
        // asserted above.
        unsafe { gru_gates_fma(n, x_pre, h_pre, bias, h) };
        return;
    }
    gru_gates_scalar(0, n, x_pre, h_pre, bias, h);
}

/// Scalar LSTM gate loop over elements `start..n` — the non-x86
/// fallback and the tail of the vectorized path.
fn lstm_gates_scalar(
    start: usize,
    n: usize,
    x_pre: &[f32],
    h_pre: &[f32],
    bias: &[f32],
    h: &mut [f32],
    c: &mut [f32],
) {
    for j in start..n {
        let i = sigmoid(x_pre[j] + h_pre[j] + bias[j]);
        let f = sigmoid(x_pre[n + j] + h_pre[n + j] + bias[n + j]);
        let g = (x_pre[2 * n + j] + h_pre[2 * n + j] + bias[2 * n + j]).tanh();
        let o = sigmoid(x_pre[3 * n + j] + h_pre[3 * n + j] + bias[3 * n + j]);
        c[j] = f * c[j] + i * g;
        h[j] = o * c[j].tanh();
    }
}

/// Scalar GRU gate loop over elements `start..n` — the non-x86 fallback
/// and the tail of the vectorized path.
fn gru_gates_scalar(
    start: usize,
    n: usize,
    x_pre: &[f32],
    h_pre: &[f32],
    bias: &[f32],
    h: &mut [f32],
) {
    for j in start..n {
        let r = sigmoid(x_pre[j] + h_pre[j] + bias[j]);
        let z = sigmoid(x_pre[n + j] + h_pre[n + j] + bias[n + j]);
        let cand = (x_pre[2 * n + j] + r * h_pre[2 * n + j] + bias[2 * n + j]).tanh();
        h[j] = (1.0 - z) * cand + z * h[j];
    }
}

/// Eight-lane polynomial `exp` (Cephes-style): clamps to the range where
/// the exponent reconstruction stays finite, splits `x = m·ln2 + r` with
/// a two-constant Cody–Waite reduction, evaluates a degree-5 minimax
/// polynomial for `exp(r)` on `[-ln2/2, ln2/2]`, and rebuilds `2^m`
/// through the exponent bits. Relative error is ≈ 1 ulp over the
/// clamped range — far below the 1e-5 tolerance the gate tests hold the
/// whole pipeline to.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn exp_ps(x: std::arch::x86_64::__m256) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::*;
    {
        // Clamp so m stays in [-126, 127]: both 2^m and the final
        // product remain finite (the low end lands in the subnormals).
        let x = _mm256_min_ps(x, _mm256_set1_ps(88.02));
        let x = _mm256_max_ps(x, _mm256_set1_ps(-87.33));
        let m = _mm256_round_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(std::f32::consts::LOG2_E)),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC,
        );
        // r = x - m·ln2 in two parts so the subtraction is exact.
        let r = _mm256_fnmadd_ps(m, _mm256_set1_ps(0.693_359_4), x);
        let r = _mm256_fnmadd_ps(m, _mm256_set1_ps(-2.121_944_4e-4), r);
        let mut p = _mm256_set1_ps(1.987_569_1e-4);
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.398_199_9e-3));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(8.333_452e-3));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(4.166_579_6e-2));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.666_666_5e-1));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(0.5));
        let r2 = _mm256_mul_ps(r, r);
        let y = _mm256_add_ps(_mm256_fmadd_ps(p, r2, r), _mm256_set1_ps(1.0));
        let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_cvtps_epi32(m),
            _mm256_set1_epi32(127),
        )));
        _mm256_mul_ps(y, pow2)
    }
}

/// Eight-lane logistic sigmoid `1 / (1 + exp(-x))` on top of `exp_ps`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sigmoid_ps(x: std::arch::x86_64::__m256) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::*;
    unsafe {
        let one = _mm256_set1_ps(1.0);
        let e = exp_ps(_mm256_sub_ps(_mm256_setzero_ps(), x));
        _mm256_div_ps(one, _mm256_add_ps(one, e))
    }
}

/// Eight-lane `tanh(x) = (exp(2x) - 1) / (exp(2x) + 1)` on top of
/// `exp_ps`. The clamp inside `exp_ps` saturates the result cleanly to
/// ±1 for large |x|.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn tanh_ps(x: std::arch::x86_64::__m256) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::*;
    unsafe {
        let one = _mm256_set1_ps(1.0);
        let e = exp_ps(_mm256_add_ps(x, x));
        _mm256_div_ps(_mm256_sub_ps(e, one), _mm256_add_ps(e, one))
    }
}

/// AVX2+FMA body of [`lstm_gates`]: eight gate elements per iteration,
/// scalar-loop tail for the remainder.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn lstm_gates_fma(
    n: usize,
    x_pre: &[f32],
    h_pre: &[f32],
    bias: &[f32],
    h: &mut [f32],
    c: &mut [f32],
) {
    use std::arch::x86_64::*;
    let xp = x_pre.as_ptr();
    let hp = h_pre.as_ptr();
    let bp = bias.as_ptr();
    let hm = h.as_mut_ptr();
    let cm = c.as_mut_ptr();
    let mut j = 0;
    unsafe {
        while j + 8 <= n {
            // gate g's pre-activation: x_pre + h_pre + bias at g·n + j.
            macro_rules! gate_pre {
                ($g:expr) => {{
                    let o = $g * n + j;
                    _mm256_add_ps(
                        _mm256_add_ps(_mm256_loadu_ps(xp.add(o)), _mm256_loadu_ps(hp.add(o))),
                        _mm256_loadu_ps(bp.add(o)),
                    )
                }};
            }
            let i = sigmoid_ps(gate_pre!(0));
            let f = sigmoid_ps(gate_pre!(1));
            let g = tanh_ps(gate_pre!(2));
            let o = sigmoid_ps(gate_pre!(3));
            let cv = _mm256_fmadd_ps(f, _mm256_loadu_ps(cm.add(j)), _mm256_mul_ps(i, g));
            _mm256_storeu_ps(cm.add(j), cv);
            _mm256_storeu_ps(hm.add(j), _mm256_mul_ps(o, tanh_ps(cv)));
            j += 8;
        }
    }
    lstm_gates_scalar(j, n, x_pre, h_pre, bias, h, c);
}

/// AVX2+FMA body of [`gru_gates`]: eight gate elements per iteration,
/// scalar-loop tail for the remainder.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gru_gates_fma(n: usize, x_pre: &[f32], h_pre: &[f32], bias: &[f32], h: &mut [f32]) {
    use std::arch::x86_64::*;
    let xp = x_pre.as_ptr();
    let hp = h_pre.as_ptr();
    let bp = bias.as_ptr();
    let hm = h.as_mut_ptr();
    let mut j = 0;
    unsafe {
        let one = _mm256_set1_ps(1.0);
        while j + 8 <= n {
            macro_rules! gate_pre {
                ($g:expr) => {{
                    let o = $g * n + j;
                    _mm256_add_ps(
                        _mm256_add_ps(_mm256_loadu_ps(xp.add(o)), _mm256_loadu_ps(hp.add(o))),
                        _mm256_loadu_ps(bp.add(o)),
                    )
                }};
            }
            let r = sigmoid_ps(gate_pre!(0));
            let z = sigmoid_ps(gate_pre!(1));
            let o2 = 2 * n + j;
            let cand = tanh_ps(_mm256_fmadd_ps(
                r,
                _mm256_loadu_ps(hp.add(o2)),
                _mm256_add_ps(_mm256_loadu_ps(xp.add(o2)), _mm256_loadu_ps(bp.add(o2))),
            ));
            let hv = _mm256_loadu_ps(hm.add(j));
            _mm256_storeu_ps(
                hm.add(j),
                _mm256_fmadd_ps(z, hv, _mm256_mul_ps(_mm256_sub_ps(one, z), cand)),
            );
            j += 8;
        }
    }
    gru_gates_scalar(j, n, x_pre, h_pre, bias, h);
}

/// One named scratch buffer: a growable flat allocation handed out as
/// exact-length slices. Growth is counted so callers can assert that a
/// warmed-up buffer never allocates again.
#[derive(Debug, Clone, Default)]
pub struct ScratchBuf<T> {
    data: Vec<T>,
    growth_events: u64,
}

impl<T: Copy + Default> ScratchBuf<T> {
    /// Hands out exactly `len` elements, all reset to `T::default()`.
    /// Grows (and counts a growth event) only when `len` exceeds the
    /// current capacity-in-use; shrinking never happens.
    pub fn take(&mut self, len: usize) -> &mut [T] {
        let s = self.take_uninit(len);
        s.fill(T::default());
        s
    }

    /// Hands out exactly `len` elements *without* clearing them — the
    /// contents are whatever a previous `take` left behind. Use when
    /// every element is overwritten before being read.
    pub fn take_uninit(&mut self, len: usize) -> &mut [T] {
        if self.data.len() < len {
            self.growth_events += 1;
            self.data.resize(len, T::default());
        }
        &mut self.data[..len]
    }

    /// Grows the buffer to at least `len` elements without handing out
    /// a slice — the warm-up primitive.
    pub fn reserve(&mut self, len: usize) {
        if self.data.len() < len {
            self.growth_events += 1;
            self.data.resize(len, T::default());
        }
    }

    /// How many times this buffer has grown since construction.
    pub fn growth_events(&self) -> u64 {
        self.growth_events
    }
}

/// The engines' scratch arena: every workspace the fused GNN forward,
/// the incremental window reuse, and the batched RNN step need, reused
/// across snapshots and layers.
///
/// Contract: an engine warms the arena once per run (reserving every
/// buffer at its maximum size), calls [`Scratch::mark_steady`], and
/// from then on the per-snapshot loop must not grow any buffer —
/// [`Scratch::debug_assert_steady`] enforces that in debug builds, and
/// the allocation-free integration test asserts it in release too.
/// Deliverables (the per-snapshot output matrices the caller keeps) and
/// the Delta cell path's condensed deltas are explicitly outside the
/// arena: they are either returned to the caller or data-dependent in
/// size.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// Aggregation workspace (`n · in_dim`): `Â·X` rows for
    /// aggregate-first layers.
    pub agg: ScratchBuf<f32>,
    /// Transform workspace (`n · out_dim`): `X·W` rows for
    /// transform-first layers (the current snapshot's mixed-row table).
    pub xw: ScratchBuf<f32>,
    /// Layer ping-pong buffer A (`n · max_dim`).
    pub layer_a: ScratchBuf<f32>,
    /// Layer ping-pong buffer B (`n · max_dim`).
    pub layer_b: ScratchBuf<f32>,
    /// Per-vertex `(degree + 1) as f32` table for one snapshot.
    pub degp1: ScratchBuf<f32>,
    /// Gathered RNN inputs (`batch · in_dim`).
    pub x_batch: ScratchBuf<f32>,
    /// Gathered RNN hidden states (`batch · hidden`).
    pub h_batch: ScratchBuf<f32>,
    /// Batched input-side gate pre-activations (`batch · gates·hidden`).
    pub x_pre: ScratchBuf<f32>,
    /// Batched hidden-side gate pre-activations (`batch · gates·hidden`).
    pub h_pre: ScratchBuf<f32>,
    /// Vertex → batch-row map (`u32::MAX` = not in this batch).
    pub batch_pos: ScratchBuf<u32>,
    /// Per-vertex cell-mode outcome codes for one snapshot.
    pub cell_mode: ScratchBuf<u8>,
    /// Per-vertex condensed-delta sizes for one snapshot.
    pub cell_nnz: ScratchBuf<u32>,
    /// Per-vertex similarity-op charges for one snapshot.
    pub cell_sim: ScratchBuf<u64>,
    /// Change mask A (incremental reuse ping-pong).
    pub mask_a: ScratchBuf<bool>,
    /// Change mask B (incremental reuse ping-pong).
    pub mask_b: ScratchBuf<bool>,
    /// Layer-0 content-change mask.
    pub mask_changed0: ScratchBuf<bool>,
    /// Topology-change mask.
    pub mask_topo: ScratchBuf<bool>,
    /// Sorted nonzero-row index list for [`spmm_csr_into`] dispatch.
    pub nz_rows: ScratchBuf<u32>,
    steady_mark: u64,
}

impl Scratch {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total growth events across every buffer.
    pub fn growth_events(&self) -> u64 {
        self.agg.growth_events()
            + self.xw.growth_events()
            + self.layer_a.growth_events()
            + self.layer_b.growth_events()
            + self.degp1.growth_events()
            + self.x_batch.growth_events()
            + self.h_batch.growth_events()
            + self.x_pre.growth_events()
            + self.h_pre.growth_events()
            + self.batch_pos.growth_events()
            + self.cell_mode.growth_events()
            + self.cell_nnz.growth_events()
            + self.cell_sim.growth_events()
            + self.mask_a.growth_events()
            + self.mask_b.growth_events()
            + self.mask_changed0.growth_events()
            + self.mask_topo.growth_events()
            + self.nz_rows.growth_events()
    }

    /// Marks the end of warm-up: growth from here on is a contract
    /// violation.
    pub fn mark_steady(&mut self) {
        self.steady_mark = self.growth_events();
    }

    /// Growth events since the last [`Self::mark_steady`].
    pub fn steady_growth(&self) -> u64 {
        self.growth_events() - self.steady_mark
    }

    /// Debug-asserts that no buffer grew since [`Self::mark_steady`] —
    /// i.e. that the steady-state loop stayed allocation-free.
    pub fn debug_assert_steady(&self) {
        debug_assert_eq!(
            self.steady_growth(),
            0,
            "scratch arena grew inside the steady-state loop"
        );
    }
}

/// A ping-pong pair of [`Scratch`] arenas — the software analogue of the
/// paper's double-buffered preprocessing memories. One arena is the
/// *front* (the window currently executing); the other is the *back*
/// (free for a prefetcher to stage the next window's inputs — e.g. the
/// nonzero-row list the dispatch layer measures). [`Self::swap`] rotates
/// the roles at a window boundary, so the executor always reads from an
/// arena nothing else is writing.
#[derive(Debug, Clone, Default)]
pub struct ScratchPair {
    bufs: [Scratch; 2],
    front: usize,
}

impl ScratchPair {
    /// A fresh pair of empty arenas.
    pub fn new() -> Self {
        Self::default()
    }

    /// The arena backing the window currently executing.
    pub fn front_mut(&mut self) -> &mut Scratch {
        &mut self.bufs[self.front]
    }

    /// The idle arena, free for staging the next window.
    pub fn back_mut(&mut self) -> &mut Scratch {
        &mut self.bufs[1 - self.front]
    }

    /// Rotates the roles: the staged back arena becomes the front.
    pub fn swap(&mut self) {
        self.front = 1 - self.front;
    }

    /// Warms both arenas with the same reservation routine (each arena
    /// must satisfy the steady-state contract independently).
    pub fn warm_with(&mut self, mut reserve: impl FnMut(&mut Scratch)) {
        for buf in &mut self.bufs {
            reserve(buf);
        }
    }

    /// Debug-asserts both arenas kept the steady-state contract.
    pub fn debug_assert_steady(&self) {
        for buf in &self.bufs {
            buf.debug_assert_steady();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DenseMatrix;
    use crate::{init, ops};

    fn naive(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = DenseMatrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for l in 0..k {
                    acc += a.get(i, l) * b.get(l, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn gemm_matches_naive_on_random_inputs() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (17, 130, 33), (8, 64, 512)] {
            let a = init::xavier_uniform(m, k, 1);
            let b = init::xavier_uniform(k, n, 2);
            let mut out = vec![0.0f32; m * n];
            gemm_into(m, k, n, a.as_slice(), b.as_slice(), &mut out);
            let want = naive(&a, &b);
            for (x, y) in out.iter().zip(want.as_slice()) {
                assert!((x - y).abs() <= 1e-4 * y.abs().max(1.0), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn gemm_matches_the_zero_skipping_loop_closely() {
        // The legacy zero-skipping loop (`matmul_sparse_lhs`) performs
        // the same ascending-k accumulation but rounds every multiply
        // and add separately; the FMA path rounds each multiply-add
        // once. The two must agree to within a few ulps.
        let a = init::xavier_uniform(9, 37, 3);
        let b = init::xavier_uniform(37, 21, 4);
        let mut out = vec![0.0f32; 9 * 21];
        gemm_into(9, 37, 21, a.as_slice(), b.as_slice(), &mut out);
        for (x, y) in out.iter().zip(ops::matmul_sparse_lhs(&a, &b).as_slice()) {
            assert!((x - y).abs() <= 1e-5 * y.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_handles_empty_shapes() {
        let mut out = vec![];
        gemm_into(0, 3, 2, &[], &[0.0; 6], &mut out);
        gemm_into(2, 0, 0, &[], &[], &mut out);
        let mut out2 = vec![1.0f32; 4];
        // k == 0 leaves a zeroed product.
        gemm_into(2, 0, 2, &[], &[], &mut out2);
        assert_eq!(out2, vec![0.0; 4]);
    }

    #[test]
    fn rowmat_matches_gemm_row() {
        let a = init::xavier_uniform(5, 19, 7);
        let b = init::xavier_uniform(19, 11, 8);
        let mut full = vec![0.0f32; 5 * 11];
        gemm_into(5, 19, 11, a.as_slice(), b.as_slice(), &mut full);
        let mut row = vec![0.0f32; 11];
        for i in 0..5 {
            rowmat_into(a.row(i), b.as_slice(), 11, &mut row);
            assert_eq!(&full[i * 11..(i + 1) * 11], row.as_slice(), "row {i}");
        }
    }

    /// Deterministic pseudo-random gate inputs in a tame range.
    fn gate_inputs(len: usize, seed: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 2000) as f32 / 1000.0)
                    - 1.0
            })
            .collect()
    }

    #[test]
    fn lstm_gates_match_the_libm_formula() {
        // n = 11: on AVX2 machines one full vector of 8 plus a scalar
        // tail of 3, so both bodies are exercised. The polynomial exp
        // agrees with libm to well within 1e-5.
        let n = 11;
        let x_pre = gate_inputs(4 * n, 1);
        let h_pre = gate_inputs(4 * n, 2);
        let bias = gate_inputs(4 * n, 3);
        let mut h = gate_inputs(n, 4);
        let mut c = gate_inputs(n, 5);
        let (h0, c0) = (h.clone(), c.clone());
        lstm_gates(n, &x_pre, &h_pre, &bias, &mut h, &mut c);
        for j in 0..n {
            let i = sigmoid(x_pre[j] + h_pre[j] + bias[j]);
            let f = sigmoid(x_pre[n + j] + h_pre[n + j] + bias[n + j]);
            let g = (x_pre[2 * n + j] + h_pre[2 * n + j] + bias[2 * n + j]).tanh();
            let o = sigmoid(x_pre[3 * n + j] + h_pre[3 * n + j] + bias[3 * n + j]);
            let want_c = f * c0[j] + i * g;
            let want_h = o * want_c.tanh();
            assert!((c[j] - want_c).abs() < 1e-5, "c[{j}]: {} vs {want_c}", c[j]);
            assert!((h[j] - want_h).abs() < 1e-5, "h[{j}]: {} vs {want_h}", h[j]);
            assert!(h[j].abs() <= 1.0, "h = o·tanh(c) stays in [-1, 1]");
        }
        let _ = h0;
    }

    #[test]
    fn gru_gates_match_the_libm_formula() {
        let n = 11;
        let x_pre = gate_inputs(3 * n, 6);
        let h_pre = gate_inputs(3 * n, 7);
        let bias = gate_inputs(3 * n, 8);
        let mut h = gate_inputs(n, 9);
        let h0 = h.clone();
        gru_gates(n, &x_pre, &h_pre, &bias, &mut h);
        for j in 0..n {
            let r = sigmoid(x_pre[j] + h_pre[j] + bias[j]);
            let z = sigmoid(x_pre[n + j] + h_pre[n + j] + bias[n + j]);
            let cand = (x_pre[2 * n + j] + r * h_pre[2 * n + j] + bias[2 * n + j]).tanh();
            let want = (1.0 - z) * cand + z * h0[j];
            assert!((h[j] - want).abs() < 1e-5, "h[{j}]: {} vs {want}", h[j]);
        }
    }

    #[test]
    fn gates_saturate_cleanly_at_extreme_preactivations() {
        // ±30 drives every sigmoid to 0/1 and tanh to ±1; the clamped
        // polynomial exp must not overflow, NaN, or leave the range.
        let n = 8;
        let x_pre = vec![30.0f32; 4 * n];
        let h_pre = vec![-60.0f32; 4 * n];
        let bias = vec![0.0f32; 4 * n];
        let mut h = vec![0.5f32; n];
        let mut c = vec![0.5f32; n];
        lstm_gates(n, &x_pre, &h_pre, &bias, &mut h, &mut c);
        for j in 0..n {
            assert!(h[j].is_finite() && h[j].abs() <= 1.0, "h[{j}] = {}", h[j]);
            assert!(c[j].is_finite(), "c[{j}] = {}", c[j]);
        }
        let mut h = vec![0.5f32; n];
        gru_gates(
            n,
            &vec![30.0f32; 3 * n],
            &vec![30.0f32; 3 * n],
            &vec![0.0f32; 3 * n],
            &mut h,
        );
        for (j, &v) in h.iter().enumerate() {
            assert!(v.is_finite() && v.abs() <= 1.0, "gru h[{j}] = {v}");
        }
    }

    #[test]
    fn scratch_counts_growth_once_per_high_water_mark() {
        let mut s = ScratchBuf::<f32>::default();
        assert_eq!(s.growth_events(), 0);
        let _ = s.take(10);
        let _ = s.take(10);
        let _ = s.take(4);
        assert_eq!(s.growth_events(), 1, "within capacity is free");
        let _ = s.take(11);
        assert_eq!(s.growth_events(), 2);
    }

    #[test]
    fn scratch_take_zeroes_and_take_uninit_does_not() {
        let mut s = ScratchBuf::<f32>::default();
        s.take(3).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(s.take_uninit(3), &[1.0, 2.0, 3.0]);
        assert_eq!(s.take(3), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn steady_marking_tracks_late_growth() {
        let mut s = Scratch::new();
        s.agg.reserve(64);
        s.mask_a.reserve(8);
        s.mark_steady();
        let _ = s.agg.take_uninit(64);
        assert_eq!(s.steady_growth(), 0);
        s.debug_assert_steady();
        let _ = s.xw.take(1);
        assert_eq!(s.steady_growth(), 1);
    }
}
