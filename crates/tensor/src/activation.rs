//! Non-linear activation functions used by the GNN and RNN modules.

use serde::{Deserialize, Serialize};

/// Activation function selector, mirroring the Activation Unit of the
/// Adaptive RNN Unit which supports the non-linearities the three evaluated
/// DGNN models need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit, used between GCN layers.
    Relu,
    /// Logistic sigmoid, used by LSTM/GRU gates.
    Sigmoid,
    /// Hyperbolic tangent, used by LSTM/GRU candidate states.
    Tanh,
    /// Identity (no non-linearity).
    Identity,
}

impl Activation {
    /// Applies the activation to a single scalar.
    #[inline]
    pub fn apply_scalar(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => sigmoid(x),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Applies the activation element-wise in place.
    pub fn apply(self, xs: &mut [f32]) {
        if self == Activation::Identity {
            return;
        }
        for x in xs {
            *x = self.apply_scalar(*x);
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut v = vec![-1.0, 0.0, 2.0];
        Activation::Relu.apply(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_midpoint_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_for_extremes() {
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) < 1e-30);
        assert!(sigmoid(100.0) > 1.0 - 1e-6);
    }

    #[test]
    fn tanh_matches_std() {
        assert_eq!(Activation::Tanh.apply_scalar(0.7), 0.7f32.tanh());
    }

    #[test]
    fn identity_is_noop() {
        let mut v = vec![1.5, -2.5];
        Activation::Identity.apply(&mut v);
        assert_eq!(v, vec![1.5, -2.5]);
    }

    #[test]
    fn sigmoid_is_monotone() {
        let xs = [-5.0f32, -1.0, 0.0, 1.0, 5.0];
        for w in xs.windows(2) {
            assert!(sigmoid(w[0]) < sigmoid(w[1]));
        }
    }
}
