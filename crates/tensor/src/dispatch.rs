//! Sparsity-adaptive kernel dispatch.
//!
//! TaGNN's frontend already knows, per window, which rows of the
//! feature/state matrices actually carry data — the delta condensation
//! and the incremental plan maintenance touch exactly those rows. This
//! module turns that knowledge into a runtime signal: a cheap
//! row-nonzero bitmap ([`RowBitmap`], maintained in O(touched rows) by
//! the graph-delta layer), a calibrated [`CostModel`] (fitted from
//! micro-probes at first use, overridable via environment), and a
//! [`Dispatcher`] that picks, per (layer, window, operand), among
//!
//! * the dense tiled GEMM ([`crate::kernels::gemm_into`]),
//! * the row-sparse SpMM ([`crate::kernels::spmm_csr_into`]) sharing
//!   the same row kernel (bit-identical when the skipped rows are
//!   truly zero), and
//! * the zero-skipping delta path the engines already run for RNN
//!   inputs (counted here as a dispatch outcome).
//!
//! It also subsumes the old `transform_first()` shape heuristic of the
//! GCN layer: [`Dispatcher::choose_layer`] folds shape *and* measured
//! density into one decision (which factorisation of `Â·X·W`, and
//! which kernel for the GEMM factor).
//!
//! Exactness: dispatch changes *which rows are computed through the
//! shared row kernel*, never how a computed row rounds — so Exact-mode
//! engine outputs are bit-identical at every density. The differential
//! suite (`crates/tensor/tests/dispatch_differential.rs`) pins this.

use std::sync::OnceLock;
use std::time::Instant;

use crate::kernels;

/// Row-granular nonzero bitmap over a matrix: one bit per row, set when
/// the row holds any nonzero element.
///
/// Construction is a single O(m·k) scan ([`RowBitmap::from_rows`], done
/// once per run at warm-up); maintenance is O(touched rows) — feature
/// mutations, vertex additions and removals each update exactly the
/// rows they touch via [`RowBitmap::update_row`].
#[derive(Debug, Clone, Default)]
pub struct RowBitmap {
    words: Vec<u64>,
    rows: usize,
    nnz_rows: usize,
}

impl RowBitmap {
    /// An all-zero bitmap over `rows` rows.
    pub fn zeros(rows: usize) -> Self {
        Self {
            words: vec![0u64; rows.div_ceil(64)],
            rows,
            nnz_rows: 0,
        }
    }

    /// Scans a row-major `rows × cols` matrix once and records which
    /// rows are nonzero. The only full scan the dispatch layer ever
    /// performs — everything after this is incremental.
    pub fn from_rows(rows: usize, cols: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), rows * cols, "bitmap shape mismatch");
        let mut bm = Self::zeros(rows);
        for r in 0..rows {
            bm.update_row(r, &data[r * cols..(r + 1) * cols]);
        }
        bm
    }

    /// Number of rows the bitmap covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of rows currently marked nonzero.
    pub fn nnz_rows(&self) -> usize {
        self.nnz_rows
    }

    /// Fraction of rows marked nonzero (1.0 for an empty matrix, so
    /// degenerate shapes dispatch dense).
    pub fn density(&self) -> f64 {
        if self.rows == 0 {
            1.0
        } else {
            self.nnz_rows as f64 / self.rows as f64
        }
    }

    /// Whether row `r` is marked nonzero.
    pub fn get(&self, r: usize) -> bool {
        self.words[r / 64] >> (r % 64) & 1 == 1
    }

    /// Marks row `r` nonzero (`true`) or zero (`false`), keeping the
    /// nonzero-row count in sync. O(1).
    pub fn set(&mut self, r: usize, nonzero: bool) {
        assert!(r < self.rows, "bitmap row out of range");
        let (w, b) = (r / 64, 1u64 << (r % 64));
        let was = self.words[w] & b != 0;
        if nonzero && !was {
            self.words[w] |= b;
            self.nnz_rows += 1;
        } else if !nonzero && was {
            self.words[w] &= !b;
            self.nnz_rows -= 1;
        }
    }

    /// Re-measures one row from its values — the O(row) primitive the
    /// delta layer piggybacks on while it is writing the row anyway.
    pub fn update_row(&mut self, r: usize, values: &[f32]) {
        self.set(r, values.iter().any(|&v| v != 0.0));
    }

    /// Grows (or logically truncates) the bitmap to `rows` rows; new
    /// rows start zero, truncated rows are cleared first so the count
    /// stays exact.
    pub fn resize(&mut self, rows: usize) {
        if rows < self.rows {
            for r in rows..self.rows {
                self.set(r, false);
            }
        }
        self.rows = rows;
        self.words.resize(rows.div_ceil(64), 0);
    }

    /// Appends the indices of all nonzero rows, ascending, to `out` —
    /// the operand format of [`kernels::spmm_csr_into`].
    pub fn collect_rows(&self, out: &mut Vec<u32>) {
        out.clear();
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                let r = wi * 64 + b;
                if r < self.rows {
                    out.push(r as u32);
                }
                bits &= bits - 1;
            }
        }
    }

    /// Fills a caller-provided slice (length ≥ `nnz_rows()`) with the
    /// ascending nonzero-row indices and returns how many were written —
    /// the allocation-free variant for scratch-arena callers.
    pub fn fill_rows(&self, out: &mut [u32]) -> usize {
        let mut n = 0;
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                let r = wi * 64 + b;
                if r < self.rows {
                    out[n] = r as u32;
                    n += 1;
                }
                bits &= bits - 1;
            }
        }
        n
    }
}

/// Which kernel the dispatcher selected for one operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The dense tiled GEMM ([`kernels::gemm_into`]).
    Dense,
    /// The row-sparse SpMM ([`kernels::spmm_csr_into`]).
    Spmm,
    /// The zero-skipping condensed-delta path (RNN input patching).
    DeltaSkip,
}

/// Dispatch policy, set per engine / per serve worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Measure density, consult the cost model, pick the cheaper kernel.
    #[default]
    Auto,
    /// Always take the dense kernels and the shape-only layer ordering —
    /// the pre-dispatch behaviour, kept as the A/B baseline.
    Dense,
}

impl DispatchMode {
    /// Parses `"auto"` / `"dense"` (the `--dispatch` flag values).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(Self::Auto),
            "dense" => Some(Self::Dense),
            _ => None,
        }
    }

    /// The flag spelling of this mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Dense => "dense",
        }
    }
}

/// Calibrated per-operation costs, in nanoseconds.
///
/// Fitted once per process from micro-probes ([`CostModel::calibrated`])
/// unless the `TAGNN_COST_MODEL` environment variable pins explicit
/// coefficients (`dense_mac_ns,spmm_mac_ns,spmm_row_ns[,agg_mac_ns]`),
/// which keeps CI and differential runs deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// ns per fused multiply-add in the dense GEMM.
    pub dense_mac_ns: f64,
    /// ns per multiply-add in the SpMM's computed rows (same row kernel,
    /// so in practice ≈ `dense_mac_ns`; probed separately anyway).
    pub spmm_mac_ns: f64,
    /// ns of per-output-row overhead in the SpMM (membership test plus
    /// the zero fill of skipped rows, amortised per row).
    pub spmm_row_ns: f64,
    /// ns per multiply-add in the gather-heavy neighbour aggregation —
    /// the coefficient that prices the `edges·dim` term of the layer
    /// factorisation choice.
    pub agg_mac_ns: f64,
}

impl CostModel {
    /// A conservative default (pure ratios, no probing): SpMM MACs cost
    /// the same as dense ones, a skipped row costs ~64 dense MACs, and
    /// aggregation MACs cost 4× a GEMM MAC (gather-bound). Used when
    /// probing is disabled or meaningless (tests, miri-like environments).
    pub const fn default_coeffs() -> Self {
        Self {
            dense_mac_ns: 0.25,
            spmm_mac_ns: 0.25,
            spmm_row_ns: 16.0,
            agg_mac_ns: 1.0,
        }
    }

    /// Parses the `TAGNN_COST_MODEL` override format:
    /// `dense_mac_ns,spmm_mac_ns,spmm_row_ns[,agg_mac_ns]`.
    pub fn parse_override(s: &str) -> Option<Self> {
        let parts: Vec<f64> = s
            .split(',')
            .map(|p| p.trim().parse().ok())
            .collect::<Option<Vec<f64>>>()?;
        match parts.as_slice() {
            [d, s_, r] => Some(Self {
                dense_mac_ns: *d,
                spmm_mac_ns: *s_,
                spmm_row_ns: *r,
                agg_mac_ns: Self::default_coeffs().agg_mac_ns,
            }),
            [d, s_, r, a] => Some(Self {
                dense_mac_ns: *d,
                spmm_mac_ns: *s_,
                spmm_row_ns: *r,
                agg_mac_ns: *a,
            }),
            _ => None,
        }
    }

    /// Runs the startup micro-probes: a small dense GEMM and the same
    /// shape through the SpMM at half density, timed over a few
    /// repetitions. Total budget is well under a millisecond — paid
    /// once per process.
    pub fn probe() -> Self {
        const M: usize = 128;
        const K: usize = 64;
        const N: usize = 64;
        const REPS: u32 = 4;
        let a: Vec<f32> = (0..M * K).map(|i| (i % 7) as f32 * 0.125 + 0.1).collect();
        let b: Vec<f32> = (0..K * N).map(|i| (i % 5) as f32 * 0.25 - 0.5).collect();
        let mut out = vec![0.0f32; M * N];
        let rows_half: Vec<u32> = (0..M as u32).filter(|r| r % 2 == 0).collect();

        let time = |f: &mut dyn FnMut()| -> f64 {
            f(); // warm-up
            let t = Instant::now();
            for _ in 0..REPS {
                f();
            }
            t.elapsed().as_secs_f64() * 1e9 / REPS as f64
        };

        let dense_ns = time(&mut || {
            kernels::gemm_into(M, K, N, &a, &b, &mut out);
            std::hint::black_box(&mut out);
        });
        let spmm_half_ns = time(&mut || {
            kernels::spmm_csr_into(M, K, N, &rows_half, &a, &b, &mut out);
            std::hint::black_box(&mut out);
        });
        let spmm_empty_ns = time(&mut || {
            kernels::spmm_csr_into(M, K, N, &[], &a, &b, &mut out);
            std::hint::black_box(&mut out);
        });
        // Two-point fit for the per-row overhead: an all-skipped run's
        // time is `fixed + M·row`, and the fixed part (thread-pool
        // dispatch) is paid by the dense kernel too, so attributing it
        // to the rows would overprice the SpMM ~10× and starve it of
        // wins it deserves. Probing a second, larger M cancels it.
        const M_BIG: usize = 4 * M;
        let a_big: Vec<f32> = (0..M_BIG * K)
            .map(|i| (i % 7) as f32 * 0.125 + 0.1)
            .collect();
        let mut out_big = vec![0.0f32; M_BIG * N];
        let spmm_empty_big_ns = time(&mut || {
            kernels::spmm_csr_into(M_BIG, K, N, &[], &a_big, &b, &mut out_big);
            std::hint::black_box(&mut out_big);
        });

        let macs = (M * K * N) as f64;
        let dense_mac_ns = (dense_ns / macs).max(1e-4);
        let spmm_row_ns =
            ((spmm_empty_big_ns - spmm_empty_ns).max(0.0) / (M_BIG - M) as f64).max(1e-3);
        let spmm_mac_ns = ((spmm_half_ns - spmm_empty_ns).max(0.0) / (macs / 2.0)).max(1e-4);
        Self {
            dense_mac_ns,
            spmm_mac_ns,
            spmm_row_ns,
            // Aggregation is gather-bound; probing it needs graph
            // structure this crate doesn't have, so price it at a fixed
            // multiple of the dense MAC (see DESIGN.md; override via
            // TAGNN_COST_MODEL's fourth field).
            agg_mac_ns: dense_mac_ns * 4.0,
        }
    }

    /// The process-wide calibrated model: the `TAGNN_COST_MODEL`
    /// override when set and parseable, otherwise probed once and
    /// cached.
    pub fn calibrated() -> &'static Self {
        static MODEL: OnceLock<CostModel> = OnceLock::new();
        MODEL.get_or_init(|| {
            if let Ok(s) = std::env::var("TAGNN_COST_MODEL") {
                if let Some(m) = Self::parse_override(&s) {
                    return m;
                }
                eprintln!("warning: unparseable TAGNN_COST_MODEL `{s}`, probing instead");
            }
            Self::probe()
        })
    }

    /// Predicted cost of `m×k×n` through the dense GEMM.
    pub fn dense_cost(&self, m: usize, k: usize, n: usize) -> f64 {
        (m * k * n) as f64 * self.dense_mac_ns
    }

    /// Predicted cost of `m×k×n` through the SpMM with `nz` nonzero rows.
    pub fn spmm_cost(&self, m: usize, k: usize, n: usize, nz: usize) -> f64 {
        (nz * k * n) as f64 * self.spmm_mac_ns + m as f64 * self.spmm_row_ns
    }
}

/// One GEMM-factor decision: which kernel, and the cost the model
/// predicted for each candidate (kept for observability).
#[derive(Debug, Clone, Copy)]
pub struct GemmChoice {
    /// The selected kernel.
    pub kernel: Kernel,
    /// LHS row density that informed the choice.
    pub density: f64,
}

/// The layer-level decision that replaces the old `transform_first()`
/// shape heuristic: which factorisation of `Â·X·W` to run, and which
/// kernel computes the GEMM factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerChoice {
    /// `true` → transform first (`Â·(X·W)`), `false` → aggregate first
    /// (`(Â·X)·W`).
    pub transform_first: bool,
    /// Kernel for the GEMM factor (`X·W` when transform-first, `agg·W`
    /// when aggregate-first — the latter is always dense: aggregation
    /// densifies rows).
    pub kernel: Kernel,
    /// LHS row density that informed the choice.
    pub density: f64,
}

/// Per-engine tally of dispatch outcomes, merged into the engines'
/// `ExecutionStats` and published as `kernel.dispatch.{dense,spmm,
/// delta_skip}` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DispatchTally {
    /// Decisions resolved to the dense GEMM.
    pub dense: u64,
    /// Decisions resolved to the row-sparse SpMM.
    pub spmm: u64,
    /// Decisions resolved to the zero-skipping delta path.
    pub delta_skip: u64,
}

impl DispatchTally {
    /// Records one decision.
    pub fn count(&mut self, k: Kernel) {
        match k {
            Kernel::Dense => self.dense += 1,
            Kernel::Spmm => self.spmm += 1,
            Kernel::DeltaSkip => self.delta_skip += 1,
        }
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &Self) {
        self.dense += other.dense;
        self.spmm += other.spmm;
        self.delta_skip += other.delta_skip;
    }

    /// `self - earlier`, for windowed deltas.
    pub fn delta_since(&self, earlier: &Self) -> Self {
        Self {
            dense: self.dense - earlier.dense,
            spmm: self.spmm - earlier.spmm,
            delta_skip: self.delta_skip - earlier.delta_skip,
        }
    }

    /// Total decisions recorded.
    pub fn total(&self) -> u64 {
        self.dense + self.spmm + self.delta_skip
    }
}

/// The dispatch policy object the engines carry: a mode plus the cost
/// model. Cheap to copy; decision methods are pure.
#[derive(Debug, Clone, Copy)]
pub struct Dispatcher {
    mode: DispatchMode,
    model: CostModel,
}

impl Dispatcher {
    /// A dispatcher in `mode`, using the process-wide calibrated model.
    pub fn new(mode: DispatchMode) -> Self {
        Self {
            mode,
            model: *CostModel::calibrated(),
        }
    }

    /// A dispatcher with explicit coefficients (tests, benches).
    pub fn with_model(mode: DispatchMode, model: CostModel) -> Self {
        Self { mode, model }
    }

    /// The active mode.
    pub fn mode(&self) -> DispatchMode {
        self.mode
    }

    /// The cost model in use.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Chooses the kernel for a standalone `m×k×n` GEMM whose LHS has
    /// `nz` nonzero rows.
    pub fn choose_gemm(&self, m: usize, k: usize, n: usize, nz: usize) -> GemmChoice {
        let density = if m == 0 { 1.0 } else { nz as f64 / m as f64 };
        if self.mode == DispatchMode::Dense || nz >= m {
            return GemmChoice {
                kernel: Kernel::Dense,
                density,
            };
        }
        let dense = self.model.dense_cost(m, k, n);
        let spmm = self.model.spmm_cost(m, k, n, nz);
        GemmChoice {
            kernel: if spmm < dense {
                Kernel::Spmm
            } else {
                Kernel::Dense
            },
            density,
        }
    }

    /// The layer decision replacing `transform_first()`: folds the
    /// shape term (the old `out < in` heuristic falls out of the cost
    /// comparison when `X` is dense) and the measured density of `X`
    /// (`nz` nonzero rows of `n_vertices`) into one choice.
    ///
    /// Cost of transform-first: the `X·W` GEMM (`n·in·out`, sparse-aware
    /// — zero rows of `X` stay zero through it) plus aggregation over
    /// the output dimension (`edges·out`). Cost of aggregate-first:
    /// aggregation over the input dimension (`edges·in`) plus a dense
    /// `agg·W` GEMM (aggregation densifies rows, so no SpMM there).
    ///
    /// Cost ties break toward the legacy shape heuristic. With a fully
    /// dense `X` the two factorisation costs differ by exactly
    /// `edges·(out-in)·agg_mac_ns`, so the decision reduces to
    /// `out < in` — the old `transform_first()` — in *every* case,
    /// which is what keeps Auto-mode digests identical to Dense-mode
    /// digests on dense inputs (the golden suite pins this). Only
    /// measured sparsity can flip the association, and only because it
    /// makes one side strictly cheaper.
    pub fn choose_layer(
        &self,
        n_vertices: usize,
        edges: usize,
        in_dim: usize,
        out_dim: usize,
        nz: usize,
    ) -> LayerChoice {
        let density = if n_vertices == 0 {
            1.0
        } else {
            nz as f64 / n_vertices as f64
        };
        if self.mode == DispatchMode::Dense {
            // Legacy behaviour: the shape-only heuristic, dense kernels.
            return LayerChoice {
                transform_first: out_dim < in_dim,
                kernel: Kernel::Dense,
                density,
            };
        }
        let gemm = self.choose_gemm(n_vertices, in_dim, out_dim, nz);
        let xw_cost = match gemm.kernel {
            Kernel::Spmm => self.model.spmm_cost(n_vertices, in_dim, out_dim, nz),
            _ => self.model.dense_cost(n_vertices, in_dim, out_dim),
        };
        let tf_cost = xw_cost + (edges * out_dim) as f64 * self.model.agg_mac_ns;
        let af_cost = (edges * in_dim) as f64 * self.model.agg_mac_ns
            + self.model.dense_cost(n_vertices, in_dim, out_dim);
        let transform_first = if tf_cost == af_cost {
            out_dim < in_dim
        } else {
            tf_cost < af_cost
        };
        if transform_first {
            LayerChoice {
                transform_first: true,
                kernel: gemm.kernel,
                density,
            }
        } else {
            LayerChoice {
                transform_first: false,
                kernel: Kernel::Dense,
                density,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_tracks_rows_incrementally() {
        let mut bm = RowBitmap::zeros(130);
        assert_eq!(bm.nnz_rows(), 0);
        bm.set(0, true);
        bm.set(64, true);
        bm.set(129, true);
        assert_eq!(bm.nnz_rows(), 3);
        assert!(bm.get(64) && !bm.get(63));
        bm.set(64, false);
        bm.set(64, false); // idempotent
        assert_eq!(bm.nnz_rows(), 2);
        let mut rows = Vec::new();
        bm.collect_rows(&mut rows);
        assert_eq!(rows, vec![0, 129]);
        let mut buf = [0u32; 4];
        assert_eq!(bm.fill_rows(&mut buf), 2);
        assert_eq!(&buf[..2], &[0, 129]);
    }

    #[test]
    fn bitmap_from_rows_matches_scan() {
        let data = vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, -2.0];
        let bm = RowBitmap::from_rows(4, 2, &data);
        assert_eq!(bm.nnz_rows(), 2);
        assert!(bm.get(1) && bm.get(3) && !bm.get(0) && !bm.get(2));
        assert!((bm.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bitmap_resize_keeps_count_exact() {
        let mut bm = RowBitmap::zeros(10);
        bm.set(3, true);
        bm.set(9, true);
        bm.resize(5);
        assert_eq!(bm.nnz_rows(), 1);
        bm.resize(200);
        assert_eq!(bm.nnz_rows(), 1);
        bm.set(199, true);
        assert_eq!(bm.nnz_rows(), 2);
    }

    #[test]
    fn cost_override_parses() {
        let m = CostModel::parse_override("0.5, 0.6, 10").unwrap();
        assert_eq!(m.dense_mac_ns, 0.5);
        assert_eq!(m.spmm_mac_ns, 0.6);
        assert_eq!(m.spmm_row_ns, 10.0);
        let m4 = CostModel::parse_override("1,1,1,2.5").unwrap();
        assert_eq!(m4.agg_mac_ns, 2.5);
        assert!(CostModel::parse_override("nope").is_none());
        assert!(CostModel::parse_override("1,2").is_none());
    }

    #[test]
    fn probe_produces_positive_coefficients() {
        let m = CostModel::probe();
        assert!(m.dense_mac_ns > 0.0);
        assert!(m.spmm_mac_ns > 0.0);
        assert!(m.spmm_row_ns > 0.0);
        assert!(m.agg_mac_ns > 0.0);
    }

    #[test]
    fn dense_mode_reproduces_the_shape_heuristic() {
        let d = Dispatcher::with_model(DispatchMode::Dense, CostModel::default_coeffs());
        // Shrinking layer → transform first; growing layer → aggregate
        // first. Density must be ignored entirely.
        assert!(d.choose_layer(100, 400, 64, 32, 0).transform_first);
        assert!(!d.choose_layer(100, 400, 32, 64, 0).transform_first);
        assert_eq!(d.choose_gemm(100, 64, 64, 0).kernel, Kernel::Dense);
    }

    #[test]
    fn auto_mode_picks_spmm_on_sparse_and_dense_on_dense() {
        let d = Dispatcher::with_model(DispatchMode::Auto, CostModel::default_coeffs());
        assert_eq!(d.choose_gemm(1000, 64, 64, 10).kernel, Kernel::Spmm);
        assert_eq!(d.choose_gemm(1000, 64, 64, 1000).kernel, Kernel::Dense);
        // Near-dense: the per-row overhead makes dense the winner.
        assert_eq!(d.choose_gemm(1000, 64, 64, 999).kernel, Kernel::Dense);
    }

    #[test]
    fn sparse_features_flip_the_layer_choice_toward_transform_first() {
        let d = Dispatcher::with_model(DispatchMode::Auto, CostModel::default_coeffs());
        // Growing layer (in 32 → out 64): shape-only logic says
        // aggregate-first. With an almost-empty X, transform-first via
        // SpMM is far cheaper.
        let dense_x = d.choose_layer(10_000, 20_000, 32, 64, 10_000);
        assert!(!dense_x.transform_first);
        let sparse_x = d.choose_layer(10_000, 20_000, 32, 64, 50);
        assert!(sparse_x.transform_first);
        assert_eq!(sparse_x.kernel, Kernel::Spmm);
        assert!(sparse_x.density < 0.01);
    }

    #[test]
    fn auto_with_dense_features_always_matches_the_legacy_association() {
        // The bit-compat guarantee behind the golden suite: with nz == n
        // the cost-model decision must collapse to the shape heuristic,
        // ties and degenerate graphs included.
        let auto = Dispatcher::with_model(DispatchMode::Auto, CostModel::default_coeffs());
        let dense = Dispatcher::with_model(DispatchMode::Dense, CostModel::default_coeffs());
        for &(n, edges) in &[(100usize, 400usize), (100, 0), (1, 2), (0, 0)] {
            for &(i, o) in &[(64usize, 32usize), (32, 64), (48, 48), (1, 1)] {
                assert_eq!(
                    auto.choose_layer(n, edges, i, o, n).transform_first,
                    dense.choose_layer(n, edges, i, o, n).transform_first,
                    "n={n} edges={edges} in={i} out={o}"
                );
            }
        }
    }

    #[test]
    fn tally_merges_and_deltas() {
        let mut t = DispatchTally::default();
        t.count(Kernel::Dense);
        t.count(Kernel::Spmm);
        t.count(Kernel::DeltaSkip);
        t.count(Kernel::Spmm);
        assert_eq!(t.total(), 4);
        let snap = t;
        let mut t2 = t;
        t2.count(Kernel::Dense);
        let d = t2.delta_since(&snap);
        assert_eq!((d.dense, d.spmm, d.delta_skip), (1, 0, 0));
        let mut m = DispatchTally::default();
        m.merge(&t2);
        m.merge(&snap);
        assert_eq!(m.total(), t2.total() + snap.total());
    }

    #[test]
    fn mode_parses_flag_values() {
        assert_eq!(DispatchMode::parse("auto"), Some(DispatchMode::Auto));
        assert_eq!(DispatchMode::parse("dense"), Some(DispatchMode::Dense));
        assert_eq!(DispatchMode::parse("spmm"), None);
        assert_eq!(DispatchMode::Auto.as_str(), "auto");
    }
}
