//! Matrix and vector arithmetic.
//!
//! `matmul` is the workhorse of the GNN combination phase and the RNN gate
//! computations; it parallelises over output rows with rayon since feature
//! tables have many more rows (vertices) than columns (feature dims).

use crate::kernels;
use crate::matrix::DenseMatrix;
use rayon::prelude::*;

/// `C = A * B` with rayon parallelism over rows of `A`.
///
/// The dense path is branch-free: it delegates to the tiled
/// [`kernels::gemm_into`] kernel, which accumulates each output element
/// over `k` in ascending order just like the historical triple loop
/// (fused to one rounding per multiply-add on FMA hardware). When the
/// left-hand side is known to be mostly zeros, use
/// [`matmul_sparse_lhs`] instead to get the per-element zero skip back.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![0.0f32; m * n];
    kernels::gemm_into(m, k, n, a.as_slice(), b.as_slice(), &mut out);
    DenseMatrix::from_vec(m, n, out)
}

/// `C = A * B` skipping zero elements of `A`.
///
/// Same contract as [`matmul`], and the same ascending-`k` accumulation
/// order — but with separate multiply and add roundings, so on FMA
/// hardware the two can differ in low-order bits. The per-element
/// `a[i, l] == 0.0` test is a win exactly when `A` is sparse enough
/// (empirically ≳ half zeros) to pay for the branch on every dense
/// element — e.g. one-hot feature tables — and a loss on dense inputs,
/// which is why the dense [`matmul`] no longer performs it.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_sparse_lhs(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, n) = (a.rows(), b.cols());
    let mut out = vec![0.0f32; m * n];
    matmul_sparse_lhs_into(a, b, &mut out);
    DenseMatrix::from_vec(m, n, out)
}

/// The body of [`matmul_sparse_lhs`], writing into a caller-provided
/// buffer (`m·n`, overwritten) so the dispatch layer can select the
/// zero-skipping loop without breaking the engines' steady-state
/// zero-allocation guarantee — hand it a `ScratchBuf` slice. The
/// allocating wrapper remains for tests and one-shot callers.
///
/// # Panics
/// Panics if `a.cols() != b.rows()` or `out.len() != a.rows()·b.cols()`.
pub fn matmul_sparse_lhs_into(a: &DenseMatrix, b: &DenseMatrix, out: &mut [f32]) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(out.len(), m * n, "matmul_sparse_lhs out shape mismatch");
    out.par_chunks_exact_mut(n.max(1))
        .enumerate()
        .for_each(|(i, out_row)| {
            out_row.fill(0.0);
            let a_row = a.row(i);
            // Accumulate over k in the outer loop so each inner pass streams a
            // contiguous row of B — cache-friendly row-wise matmul, mirroring the
            // CPE's row-wise dataflow in the paper.
            for (l, &a_il) in a_row.iter().enumerate().take(k) {
                if a_il == 0.0 {
                    continue;
                }
                let b_row = b.row(l);
                for (o, &b_lj) in out_row.iter_mut().zip(b_row) {
                    *o += a_il * b_lj;
                }
            }
        });
}

/// Vector-matrix product: `y = x * B` for a single row vector `x`.
///
/// Shares the row kernel of [`matmul`] (via [`kernels::rowmat_into`]),
/// so a row computed here is bit-identical to the corresponding row of
/// the full matrix product — the property the engines' per-vertex
/// fallback paths rely on to agree with the batched kernels.
///
/// # Panics
/// Panics if `x.len() != b.rows()`.
pub fn vecmat(x: &[f32], b: &DenseMatrix) -> Vec<f32> {
    assert_eq!(x.len(), b.rows(), "vecmat shape mismatch");
    let n = b.cols();
    let mut y = vec![0.0f32; n];
    kernels::rowmat_into(x, b.as_slice(), n, &mut y);
    y
}

/// `a += b` element-wise.
///
/// # Panics
/// Panics on length mismatch.
pub fn add_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "add_assign length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// `a += s * b` element-wise (axpy), via [`kernels::axpy_into`] so every
/// caller shares one (possibly fused) rounding behaviour.
///
/// # Panics
/// Panics on length mismatch.
pub fn axpy(a: &mut [f32], s: f32, b: &[f32]) {
    kernels::axpy_into(a, s, b);
}

/// Element-wise difference `a - b` into a fresh vector.
///
/// # Panics
/// Panics on length mismatch.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise (Hadamard) product into a fresh vector.
///
/// # Panics
/// Panics on length mismatch.
pub fn hadamard(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "hadamard length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

/// Scales every element of `a` by `s` in place.
pub fn scale(a: &mut [f32], s: f32) {
    for x in a {
        *x *= s;
    }
}

/// Matrix addition `A + B`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn mat_add(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "mat_add shape mismatch"
    );
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x + y)
        .collect();
    DenseMatrix::from_vec(a.rows(), a.cols(), data)
}

/// Concatenates two equal-length vectors `[a | b]`.
pub fn concat(a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut v = Vec::with_capacity(a.len() + b.len());
    v.extend_from_slice(a);
    v.extend_from_slice(b);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> DenseMatrix {
        DenseMatrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = m(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = m(2, 3, &[0.0; 6]);
        let b = m(2, 2, &[0.0; 4]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn vecmat_matches_matmul_row() {
        let b = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, 0.5, -1.0];
        let y = vecmat(&x, &b);
        let a = m(1, 3, &x);
        assert_eq!(y, matmul(&a, &b).into_vec());
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = vec![1.0, 2.0];
        add_assign(&mut a, &[1.0, 1.0]);
        assert_eq!(a, vec![2.0, 3.0]);
        axpy(&mut a, 2.0, &[1.0, -1.0]);
        assert_eq!(a, vec![4.0, 1.0]);
    }

    #[test]
    fn sub_hadamard_scale() {
        assert_eq!(sub(&[3.0, 1.0], &[1.0, 1.0]), vec![2.0, 0.0]);
        assert_eq!(hadamard(&[2.0, 3.0], &[4.0, 0.5]), vec![8.0, 1.5]);
        let mut v = vec![1.0, -2.0];
        scale(&mut v, -2.0);
        assert_eq!(v, vec![-2.0, 4.0]);
    }

    #[test]
    fn mat_add_adds() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(1, 2, &[3.0, 4.0]);
        assert_eq!(mat_add(&a, &b).as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn concat_joins() {
        assert_eq!(concat(&[1.0], &[2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn sparse_lhs_matmul_matches_dense_matmul() {
        let a = m(
            3,
            4,
            &[0.0, 2.0, 0.0, -1.0, 0.0, 0.0, 0.0, 0.0, 1.5, 0.0, 3.0, 0.5],
        );
        let b = crate::init::xavier_uniform(4, 5, 42);
        // Separate-rounding loop vs the (possibly fused) dense kernel:
        // agreement to a few ulps, not necessarily bit equality.
        for (x, y) in matmul_sparse_lhs(&a, &b)
            .as_slice()
            .iter()
            .zip(matmul(&a, &b).as_slice())
        {
            assert!((x - y).abs() <= 1e-5 * y.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn sparse_lhs_into_overwrites_a_dirty_buffer() {
        let a = m(2, 2, &[0.0, 1.0, 0.0, 0.0]);
        let b = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut out = vec![9.0f32; 4];
        matmul_sparse_lhs_into(&a, &b, &mut out);
        assert_eq!(out, vec![3.0, 4.0, 0.0, 0.0]);
        assert_eq!(matmul_sparse_lhs(&a, &b).as_slice(), out.as_slice());
    }

    #[test]
    fn matmul_zero_rows() {
        let a = DenseMatrix::zeros(0, 3);
        let b = DenseMatrix::zeros(3, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.rows(), 0);
        assert_eq!(c.cols(), 2);
    }
}
