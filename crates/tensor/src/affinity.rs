//! Opt-in thread placement for the plan/execute overlap subsystem.
//!
//! The paper's ping-pong prefetch assumes the preprocessing unit and the
//! execution units are *distinct hardware*; the software analogue gets
//! closest when the planner thread and the rayon compute workers sit on
//! distinct cores instead of time-slicing one. Pinning is strictly
//! opt-in via the `TAGNN_PIN_THREADS` environment variable (`1` or
//! `true`): on shared CI runners or oversubscribed hosts, pinning can
//! *hurt*, so the default is to leave placement to the scheduler.
//!
//! Implementation note: the workspace is dependency-free by policy (no
//! `libc`), so the Linux path issues the raw `sched_setaffinity`
//! syscall. Non-Linux (or non-x86_64) builds compile the same API as a
//! no-op that reports failure, which callers treat as "run unpinned".

/// Whether the user asked for thread pinning (`TAGNN_PIN_THREADS=1` or
/// `true`, case-insensitive). Read per call so tests can flip it.
pub fn pinning_enabled() -> bool {
    std::env::var("TAGNN_PIN_THREADS")
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            v == "1" || v == "true"
        })
        .unwrap_or(false)
}

/// Pins the calling thread to logical CPU `core` (modulo the visible CPU
/// count is the caller's concern — an out-of-range core fails). Returns
/// `true` when the affinity mask was applied, `false` when pinning is
/// unsupported on this platform or the kernel rejected the mask; callers
/// must treat `false` as "keep running unpinned", never as an error.
pub fn pin_current_thread(core: usize) -> bool {
    pin_impl(core)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn pin_impl(core: usize) -> bool {
    // cpu_set_t is 1024 bits = 16 u64 words on Linux.
    const WORDS: usize = 16;
    if core >= WORDS * 64 {
        return false;
    }
    let mut mask = [0u64; WORDS];
    mask[core / 64] = 1u64 << (core % 64);
    // sched_setaffinity(pid=0 /* self */, len, mask) — syscall 203 on
    // x86_64. Returns 0 on success, a negative errno on failure.
    let ret: i64;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret,
            in("rdi") 0i64,
            in("rsi") (WORDS * 8) as i64,
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn pin_impl(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_off_by_default() {
        // The test environment does not set TAGNN_PIN_THREADS; the flag
        // readers in bench/serve rely on this default.
        if std::env::var("TAGNN_PIN_THREADS").is_err() {
            assert!(!pinning_enabled());
        }
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn pin_to_core_zero_succeeds_on_linux() {
        // Core 0 exists on every machine; the syscall path must apply.
        assert!(pin_current_thread(0));
        // A core far past any real machine must be rejected, not UB.
        assert!(!pin_current_thread(16 * 64));
    }
}
