//! Property-based tests of the tensor kernels.

use proptest::prelude::*;
use tagnn_tensor::similarity::{cosine, delta, dot, norm, CondensedDelta};
use tagnn_tensor::{activation, ops, Activation, DenseMatrix};

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

fn matrix_strategy(max: usize) -> impl Strategy<Value = DenseMatrix> {
    (1..max, 1..max).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-5.0f32..5.0, r * c)
            .prop_map(move |data| DenseMatrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn matmul_matches_naive_triple_loop(a in matrix_strategy(8), b_cols in 1usize..8, seed in 0u64..1000) {
        let b = tagnn_tensor::init::uniform(a.cols(), b_cols, -2.0, 2.0, seed);
        let fast = ops::matmul(&a, &b);
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                prop_assert!((fast.get(i, j) - acc).abs() < 1e-3, "({i},{j}): {} vs {acc}", fast.get(i, j));
            }
        }
    }

    #[test]
    fn matmul_identity_is_neutral(a in matrix_strategy(8)) {
        let id = DenseMatrix::from_fn(a.cols(), a.cols(), |r, c| if r == c { 1.0 } else { 0.0 });
        let out = ops::matmul(&a, &id);
        prop_assert!(a.max_abs_diff(&out) < 1e-6);
    }

    #[test]
    fn cosine_is_bounded_and_reflexive(v in vec_strategy(16)) {
        let w: Vec<f32> = v.iter().map(|x| x * 0.5 + 1.0).collect();
        let c = cosine(&v, &w);
        prop_assert!((-1.0..=1.0).contains(&c));
        if norm(&v) > 1e-3 {
            prop_assert!((cosine(&v, &v) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cosine_is_scale_invariant(v in vec_strategy(12), s in 0.1f32..10.0) {
        let w: Vec<f32> = v.iter().map(|x| x + 1.0).collect();
        let scaled: Vec<f32> = v.iter().map(|x| x * s).collect();
        if norm(&v) > 1e-3 && norm(&w) > 1e-3 {
            prop_assert!((cosine(&v, &w) - cosine(&scaled, &w)).abs() < 1e-3);
        }
    }

    #[test]
    fn dot_is_commutative(a in vec_strategy(10), b in vec_strategy(10)) {
        prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-4);
    }

    #[test]
    fn condensed_delta_roundtrips(prev in vec_strategy(24), cur in vec_strategy(24)) {
        let d = delta(&prev, &cur);
        let condensed = CondensedDelta::from_dense(&d, 0.0);
        prop_assert_eq!(condensed.to_dense(), d);
        let mut restored = prev.clone();
        condensed.add_to(&mut restored);
        for (r, c) in restored.iter().zip(&cur) {
            prop_assert!((r - c).abs() < 1e-5);
        }
    }

    #[test]
    fn condense_tolerance_only_drops_small_entries(v in vec_strategy(16), tol in 0.0f32..2.0) {
        let c = CondensedDelta::from_dense(&v, tol);
        for &val in &c.values {
            prop_assert!(val.abs() > tol);
        }
        prop_assert!(c.nnz() <= v.len());
        prop_assert!((0.0..=1.0).contains(&c.density()));
    }

    #[test]
    fn sigmoid_and_tanh_are_bounded(x in -100.0f32..100.0) {
        let s = activation::sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&s));
        let t = Activation::Tanh.apply_scalar(x);
        prop_assert!((-1.0..=1.0).contains(&t));
        prop_assert!(Activation::Relu.apply_scalar(x) >= 0.0);
    }

    #[test]
    fn axpy_matches_definition(a in vec_strategy(8), b in vec_strategy(8), s in -3.0f32..3.0) {
        let mut out = a.clone();
        ops::axpy(&mut out, s, &b);
        for i in 0..a.len() {
            prop_assert!((out[i] - (a[i] + s * b[i])).abs() < 1e-4);
        }
    }

    #[test]
    fn xavier_respects_fan_bound(rows in 1usize..32, cols in 1usize..32, seed in 0u64..100) {
        let m = tagnn_tensor::init::xavier_uniform(rows, cols, seed);
        let bound = (6.0f64 / (rows + cols) as f64).sqrt() as f32 + 1e-6;
        for &v in m.as_slice() {
            prop_assert!(v.abs() <= bound);
        }
    }
}
