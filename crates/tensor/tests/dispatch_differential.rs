//! Differential suite pinning the dispatch layer's exactness contract:
//! over any matrix whose zero rows are *actually* zero,
//! `spmm_csr_into` (given the nonzero-row list) must be bit-identical
//! to `gemm_into` — not close, identical — at every density and shape.
//! This is what lets the engines dispatch freely without perturbing
//! Exact-mode digests. Run blocking in CI (`dispatch-differential`).

use tagnn_tensor::dispatch::{CostModel, DispatchMode, Dispatcher, Kernel, RowBitmap};
use tagnn_tensor::kernels::{gemm_into, spmm_csr_into};
use tagnn_tensor::{init, ops, DenseMatrix};

/// xorshift64* — deterministic pattern generator for the row masks.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Builds an `m×k` matrix where each row is zeroed with probability
/// `zero_frac`, plus the matching sorted nonzero-row list.
fn sparse_lhs(m: usize, k: usize, zero_frac: f64, seed: u64) -> (DenseMatrix, Vec<u32>) {
    let dense = init::xavier_uniform(m, k, seed);
    let mut data = dense.as_slice().to_vec();
    let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
    let mut rows = Vec::new();
    for r in 0..m {
        if rng.unit() < zero_frac {
            data[r * k..(r + 1) * k].fill(0.0);
        } else {
            rows.push(r as u32);
        }
    }
    (DenseMatrix::from_vec(m, k, data), rows)
}

const SHAPES: &[(usize, usize, usize)] = &[(7, 5, 3), (33, 17, 9), (64, 48, 32), (128, 64, 64)];
const ZERO_FRACS: &[f64] = &[0.0, 0.01, 0.5, 0.99, 1.0];

#[test]
fn spmm_is_bit_identical_to_gemm_at_every_density_and_shape() {
    for &(m, k, n) in SHAPES {
        for &zf in ZERO_FRACS {
            for seed in [1u64, 42, 0xD1FF] {
                let (a, rows) = sparse_lhs(m, k, zf, seed);
                let b = init::xavier_uniform(k, n, seed ^ 0xB);
                let mut dense_out = vec![f32::NAN; m * n];
                let mut spmm_out = vec![f32::NAN; m * n];
                gemm_into(m, k, n, a.as_slice(), b.as_slice(), &mut dense_out);
                spmm_csr_into(m, k, n, &rows, a.as_slice(), b.as_slice(), &mut spmm_out);
                for (i, (x, y)) in dense_out.iter().zip(&spmm_out).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "shape {m}x{k}x{n} zero_frac {zf} seed {seed} elem {i}: {x} vs {y}"
                    );
                }
            }
        }
    }
}

#[test]
fn bitmap_row_list_reproduces_the_ground_truth_mask() {
    for &(m, k, _) in SHAPES {
        for &zf in ZERO_FRACS {
            let (a, rows) = sparse_lhs(m, k, zf, 7);
            let bm = RowBitmap::from_rows(m, k, a.as_slice());
            assert_eq!(bm.nnz_rows(), rows.len());
            let mut got = Vec::new();
            bm.collect_rows(&mut got);
            assert_eq!(got, rows, "shape {m}x{k} zero_frac {zf}");
        }
    }
}

#[test]
fn sparse_lhs_into_matches_its_allocating_wrapper_bitwise() {
    for &(m, k, n) in SHAPES {
        let (a, _) = sparse_lhs(m, k, 0.5, 11);
        let b = init::xavier_uniform(k, n, 13);
        let want = ops::matmul_sparse_lhs(&a, &b);
        let mut got = vec![f32::NAN; m * n];
        ops::matmul_sparse_lhs_into(&a, &b, &mut got);
        assert_eq!(want.as_slice(), got.as_slice());
    }
}

#[test]
fn auto_dispatch_never_changes_the_bits_it_computes() {
    // Whatever the cost model picks, the produced matrix is the same:
    // run the dispatcher's actual choice and compare against dense.
    let d = Dispatcher::with_model(DispatchMode::Auto, CostModel::default_coeffs());
    for &(m, k, n) in SHAPES {
        for &zf in ZERO_FRACS {
            let (a, rows) = sparse_lhs(m, k, zf, 23);
            let b = init::xavier_uniform(k, n, 29);
            let mut want = vec![0.0f32; m * n];
            gemm_into(m, k, n, a.as_slice(), b.as_slice(), &mut want);
            let choice = d.choose_gemm(m, k, n, rows.len());
            let mut got = vec![f32::NAN; m * n];
            match choice.kernel {
                Kernel::Spmm => spmm_csr_into(m, k, n, &rows, a.as_slice(), b.as_slice(), &mut got),
                _ => gemm_into(m, k, n, a.as_slice(), b.as_slice(), &mut got),
            }
            assert_eq!(want, got, "shape {m}x{k}x{n} zero_frac {zf}");
        }
    }
}
