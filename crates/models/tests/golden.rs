//! Golden equivalence tests for the fused kernel layer.
//!
//! The golden model is the pre-kernel per-vertex algorithm, re-derived at
//! runtime from the building blocks that never changed semantics:
//! [`GcnLayer::forward_vertex`] (aggregate one vertex, then a single
//! vector-matrix combine) and [`RnnCell::step`] (two vector-matrix gate
//! pre-activations, then the non-linearities). Both engines now run fused
//! batched kernels instead, and must still produce the same numbers.

use tagnn_graph::generate::{ChurnConfig, GeneratorConfig};
use tagnn_graph::types::VertexId;
use tagnn_graph::{DynamicGraph, Snapshot};
use tagnn_models::{
    ConcurrentEngine, DgnnModel, ModelKind, ReferenceEngine, ReuseMode, SkipConfig,
};
use tagnn_tensor::dispatch::{CostModel, DispatchMode, Dispatcher};
use tagnn_tensor::{DenseMatrix, Scratch};

fn churny_graph(seed: u64) -> DynamicGraph {
    GeneratorConfig {
        num_vertices: 40,
        num_edges: 140,
        feature_dim: 6,
        num_snapshots: 6,
        power_law_alpha: 0.8,
        churn: ChurnConfig {
            feature_mutation_rate: 0.06,
            edge_rewire_rate: 0.04,
            vertex_churn_rate: 0.02,
            mutation_smoothness: 0.5,
        },
        seed,
        feature_row_sparsity: 0.0,
        burst: None,
    }
    .generate()
}

/// Snapshot-by-snapshot inference the way the engines computed it before
/// the kernel layer existed: every vertex through `forward_vertex` per
/// layer, every active vertex through a full `step`.
fn golden_final_features(graph: &DynamicGraph, model: &DgnnModel) -> Vec<DenseMatrix> {
    let n = graph.num_vertices();
    let cell = model.cell();
    let mut states: Vec<_> = (0..n).map(|_| cell.zero_state()).collect();
    let mut finals = Vec::new();
    for snap in graph.snapshots() {
        let mut x = snap.features().clone();
        for layer in model.layers() {
            let mut out = DenseMatrix::zeros(n, layer.out_dim());
            for v in 0..n as VertexId {
                out.set_row(v as usize, &layer.forward_vertex(snap, &x, v));
            }
            x = out;
        }
        for (v, state) in states.iter_mut().enumerate() {
            if snap.is_active(v as VertexId) {
                cell.step(x.row(v), state);
            }
        }
        let mut h = DenseMatrix::zeros(n, cell.hidden());
        for (v, state) in states.iter().enumerate() {
            h.set_row(v, &state.h);
        }
        finals.push(h);
    }
    finals
}

fn max_diff(a: &[DenseMatrix], b: &[DenseMatrix]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| x.max_abs_diff(y))
        .fold(0.0, f32::max)
}

/// Every model family, with a hidden dim that makes layer 0 shrink
/// (6 → 5) so the transform-first (`Â·(X·W)`) arm is exercised, and the
/// reference engine must match the per-vertex golden model.
#[test]
fn reference_engine_matches_pre_kernel_golden() {
    for (kind, seed) in [
        (ModelKind::TGcn, 11u64),
        (ModelKind::GcLstm, 12),
        (ModelKind::CdGcn, 13),
    ] {
        let g = churny_graph(seed);
        let model = DgnnModel::new(kind, g.feature_dim(), 5, seed);
        let golden = golden_final_features(&g, &model);
        let out = ReferenceEngine::new(model).run(&g);
        let diff = max_diff(&golden, &out.final_features);
        assert!(diff < 1e-5, "{kind:?}: reference diff {diff}");
    }
}

/// The concurrent engine in `Exact` mode with skipping disabled reuses
/// across the window but must still land on the golden numbers.
#[test]
fn exact_concurrent_engine_matches_pre_kernel_golden() {
    for (kind, window) in [(ModelKind::TGcn, 3usize), (ModelKind::GcLstm, 4)] {
        let g = churny_graph(21);
        let model = DgnnModel::new(kind, g.feature_dim(), 5, 21);
        let golden = golden_final_features(&g, &model);
        let out =
            ConcurrentEngine::with_options(model, SkipConfig::disabled(), window, ReuseMode::Exact)
                .run(&g);
        let diff = max_diff(&golden, &out.final_features);
        assert!(diff < 1e-5, "{kind:?} K={window}: concurrent diff {diff}");
    }
}

/// A hidden dim wider than the features (6 → 8) keeps every layer on the
/// aggregate-first arm, whose fused path is bit-compatible with the
/// golden model: the match must be exact, not approximate.
#[test]
fn aggregate_first_arm_is_bit_identical_to_golden() {
    let g = churny_graph(31);
    let model = DgnnModel::new(ModelKind::TGcn, g.feature_dim(), 8, 31);
    let golden = golden_final_features(&g, &model);
    let reference = ReferenceEngine::new(model.clone()).run(&g);
    assert_eq!(golden, reference.final_features);
    let concurrent =
        ConcurrentEngine::with_options(model, SkipConfig::disabled(), 3, ReuseMode::Exact).run(&g);
    assert_eq!(golden, concurrent.final_features);
}

/// Zeroes out the feature rows of every vertex except each fourth one,
/// in every snapshot — 75% row sparsity, enough to flip the dispatcher
/// to the SpMM on the layer-0 GEMM factor.
fn sparsify(g: &DynamicGraph) -> DynamicGraph {
    let snaps = g
        .snapshots()
        .iter()
        .map(|s| {
            let mut feats = s.features().clone();
            for v in 0..s.num_vertices() {
                if v % 4 != 0 {
                    feats.row_mut(v).fill(0.0);
                }
            }
            Snapshot::new(s.csr().clone(), feats, s.active().to_vec())
        })
        .collect();
    DynamicGraph::new(snaps)
}

/// The dispatch layer's headline contract: enabling sparsity-adaptive
/// dispatch (the default `auto` mode) must leave Exact-mode digests
/// unchanged — bit-for-bit equal to the legacy `dense` mode — at every
/// density, for both engines. On sparse inputs the SpMM must actually
/// fire, and still change nothing. Run blocking in CI
/// (`dispatch-differential`).
#[test]
fn dispatch_auto_leaves_exact_mode_digests_unchanged() {
    // Pinned coefficients rather than probe timing: the digests must be
    // identical whatever the model says, but asserting that the SpMM
    // actually *fired* on the sparse graph needs a deterministic model
    // (at 40 vertices × 6 features a probed per-row overhead can
    // legitimately keep everything dense).
    let pinned = |mode: DispatchMode| {
        Dispatcher::with_model(
            mode,
            CostModel {
                spmm_row_ns: 0.5,
                ..CostModel::default_coeffs()
            },
        )
    };
    for sparse in [false, true] {
        let g = if sparse {
            sparsify(&churny_graph(51))
        } else {
            churny_graph(51)
        };
        // Hidden 5 shrinks layer 0 (6 → 5): the transform-first arm,
        // where the SpMM dispatch lives, is exercised.
        let model = DgnnModel::new(ModelKind::TGcn, g.feature_dim(), 5, 51);

        let ref_auto =
            ReferenceEngine::with_dispatcher(model.clone(), pinned(DispatchMode::Auto)).run(&g);
        let ref_dense =
            ReferenceEngine::with_dispatcher(model.clone(), pinned(DispatchMode::Dense)).run(&g);
        assert_eq!(
            ref_auto.final_features, ref_dense.final_features,
            "sparse={sparse}: auto dispatch perturbed the reference digests"
        );
        assert_eq!(ref_auto.gnn_outputs, ref_dense.gnn_outputs);

        let conc = |mode: DispatchMode| {
            ConcurrentEngine::with_options(
                model.clone(),
                SkipConfig::disabled(),
                3,
                ReuseMode::Exact,
            )
            .with_dispatcher(pinned(mode))
            .run(&g)
        };
        let conc_auto = conc(DispatchMode::Auto);
        let conc_dense = conc(DispatchMode::Dense);
        assert_eq!(
            conc_auto.final_features, conc_dense.final_features,
            "sparse={sparse}: auto dispatch perturbed the concurrent digests"
        );
        assert_eq!(
            conc_auto.final_features, ref_auto.final_features,
            "sparse={sparse}: Exact mode no longer matches the reference engine"
        );

        if sparse {
            assert!(
                ref_auto.stats.dispatch.spmm > 0,
                "75% zero rows must route the layer-0 GEMM through the SpMM"
            );
            assert!(
                conc_auto.stats.dispatch.spmm > 0,
                "the concurrent engine must also reach the SpMM"
            );
        }
        assert_eq!(ref_dense.stats.dispatch.spmm, 0, "dense mode never SpMMs");
        assert!(
            ref_auto.stats.dispatch.total() > 0,
            "every GEMM factor must be tallied as a dispatch decision"
        );
    }
}

/// After the first run reserves the workspaces, repeated runs through a
/// shared scratch arena must not allocate inside the steady-state loop —
/// and must keep producing identical outputs.
#[test]
fn shared_scratch_is_allocation_free_after_warm_up() {
    let g = churny_graph(41);
    let model = DgnnModel::new(ModelKind::GcLstm, g.feature_dim(), 5, 41);

    let mut scratch = Scratch::new();
    let reference = ReferenceEngine::new(model.clone());
    let first = reference.run_traced_scratch(&g, None, &mut scratch);
    for _ in 0..2 {
        let again = reference.run_traced_scratch(&g, None, &mut scratch);
        assert_eq!(first.final_features, again.final_features);
    }
    assert_eq!(scratch.steady_growth(), 0, "reference engine grew scratch");

    let mut scratch = Scratch::new();
    let concurrent = ConcurrentEngine::with_options(
        model,
        SkipConfig::paper_default(),
        3,
        ReuseMode::PaperWindow,
    );
    let plans = tagnn_graph::plan::WindowPlanner::new(3).plan_graph(&g);
    let first = concurrent.run_with_plans_scratch(&g, &plans, None, &mut scratch);
    for _ in 0..2 {
        let again = concurrent.run_with_plans_scratch(&g, &plans, None, &mut scratch);
        assert_eq!(first.final_features, again.final_features);
    }
    assert_eq!(scratch.steady_growth(), 0, "concurrent engine grew scratch");
}
