//! Property-based tests of the model stack: engine equivalence on random
//! dynamic graphs, delta-path exactness, and accounting conservation laws.

use proptest::prelude::*;
use tagnn_graph::generate::{ChurnConfig, GeneratorConfig};
use tagnn_models::skip::{CellMode, SkipConfig};
use tagnn_models::{ConcurrentEngine, DgnnModel, ModelKind, ReferenceEngine, ReuseMode};
use tagnn_tensor::similarity::{delta, CondensedDelta};

fn graph_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (2u64..2000, 1usize..4, 0.0f64..0.08, 0.0f64..0.05).prop_map(
        |(seed, snapshots_x2, mutation, rewire)| GeneratorConfig {
            num_vertices: 24,
            num_edges: 80,
            feature_dim: 4,
            num_snapshots: snapshots_x2 * 2,
            power_law_alpha: 0.7,
            churn: ChurnConfig {
                feature_mutation_rate: mutation,
                edge_rewire_rate: rewire,
                vertex_churn_rate: 0.005,
                mutation_smoothness: 0.5,
            },
            seed,
            feature_row_sparsity: 0.0,
            burst: None,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_concurrent_engine_equals_reference(cfg in graph_strategy(), window in 1usize..5) {
        let g = cfg.generate();
        let model = DgnnModel::new(ModelKind::TGcn, g.feature_dim(), 5, cfg.seed);
        let reference = ReferenceEngine::new(model.clone()).run(&g);
        let concurrent =
            ConcurrentEngine::with_options(model, SkipConfig::disabled(), window, ReuseMode::Exact)
                .run(&g);
        let diff = reference.max_final_feature_diff(&concurrent);
        prop_assert!(diff < 1e-4, "K={window}: diff {diff}");
    }

    #[test]
    fn lossless_delta_band_equals_reference(cfg in graph_strategy()) {
        let g = cfg.generate();
        let model = DgnnModel::new(ModelKind::GcLstm, g.feature_dim(), 4, cfg.seed);
        let reference = ReferenceEngine::new(model.clone()).run(&g);
        // theta_s = -1, theta_e = 1: everything scored lands in the Delta
        // band, which is exact at zero tolerance.
        let delta_engine = ConcurrentEngine::with_options(
            model,
            SkipConfig::with_thresholds(-1.0, 1.0),
            3,
            ReuseMode::Exact,
        )
        .run(&g);
        let diff = reference.max_final_feature_diff(&delta_engine);
        prop_assert!(diff < 1e-3, "diff {diff}");
    }

    #[test]
    fn touch_conservation_between_engines(cfg in graph_strategy(), window in 1usize..5) {
        // Every engine touches the same set of (vertex, layer, snapshot)
        // rows; the concurrent engine merely splits them into loads and
        // reuses. Conservation: loaded + reused == reference loaded.
        let g = cfg.generate();
        let model = DgnnModel::new(ModelKind::TGcn, g.feature_dim(), 5, cfg.seed);
        let reference = ReferenceEngine::new(model.clone()).run(&g);
        for mode in [ReuseMode::Exact, ReuseMode::PaperWindow] {
            let concurrent =
                ConcurrentEngine::with_options(model.clone(), SkipConfig::disabled(), window, mode)
                    .run(&g);
            let touches =
                concurrent.stats.feature_rows_loaded + concurrent.stats.feature_rows_reused;
            prop_assert_eq!(
                touches,
                reference.stats.feature_rows_loaded,
                "{:?} K={} touch conservation", mode, window
            );
        }
    }

    #[test]
    fn skip_tallies_cover_every_active_vertex(cfg in graph_strategy(), window in 1usize..4) {
        let g = cfg.generate();
        let model = DgnnModel::new(ModelKind::CdGcn, g.feature_dim(), 4, cfg.seed);
        let out = ConcurrentEngine::with_options(
            model,
            SkipConfig::paper_default(),
            window,
            ReuseMode::Exact,
        )
        .run(&g);
        let expected: u64 = g.snapshots().iter().map(|s| s.num_active() as u64).sum();
        prop_assert_eq!(out.stats.skip.total(), expected);
    }

    #[test]
    fn delta_patch_equals_full_matvec(
        x0 in proptest::collection::vec(-2.0f32..2.0, 6),
        x1 in proptest::collection::vec(-2.0f32..2.0, 6),
        seed in 0u64..500,
    ) {
        use tagnn_models::rnn::{RnnCell, RnnKind};
        let cell = RnnCell::new(RnnKind::Gru, 6, 4, seed);
        let mut pre = cell.input_preactivation(&x0);
        let d = CondensedDelta::from_dense(&delta(&x0, &x1), 0.0);
        cell.patch_preactivation(&mut pre, &d);
        let direct = cell.input_preactivation(&x1);
        for (a, b) in pre.iter().zip(&direct) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn skip_mode_is_monotone_for_any_valid_thresholds(
        ts in -1.0f32..1.0,
        width in 0.0f32..1.0,
    ) {
        let te = (ts + width).min(1.0);
        let cfg = SkipConfig::with_thresholds(ts, te);
        let rank = |m: CellMode| match m {
            CellMode::Normal => 0,
            CellMode::Delta => 1,
            CellMode::Skip => 2,
        };
        let mut prev = 0;
        for i in 0..=20 {
            let theta = -1.0 + i as f32 * 0.1;
            let r = rank(cfg.select(theta));
            prop_assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn final_features_are_always_bounded(cfg in graph_strategy()) {
        // LSTM/GRU hidden states live in [-1, 1] regardless of skipping.
        let g = cfg.generate();
        let model = DgnnModel::new(ModelKind::GcLstm, g.feature_dim(), 4, cfg.seed);
        let out = ConcurrentEngine::with_window(model, SkipConfig::paper_default(), 3).run(&g);
        for h in &out.final_features {
            for &v in h.as_slice() {
                prop_assert!(v.abs() <= 1.0 + 1e-6);
            }
        }
    }
}
