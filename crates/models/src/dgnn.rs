//! The three evaluated DGNN models: CD-GCN, GC-LSTM, and T-GCN.
//!
//! Each model is a stack of GCN layers (the GNN module) feeding a recurrent
//! cell (the RNN module), per the composition of Fig. 1. Layer counts follow
//! the paper's §5.1 configuration: four for CD-GCN, three for GC-LSTM, two
//! for T-GCN.

use crate::gcn::GcnLayer;
use crate::rnn::{RnnCell, RnnKind};
use serde::{Deserialize, Serialize};
use tagnn_tensor::Activation;

/// The evaluated model families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// CD-GCN (Manessi et al.): 4 GCN layers + LSTM.
    CdGcn,
    /// GC-LSTM (Chen et al.): 3 GCN layers + LSTM.
    GcLstm,
    /// T-GCN (Zhao et al.): 2 GCN layers + GRU.
    TGcn,
}

impl ModelKind {
    /// All three models in the paper's presentation order.
    pub const ALL: [ModelKind; 3] = [ModelKind::CdGcn, ModelKind::GcLstm, ModelKind::TGcn];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::CdGcn => "CD-GCN",
            ModelKind::GcLstm => "GC-LSTM",
            ModelKind::TGcn => "T-GCN",
        }
    }

    /// Number of GCN layers (§5.1).
    pub fn num_gcn_layers(self) -> usize {
        match self {
            ModelKind::CdGcn => 4,
            ModelKind::GcLstm => 3,
            ModelKind::TGcn => 2,
        }
    }

    /// Recurrent cell family.
    pub fn rnn_kind(self) -> RnnKind {
        match self {
            ModelKind::CdGcn | ModelKind::GcLstm => RnnKind::Lstm,
            ModelKind::TGcn => RnnKind::Gru,
        }
    }
}

/// A concrete DGNN: GCN stack + recurrent cell, with deterministic weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DgnnModel {
    kind: ModelKind,
    layers: Vec<GcnLayer>,
    cell: RnnCell,
}

impl DgnnModel {
    /// Builds a model: the first GCN layer maps `feature_dim -> hidden`,
    /// the remaining layers are `hidden -> hidden`, and the cell consumes
    /// the GNN output.
    pub fn new(kind: ModelKind, feature_dim: usize, hidden: usize, seed: u64) -> Self {
        assert!(feature_dim > 0 && hidden > 0, "dimensions must be positive");
        let mut layers = Vec::with_capacity(kind.num_gcn_layers());
        for l in 0..kind.num_gcn_layers() {
            let in_dim = if l == 0 { feature_dim } else { hidden };
            // Hidden layers use ReLU; the last layer stays linear so the
            // RNN sees unsquashed features.
            let act = if l + 1 == kind.num_gcn_layers() {
                Activation::Identity
            } else {
                Activation::Relu
            };
            layers.push(GcnLayer::new(
                in_dim,
                hidden,
                act,
                seed.wrapping_add(l as u64),
            ));
        }
        let cell = RnnCell::new(kind.rnn_kind(), hidden, hidden, seed.wrapping_add(1000));
        Self { kind, layers, cell }
    }

    /// Model family.
    #[inline]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The GCN stack.
    #[inline]
    pub fn layers(&self) -> &[GcnLayer] {
        &self.layers
    }

    /// The recurrent cell.
    #[inline]
    pub fn cell(&self) -> &RnnCell {
        &self.cell
    }

    /// Hidden (= GNN output = final feature) dimensionality.
    #[inline]
    pub fn hidden(&self) -> usize {
        self.cell.hidden()
    }

    /// Input feature dimensionality.
    #[inline]
    pub fn feature_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Widest per-vertex row any GCN layer reads or writes — the sizing
    /// bound for per-layer scratch tables.
    #[inline]
    pub fn max_layer_dim(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.in_dim().max(l.out_dim()))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts_match_paper() {
        assert_eq!(ModelKind::CdGcn.num_gcn_layers(), 4);
        assert_eq!(ModelKind::GcLstm.num_gcn_layers(), 3);
        assert_eq!(ModelKind::TGcn.num_gcn_layers(), 2);
    }

    #[test]
    fn cell_kinds_match_paper() {
        assert_eq!(ModelKind::CdGcn.rnn_kind(), RnnKind::Lstm);
        assert_eq!(ModelKind::GcLstm.rnn_kind(), RnnKind::Lstm);
        assert_eq!(ModelKind::TGcn.rnn_kind(), RnnKind::Gru);
    }

    #[test]
    fn model_dimensions_chain() {
        let m = DgnnModel::new(ModelKind::TGcn, 12, 8, 5);
        assert_eq!(m.feature_dim(), 12);
        assert_eq!(m.layers().len(), 2);
        assert_eq!(m.layers()[0].in_dim(), 12);
        assert_eq!(m.layers()[0].out_dim(), 8);
        assert_eq!(m.layers()[1].in_dim(), 8);
        assert_eq!(m.hidden(), 8);
        assert_eq!(m.cell().in_dim(), 8);
    }

    #[test]
    fn construction_is_deterministic() {
        let a = DgnnModel::new(ModelKind::CdGcn, 6, 4, 7);
        let b = DgnnModel::new(ModelKind::CdGcn, 6, 4, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn names_are_paper_names() {
        let names: Vec<_> = ModelKind::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["CD-GCN", "GC-LSTM", "T-GCN"]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dims() {
        let _ = DgnnModel::new(ModelKind::TGcn, 0, 4, 1);
    }
}
