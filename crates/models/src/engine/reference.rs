//! The reference engine: classical snapshot-by-snapshot DGNN inference.
//!
//! Every baseline system in the paper (DGL, PyGT, CacheG, ESDG, PiPAD and
//! the prior accelerators) executes this pattern: each snapshot runs the
//! full GNN over all vertices, then the RNN updates every vertex's cell.
//! Nothing is reused across snapshots, which is precisely the redundancy
//! TaGNN removes — making this engine both the ground truth for accuracy
//! and the cost baseline for the simulator.

use crate::dgnn::DgnnModel;
use crate::engine::{plan_layer_choices, ExecutionStats, InferenceOutput};
use crate::gcn;
use crate::rnn::VertexState;
use rayon::prelude::*;
use tagnn_graph::types::VertexId;
use tagnn_graph::{DynamicGraph, Snapshot};
use tagnn_obs::{span as obs_span, Recorder};
use tagnn_tensor::dispatch::{DispatchMode, Dispatcher, Kernel, LayerChoice};
use tagnn_tensor::{DenseMatrix, Scratch};

/// Snapshot-by-snapshot exact inference.
#[derive(Debug, Clone)]
pub struct ReferenceEngine {
    model: DgnnModel,
    dispatch: Dispatcher,
}

impl ReferenceEngine {
    /// Wraps a model, with sparsity-adaptive kernel dispatch in its
    /// default (auto) mode.
    pub fn new(model: DgnnModel) -> Self {
        Self::with_dispatch(model, DispatchMode::default())
    }

    /// Wraps a model with an explicit dispatch mode
    /// ([`DispatchMode::Dense`] reproduces the pre-dispatch engine).
    pub fn with_dispatch(model: DgnnModel, mode: DispatchMode) -> Self {
        Self::with_dispatcher(model, Dispatcher::new(mode))
    }

    /// Wraps a model with a fully explicit dispatch policy — mode *and*
    /// cost model (tests and benches pin coefficients this way instead
    /// of depending on probe timing).
    pub fn with_dispatcher(model: DgnnModel, dispatch: Dispatcher) -> Self {
        Self { model, dispatch }
    }

    /// The wrapped model.
    pub fn model(&self) -> &DgnnModel {
        &self.model
    }

    /// The kernel-dispatch policy this engine runs.
    pub fn dispatcher(&self) -> &Dispatcher {
        &self.dispatch
    }

    /// Runs inference over every snapshot of `graph`.
    pub fn run(&self, graph: &DynamicGraph) -> InferenceOutput {
        self.run_traced(graph, None)
    }

    /// [`Self::run`] with an optional recorder: each snapshot opens
    /// `gnn_snapshot` and `rnn` phase spans, and the final stats are
    /// published as `engine.reference.*` counters. With `None` this is
    /// exactly `run`.
    pub fn run_traced(&self, graph: &DynamicGraph, rec: Option<&Recorder>) -> InferenceOutput {
        let mut scratch = Scratch::new();
        self.run_traced_scratch(graph, rec, &mut scratch)
    }

    /// [`Self::run_traced`] with a caller-provided scratch arena, so
    /// repeated runs (pipelines, benches) reuse one set of workspaces.
    /// After warm-up reservation the per-snapshot loop performs no heap
    /// allocation beyond the deliverable output matrices.
    pub fn run_traced_scratch(
        &self,
        graph: &DynamicGraph,
        rec: Option<&Recorder>,
        scratch: &mut Scratch,
    ) -> InferenceOutput {
        let started = std::time::Instant::now();
        let n = graph.num_vertices();
        let hidden = self.model.hidden();
        let cell = self.model.cell();
        let gh = cell.kind().gates() * hidden;
        let in_dim = cell.in_dim();
        let mut stats = ExecutionStats::default();
        let mut states: Vec<VertexState> = (0..n).map(|_| cell.zero_state()).collect();
        let mut final_features = Vec::with_capacity(graph.num_snapshots());
        let mut gnn_outputs = Vec::with_capacity(graph.num_snapshots());

        // Warm-up: reserve every workspace at its maximum size so the
        // per-snapshot loop below never allocates.
        let max_dim = self.model.max_layer_dim();
        scratch.degp1.reserve(n);
        scratch.agg.reserve(n * max_dim);
        scratch.layer_a.reserve(n * max_dim);
        scratch.layer_b.reserve(n * max_dim);
        scratch.batch_pos.reserve(n);
        scratch.x_batch.reserve(n * in_dim);
        scratch.h_batch.reserve(n * hidden);
        scratch.x_pre.reserve(n * gh);
        scratch.h_pre.reserve(n * gh);
        scratch.nz_rows.reserve(n);
        scratch.mark_steady();

        // Association plan, pinned per run from the first snapshot —
        // shared logic with the concurrent engine so Exact-mode runs
        // stay bit-identical (see `plan_layer_choices`).
        let choices: Vec<LayerChoice> = match graph.snapshots().first() {
            Some(snap0) => plan_layer_choices(&self.dispatch, &self.model, snap0),
            None => Vec::new(),
        };

        for snap in graph.snapshots() {
            // GNN module: full multi-layer forward over every vertex.
            let z = {
                let _span = obs_span(rec, "gnn_snapshot");
                self.gnn_forward(snap, &choices, &mut stats, scratch)
            };

            // RNN module: full cell update per active vertex, batched —
            // gather active rows, two GEMMs for both gate
            // pre-activations, scatter back through the position map.
            let _span = obs_span(rec, "rnn");
            let pos = scratch.batch_pos.take_uninit(n);
            let mut batch = 0usize;
            for (v, p) in pos.iter_mut().enumerate() {
                if snap.is_active(v as VertexId) {
                    *p = batch as u32;
                    batch += 1;
                } else {
                    *p = u32::MAX;
                }
            }
            let x_batch = scratch.x_batch.take_uninit(batch * in_dim);
            let h_batch = scratch.h_batch.take_uninit(batch * hidden);
            for v in 0..n {
                if pos[v] != u32::MAX {
                    let p = pos[v] as usize;
                    x_batch[p * in_dim..][..in_dim].copy_from_slice(z.row(v));
                    h_batch[p * hidden..][..hidden].copy_from_slice(&states[v].h);
                }
            }
            let x_pre = scratch.x_pre.take_uninit(batch * gh);
            let h_pre = scratch.h_pre.take_uninit(batch * gh);
            cell.batch_preactivations(batch, x_batch, h_batch, x_pre, h_pre);
            let (pos, x_pre, h_pre) = (&*pos, &*x_pre, &*h_pre);
            states.par_iter_mut().enumerate().for_each(|(v, state)| {
                if pos[v] != u32::MAX {
                    let p = pos[v] as usize;
                    state.x_pre.copy_from_slice(&x_pre[p * gh..(p + 1) * gh]);
                    let VertexState { h, c, x_pre } = state;
                    cell.apply_gates(x_pre, &h_pre[p * gh..(p + 1) * gh], h, c);
                }
            });
            let active = snap.num_active() as u64;
            stats.rnn_macs += active * cell.full_step_macs();
            stats.skip.normal += active;

            let mut h = DenseMatrix::zeros(n, hidden);
            for (v, state) in states.iter().enumerate() {
                h.set_row(v, &state.h);
            }
            final_features.push(h);
            gnn_outputs.push(z);
        }

        scratch.debug_assert_steady();
        stats.wall_ns = started.elapsed().as_nanos() as u64;
        if let Some(rec) = rec {
            stats.publish(rec, "engine.reference");
        }
        InferenceOutput {
            final_features,
            gnn_outputs,
            stats,
        }
    }

    /// Full GNN forward for one snapshot, with load/MAC accounting.
    ///
    /// Runs the fused [`crate::gcn::GcnLayer::forward_planned_into`]
    /// per layer under the run's pinned association plan `choices`,
    /// ping-ponging intermediate tables between two scratch buffers;
    /// only the final layer writes a deliverable matrix. The kernel for
    /// the layer-0 GEMM factor is re-dispatched per snapshot from an
    /// exact re-scan of the feature rows (the reference engine is the
    /// oracle: the scan is a vanishing fraction of the GEMM it informs,
    /// and an exact row list is what keeps the SpMM bit-identical).
    pub(crate) fn gnn_forward(
        &self,
        snap: &Snapshot,
        choices: &[LayerChoice],
        stats: &mut ExecutionStats,
        scratch: &mut Scratch,
    ) -> DenseMatrix {
        let n = snap.num_vertices();
        let layers = self.model.layers();
        let max_dim = self.model.max_layer_dim();
        let degp1 = scratch.degp1.take_uninit(n);
        gcn::fill_degp1(snap, degp1);

        // Density measurement for the only potentially sparse operand
        // (layer-0 features): exact nonzero-row list, rebuilt per
        // snapshot so it can never go stale.
        let auto = self.dispatch.mode() == DispatchMode::Auto;
        let nz_buf = scratch.nz_rows.take_uninit(n);
        let mut nz0 = 0usize;
        if auto {
            for v in 0..n {
                if snap.features().row(v).iter().any(|&x| x != 0.0) {
                    nz_buf[nz0] = v as u32;
                    nz0 += 1;
                }
            }
            stats.dispatch_nz_rows += nz0 as u64;
            stats.dispatch_rows_seen += n as u64;
        }
        // Ping-pong pair for intermediate layer tables: `cur` holds the
        // running input (layer 0 reads the snapshot features directly),
        // `next` receives the output, then the two swap.
        let mut cur = scratch.layer_a.take_uninit(n * max_dim);
        let mut next = scratch.layer_b.take_uninit(n * max_dim);
        let work = &mut scratch.agg;
        let last_dim = layers.last().map_or(0, |l| l.out_dim());
        let mut z = DenseMatrix::zeros(n, last_dim);
        for (i, layer) in layers.iter().enumerate() {
            // Accounting first (analytic; the forward itself is parallel).
            let mut agg_macs = 0u64;
            let mut loads = 0u64;
            let mut structure = 0u64;
            for v in 0..snap.num_vertices() as VertexId {
                if !snap.is_active(v) {
                    continue;
                }
                let deg = snap.csr().degree(v) as u64;
                agg_macs += (deg + 1) * layer.in_dim() as u64;
                loads += deg + 1;
                structure += 2 + deg;
            }
            let active = snap.num_active() as u64;
            stats.gnn_aggregate_macs += agg_macs;
            stats.gnn_combine_macs += active * (layer.in_dim() * layer.out_dim()) as u64;
            stats.feature_rows_loaded += loads;
            stats.structure_words_loaded += structure;
            stats.gnn_vertices_computed += active;

            let (in_len, out_len) = (n * layer.in_dim(), n * layer.out_dim());
            let input: &[f32] = if i == 0 {
                snap.features().as_slice()
            } else {
                &cur[..in_len]
            };

            // Association is pinned per run; the kernel of the GEMM
            // factor is bit-free, so it re-dispatches per snapshot.
            // Only layer 0 can be sparse — aggregation and activation
            // densify every later layer's input.
            let assoc = choices
                .get(i)
                .copied()
                .unwrap_or_else(|| layer.legacy_choice());
            let (kernel, rows): (Kernel, Option<&[u32]>) =
                if assoc.transform_first && i == 0 && auto {
                    let gc = self
                        .dispatch
                        .choose_gemm(n, layer.in_dim(), layer.out_dim(), nz0);
                    let rows = (gc.kernel == Kernel::Spmm).then_some(&nz_buf[..nz0]);
                    (gc.kernel, rows)
                } else {
                    (Kernel::Dense, None)
                };
            stats.dispatch.count(kernel);
            let exec = LayerChoice { kernel, ..assoc };

            if i + 1 == layers.len() {
                layer.forward_planned_into(snap, input, degp1, work, rows, &exec, z.as_mut_slice());
            } else {
                layer.forward_planned_into(
                    snap,
                    input,
                    degp1,
                    work,
                    rows,
                    &exec,
                    &mut next[..out_len],
                );
                std::mem::swap(&mut cur, &mut next);
            }
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dgnn::ModelKind;
    use tagnn_graph::generate::GeneratorConfig;

    fn tiny_graph() -> DynamicGraph {
        GeneratorConfig::tiny().generate()
    }

    fn model(kind: ModelKind) -> DgnnModel {
        DgnnModel::new(kind, 8, 6, 123)
    }

    #[test]
    fn produces_one_output_per_snapshot() {
        let g = tiny_graph();
        let out = ReferenceEngine::new(model(ModelKind::TGcn)).run(&g);
        assert_eq!(out.final_features.len(), g.num_snapshots());
        assert_eq!(out.gnn_outputs.len(), g.num_snapshots());
        assert_eq!(out.final_features[0].rows(), g.num_vertices());
        assert_eq!(out.final_features[0].cols(), 6);
    }

    #[test]
    fn is_deterministic() {
        let g = tiny_graph();
        let e = ReferenceEngine::new(model(ModelKind::GcLstm));
        let a = e.run(&g);
        let b = e.run(&g);
        assert_eq!(a.final_features, b.final_features);
    }

    #[test]
    fn hidden_state_evolves_across_snapshots() {
        let g = tiny_graph();
        let out = ReferenceEngine::new(model(ModelKind::CdGcn)).run(&g);
        assert_ne!(
            out.final_features[0], out.final_features[1],
            "recurrent state must change between snapshots"
        );
    }

    #[test]
    fn counts_work_proportional_to_snapshots() {
        let g = tiny_graph();
        let e = ReferenceEngine::new(model(ModelKind::TGcn));
        let out = e.run(&g);
        let s = &out.stats;
        assert!(s.gnn_aggregate_macs > 0);
        assert!(s.gnn_combine_macs > 0);
        assert!(s.rnn_macs > 0);
        assert_eq!(s.feature_rows_reused, 0, "reference engine never reuses");
        assert_eq!(s.skip.skipped, 0);
        // Every active vertex does a full cell update per snapshot.
        let expected_updates: u64 = g.snapshots().iter().map(|s| s.num_active() as u64).sum();
        assert_eq!(s.skip.normal, expected_updates);
    }

    #[test]
    fn final_features_are_bounded_for_lstm() {
        let g = tiny_graph();
        let out = ReferenceEngine::new(model(ModelKind::GcLstm)).run(&g);
        for h in &out.final_features {
            assert!(h.as_slice().iter().all(|v| v.abs() <= 1.0));
        }
    }
}
