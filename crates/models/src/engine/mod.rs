//! Inference engines and their shared execution accounting.
//!
//! Both engines report an [`ExecutionStats`] describing *what work was
//! done*: GNN/RNN multiply-accumulates, feature-row fetches vs. reuses, and
//! cell-skipping tallies. The accelerator simulator (`tagnn-sim`) and the
//! baseline platform models consume these counters, so both engines follow
//! one counting convention:
//!
//! * `feature_rows_loaded` — feature-table rows fetched from backing memory
//!   as GNN layer inputs. The reference engine fetches `1 + deg(v)` rows per
//!   active vertex per layer per snapshot; the concurrent engine fetches
//!   them once per window for vertices whose layer inputs did not change.
//! * `feature_rows_reused` — fetches the concurrent execution avoided.
//! * `gnn_*_macs` — multiply-accumulates actually executed (reused vertices
//!   contribute none).
//! * `rnn_macs` — full cell updates cost `full_step_macs()`, delta updates
//!   `delta_step_macs(nnz)`, skips zero.

pub mod concurrent;
pub mod reference;

use crate::dgnn::DgnnModel;
use crate::skip::SkipStats;
use serde::{Deserialize, Serialize};
use tagnn_graph::Snapshot;
use tagnn_tensor::dispatch::{DispatchTally, Dispatcher, LayerChoice};
use tagnn_tensor::DenseMatrix;

/// Bytes-moved / flops tally for one pipeline stage (the roofline axes).
///
/// Conventions: every floating-point word is 4 bytes, every MAC is two
/// flops. The per-stage models are deliberately simple, deterministic
/// functions of the work counters and the plan structure — the same
/// quantities the integration suite recomputes from `SkipStats` plus the
/// plan — so traced and untraced, sequential and pipelined runs always
/// agree bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageRoofline {
    /// Bytes the stage moved (reads + writes under the stage's traffic
    /// model).
    pub bytes: u64,
    /// Floating-point operations the stage executed (2 × its MACs).
    pub flops: u64,
}

impl StageRoofline {
    /// Arithmetic intensity in flops per byte (0.0 when nothing moved).
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }

    fn delta_since(&self, earlier: &StageRoofline) -> StageRoofline {
        StageRoofline {
            bytes: self.bytes - earlier.bytes,
            flops: self.flops - earlier.flops,
        }
    }

    fn merge(&mut self, other: &StageRoofline) {
        self.bytes += other.bytes;
        self.flops += other.flops;
    }
}

/// Per-stage roofline accounting for one run, mirroring the simulator's
/// DRAM-vs-compute verdict axes in software. Published as
/// `roofline.<stage>.{bytes,flops}` counters; `tagnn-obs` derives the
/// arithmetic-intensity verdict (memory- vs compute-bound) from them.
///
/// Stage traffic models (`D` = feature dim, `H` = hidden dim, `I` = RNN
/// input dim; one word = 4 bytes, one MAC = 2 flops):
///
/// * **plan_build** — classify reads two structure words per classified
///   vertex, extract + O-CSR pack touch two words per subgraph vertex
///   and two per subgraph edge; no arithmetic:
///   `bytes = 4·(2·classified + 2·sub_vertices + 2·sub_edges)`,
///   `flops = 0` (the MSDL frontend is pure data movement).
/// * **gnn** — `flops = 2·(aggregate_macs + combine_macs)`; `bytes =
///   4·(feature_rows_loaded·D + structure_words_loaded +
///   gnn_vertices_computed·H)` (input rows + adjacency + output rows).
/// * **rnn** — `flops = 2·rnn_macs`; `bytes = 4·(normal_cells·(I +
///   2H) + delta_cells·2H)` (full cells stream their input row and
///   read/write their state; delta cells touch state only — their
///   condensed inputs are charged to the delta stage).
/// * **delta** — the SCU similarity scan plus delta condensation:
///   `flops = 2·similarity_ops`, `bytes = 4·similarity_ops` (each
///   charged op streams one operand word through one multiply-add).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RooflineStats {
    /// MSDL frontend: classification, subgraph extraction, O-CSR pack.
    pub plan_build: StageRoofline,
    /// GCN transform/aggregate work.
    pub gnn: StageRoofline,
    /// RNN gate work (full + delta cell updates).
    pub rnn: StageRoofline,
    /// Similarity scoring and delta condensation.
    pub delta: StageRoofline,
}

impl RooflineStats {
    /// Field-wise difference (`earlier` must be an earlier sample).
    pub fn delta_since(&self, earlier: &RooflineStats) -> RooflineStats {
        RooflineStats {
            plan_build: self.plan_build.delta_since(&earlier.plan_build),
            gnn: self.gnn.delta_since(&earlier.gnn),
            rnn: self.rnn.delta_since(&earlier.rnn),
            delta: self.delta.delta_since(&earlier.delta),
        }
    }

    /// Field-wise accumulation.
    pub fn merge(&mut self, other: &RooflineStats) {
        self.plan_build.merge(&other.plan_build);
        self.gnn.merge(&other.gnn);
        self.rnn.merge(&other.rnn);
        self.delta.merge(&other.delta);
    }
}

/// Work and traffic accounting for one inference run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionStats {
    /// MACs spent in GNN aggregation (edge traversals x feature dim).
    pub gnn_aggregate_macs: u64,
    /// MACs spent in GNN combination (dense matmuls).
    pub gnn_combine_macs: u64,
    /// MACs spent in RNN cell updates (full + delta).
    pub rnn_macs: u64,
    /// Scalar ops spent computing similarity scores.
    pub similarity_ops: u64,
    /// Feature rows fetched from backing memory.
    pub feature_rows_loaded: u64,
    /// Feature-row fetches avoided through cross-snapshot reuse.
    pub feature_rows_reused: u64,
    /// Structure words (offsets + neighbour ids) fetched.
    pub structure_words_loaded: u64,
    /// Per-vertex GNN layer evaluations executed.
    pub gnn_vertices_computed: u64,
    /// Per-vertex GNN layer evaluations reused from an earlier snapshot.
    pub gnn_vertices_reused: u64,
    /// Feature-row fetches the unaffected region avoided by travelling
    /// once per window instead of once per snapshot (one per unaffected
    /// vertex per non-first snapshot of its window).
    pub unaffected_row_hoists: u64,
    /// Cell-update mode tallies.
    pub skip: SkipStats,
    /// Kernel-dispatch outcome tallies: one count per GEMM-factor
    /// decision (dense tiled GEMM vs row-sparse SpMM) plus one per RNN
    /// cell routed through the condensed-delta zero-skip path.
    #[serde(default)]
    pub dispatch: DispatchTally,
    /// Sum of measured nonzero-row counts over every density-measured
    /// GEMM LHS operand (numerator of the run's mean input density).
    #[serde(default)]
    pub dispatch_nz_rows: u64,
    /// Sum of total row counts over the same operands (denominator).
    #[serde(default)]
    pub dispatch_rows_seen: u64,
    /// Per-stage bytes-moved / flops roofline accounting (see
    /// [`RooflineStats`] for the stage traffic models).
    #[serde(default)]
    pub roofline: RooflineStats,
    /// Wall-clock time of the run, nanoseconds.
    pub wall_ns: u64,
}

impl ExecutionStats {
    /// Total MACs across all modules.
    pub fn total_macs(&self) -> u64 {
        self.gnn_aggregate_macs + self.gnn_combine_macs + self.rnn_macs
    }

    /// Fraction of feature-row fetches that were avoided, in `[0, 1]`
    /// (the redundancy-reduction metric behind Fig. 2(c)/8(b)).
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.feature_rows_loaded + self.feature_rows_reused;
        if total == 0 {
            0.0
        } else {
            self.feature_rows_reused as f64 / total as f64
        }
    }

    /// Mean measured LHS row density across dispatch decisions, in
    /// `[0, 1]` (1.0 when nothing was measured — dense by assumption).
    pub fn dispatch_density(&self) -> f64 {
        if self.dispatch_rows_seen == 0 {
            1.0
        } else {
            self.dispatch_nz_rows as f64 / self.dispatch_rows_seen as f64
        }
    }

    /// Every counter as a `(name, value)` list — the *single*
    /// enumeration both [`Self::publish`] and the experiments summary
    /// table consume, so a counter added to this struct can never
    /// silently vanish from a report by being missing from a hand-kept
    /// list.
    pub fn named_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("gnn_aggregate_macs", self.gnn_aggregate_macs),
            ("gnn_combine_macs", self.gnn_combine_macs),
            ("rnn_macs", self.rnn_macs),
            ("similarity_ops", self.similarity_ops),
            ("feature_rows_loaded", self.feature_rows_loaded),
            ("feature_rows_reused", self.feature_rows_reused),
            ("structure_words_loaded", self.structure_words_loaded),
            ("gnn_vertices_computed", self.gnn_vertices_computed),
            ("gnn_vertices_reused", self.gnn_vertices_reused),
            ("unaffected_row_hoists", self.unaffected_row_hoists),
            ("skip.normal", self.skip.normal),
            ("skip.delta", self.skip.delta),
            ("skip.skipped", self.skip.skipped),
            ("kernel.dispatch.dense", self.dispatch.dense),
            ("kernel.dispatch.spmm", self.dispatch.spmm),
            ("kernel.dispatch.delta_skip", self.dispatch.delta_skip),
            ("kernel.dispatch.nz_rows", self.dispatch_nz_rows),
            ("kernel.dispatch.rows_seen", self.dispatch_rows_seen),
            ("roofline.plan_build.bytes", self.roofline.plan_build.bytes),
            ("roofline.plan_build.flops", self.roofline.plan_build.flops),
            ("roofline.gnn.bytes", self.roofline.gnn.bytes),
            ("roofline.gnn.flops", self.roofline.gnn.flops),
            ("roofline.rnn.bytes", self.roofline.rnn.bytes),
            ("roofline.rnn.flops", self.roofline.rnn.flops),
            ("roofline.delta.bytes", self.roofline.delta.bytes),
            ("roofline.delta.flops", self.roofline.delta.flops),
            ("wall_ns", self.wall_ns),
        ]
    }

    /// Publishes every counter as `{prefix}.{field}` on `rec` (the
    /// tagnn-obs publication convention: work counters become recorder
    /// counters, ratios stay derivable downstream), plus the measured
    /// mean input density as a `{prefix}.kernel.input_density` gauge.
    pub fn publish(&self, rec: &tagnn_obs::Recorder, prefix: &str) {
        for (name, v) in self.named_counters() {
            rec.incr(&format!("{prefix}.{name}"), v);
        }
        rec.gauge(
            &format!("{prefix}.kernel.input_density"),
            self.dispatch_density(),
        );
    }

    /// Counters accumulated since `earlier` was sampled (field-wise
    /// difference; `earlier` must be an earlier sample of this same
    /// accumulation).
    pub fn delta_since(&self, earlier: &ExecutionStats) -> ExecutionStats {
        ExecutionStats {
            gnn_aggregate_macs: self.gnn_aggregate_macs - earlier.gnn_aggregate_macs,
            gnn_combine_macs: self.gnn_combine_macs - earlier.gnn_combine_macs,
            rnn_macs: self.rnn_macs - earlier.rnn_macs,
            similarity_ops: self.similarity_ops - earlier.similarity_ops,
            feature_rows_loaded: self.feature_rows_loaded - earlier.feature_rows_loaded,
            feature_rows_reused: self.feature_rows_reused - earlier.feature_rows_reused,
            structure_words_loaded: self.structure_words_loaded - earlier.structure_words_loaded,
            gnn_vertices_computed: self.gnn_vertices_computed - earlier.gnn_vertices_computed,
            gnn_vertices_reused: self.gnn_vertices_reused - earlier.gnn_vertices_reused,
            unaffected_row_hoists: self.unaffected_row_hoists - earlier.unaffected_row_hoists,
            skip: SkipStats {
                normal: self.skip.normal - earlier.skip.normal,
                delta: self.skip.delta - earlier.skip.delta,
                skipped: self.skip.skipped - earlier.skip.skipped,
            },
            dispatch: self.dispatch.delta_since(&earlier.dispatch),
            dispatch_nz_rows: self.dispatch_nz_rows - earlier.dispatch_nz_rows,
            dispatch_rows_seen: self.dispatch_rows_seen - earlier.dispatch_rows_seen,
            roofline: self.roofline.delta_since(&earlier.roofline),
            wall_ns: self.wall_ns - earlier.wall_ns,
        }
    }

    /// Merges another run's counters into this one.
    pub fn merge(&mut self, other: &ExecutionStats) {
        self.gnn_aggregate_macs += other.gnn_aggregate_macs;
        self.gnn_combine_macs += other.gnn_combine_macs;
        self.rnn_macs += other.rnn_macs;
        self.similarity_ops += other.similarity_ops;
        self.feature_rows_loaded += other.feature_rows_loaded;
        self.feature_rows_reused += other.feature_rows_reused;
        self.structure_words_loaded += other.structure_words_loaded;
        self.gnn_vertices_computed += other.gnn_vertices_computed;
        self.gnn_vertices_reused += other.gnn_vertices_reused;
        self.unaffected_row_hoists += other.unaffected_row_hoists;
        self.skip.merge(&other.skip);
        self.dispatch.merge(&other.dispatch);
        self.dispatch_nz_rows += other.dispatch_nz_rows;
        self.dispatch_rows_seen += other.dispatch_rows_seen;
        self.roofline.merge(&other.roofline);
        self.wall_ns += other.wall_ns;
    }
}

/// The per-run association plan both engines share: one [`LayerChoice`]
/// per GCN layer, pinned from the run's **first** snapshot.
///
/// The factorisation choice (`Â·(X·W)` vs `(Â·X)·W`) reassociates the
/// float product, so it is *not* bit-preserving — it must therefore be
/// made once per run, from inputs every engine sees identically
/// (vertex count, first-snapshot edge count, layer shapes, and the
/// measured nonzero-row count of the first snapshot's features), or
/// the Exact-mode bit-identity between the reference and concurrent
/// engines would silently break. The *kernel* choice (dense GEMM vs
/// SpMM) is bit-free and stays adaptive per window/snapshot.
///
/// Layer 0 is the only density-measured operand: aggregation and
/// activation densify every later layer's input, so layers ≥ 1 are
/// priced fully dense (`nz = n`).
pub(crate) fn plan_layer_choices(
    dispatcher: &Dispatcher,
    model: &DgnnModel,
    snap0: &Snapshot,
) -> Vec<LayerChoice> {
    let n = snap0.num_vertices();
    let edges = snap0.csr().num_edges();
    let nz0 = (0..n)
        .filter(|&v| snap0.features().row(v).iter().any(|&x| x != 0.0))
        .count();
    model
        .layers()
        .iter()
        .enumerate()
        .map(|(l, layer)| {
            let nz = if l == 0 { nz0 } else { n };
            dispatcher.choose_layer(n, edges, layer.in_dim(), layer.out_dim(), nz)
        })
        .collect()
}

/// The result of running DGNN inference over a snapshot sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceOutput {
    /// Final features `H_t` per snapshot (one row per vertex).
    pub final_features: Vec<DenseMatrix>,
    /// GNN-module outputs `Z_t` per snapshot (kept for similarity studies).
    pub gnn_outputs: Vec<DenseMatrix>,
    /// Work/traffic accounting.
    pub stats: ExecutionStats,
}

impl InferenceOutput {
    /// Maximum absolute element-wise difference of final features against
    /// another run (fidelity metric for approximation experiments).
    ///
    /// # Panics
    /// Panics when the two runs cover different snapshot counts or shapes.
    pub fn max_final_feature_diff(&self, other: &InferenceOutput) -> f32 {
        assert_eq!(
            self.final_features.len(),
            other.final_features.len(),
            "snapshot count mismatch"
        );
        self.final_features
            .iter()
            .zip(&other.final_features)
            .map(|(a, b)| a.max_abs_diff(b))
            .fold(0.0f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_ratio_bounds() {
        let mut s = ExecutionStats::default();
        assert_eq!(s.reuse_ratio(), 0.0);
        s.feature_rows_loaded = 25;
        s.feature_rows_reused = 75;
        assert!((s.reuse_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ExecutionStats {
            gnn_aggregate_macs: 1,
            rnn_macs: 2,
            ..Default::default()
        };
        let b = ExecutionStats {
            gnn_aggregate_macs: 10,
            gnn_combine_macs: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.gnn_aggregate_macs, 11);
        assert_eq!(a.gnn_combine_macs, 5);
        assert_eq!(a.total_macs(), 18);
    }

    #[test]
    fn delta_since_inverts_merge() {
        let a = ExecutionStats {
            gnn_aggregate_macs: 5,
            rnn_macs: 7,
            wall_ns: 100,
            ..Default::default()
        };
        let mut cumulative = a;
        let b = ExecutionStats {
            gnn_aggregate_macs: 3,
            gnn_combine_macs: 9,
            wall_ns: 50,
            ..Default::default()
        };
        cumulative.merge(&b);
        assert_eq!(cumulative.delta_since(&a), b);
        assert_eq!(
            cumulative.delta_since(&cumulative),
            ExecutionStats::default()
        );
    }

    #[test]
    fn output_diff_of_identical_runs_is_zero() {
        let m = DenseMatrix::from_vec(1, 2, vec![1.0, 2.0]);
        let out = InferenceOutput {
            final_features: vec![m.clone()],
            gnn_outputs: vec![m.clone()],
            stats: ExecutionStats::default(),
        };
        assert_eq!(out.max_final_feature_diff(&out), 0.0);
    }
}
