//! The topology-aware concurrent engine — TaGNN's execution model in
//! software (called *TaGNN-S* in the paper's evaluation).
//!
//! Snapshots are processed in windows of K (the paper's batches). Per
//! window:
//!
//! 1. vertices are classified (unaffected / stable / affected) and the
//!    affected subgraph is extracted and packed into O-CSR;
//! 2. the GNN runs **once** on the window's first snapshot; for the other
//!    snapshots only vertices whose layer inputs changed are recomputed —
//!    the change set is propagated layer by layer, so multi-layer reuse
//!    stays exact;
//! 3. the RNN applies the similarity-aware cell-skipping strategy: per
//!    vertex, the θ score over consecutive GNN outputs selects a full,
//!    delta (condensed non-zero patch), or skipped cell update.
//!
//! With skipping disabled and a lossless delta tolerance, this engine's
//! outputs are bit-identical to [`crate::ReferenceEngine`] — a property the
//! integration suite checks — while doing strictly less memory traffic.

use crate::dgnn::DgnnModel;
use crate::engine::{plan_layer_choices, ExecutionStats, InferenceOutput};
use crate::gcn;
use crate::rnn::VertexState;
use crate::skip::{CellMode, SkipConfig};
use crate::state::{EngineState, StateError, StatefulModel, VertexStateExport};
use rayon::prelude::*;
use std::sync::Arc;
use tagnn_graph::classify::WindowClassification;
use tagnn_graph::plan::{PlanSource, WindowPlan, WindowPlanner};
use tagnn_graph::stats::neighbor_overlap;
use tagnn_graph::types::{VertexClass, VertexId};
use tagnn_graph::{DynamicGraph, Snapshot};
use tagnn_obs::{span as obs_span, Recorder};
use tagnn_tensor::affinity;
use tagnn_tensor::dispatch::{DispatchMode, Dispatcher, Kernel, LayerChoice};
use tagnn_tensor::kernels;
use tagnn_tensor::similarity::{theta_score, CondensedDelta};
use tagnn_tensor::{ops, DenseMatrix, Scratch, ScratchPair};

/// Per-vertex recurrent context: cell state plus the last input the cached
/// pre-activation corresponds to.
#[derive(Debug, Clone)]
struct VertexCtx {
    state: VertexState,
    last_input: Vec<f32>,
    has_input: bool,
}

// Per-vertex cell outcome codes stored in the scratch arena between the
// decision pass and the update/accounting passes.
const MODE_NONE: u8 = 0;
const MODE_NORMAL: u8 = 1;
const MODE_DELTA: u8 = 2;
const MODE_SKIP: u8 = 3;

/// Cross-snapshot GNN reuse granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseMode {
    /// Bit-exact reuse: change sets are propagated layer by layer, so a
    /// vertex is recomputed whenever *any* input to its layer could differ.
    /// Outputs equal the reference engine's exactly, but in scale-free
    /// graphs the k-hop closure of a change can cover most vertices.
    Exact,
    /// The paper's window-granularity reuse: unaffected vertices (per the
    /// §3.1 window classification) are computed once per layer per window;
    /// the affected subgraph is recomputed per snapshot. For multi-layer
    /// models this treats stable vertices' intermediate features as
    /// unchanged — the approximation underlying TaGNN's traffic savings,
    /// with accuracy impact measured in the Table 5 reproduction.
    PaperWindow,
}

/// The topology-aware concurrent engine (TaGNN-S).
#[derive(Debug, Clone)]
pub struct ConcurrentEngine {
    model: DgnnModel,
    window: usize,
    skip: SkipConfig,
    reuse: ReuseMode,
    dispatch: Dispatcher,
}

impl ConcurrentEngine {
    /// Builds the engine with the paper's defaults: a window of 4 snapshots
    /// and window-granularity reuse.
    pub fn new(model: DgnnModel, skip: SkipConfig) -> Self {
        Self::with_window(model, skip, 4)
    }

    /// Builds the engine with an explicit window size K (paper reuse mode).
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn with_window(model: DgnnModel, skip: SkipConfig, window: usize) -> Self {
        Self::with_options(model, skip, window, ReuseMode::PaperWindow)
    }

    /// Builds the engine with full control over window and reuse mode.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn with_options(
        model: DgnnModel,
        skip: SkipConfig,
        window: usize,
        reuse: ReuseMode,
    ) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            model,
            window,
            skip,
            reuse,
            dispatch: Dispatcher::new(DispatchMode::default()),
        }
    }

    /// Returns this engine with an explicit kernel-dispatch mode
    /// ([`DispatchMode::Dense`] reproduces the pre-dispatch engine —
    /// the serving A/B baseline).
    pub fn with_dispatch_mode(self, mode: DispatchMode) -> Self {
        self.with_dispatcher(Dispatcher::new(mode))
    }

    /// Returns this engine with a fully explicit dispatch policy —
    /// mode *and* cost model (tests and benches pin coefficients this
    /// way instead of depending on probe timing).
    pub fn with_dispatcher(mut self, dispatch: Dispatcher) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// The kernel-dispatch policy this engine runs.
    pub fn dispatcher(&self) -> &Dispatcher {
        &self.dispatch
    }

    /// The reuse mode.
    pub fn reuse_mode(&self) -> ReuseMode {
        self.reuse
    }

    /// The wrapped model.
    pub fn model(&self) -> &DgnnModel {
        &self.model
    }

    /// Window size K.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The skipping configuration.
    pub fn skip_config(&self) -> SkipConfig {
        self.skip
    }

    /// Runs inference over every snapshot of `graph`, planning windows on
    /// the fly. Callers that already hold plans (a pipeline with a shared
    /// [`tagnn_graph::plan::PlanCache`]) should use
    /// [`Self::run_with_plans`] instead.
    pub fn run(&self, graph: &DynamicGraph) -> InferenceOutput {
        self.run_traced(graph, None)
    }

    /// [`Self::run`] with an optional recorder: plans under a `plan` span,
    /// then executes under [`Self::run_with_plans_traced`].
    pub fn run_traced(&self, graph: &DynamicGraph, rec: Option<&Recorder>) -> InferenceOutput {
        let plans = WindowPlanner::new(self.window).plan_graph_traced(graph, rec);
        self.run_with_plans_traced(graph, &plans, rec)
    }

    /// Runs inference over every snapshot of `graph` using prebuilt
    /// window plans (one per `graph.batches(self.window())` window, in
    /// order).
    ///
    /// # Panics
    /// Panics if `plans` does not line up with the graph's windows.
    pub fn run_with_plans(
        &self,
        graph: &DynamicGraph,
        plans: &[Arc<WindowPlan>],
    ) -> InferenceOutput {
        self.run_with_plans_traced(graph, plans, None)
    }

    /// [`Self::run_with_plans`] with an optional recorder. When attached,
    /// every window opens `classify_reuse` / `gnn_window` / `rnn` phase
    /// spans (the GNN span nests `gnn_layer` and `gnn_incremental`
    /// children, the RNN span covers one snapshot each), and the final
    /// [`ExecutionStats`] are published as `engine.concurrent.*`
    /// counters. With `None` the run is byte-identical to the untraced
    /// path.
    ///
    /// # Panics
    /// Panics if `plans` does not line up with the graph's windows.
    pub fn run_with_plans_traced(
        &self,
        graph: &DynamicGraph,
        plans: &[Arc<WindowPlan>],
        rec: Option<&Recorder>,
    ) -> InferenceOutput {
        let mut scratch = Scratch::new();
        self.run_with_plans_scratch(graph, plans, rec, &mut scratch)
    }

    /// [`Self::run_with_plans_traced`] with a caller-provided scratch
    /// arena so repeated runs reuse one set of workspaces. After the
    /// warm-up reservation, the steady-state per-snapshot loop grows no
    /// scratch buffer; the only remaining allocations are per-window
    /// setup (cached layer tables) and the deliverable output matrices.
    ///
    /// # Panics
    /// Panics if `plans` does not line up with the graph's windows.
    pub fn run_with_plans_scratch(
        &self,
        graph: &DynamicGraph,
        plans: &[Arc<WindowPlan>],
        rec: Option<&Recorder>,
        scratch: &mut Scratch,
    ) -> InferenceOutput {
        let started = std::time::Instant::now();
        let n = graph.num_vertices();
        let mut stats = ExecutionStats::default();
        let mut ctxs = self.fresh_ctxs(n);
        let mut final_features = Vec::with_capacity(graph.num_snapshots());
        let mut gnn_outputs: Vec<DenseMatrix> = Vec::with_capacity(graph.num_snapshots());
        self.reserve_scratch(scratch, n);

        assert_eq!(
            plans.len(),
            graph.num_snapshots().div_ceil(self.window),
            "one plan per window expected"
        );
        // Association plan, pinned per run from the first snapshot —
        // the same shared logic (and thus the same decisions) as the
        // reference engine, which is what keeps Exact mode bit-identical
        // (see `plan_layer_choices`). Kernel choices stay per-window.
        let choices: Vec<LayerChoice> = match graph.snapshots().first() {
            Some(snap0) => plan_layer_choices(&self.dispatch, &self.model, snap0),
            None => Vec::new(),
        };
        for (batch, plan) in graph.batches(self.window).zip(plans) {
            let refs: Vec<&Snapshot> = batch.iter().collect();
            self.window_pass(
                &refs,
                plan,
                self.skip,
                &choices,
                &mut ctxs,
                scratch,
                &mut stats,
                rec,
                &mut final_features,
                &mut gnn_outputs,
                None,
            );
        }

        scratch.debug_assert_steady();
        stats.wall_ns = started.elapsed().as_nanos() as u64;
        if let Some(rec) = rec {
            stats.publish(rec, "engine.concurrent");
        }
        InferenceOutput {
            final_features,
            gnn_outputs,
            stats,
        }
    }

    /// Fresh per-vertex recurrent contexts (zero state, no cached input).
    fn fresh_ctxs(&self, n: usize) -> Vec<VertexCtx> {
        let cell = self.model.cell();
        let hidden = self.model.hidden();
        (0..n)
            .map(|_| VertexCtx {
                state: cell.zero_state(),
                last_input: vec![0.0; hidden],
                has_input: false,
            })
            .collect()
    }

    /// Warm-up: reserves every workspace at its maximum size so the
    /// steady-state window loop never grows a scratch buffer, then marks
    /// the arena steady.
    fn reserve_scratch(&self, scratch: &mut Scratch, n: usize) {
        let hidden = self.model.hidden();
        let cell = self.model.cell();
        let gh = cell.kind().gates() * hidden;
        let cell_in = cell.in_dim();
        let max_dim = self
            .model
            .layers()
            .iter()
            .map(|l| l.in_dim().max(l.out_dim()))
            .max()
            .unwrap_or(0);
        scratch.degp1.reserve(n);
        scratch.agg.reserve(n * max_dim);
        scratch.xw.reserve(n * max_dim);
        scratch.layer_a.reserve(n * max_dim);
        scratch.layer_b.reserve(n * max_dim);
        scratch.mask_a.reserve(n);
        scratch.mask_b.reserve(n);
        scratch.mask_changed0.reserve(n);
        scratch.mask_topo.reserve(n);
        scratch.batch_pos.reserve(n);
        scratch.x_batch.reserve(n * cell_in);
        scratch.h_batch.reserve(n * hidden);
        scratch.x_pre.reserve(n * gh);
        scratch.h_pre.reserve(n * gh);
        scratch.cell_mode.reserve(n);
        scratch.cell_nnz.reserve(n);
        scratch.cell_sim.reserve(n);
        scratch.nz_rows.reserve(n);
        scratch.mark_steady();
    }

    /// Executes one window — the classify/GNN/RNN body shared by the
    /// offline batch loop and [`EngineSession`]'s streaming path. Appends
    /// one final-feature and one GNN-output matrix per snapshot and
    /// accumulates work counters into `stats`. Recurrent state threads
    /// through `ctxs`, so consecutive calls over consecutive windows are
    /// bit-identical to one offline run over their concatenation.
    /// `prefetched_nz` carries an already-staged dispatch measurement: a
    /// planner/prefetcher scanned the window's first-snapshot features
    /// into `scratch.nz_rows` ahead of time (the same loop
    /// [`Self::gnn_window`] would run) and reports the nonzero-row
    /// count, so the executor skips the scan but books identical
    /// dispatch counters and makes identical kernel choices.
    #[allow(clippy::too_many_arguments)]
    fn window_pass(
        &self,
        refs: &[&Snapshot],
        plan: &WindowPlan,
        skip_cfg: SkipConfig,
        choices: &[LayerChoice],
        ctxs: &mut [VertexCtx],
        scratch: &mut Scratch,
        stats: &mut ExecutionStats,
        rec: Option<&Recorder>,
        final_features: &mut Vec<DenseMatrix>,
        gnn_outputs: &mut Vec<DenseMatrix>,
        prefetched_nz: Option<usize>,
    ) {
        assert!(!refs.is_empty(), "a window needs at least one snapshot");
        assert_eq!(
            refs[0].num_vertices(),
            ctxs.len(),
            "snapshot universe must match the engine contexts"
        );
        let n = refs[0].num_vertices();
        let hidden = self.model.hidden();
        let cell = self.model.cell();
        let gh = cell.kind().gates() * hidden;
        let cell_in = cell.in_dim();
        // Sampled before any counter moves so the end-of-window roofline
        // fill sees exactly this window's deltas.
        let before = *stats;
        {
            assert_eq!(
                plan.window_len(),
                refs.len(),
                "plan window {} does not match this graph/window-size",
                plan.index()
            );
            let cls = plan.classification();
            // The MSDL path (now precomputed by the planner): the O-CSR
            // footprint is what actually travels off-chip for the
            // recomputed part of the window.
            {
                let _span = obs_span(rec, "classify_reuse");
                let ocsr = plan.ocsr();
                stats.structure_words_loaded +=
                    (2 * ocsr.num_edges() + 2 * ocsr.num_vertices()) as u64;
            }

            // GNN phase with cross-snapshot reuse.
            let zs = {
                let _span = obs_span(rec, "gnn_window");
                self.gnn_window(refs, cls, choices, stats, rec, scratch, prefetched_nz)
            };

            // RNN phase with similarity-aware cell skipping. The first
            // snapshot of every batch runs full cell updates: the paper
            // recalculates similarity scores per batch rather than carrying
            // skip decisions over, precisely to stop error accumulating
            // across prolonged skipping — the refresh bounds a vertex's
            // staleness to K-1 snapshots.
            //
            // Execution is split into a read-only decision pass and an
            // update pass so that every Normal-mode vertex can run through
            // the batched gate GEMMs. A vertex's decision depends only on
            // its own pre-step context, so the split selects exactly the
            // modes the historical single-pass loop did.
            for (i, snap) in refs.iter().enumerate() {
                let _span = obs_span(rec, "rnn");
                let z = &zs[i];
                let prev_pair: Option<(&Snapshot, &DenseMatrix)> =
                    (i > 0).then(|| (refs[i - 1], &zs[i - 1]));

                let cls_ref = cls;

                // Pass 1 (decide): score every vertex, record its mode and
                // similarity-op charge. Reads contexts immutably.
                let cell_mode = scratch.cell_mode.take_uninit(n);
                let cell_sim = scratch.cell_sim.take_uninit(n);
                {
                    let ctxs = &*ctxs;
                    cell_mode
                        .par_iter_mut()
                        .zip(cell_sim.par_iter_mut())
                        .enumerate()
                        .for_each(|(vu, (mode_slot, sim_slot))| {
                            let v = vu as VertexId;
                            *mode_slot = MODE_NONE;
                            *sim_slot = 0;
                            if !snap.is_active(v) {
                                return;
                            }
                            let ctx = &ctxs[vu];
                            let z_cur = z.row(vu);
                            // Similarity scoring (the SCU): needs a previous
                            // snapshot in which the vertex existed. The feature
                            // side compares against the input of the vertex's
                            // *last actual update* (what the cached state being
                            // reused was computed from), so drift cannot
                            // silently accumulate across consecutive skips; the
                            // topology side compares consecutive snapshots.
                            // Similarity op cost: dot + 2 norms over hidden dims
                            // plus the neighbour merge — charged exactly when
                            // the SCU runs, i.e. under the same guard that
                            // selects the mode (a vertex inactive in the
                            // previous snapshot, or without a cached input, is
                            // never scored and must not be billed).
                            let (mode, sim_ops) = match prev_pair {
                                Some((prev_snap, _))
                                    if skip_cfg.enabled
                                        && prev_snap.is_active(v)
                                        && ctx.has_input =>
                                {
                                    let overlap = neighbor_overlap(prev_snap, snap, cls_ref, v);
                                    let theta = theta_score(&ctx.last_input, z_cur, overlap);
                                    (
                                        skip_cfg.select(theta),
                                        (3 * z_cur.len() + snap.csr().degree(v)) as u64,
                                    )
                                }
                                _ => (CellMode::Normal, 0),
                            };
                            *sim_slot = sim_ops;
                            *mode_slot = match mode {
                                CellMode::Normal => MODE_NORMAL,
                                CellMode::Delta => MODE_DELTA,
                                CellMode::Skip => MODE_SKIP,
                            };
                        });
                }

                // Batch every Normal vertex: gather its GNN output row and
                // hidden state, compute both gate pre-activations with two
                // GEMMs instead of one matvec pair per vertex.
                let pos = scratch.batch_pos.take_uninit(n);
                let mut batch = 0usize;
                for vu in 0..n {
                    if cell_mode[vu] == MODE_NORMAL {
                        pos[vu] = batch as u32;
                        batch += 1;
                    } else {
                        pos[vu] = u32::MAX;
                    }
                }
                let x_batch = scratch.x_batch.take_uninit(batch * cell_in);
                let h_batch = scratch.h_batch.take_uninit(batch * hidden);
                for vu in 0..n {
                    if pos[vu] != u32::MAX {
                        let p = pos[vu] as usize;
                        x_batch[p * cell_in..][..cell_in].copy_from_slice(z.row(vu));
                        h_batch[p * hidden..][..hidden].copy_from_slice(&ctxs[vu].state.h);
                    }
                }
                let x_pre = scratch.x_pre.take_uninit(batch * gh);
                let h_pre = scratch.h_pre.take_uninit(batch * gh);
                cell.batch_preactivations(batch, x_batch, h_batch, x_pre, h_pre);

                // Pass 2 (update): Normal vertices scatter their batched
                // pre-activations and apply gates in place; Delta vertices
                // run the condensed-patch path exactly as before; Skip
                // vertices are untouched.
                let cell_nnz = scratch.cell_nnz.take_uninit(n);
                {
                    let (pos, x_pre, h_pre, cell_mode) = (&*pos, &*x_pre, &*h_pre, &*cell_mode);
                    ctxs.par_iter_mut()
                        .zip(cell_nnz.par_iter_mut())
                        .enumerate()
                        .for_each(|(vu, (ctx, nnz_slot))| {
                            *nnz_slot = 0;
                            match cell_mode[vu] {
                                MODE_NORMAL => {
                                    let p = pos[vu] as usize;
                                    let z_cur = z.row(vu);
                                    ctx.state
                                        .x_pre
                                        .copy_from_slice(&x_pre[p * gh..(p + 1) * gh]);
                                    let VertexState { h, c, x_pre } = &mut ctx.state;
                                    cell.apply_gates(x_pre, &h_pre[p * gh..(p + 1) * gh], h, c);
                                    ctx.last_input.copy_from_slice(z_cur);
                                    ctx.has_input = true;
                                }
                                MODE_DELTA => {
                                    let z_cur = z.row(vu);
                                    let dense = ops::sub(z_cur, &ctx.last_input);
                                    let delta = CondensedDelta::from_dense(
                                        &dense,
                                        skip_cfg.delta_tolerance,
                                    );
                                    *nnz_slot = delta.nnz() as u32;
                                    cell.patch_preactivation(&mut ctx.state.x_pre, &delta);
                                    // Track the reconstructed input so lossy
                                    // deltas accumulate like DeltaRNN's.
                                    delta.add_to(&mut ctx.last_input);
                                    cell.step_cached(&mut ctx.state);
                                }
                                _ => {}
                            }
                        });
                }

                for vu in 0..n {
                    stats.similarity_ops += cell_sim[vu];
                    match cell_mode[vu] {
                        MODE_NORMAL => {
                            stats.skip.normal += 1;
                            stats.rnn_macs += cell.full_step_macs();
                        }
                        MODE_DELTA => {
                            stats.skip.delta += 1;
                            // The condensed-delta patch is the third
                            // dispatch outcome: the cell's input GEMV was
                            // routed through the zero-skipping path.
                            stats.dispatch.delta_skip += 1;
                            stats.rnn_macs += cell.delta_step_macs(cell_nnz[vu] as usize);
                        }
                        MODE_SKIP => stats.skip.skipped += 1,
                        _ => {}
                    }
                }

                let mut h = DenseMatrix::zeros(n, hidden);
                for (v, ctx) in ctxs.iter().enumerate() {
                    h.set_row(v, &ctx.state.h);
                }
                final_features.push(h);
                gnn_outputs.push(z.clone());
            }

            // Reuse accounting for the unaffected region: their feature rows
            // travel once per window instead of once per snapshot, saving
            // one fetch per vertex per remaining snapshot.
            stats.unaffected_row_hoists +=
                cls.count(VertexClass::Unaffected) as u64 * (refs.len() as u64 - 1);
        }

        // Per-window roofline fill: deterministic functions of this
        // window's counter deltas and the plan structure (the traffic
        // models live on `RooflineStats`). `before` was sampled ahead of
        // every counter mutation, so `win` is exactly this window.
        let win = stats.delta_since(&before);
        let ps = plan.stats();
        let d = refs[0].features().cols() as u64;
        let h = hidden as u64;
        let roofline = &mut stats.roofline;
        roofline.plan_build.bytes +=
            4 * (2 * ps.classified_vertices + 2 * ps.subgraph_vertices + 2 * ps.subgraph_edges);
        roofline.gnn.flops += 2 * (win.gnn_aggregate_macs + win.gnn_combine_macs);
        roofline.gnn.bytes += 4
            * (win.feature_rows_loaded * d
                + win.structure_words_loaded
                + win.gnn_vertices_computed * h);
        roofline.rnn.flops += 2 * win.rnn_macs;
        roofline.rnn.bytes +=
            4 * (win.skip.normal * (cell_in as u64 + 2 * h) + win.skip.delta * 2 * h);
        roofline.delta.flops += 2 * win.similarity_ops;
        roofline.delta.bytes += 4 * win.similarity_ops;
        if let Some(rec) = rec {
            // Per-window distributions in the trace; the cumulative
            // totals travel as counters via `ExecutionStats::publish`.
            for (stage, s) in [
                (
                    "plan_build",
                    &roofline.plan_build.delta_since(&before.roofline.plan_build),
                ),
                ("gnn", &roofline.gnn.delta_since(&before.roofline.gnn)),
                ("rnn", &roofline.rnn.delta_since(&before.roofline.rnn)),
                ("delta", &roofline.delta.delta_since(&before.roofline.delta)),
            ] {
                rec.record(&format!("window.roofline.{stage}.bytes"), s.bytes);
                rec.record(&format!("window.roofline.{stage}.flops"), s.flops);
            }
        }
    }

    /// GNN forward over a window: snapshot 0 in full, later snapshots only
    /// recompute the change set (per the configured [`ReuseMode`]).
    ///
    /// Traffic convention: layer-0 feature rows travel from backing memory;
    /// a row is *loaded* on its first touch in the window or when its
    /// content changed versus the window's first snapshot, and *reused*
    /// otherwise (it sits in on-chip feature memory). Intermediate-layer
    /// rows are produced and consumed on-chip, so all their touches count
    /// as reuse — unlike the reference engine, which re-gathers every layer
    /// from memory per snapshot.
    #[allow(clippy::too_many_arguments)]
    fn gnn_window(
        &self,
        refs: &[&Snapshot],
        cls: &WindowClassification,
        choices: &[LayerChoice],
        stats: &mut ExecutionStats,
        rec: Option<&Recorder>,
        scratch: &mut Scratch,
        prefetched_nz: Option<usize>,
    ) -> Vec<DenseMatrix> {
        let first = refs[0];
        let n = first.num_vertices();
        let layers = self.model.layers();

        // Density measurement for the window's only potentially sparse
        // operand: the first snapshot's feature rows. The scan is a
        // vanishing fraction of the layer-0 GEMM it informs, and an
        // exact row list is the SpMM's correctness contract. Later
        // layers' inputs are densified by aggregation + activation.
        // A prefetcher may have already run the identical scan into
        // `scratch.nz_rows` (`prefetched_nz` is the count); the counters
        // and the downstream kernel choice are the same either way.
        let auto = self.dispatch.mode() == DispatchMode::Auto;
        let nz_buf = scratch.nz_rows.take_uninit(n);
        let mut nz0 = 0usize;
        if auto {
            match prefetched_nz {
                Some(count) => nz0 = count,
                None => {
                    for v in 0..n {
                        if first.features().row(v).iter().any(|&x| x != 0.0) {
                            nz_buf[nz0] = v as u32;
                            nz0 += 1;
                        }
                    }
                }
            }
            stats.dispatch_nz_rows += nz0 as u64;
            stats.dispatch_rows_seen += n as u64;
        }
        let nz_buf = &*nz_buf;

        // Snapshot 0: full fused forward, keeping every layer's output for
        // reuse. Transform-first layers additionally pin their `X·W` table
        // for the window, so later snapshots can patch individual rows
        // (bit-compatible with the full GEMM) instead of redoing it.
        let mut outputs0: Vec<DenseMatrix> = Vec::with_capacity(layers.len() + 1);
        let mut xw0s: Vec<Option<DenseMatrix>> = Vec::with_capacity(layers.len());
        outputs0.push(first.features().clone());
        {
            let degp1 = scratch.degp1.take_uninit(n);
            gcn::fill_degp1(first, degp1);
            for (l, layer) in layers.iter().enumerate() {
                let _span = obs_span(rec, "gnn_layer");
                let x = outputs0.last().unwrap();
                for v in 0..n as VertexId {
                    if !first.is_active(v) {
                        continue;
                    }
                    let deg = first.csr().degree(v) as u64;
                    stats.gnn_aggregate_macs += (deg + 1) * layer.in_dim() as u64;
                    if l == 0 {
                        // Cold pass: every feature row travels once.
                        stats.feature_rows_loaded += deg + 1;
                        stats.structure_words_loaded += 2 + deg;
                    } else {
                        stats.feature_rows_reused += deg + 1;
                    }
                }
                let active = first.num_active() as u64;
                stats.gnn_combine_macs += active * (layer.in_dim() * layer.out_dim()) as u64;
                stats.gnn_vertices_computed += active;

                let out_dim = layer.out_dim();
                let mut out = DenseMatrix::zeros(n, out_dim);
                // Association is pinned per run (`choices`); the kernel
                // for the GEMM factor is bit-free and re-dispatches per
                // window from the measured density.
                let assoc = choices
                    .get(l)
                    .copied()
                    .unwrap_or_else(|| layer.legacy_choice());
                if assoc.transform_first {
                    // Same operation sequence as `forward_planned_into`'s
                    // transform-first arm, but the X·W table outlives the
                    // call (window-pinned). The SpMM writes skipped rows
                    // as exact +0.0 — bit-identical to the dense GEMM
                    // over the same (truly zero) rows — so the pinned
                    // table is the same bits under either kernel.
                    let (kernel, rows): (Kernel, Option<&[u32]>) = if l == 0 && auto {
                        let gc = self.dispatch.choose_gemm(n, layer.in_dim(), out_dim, nz0);
                        (
                            gc.kernel,
                            (gc.kernel == Kernel::Spmm).then_some(&nz_buf[..nz0]),
                        )
                    } else {
                        (Kernel::Dense, None)
                    };
                    stats.dispatch.count(kernel);
                    let mut xw = DenseMatrix::zeros(n, out_dim);
                    match (kernel, rows) {
                        (Kernel::Spmm, Some(rows)) => kernels::spmm_csr_into(
                            n,
                            layer.in_dim(),
                            out_dim,
                            rows,
                            x.as_slice(),
                            layer.weight().as_slice(),
                            xw.as_mut_slice(),
                        ),
                        _ => kernels::gemm_into(
                            n,
                            layer.in_dim(),
                            out_dim,
                            x.as_slice(),
                            layer.weight().as_slice(),
                            xw.as_mut_slice(),
                        ),
                    }
                    layer.aggregate_rows_into(
                        first,
                        xw.as_slice(),
                        out_dim,
                        degp1,
                        out.as_mut_slice(),
                    );
                    layer.activation().apply(out.as_mut_slice());
                    xw0s.push(Some(xw));
                } else {
                    stats.dispatch.count(Kernel::Dense);
                    layer.forward_planned_into(
                        first,
                        x.as_slice(),
                        degp1,
                        &mut scratch.agg,
                        None,
                        &LayerChoice {
                            kernel: Kernel::Dense,
                            ..assoc
                        },
                        out.as_mut_slice(),
                    );
                    xw0s.push(None);
                }
                outputs0.push(out);
            }
        }

        let mut zs = Vec::with_capacity(refs.len());
        zs.push(outputs0.last().unwrap().clone());

        for snap in &refs[1..] {
            let _span = obs_span(rec, "gnn_incremental");
            let degp1 = scratch.degp1.take_uninit(n);
            gcn::fill_degp1(snap, degp1);
            // Layer-0 change set versus snapshot 0 (content-level, used for
            // traffic accounting in both modes).
            let changed0 = scratch.mask_changed0.take_uninit(n);
            changed0.par_iter_mut().enumerate().for_each(|(vu, c)| {
                let v = vu as VertexId;
                *c = snap.is_active(v) != first.is_active(v)
                    || (snap.is_active(v) && snap.feature(v) != first.feature(v));
            });
            let topo_changed = scratch.mask_topo.take_uninit(n);
            topo_changed.par_iter_mut().enumerate().for_each(|(vu, t)| {
                let v = vu as VertexId;
                *t = snap.neighbors(v) != first.neighbors(v);
            });

            let mut changed_in = scratch.mask_a.take_uninit(n);
            changed_in.copy_from_slice(changed0);
            let mut changed_out = scratch.mask_b.take_uninit(n);
            let mut cur = scratch.layer_a.take_uninit(n * self.model.max_layer_dim());
            let mut next = scratch.layer_b.take_uninit(n * self.model.max_layer_dim());
            let last_dim = layers.last().map_or(0, |l| l.out_dim());
            let mut z = DenseMatrix::zeros(n, last_dim);
            for (l, layer) in layers.iter().enumerate() {
                {
                    let (changed0, topo_changed, changed_in) =
                        (&*changed0, &*topo_changed, &*changed_in);
                    let reuse = self.reuse;
                    changed_out
                        .par_iter_mut()
                        .enumerate()
                        .for_each(|(vu, out)| {
                            let v = vu as VertexId;
                            *out = match reuse {
                                // A vertex's layer output changes when its own
                                // input or neighbour list changed, or any
                                // neighbour's input or neighbour list changed —
                                // the latter because the symmetric GCN
                                // normalisation reads neighbour degrees.
                                ReuseMode::Exact => {
                                    topo_changed[vu]
                                        || changed_in[vu]
                                        || snap.neighbors(v).iter().any(|&u| {
                                            changed_in[u as usize] || topo_changed[u as usize]
                                        })
                                }
                                // The paper recomputes exactly the affected
                                // subgraph (stable + affected vertices) at every
                                // layer.
                                ReuseMode::PaperWindow => {
                                    cls.class(v).in_affected_subgraph() || changed0[vu]
                                }
                            };
                        });
                }

                let (in_dim, out_dim) = (layer.in_dim(), layer.out_dim());
                let input: &[f32] = if l == 0 {
                    snap.features().as_slice()
                } else {
                    &cur[..n * in_dim]
                };
                let reused = &outputs0[l + 1];
                let last = l + 1 == layers.len();
                let out: &mut [f32] = if last {
                    z.as_mut_slice()
                } else {
                    &mut next[..n * out_dim]
                };
                let recompute: &[bool] = &*changed_out;

                if let Some(xw0) = &xw0s[l] {
                    // Transform-first: refresh the window-pinned X·W table
                    // row-wise (recomputed rows are bit-identical to the
                    // full GEMM; rows with unchanged input content need no
                    // recompute because X·W rows depend only on their own
                    // input row), then aggregate only the changed vertices.
                    let xw_cur = scratch.xw.take_uninit(n * out_dim);
                    xw_cur
                        .par_chunks_exact_mut(out_dim)
                        .enumerate()
                        .for_each(|(vu, row)| {
                            let v = vu as VertexId;
                            let content_changed = if l == 0 {
                                snap.feature(v) != first.feature(v)
                            } else {
                                changed_in[vu]
                            };
                            if content_changed {
                                let x_row = &input[vu * in_dim..][..in_dim];
                                layer.transform_row_into(x_row, row);
                            } else {
                                row.copy_from_slice(xw0.row(vu));
                            }
                        });
                    let xw_cur = &*xw_cur;
                    let degp1 = &*degp1;
                    out.par_chunks_exact_mut(out_dim)
                        .enumerate()
                        .for_each(|(vu, row)| {
                            if recompute[vu] {
                                layer.aggregate_row_into(
                                    snap,
                                    xw_cur,
                                    out_dim,
                                    degp1,
                                    vu as VertexId,
                                    row,
                                );
                                layer.activation().apply(row);
                            } else {
                                row.copy_from_slice(reused.row(vu));
                            }
                        });
                } else {
                    // Aggregate-first: stage the changed vertices'
                    // aggregates, then combine them row-wise — the same
                    // additions in the same order as the fused full pass.
                    let agg = scratch.agg.take_uninit(n * in_dim);
                    {
                        let degp1 = &*degp1;
                        agg.par_chunks_exact_mut(in_dim)
                            .enumerate()
                            .for_each(|(vu, row)| {
                                if recompute[vu] {
                                    layer.aggregate_row_into(
                                        snap,
                                        input,
                                        in_dim,
                                        degp1,
                                        vu as VertexId,
                                        row,
                                    );
                                }
                            });
                    }
                    let agg = &*agg;
                    out.par_chunks_exact_mut(out_dim)
                        .enumerate()
                        .for_each(|(vu, row)| {
                            if recompute[vu] {
                                layer.combine_row_into(&agg[vu * in_dim..][..in_dim], row);
                            } else {
                                row.copy_from_slice(reused.row(vu));
                            }
                        });
                }

                // Work and traffic accounting.
                for v in 0..n as VertexId {
                    if !snap.is_active(v) {
                        continue;
                    }
                    let deg = snap.csr().degree(v) as u64;
                    if recompute[v as usize] {
                        stats.gnn_aggregate_macs += (deg + 1) * layer.in_dim() as u64;
                        stats.gnn_combine_macs += (layer.in_dim() * layer.out_dim()) as u64;
                        stats.gnn_vertices_computed += 1;
                        if l == 0 {
                            // Only rows whose content actually changed must
                            // be re-fetched; the rest sit in feature memory
                            // from the cold pass.
                            let mut loaded = u64::from(changed0[v as usize]);
                            for &u in snap.neighbors(v) {
                                loaded += u64::from(changed0[u as usize]);
                            }
                            stats.feature_rows_loaded += loaded;
                            stats.feature_rows_reused += deg + 1 - loaded;
                            stats.structure_words_loaded +=
                                if topo_changed[v as usize] { 2 + deg } else { 0 };
                        } else {
                            stats.feature_rows_reused += deg + 1;
                        }
                    } else {
                        stats.feature_rows_reused += deg + 1;
                        stats.gnn_vertices_reused += 1;
                    }
                }

                if !last {
                    std::mem::swap(&mut cur, &mut next);
                }
                std::mem::swap(&mut changed_in, &mut changed_out);
            }
            zs.push(z);
        }
        zs
    }

    /// Software ping-pong prefetch: runs inference with a background
    /// planner thread building (and prefetching dispatch inputs for)
    /// window W+1..W+`lookahead` while this thread executes window W —
    /// the software analogue of the paper's overlap between the MSDL
    /// frontend and the execution units.
    ///
    /// Adaptive: when the host has no spare core for the planner
    /// (`available_parallelism() < 2`), a background thread can only
    /// time-slice against the executor — every planner slice evicts
    /// the executor's warm state, which measures *slower* than
    /// sequential. In that case this degrades to
    /// [`Self::run_just_in_time`], which keeps the locality benefit of
    /// pipelining (plan built immediately before use, one plan
    /// resident) without the thread. Call
    /// [`Self::run_pipelined_threaded`] directly to force the threaded
    /// executor regardless of core count (the differential tests do,
    /// so both paths stay pinned bit-identical everywhere).
    ///
    /// Output is bit-identical to [`Self::run`] either way.
    ///
    /// # Panics
    /// Panics if `lookahead == 0` or the planner thread panics.
    pub fn run_pipelined(
        &self,
        graph: &DynamicGraph,
        rec: Option<&Recorder>,
        lookahead: usize,
    ) -> InferenceOutput {
        assert!(lookahead > 0, "lookahead must be at least 1");
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 2 {
            return self.run_just_in_time(graph, rec);
        }
        self.run_pipelined_threaded(graph, rec, lookahead)
    }

    /// Single-thread degeneration of the pipeline: plans each window
    /// immediately before executing it (instead of materialising every
    /// window plan up front as [`Self::run_traced`] does), so each plan
    /// is consumed while hot and at most one plan is ever resident.
    /// On large graphs this beats plan-everything-then-run even without
    /// a second core. Output is bit-identical to [`Self::run`].
    pub fn run_just_in_time(
        &self,
        graph: &DynamicGraph,
        rec: Option<&Recorder>,
    ) -> InferenceOutput {
        let started = std::time::Instant::now();
        let n = graph.num_vertices();
        let mut stats = ExecutionStats::default();
        let mut ctxs = self.fresh_ctxs(n);
        let mut final_features = Vec::with_capacity(graph.num_snapshots());
        let mut gnn_outputs: Vec<DenseMatrix> = Vec::with_capacity(graph.num_snapshots());
        let choices: Vec<LayerChoice> = match graph.snapshots().first() {
            Some(snap0) => plan_layer_choices(&self.dispatch, &self.model, snap0),
            None => Vec::new(),
        };
        let mut scratch = Scratch::new();
        self.reserve_scratch(&mut scratch, n);
        let planner = WindowPlanner::new(self.window);
        for (i, batch) in graph.batches(self.window).enumerate() {
            let refs: Vec<&Snapshot> = batch.iter().collect();
            let plan = planner.plan_window(&refs, i);
            self.window_pass(
                &refs,
                &plan,
                self.skip,
                &choices,
                &mut ctxs,
                &mut scratch,
                &mut stats,
                rec,
                &mut final_features,
                &mut gnn_outputs,
                None,
            );
            scratch.debug_assert_steady();
        }
        stats.wall_ns = started.elapsed().as_nanos() as u64;
        if let Some(rec) = rec {
            stats.publish(rec, "engine.concurrent");
        }
        InferenceOutput {
            final_features,
            gnn_outputs,
            stats,
        }
    }

    /// The threaded pipelined executor behind [`Self::run_pipelined`].
    ///
    /// Mechanics: the executor keeps its single warm [`Scratch`] arena
    /// (rotating full arenas would execute every window from cold
    /// buffers — measurably worse than sequential on large graphs);
    /// what circulates is a ring of `lookahead + 1` small nonzero-row
    /// staging buffers. The planner claims a buffer, builds the
    /// window's plan, runs the dispatch layer's nonzero-row scan into
    /// it (so the density measurement is off the critical path too),
    /// and sends `(plan, rows)` through a bounded channel of depth
    /// `lookahead` — which is the backpressure: once `lookahead`
    /// windows are staged, the planner blocks until the executor
    /// retires one. The executor memcpys the staged rows into its own
    /// arena (a vanishing cost next to the GEMMs they inform) and
    /// returns the buffer to the ring. With `TAGNN_PIN_THREADS` the
    /// planner pins itself to the core after the rayon workers' range.
    ///
    /// Output is bit-identical to [`Self::run`]: plans are
    /// deterministic pure functions of their window, the staged scan is
    /// the exact loop the executor would run, and the sequentially
    /// dependent RNN state never leaves this thread. The integration
    /// suite pins that equality across window sizes, lookahead depths,
    /// and skip modes.
    ///
    /// # Panics
    /// Panics if `lookahead == 0` or the planner thread panics.
    pub fn run_pipelined_threaded(
        &self,
        graph: &DynamicGraph,
        rec: Option<&Recorder>,
        lookahead: usize,
    ) -> InferenceOutput {
        assert!(lookahead > 0, "lookahead must be at least 1");
        let windows = graph.num_snapshots().div_ceil(self.window);
        if windows == 0 {
            return self.run_traced(graph, rec);
        }
        let started = std::time::Instant::now();
        let n = graph.num_vertices();
        let auto = self.dispatch.mode() == DispatchMode::Auto;
        let mut stats = ExecutionStats::default();
        let mut ctxs = self.fresh_ctxs(n);
        let mut final_features = Vec::with_capacity(graph.num_snapshots());
        let mut gnn_outputs: Vec<DenseMatrix> = Vec::with_capacity(graph.num_snapshots());
        let choices: Vec<LayerChoice> = match graph.snapshots().first() {
            Some(snap0) => plan_layer_choices(&self.dispatch, &self.model, snap0),
            None => Vec::new(),
        };

        // The executor's one warm arena — never leaves this thread.
        let mut scratch = Scratch::new();
        self.reserve_scratch(&mut scratch, n);

        // Free ring: lookahead + 1 staging buffers so the planner can
        // hold one while `lookahead` staged windows wait in the work
        // channel. Only needed when dispatch actually measures density.
        let (free_tx, free_rx) = std::sync::mpsc::channel::<Vec<u32>>();
        let (work_tx, work_rx) =
            std::sync::mpsc::sync_channel::<(WindowPlan, Option<Vec<u32>>)>(lookahead);
        if auto {
            for _ in 0..=lookahead {
                free_tx
                    .send(Vec::with_capacity(n))
                    .expect("free ring is open");
            }
        }

        let k = self.window;
        std::thread::scope(|scope| {
            let planner_handle = scope.spawn(move || {
                if affinity::pinning_enabled() {
                    // Rayon workers (when pinned) occupy cores
                    // 0..num_threads; the planner takes the next one so
                    // plan-build never time-slices against a GEMM.
                    let _ = affinity::pin_current_thread(rayon::current_num_threads());
                }
                let planner = WindowPlanner::new(k);
                for (i, batch) in graph.batches(k).enumerate() {
                    // Backpressure point 1 (auto dispatch only): no
                    // free staging buffer until the executor retires
                    // one.
                    let staged = if auto {
                        let Ok(buf) = free_rx.recv() else {
                            return; // executor dropped out early
                        };
                        Some(buf)
                    } else {
                        None
                    };
                    let refs: Vec<&Snapshot> = batch.iter().collect();
                    let plan = planner.plan_window(&refs, i);
                    let staged = staged.map(|mut buf| {
                        buf.clear();
                        for v in 0..n {
                            if refs[0].features().row(v).iter().any(|&x| x != 0.0) {
                                buf.push(v as u32);
                            }
                        }
                        buf
                    });
                    // Backpressure point 2: the bounded work channel
                    // caps the lookahead depth.
                    if work_tx.send((plan, staged)).is_err() {
                        return;
                    }
                }
            });

            for batch in graph.batches(k) {
                let refs: Vec<&Snapshot> = batch.iter().collect();
                let (plan, staged) = work_rx
                    .recv()
                    .expect("planner sends one staged window per batch");
                let prefetched = staged.map(|rows| {
                    let count = rows.len();
                    scratch.nz_rows.take_uninit(n)[..count].copy_from_slice(&rows);
                    let _ = free_tx.send(rows);
                    count
                });
                self.window_pass(
                    &refs,
                    &plan,
                    self.skip,
                    &choices,
                    &mut ctxs,
                    &mut scratch,
                    &mut stats,
                    rec,
                    &mut final_features,
                    &mut gnn_outputs,
                    prefetched,
                );
                scratch.debug_assert_steady();
            }
            planner_handle.join().expect("planner thread panicked");
        });

        stats.wall_ns = started.elapsed().as_nanos() as u64;
        if let Some(rec) = rec {
            stats.publish(rec, "engine.concurrent");
        }
        InferenceOutput {
            final_features,
            gnn_outputs,
            stats,
        }
    }

    /// Opens a stateful streaming session over a vertex universe of
    /// `num_vertices`. The session owns its recurrent contexts and
    /// scratch arena, so windows can be fed one at a time (as a streaming
    /// roller produces them) with outputs bit-identical to one offline
    /// [`Self::run`] over the concatenated windows.
    pub fn session(&self, num_vertices: usize) -> EngineSession {
        let mut scratch = ScratchPair::new();
        scratch.warm_with(|s| self.reserve_scratch(s, num_vertices));
        EngineSession {
            ctxs: self.fresh_ctxs(num_vertices),
            engine: self.clone(),
            scratch,
            stats: ExecutionStats::default(),
            windows: 0,
            choices: None,
        }
    }
}

/// The engine-side state of one logical inference stream: per-vertex
/// recurrent contexts threading across windows, a warm scratch arena, and
/// cumulative work counters. Produced by [`ConcurrentEngine::session`];
/// feed it consecutive windows via [`Self::process_window`].
///
/// Windows of one session are sequentially dependent (the RNN state
/// carries over), so a serving layer must keep each stream's windows in
/// order on one worker; distinct sessions are independent.
#[derive(Debug)]
pub struct EngineSession {
    engine: ConcurrentEngine,
    ctxs: Vec<VertexCtx>,
    /// Double-buffered arenas: window W executes out of the front arena
    /// while a serving-layer prefetcher may stage window W+1's
    /// nonzero-row scan into the back one
    /// ([`Self::process_window_prefetched`]); the pair swaps per window.
    scratch: ScratchPair,
    stats: ExecutionStats,
    windows: u64,
    /// Association plan, pinned from the first window's first snapshot
    /// for the session's lifetime — the streaming equivalent of the
    /// offline run's snapshot-0 pin, so a session over consecutive
    /// windows stays bit-identical to one offline run over their
    /// concatenation. Kernel choices still adapt per window.
    choices: Option<Vec<LayerChoice>>,
}

/// Per-window output of an [`EngineSession`]: one final-feature and one
/// GNN-output matrix per snapshot, plus this window's work-counter delta
/// (`stats.wall_ns` is the window's wall time).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOutput {
    /// Final features `H_t`, one matrix per snapshot of the window.
    pub final_features: Vec<DenseMatrix>,
    /// GNN-module outputs `Z_t`, one matrix per snapshot of the window.
    pub gnn_outputs: Vec<DenseMatrix>,
    /// Work/traffic accounting for this window only.
    pub stats: ExecutionStats,
    /// How the window's plan was obtained (scratch, cached, or
    /// incrementally maintained) — serving-layer observability.
    pub plan_source: PlanSource,
}

impl EngineSession {
    /// The engine configuration this session runs.
    pub fn engine(&self) -> &ConcurrentEngine {
        &self.engine
    }

    /// Size of the vertex universe this session was opened over.
    pub fn num_vertices(&self) -> usize {
        self.ctxs.len()
    }

    /// Number of windows processed so far.
    pub fn windows_processed(&self) -> u64 {
        self.windows
    }

    /// Cumulative work counters across all processed windows.
    pub fn stats(&self) -> &ExecutionStats {
        &self.stats
    }

    /// Processes one window with the engine's configured skip thresholds.
    pub fn process_window(&mut self, snaps: &[&Snapshot], plan: &WindowPlan) -> WindowOutput {
        self.process_window_with(snaps, plan, self.engine.skip)
    }

    /// Processes one window under an explicit [`SkipConfig`] — the hook a
    /// serving layer uses to widen the skip band under backlog without
    /// rebuilding the session. Passing the engine's own config makes this
    /// identical to [`Self::process_window`].
    ///
    /// # Panics
    /// Panics if the window is empty, the universe does not match the
    /// session, or `plan` does not describe `snaps`.
    pub fn process_window_with(
        &mut self,
        snaps: &[&Snapshot],
        plan: &WindowPlan,
        skip: SkipConfig,
    ) -> WindowOutput {
        self.process_window_prefetched(snaps, plan, skip, None)
    }

    /// [`Self::process_window_with`] with an optionally prefetched
    /// dispatch measurement: `nz_rows`, when given, is the ascending
    /// nonzero-row list of the window's first-snapshot features (what
    /// the engine's own scan would produce), staged by an overlap
    /// sidecar off the execute thread. It is copied into the session's
    /// back scratch arena, the pair swaps, and the engine skips its
    /// scan — output and counters stay bit-identical to the unprefetched
    /// call, which the serving integration suite pins.
    ///
    /// # Panics
    /// As [`Self::process_window_with`].
    pub fn process_window_prefetched(
        &mut self,
        snaps: &[&Snapshot],
        plan: &WindowPlan,
        skip: SkipConfig,
        nz_rows: Option<&[u32]>,
    ) -> WindowOutput {
        let started = std::time::Instant::now();
        let before = self.stats;
        let mut final_features = Vec::with_capacity(snaps.len());
        let mut gnn_outputs = Vec::with_capacity(snaps.len());
        if self.choices.is_none() {
            let snap0 = snaps.first().expect("a window needs at least one snapshot");
            self.choices = Some(plan_layer_choices(
                &self.engine.dispatch,
                &self.engine.model,
                snap0,
            ));
        }
        let prefetched = nz_rows.map(|rows| {
            let buf = self.scratch.back_mut().nz_rows.take_uninit(self.ctxs.len());
            buf[..rows.len()].copy_from_slice(rows);
            rows.len()
        });
        // Ping-pong: the staged back arena becomes this window's front.
        self.scratch.swap();
        self.engine.window_pass(
            snaps,
            plan,
            skip,
            self.choices.as_deref().unwrap_or(&[]),
            &mut self.ctxs,
            self.scratch.front_mut(),
            &mut self.stats,
            None,
            &mut final_features,
            &mut gnn_outputs,
            prefetched,
        );
        self.scratch.debug_assert_steady();
        self.stats.wall_ns += started.elapsed().as_nanos() as u64;
        self.windows += 1;
        WindowOutput {
            final_features,
            gnn_outputs,
            stats: self.stats.delta_since(&before),
            plan_source: plan.stats().source,
        }
    }

    /// Resets the recurrent state to a fresh stream (cumulative stats and
    /// the warm scratch arena are kept).
    pub fn reset(&mut self) {
        self.ctxs = self.engine.fresh_ctxs(self.ctxs.len());
    }
}

impl StatefulModel for EngineSession {
    fn export_state(&self) -> EngineState {
        EngineState {
            windows: self.windows,
            vertices: self
                .ctxs
                .iter()
                .map(|ctx| VertexStateExport {
                    h: ctx.state.h.clone(),
                    c: ctx.state.c.clone(),
                    x_pre: ctx.state.x_pre.clone(),
                    last_input: ctx.last_input.clone(),
                    has_input: ctx.has_input,
                })
                .collect(),
            choices: self.choices.clone(),
        }
    }

    fn import_state(&mut self, state: EngineState) -> Result<(), StateError> {
        if state.vertices.len() != self.ctxs.len() {
            return Err(StateError::UniverseMismatch {
                expected: self.ctxs.len(),
                found: state.vertices.len(),
            });
        }
        // Validate every shape against the session's model (the fresh
        // contexts carry the canonical lengths) before touching anything,
        // so a failed import leaves the session unchanged.
        for (vu, (ctx, v)) in self.ctxs.iter().zip(&state.vertices).enumerate() {
            let checks = [
                ("h", ctx.state.h.len(), v.h.len()),
                ("c", ctx.state.c.len(), v.c.len()),
                ("x_pre", ctx.state.x_pre.len(), v.x_pre.len()),
                ("last_input", ctx.last_input.len(), v.last_input.len()),
            ];
            for (field, expected, found) in checks {
                if expected != found {
                    return Err(StateError::ShapeMismatch {
                        vertex: vu,
                        field,
                        expected,
                        found,
                    });
                }
            }
        }
        for (ctx, v) in self.ctxs.iter_mut().zip(state.vertices) {
            ctx.state.h = v.h;
            ctx.state.c = v.c;
            ctx.state.x_pre = v.x_pre;
            ctx.last_input = v.last_input;
            ctx.has_input = v.has_input;
        }
        self.windows = state.windows;
        self.choices = state.choices;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dgnn::ModelKind;
    use crate::engine::reference::ReferenceEngine;
    use tagnn_graph::generate::{DatasetPreset, GeneratorConfig};

    fn tiny_graph() -> DynamicGraph {
        GeneratorConfig::tiny().generate()
    }

    fn model(kind: ModelKind) -> DgnnModel {
        DgnnModel::new(kind, 8, 6, 123)
    }

    #[test]
    fn exact_mode_matches_reference_when_skipping_disabled() {
        let g = tiny_graph();
        for kind in ModelKind::ALL {
            let reference = ReferenceEngine::new(model(kind)).run(&g);
            let concurrent = ConcurrentEngine::with_options(
                model(kind),
                SkipConfig::disabled(),
                3,
                ReuseMode::Exact,
            )
            .run(&g);
            let diff = reference.max_final_feature_diff(&concurrent);
            assert!(
                diff < 1e-5,
                "{kind:?}: exact mode must be bit-faithful, diff {diff}"
            );
        }
    }

    #[test]
    fn exact_mode_gnn_outputs_match_reference_regardless_of_skipping() {
        let g = tiny_graph();
        let reference = ReferenceEngine::new(model(ModelKind::TGcn)).run(&g);
        let concurrent = ConcurrentEngine::with_options(
            model(ModelKind::TGcn),
            SkipConfig::paper_default(),
            4,
            ReuseMode::Exact,
        )
        .run(&g);
        for (a, b) in reference.gnn_outputs.iter().zip(&concurrent.gnn_outputs) {
            assert!(
                a.max_abs_diff(b) < 1e-5,
                "exact mode never approximates the GNN"
            );
        }
    }

    #[test]
    fn paper_window_mode_error_is_bounded() {
        let g = tiny_graph();
        let reference = ReferenceEngine::new(model(ModelKind::TGcn)).run(&g);
        let paper = ConcurrentEngine::with_options(
            model(ModelKind::TGcn),
            SkipConfig::disabled(),
            3,
            ReuseMode::PaperWindow,
        )
        .run(&g);
        let diff = reference.max_final_feature_diff(&paper);
        assert!(
            diff < 0.6,
            "window-granularity reuse error {diff} out of band"
        );
    }

    #[test]
    fn paper_window_mode_reuses_more_than_exact_mode() {
        let g = DatasetPreset::HepPh.config_small(6).generate();
        let mk = || DgnnModel::new(ModelKind::TGcn, g.feature_dim(), 8, 1);
        let exact =
            ConcurrentEngine::with_options(mk(), SkipConfig::disabled(), 3, ReuseMode::Exact)
                .run(&g);
        let paper =
            ConcurrentEngine::with_options(mk(), SkipConfig::disabled(), 3, ReuseMode::PaperWindow)
                .run(&g);
        assert!(paper.stats.gnn_vertices_computed <= exact.stats.gnn_vertices_computed);
        assert!(paper.stats.feature_rows_loaded <= exact.stats.feature_rows_loaded);
    }

    #[test]
    fn reuses_feature_rows() {
        let g = DatasetPreset::HepPh.config_small(6).generate();
        let m = DgnnModel::new(ModelKind::TGcn, g.feature_dim(), 8, 1);
        let out = ConcurrentEngine::with_window(m, SkipConfig::disabled(), 3).run(&g);
        assert!(
            out.stats.feature_rows_reused > 0,
            "window reuse must kick in"
        );
        let reference =
            ReferenceEngine::new(DgnnModel::new(ModelKind::TGcn, g.feature_dim(), 8, 1)).run(&g);
        assert!(
            out.stats.feature_rows_loaded < reference.stats.feature_rows_loaded,
            "concurrent engine must load fewer rows"
        );
    }

    #[test]
    fn skipping_reduces_rnn_work() {
        let g = DatasetPreset::HepPh.config_small(6).generate();
        let mk = || DgnnModel::new(ModelKind::TGcn, g.feature_dim(), 8, 1);
        let without = ConcurrentEngine::with_window(mk(), SkipConfig::disabled(), 3).run(&g);
        let with = ConcurrentEngine::with_window(mk(), SkipConfig::paper_default(), 3).run(&g);
        assert!(
            with.stats.skip.skipped + with.stats.skip.delta > 0,
            "some cells must be skipped"
        );
        assert!(with.stats.rnn_macs < without.stats.rnn_macs);
    }

    #[test]
    fn skipping_error_is_modest() {
        let g = tiny_graph();
        let reference = ReferenceEngine::new(model(ModelKind::TGcn)).run(&g);
        let approx =
            ConcurrentEngine::with_window(model(ModelKind::TGcn), SkipConfig::paper_default(), 3)
                .run(&g);
        let diff = reference.max_final_feature_diff(&approx);
        // Hidden features live in [-1, 1]; skipping error must stay small.
        assert!(diff < 0.6, "skipping error {diff} too large");
    }

    #[test]
    fn window_of_one_equals_reference() {
        let g = tiny_graph();
        let reference = ReferenceEngine::new(model(ModelKind::GcLstm)).run(&g);
        let concurrent =
            ConcurrentEngine::with_window(model(ModelKind::GcLstm), SkipConfig::disabled(), 1)
                .run(&g);
        assert!(reference.max_final_feature_diff(&concurrent) < 1e-6);
    }

    #[test]
    fn first_snapshot_is_always_normal() {
        let g = tiny_graph();
        let out =
            ConcurrentEngine::with_window(model(ModelKind::TGcn), SkipConfig::paper_default(), 3)
                .run(&g);
        // At t=0 no previous Z exists, so no skips can have happened there;
        // total tallies must cover every active vertex of every snapshot.
        let expected: u64 = g.snapshots().iter().map(|s| s.num_active() as u64).sum();
        assert_eq!(out.stats.skip.total(), expected);
    }

    #[test]
    fn similarity_ops_are_charged_only_for_scored_vertices() {
        // Vertex 2 is inactive in snapshot 0 and appears at snapshot 1:
        // at snapshot 1 the SCU must not score it (inactive in the
        // previous snapshot, no cached input), so no similarity ops may
        // be billed for it there. Thresholds of (10, 10) keep every
        // scored vertex on the Normal path, so the expected op count is
        // recomputable from graph structure alone.
        use tagnn_graph::Csr;
        let n = 3;
        let feats = |seed: f32| {
            DenseMatrix::from_vec(n, 2, (0..2 * n).map(|i| seed + i as f32 * 0.1).collect())
        };
        let edges = vec![(0, 1), (1, 0), (1, 2), (2, 1)];
        let snap = |active: Vec<bool>, seed: f32| {
            Snapshot::new(Csr::from_edges(n, &edges), feats(seed), active)
        };
        let g = DynamicGraph::new(vec![
            snap(vec![true, true, false], 0.0),
            snap(vec![true, true, true], 0.5),
            snap(vec![true, true, true], 1.0),
        ]);
        let m = DgnnModel::new(ModelKind::TGcn, 2, 4, 7);
        let hidden = m.hidden();
        let skip = SkipConfig::with_thresholds(10.0, 10.0);
        let out = ConcurrentEngine::with_window(m, skip, 3).run(&g);

        // Scored vertices: active now, active in the previous snapshot of
        // the same window, and updated at least once before (has_input).
        let mut expected = 0u64;
        let mut has_input = vec![false; n];
        for (i, s) in g.snapshots().iter().enumerate() {
            for v in 0..n as VertexId {
                if !s.is_active(v) {
                    continue;
                }
                if i > 0 && g.snapshot(i - 1).is_active(v) && has_input[v as usize] {
                    expected += (3 * hidden + s.csr().degree(v)) as u64;
                }
                has_input[v as usize] = true; // Normal update ran
            }
        }
        assert_eq!(
            out.stats.similarity_ops, expected,
            "similarity ops must match the SCU guard exactly"
        );
    }

    #[test]
    fn is_deterministic() {
        let g = tiny_graph();
        let e =
            ConcurrentEngine::with_window(model(ModelKind::CdGcn), SkipConfig::paper_default(), 4);
        assert_eq!(e.run(&g).final_features, e.run(&g).final_features);
    }

    #[test]
    fn prebuilt_plans_match_on_the_fly_planning() {
        let g = tiny_graph();
        let e =
            ConcurrentEngine::with_window(model(ModelKind::TGcn), SkipConfig::paper_default(), 3);
        let plans = WindowPlanner::new(3).plan_graph(&g);
        let fly = e.run(&g);
        let shared = e.run_with_plans(&g, &plans);
        assert_eq!(fly.final_features, shared.final_features);
        assert_eq!(fly.gnn_outputs, shared.gnn_outputs);
    }

    #[test]
    fn session_streaming_is_bit_identical_to_offline_run() {
        let g = tiny_graph();
        let e =
            ConcurrentEngine::with_window(model(ModelKind::TGcn), SkipConfig::paper_default(), 3);
        let offline = e.run(&g);
        let plans = WindowPlanner::new(3).plan_graph(&g);
        let mut session = e.session(g.num_vertices());
        let mut finals = Vec::new();
        let mut gnns = Vec::new();
        let mut summed = ExecutionStats::default();
        for (batch, plan) in g.batches(3).zip(&plans) {
            let refs: Vec<&Snapshot> = batch.iter().collect();
            let out = session.process_window(&refs, plan);
            assert_eq!(out.final_features.len(), batch.len());
            summed.merge(&out.stats);
            finals.extend(out.final_features);
            gnns.extend(out.gnn_outputs);
        }
        assert_eq!(finals, offline.final_features);
        assert_eq!(gnns, offline.gnn_outputs);
        let mut offline_stats = offline.stats;
        summed.wall_ns = 0;
        offline_stats.wall_ns = 0;
        assert_eq!(summed, offline_stats, "work counters must match exactly");
        assert_eq!(session.windows_processed(), plans.len() as u64);
        assert_eq!(session.stats().skip, offline.stats.skip);
    }

    #[test]
    fn pipelined_run_is_bit_identical_to_sequential() {
        let g = DatasetPreset::HepPh.config_small(6).generate();
        let m = || DgnnModel::new(ModelKind::TGcn, g.feature_dim(), 8, 1);
        for lookahead in [1, 2] {
            let e = ConcurrentEngine::with_window(m(), SkipConfig::paper_default(), 3);
            let seq = e.run(&g);
            let pipe = e.run_pipelined(&g, None, lookahead);
            assert_eq!(seq.final_features, pipe.final_features);
            assert_eq!(seq.gnn_outputs, pipe.gnn_outputs);
            let (mut a, mut b) = (seq.stats, pipe.stats);
            a.wall_ns = 0;
            b.wall_ns = 0;
            assert_eq!(a, b, "work counters must match at lookahead {lookahead}");
        }
    }

    #[test]
    fn pipelined_roofline_counters_fill() {
        let g = tiny_graph();
        let e =
            ConcurrentEngine::with_window(model(ModelKind::TGcn), SkipConfig::paper_default(), 3);
        let out = e.run_pipelined(&g, None, 1);
        assert!(out.stats.roofline.plan_build.bytes > 0);
        assert!(out.stats.roofline.gnn.flops > 0);
        assert!(out.stats.roofline.rnn.flops > 0);
        assert_eq!(out.stats.roofline.plan_build.flops, 0);
    }

    #[test]
    fn session_reset_restarts_the_stream() {
        let g = tiny_graph();
        let e = ConcurrentEngine::with_window(model(ModelKind::GcLstm), SkipConfig::disabled(), 4);
        let plans = WindowPlanner::new(4).plan_graph(&g);
        let refs: Vec<&Snapshot> = g.batches(4).next().unwrap().iter().collect();
        let mut session = e.session(g.num_vertices());
        let first = session.process_window(&refs, &plans[0]);
        let carried = session.process_window(&refs, &plans[0]);
        assert_ne!(
            first.final_features, carried.final_features,
            "recurrent state must thread across windows"
        );
        session.reset();
        let fresh = session.process_window(&refs, &plans[0]);
        assert_eq!(first.final_features, fresh.final_features);
    }

    #[test]
    fn session_accepts_per_window_skip_overrides() {
        let g = DatasetPreset::HepPh.config_small(6).generate();
        let m = || DgnnModel::new(ModelKind::TGcn, g.feature_dim(), 8, 1);
        let e = ConcurrentEngine::with_window(m(), SkipConfig::paper_default(), 3);
        let plans = WindowPlanner::new(3).plan_graph(&g);
        let run = |skip: SkipConfig| {
            let mut s = e.session(g.num_vertices());
            let mut skipped = 0;
            for (batch, plan) in g.batches(3).zip(&plans) {
                let refs: Vec<&Snapshot> = batch.iter().collect();
                skipped += s.process_window_with(&refs, plan, skip).stats.skip.skipped;
            }
            skipped
        };
        let normal = run(SkipConfig::paper_default());
        let widened = run(SkipConfig::with_thresholds(-2.0, -2.0));
        assert!(
            widened >= normal,
            "a wider skip band must not skip fewer cells ({widened} < {normal})"
        );
    }

    #[test]
    #[should_panic(expected = "universe must match")]
    fn session_rejects_mismatched_universe() {
        let g = tiny_graph();
        let e = ConcurrentEngine::with_window(model(ModelKind::TGcn), SkipConfig::disabled(), 3);
        let plans = WindowPlanner::new(3).plan_graph(&g);
        let refs: Vec<&Snapshot> = g.batches(3).next().unwrap().iter().collect();
        let mut session = e.session(g.num_vertices() + 1);
        let _ = session.process_window(&refs, &plans[0]);
    }

    #[test]
    #[should_panic(expected = "one plan per window")]
    fn mismatched_plan_count_panics() {
        let g = tiny_graph();
        let e = ConcurrentEngine::with_window(model(ModelKind::TGcn), SkipConfig::disabled(), 3);
        let plans = WindowPlanner::new(2).plan_graph(&g);
        let _ = e.run_with_plans(&g, &plans);
    }

    #[test]
    fn exported_state_resumes_bit_identically_for_every_model() {
        // A fresh session that imports a mid-stream export must produce
        // exactly the bits the original session would have — the
        // recovery correctness bar, per model kind (GRU has no cell
        // vector; the LSTMs do).
        let g = tiny_graph();
        for kind in ModelKind::ALL {
            let e = ConcurrentEngine::with_window(model(kind), SkipConfig::paper_default(), 3);
            let plans = WindowPlanner::new(3).plan_graph(&g);
            let mut original = e.session(g.num_vertices());
            let windows: Vec<Vec<&Snapshot>> = g.batches(3).map(|b| b.iter().collect()).collect();
            let _ = original.process_window(&windows[0], &plans[0]);

            let exported = original.export_state();
            let mut restored = e.session(g.num_vertices());
            restored.import_state(exported.clone()).unwrap();
            assert_eq!(restored.export_state(), exported, "{kind:?}: round trip");
            assert_eq!(restored.windows_processed(), 1);

            for (win, plan) in windows.iter().zip(&plans).skip(1) {
                let a = original.process_window(win, plan);
                let b = restored.process_window(win, plan);
                assert_eq!(
                    a.final_features, b.final_features,
                    "{kind:?}: restored session must continue bit-identically"
                );
                assert_eq!(a.gnn_outputs, b.gnn_outputs);
            }
        }
    }

    #[test]
    fn import_rejects_mismatched_shapes_without_mutating() {
        let g = tiny_graph();
        let e = ConcurrentEngine::with_window(model(ModelKind::TGcn), SkipConfig::disabled(), 3);
        let mut session = e.session(g.num_vertices());
        let baseline = session.export_state();

        // Wrong universe.
        let mut small = baseline.clone();
        small.vertices.pop();
        assert!(matches!(
            session.import_state(small),
            Err(StateError::UniverseMismatch { .. })
        ));

        // Wrong hidden dim on one vertex.
        let mut bad = baseline.clone();
        bad.vertices[0].h.push(0.0);
        assert!(matches!(
            session.import_state(bad),
            Err(StateError::ShapeMismatch {
                vertex: 0,
                field: "h",
                ..
            })
        ));
        assert_eq!(
            session.export_state(),
            baseline,
            "failed import must not mutate"
        );
    }
}
