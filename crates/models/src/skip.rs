//! The similarity-aware cell-skipping strategy (paper §3.1 and §4.2).
//!
//! For every stable and affected vertex, the θ score over the GNN outputs of
//! two consecutive snapshots selects one of three cell-update modes:
//!
//! * `θ > θe`  — **Skip**: reuse the previous final feature entirely;
//! * `θs ≤ θ ≤ θe` — **Delta**: patch the cached input pre-activation with
//!   the condensed non-zero input difference, then step;
//! * `θ < θs`  — **Normal**: full cell update.

use serde::{Deserialize, Serialize};

/// Cell-update mode selected per vertex per snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellMode {
    /// Full RNN cell update.
    Normal,
    /// Partial (delta) update on the condensed input difference.
    Delta,
    /// Bypass the cell entirely; previous final feature is reused.
    Skip,
}

/// Thresholds `(θs, θe)` plus the zero-filter tolerance of the Condense
/// Unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkipConfig {
    /// Below this score the full cell update runs.
    pub theta_s: f32,
    /// Above this score the cell update is skipped entirely.
    pub theta_e: f32,
    /// Delta components with magnitude `<= tolerance` are dropped by the
    /// Condense Unit. `0.0` keeps the delta path bit-exact.
    pub delta_tolerance: f32,
    /// Master switch; `false` forces [`CellMode::Normal`] everywhere (the
    /// WO/ADSC ablation of Fig. 12).
    pub enabled: bool,
}

impl SkipConfig {
    /// The paper's default operating point: `[θs, θe] = [-0.5, 0.5]`
    /// (Fig. 14a finds this interval optimal).
    pub fn paper_default() -> Self {
        Self {
            theta_s: -0.5,
            theta_e: 0.5,
            delta_tolerance: 0.0,
            enabled: true,
        }
    }

    /// Skipping disabled: every vertex takes the Normal path, making the
    /// concurrent engine bit-identical to the reference engine.
    pub fn disabled() -> Self {
        Self {
            theta_s: 0.0,
            theta_e: 0.0,
            delta_tolerance: 0.0,
            enabled: false,
        }
    }

    /// Custom thresholds with lossless deltas.
    ///
    /// # Panics
    /// Panics unless `theta_s <= theta_e`.
    pub fn with_thresholds(theta_s: f32, theta_e: f32) -> Self {
        assert!(theta_s <= theta_e, "theta_s must not exceed theta_e");
        Self {
            theta_s,
            theta_e,
            delta_tolerance: 0.0,
            enabled: true,
        }
    }

    /// Selects the cell-update mode for a similarity score.
    pub fn select(&self, theta: f32) -> CellMode {
        if !self.enabled {
            CellMode::Normal
        } else if theta > self.theta_e {
            CellMode::Skip
        } else if theta >= self.theta_s {
            CellMode::Delta
        } else {
            CellMode::Normal
        }
    }
}

impl Default for SkipConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Counts of cell updates by mode (the ADSC statistics of Fig. 12/14a).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkipStats {
    /// Full cell updates executed.
    pub normal: u64,
    /// Delta updates executed.
    pub delta: u64,
    /// Cell updates skipped.
    pub skipped: u64,
}

impl SkipStats {
    /// Records one selection.
    pub fn record(&mut self, mode: CellMode) {
        match mode {
            CellMode::Normal => self.normal += 1,
            CellMode::Delta => self.delta += 1,
            CellMode::Skip => self.skipped += 1,
        }
    }

    /// Total selections.
    pub fn total(&self) -> u64 {
        self.normal + self.delta + self.skipped
    }

    /// Fraction of cells skipped outright.
    pub fn skip_ratio(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.skipped as f64 / self.total() as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &SkipStats) {
        self.normal += other.normal;
        self.delta += other.delta;
        self.skipped += other.skipped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_selection_respects_thresholds() {
        let cfg = SkipConfig::with_thresholds(-0.5, 0.5);
        assert_eq!(cfg.select(-0.9), CellMode::Normal);
        assert_eq!(cfg.select(-0.5), CellMode::Delta);
        assert_eq!(cfg.select(0.0), CellMode::Delta);
        assert_eq!(cfg.select(0.5), CellMode::Delta);
        assert_eq!(cfg.select(0.51), CellMode::Skip);
        assert_eq!(cfg.select(1.0), CellMode::Skip);
    }

    #[test]
    fn mode_is_monotone_in_theta() {
        let cfg = SkipConfig::paper_default();
        let rank = |m: CellMode| match m {
            CellMode::Normal => 0,
            CellMode::Delta => 1,
            CellMode::Skip => 2,
        };
        let mut prev = 0;
        for i in 0..=40 {
            let theta = -1.0 + i as f32 * 0.05;
            let r = rank(cfg.select(theta));
            assert!(r >= prev, "mode must not regress as theta grows");
            prev = r;
        }
    }

    #[test]
    fn disabled_always_normal() {
        let cfg = SkipConfig::disabled();
        for theta in [-1.0, 0.0, 1.0] {
            assert_eq!(cfg.select(theta), CellMode::Normal);
        }
    }

    #[test]
    #[should_panic(expected = "theta_s")]
    fn rejects_inverted_thresholds() {
        let _ = SkipConfig::with_thresholds(0.5, -0.5);
    }

    #[test]
    fn stats_tally_and_merge() {
        let mut a = SkipStats::default();
        a.record(CellMode::Normal);
        a.record(CellMode::Skip);
        a.record(CellMode::Skip);
        let mut b = SkipStats::default();
        b.record(CellMode::Delta);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.skipped, 2);
        assert!((a.skip_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_skip_ratio_is_zero() {
        assert_eq!(SkipStats::default().skip_ratio(), 0.0);
    }
}
