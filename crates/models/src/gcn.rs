//! The GNN module: degree-normalised aggregation plus a dense combination,
//! i.e. one GCN layer `Z = act( Â X W )` with `Â` the symmetrically
//! normalised adjacency with self-loops (Kipf & Welling).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tagnn_graph::types::VertexId;
use tagnn_graph::Snapshot;
use tagnn_tensor::{init, ops, Activation, DenseMatrix};

/// How neighbour features are combined before the dense transform — the
/// paper's claim that TaGNN "is highly versatile and adaptable to a broad
/// range of DGNN models" rests on the aggregation being pluggable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregatorKind {
    /// Symmetric GCN normalisation with self-loop (Kipf & Welling):
    /// `sum 1/sqrt((d_v+1)(d_u+1)) * x_u`.
    GcnNormalized,
    /// GraphSAGE-style mean over `N(v) ∪ {v}`.
    Mean,
    /// Plain neighbourhood sum (GIN-style, self included).
    Sum,
}

/// One GCN layer: `out = act(aggregate(X) * W)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcnLayer {
    weight: DenseMatrix,
    activation: Activation,
    aggregator: AggregatorKind,
}

impl GcnLayer {
    /// Builds a layer with Xavier-initialised weights and the standard
    /// symmetric GCN aggregator.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, seed: u64) -> Self {
        Self::with_aggregator(
            in_dim,
            out_dim,
            activation,
            AggregatorKind::GcnNormalized,
            seed,
        )
    }

    /// Builds a layer with an explicit aggregator.
    pub fn with_aggregator(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        aggregator: AggregatorKind,
        seed: u64,
    ) -> Self {
        Self {
            weight: init::xavier_uniform(in_dim, out_dim, seed),
            activation,
            aggregator,
        }
    }

    /// The aggregation scheme of this layer.
    #[inline]
    pub fn aggregator(&self) -> AggregatorKind {
        self.aggregator
    }

    /// Input dimensionality.
    #[inline]
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    #[inline]
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// The weight matrix.
    #[inline]
    pub fn weight(&self) -> &DenseMatrix {
        &self.weight
    }

    /// Aggregation for a single vertex over `N(v) ∪ {v}`, per the layer's
    /// [`AggregatorKind`].
    ///
    /// Inactive vertices aggregate to zero (they do not exist in the
    /// snapshot).
    pub fn aggregate_vertex(&self, snap: &Snapshot, x: &DenseMatrix, v: VertexId) -> Vec<f32> {
        let dim = x.cols();
        let mut acc = vec![0.0f32; dim];
        if !snap.is_active(v) {
            return acc;
        }
        let deg = snap.csr().degree(v);
        match self.aggregator {
            AggregatorKind::GcnNormalized => {
                let dv = (deg + 1) as f32;
                // Self-loop.
                ops::axpy(&mut acc, 1.0 / dv, x.row(v as usize));
                for &u in snap.neighbors(v) {
                    let du = (snap.csr().degree(u) + 1) as f32;
                    let norm = 1.0 / (dv * du).sqrt();
                    ops::axpy(&mut acc, norm, x.row(u as usize));
                }
            }
            AggregatorKind::Mean => {
                let scale = 1.0 / (deg + 1) as f32;
                ops::axpy(&mut acc, scale, x.row(v as usize));
                for &u in snap.neighbors(v) {
                    ops::axpy(&mut acc, scale, x.row(u as usize));
                }
            }
            AggregatorKind::Sum => {
                ops::axpy(&mut acc, 1.0, x.row(v as usize));
                for &u in snap.neighbors(v) {
                    ops::axpy(&mut acc, 1.0, x.row(u as usize));
                }
            }
        }
        acc
    }

    /// Combination for one vertex: `act(agg * W)`.
    pub fn combine_vertex(&self, agg: &[f32]) -> Vec<f32> {
        let mut out = ops::vecmat(agg, &self.weight);
        self.activation.apply(&mut out);
        out
    }

    /// Full layer forward for one vertex.
    pub fn forward_vertex(&self, snap: &Snapshot, x: &DenseMatrix, v: VertexId) -> Vec<f32> {
        self.combine_vertex(&self.aggregate_vertex(snap, x, v))
    }

    /// Full layer forward over the whole snapshot (parallel over vertices).
    ///
    /// # Panics
    /// Panics if `x` has the wrong shape.
    pub fn forward(&self, snap: &Snapshot, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            x.rows(),
            snap.num_vertices(),
            "feature table must cover the universe"
        );
        assert_eq!(x.cols(), self.in_dim(), "layer input dim mismatch");
        let n = snap.num_vertices();
        let out_dim = self.out_dim();
        let mut out = vec![0.0f32; n * out_dim];
        out.par_chunks_exact_mut(out_dim)
            .enumerate()
            .for_each(|(v, row)| {
                let y = self.forward_vertex(snap, x, v as VertexId);
                row.copy_from_slice(&y);
            });
        DenseMatrix::from_vec(n, out_dim, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagnn_graph::Csr;

    fn snap(n: usize, edges: &[(u32, u32)]) -> Snapshot {
        Snapshot::fully_active(
            Csr::from_edges(n, edges),
            DenseMatrix::from_fn(n, 2, |r, c| (r * 2 + c) as f32),
        )
    }

    #[test]
    fn aggregate_isolated_vertex_is_scaled_self_loop() {
        let s = snap(3, &[]);
        let layer = GcnLayer::new(2, 2, Activation::Identity, 1);
        let agg = layer.aggregate_vertex(&s, s.features(), 1);
        // Degree 0: self-loop weight 1/(0+1) = 1.
        assert_eq!(agg, vec![2.0, 3.0]);
    }

    #[test]
    fn aggregate_includes_normalised_neighbors() {
        let s = snap(2, &[(0, 1)]);
        let layer = GcnLayer::new(2, 2, Activation::Identity, 1);
        let agg = layer.aggregate_vertex(&s, s.features(), 0);
        // v0: degree 1 -> self 1/2 * [0,1]; neighbour v1 degree 0 ->
        // 1/sqrt(2*1) * [2,3].
        let inv = 1.0 / (2.0f32).sqrt();
        assert!((agg[0] - (0.0 * 0.5 + 2.0 * inv)).abs() < 1e-6);
        assert!((agg[1] - (1.0 * 0.5 + 3.0 * inv)).abs() < 1e-6);
    }

    #[test]
    fn inactive_vertex_aggregates_to_zero() {
        let csr = Csr::from_edges(2, &[(0, 1)]);
        let s = Snapshot::new(
            csr,
            DenseMatrix::from_fn(2, 2, |_, _| 1.0),
            vec![true, false],
        );
        let layer = GcnLayer::new(2, 2, Activation::Identity, 1);
        assert_eq!(layer.aggregate_vertex(&s, s.features(), 1), vec![0.0, 0.0]);
    }

    #[test]
    fn forward_matches_per_vertex_forward() {
        let s = snap(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let layer = GcnLayer::new(2, 3, Activation::Relu, 7);
        let full = layer.forward(&s, s.features());
        for v in 0..4u32 {
            assert_eq!(
                full.row(v as usize),
                layer.forward_vertex(&s, s.features(), v).as_slice()
            );
        }
    }

    #[test]
    fn relu_activation_is_applied() {
        let s = snap(2, &[]);
        let layer = GcnLayer::new(2, 4, Activation::Relu, 3);
        let out = layer.forward(&s, s.features());
        assert!(out.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    #[should_panic(expected = "input dim mismatch")]
    fn forward_rejects_bad_input_dim() {
        let s = snap(2, &[]);
        let layer = GcnLayer::new(3, 2, Activation::Identity, 1);
        let _ = layer.forward(&s, s.features());
    }

    #[test]
    fn mean_aggregator_averages_neighborhood() {
        let s = snap(2, &[(0, 1)]);
        let layer = GcnLayer::with_aggregator(2, 2, Activation::Identity, AggregatorKind::Mean, 1);
        let agg = layer.aggregate_vertex(&s, s.features(), 0);
        // Mean of rows [0,1] and [2,3].
        assert!((agg[0] - 1.0).abs() < 1e-6);
        assert!((agg[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sum_aggregator_adds_neighborhood() {
        let s = snap(2, &[(0, 1)]);
        let layer = GcnLayer::with_aggregator(2, 2, Activation::Identity, AggregatorKind::Sum, 1);
        let agg = layer.aggregate_vertex(&s, s.features(), 0);
        assert_eq!(agg, vec![2.0, 4.0]);
    }

    #[test]
    fn default_layer_uses_gcn_normalisation() {
        let layer = GcnLayer::new(2, 2, Activation::Identity, 1);
        assert_eq!(layer.aggregator(), AggregatorKind::GcnNormalized);
    }

    #[test]
    fn deterministic_weights() {
        let a = GcnLayer::new(4, 4, Activation::Tanh, 11);
        let b = GcnLayer::new(4, 4, Activation::Tanh, 11);
        assert_eq!(a, b);
    }
}
