//! The GNN module: degree-normalised aggregation plus a dense combination,
//! i.e. one GCN layer `Z = act( Â X W )` with `Â` the symmetrically
//! normalised adjacency with self-loops (Kipf & Welling).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tagnn_graph::types::VertexId;
use tagnn_graph::Snapshot;
use tagnn_tensor::dispatch::{Kernel, LayerChoice};
use tagnn_tensor::kernels::{self, ScratchBuf};
use tagnn_tensor::{init, ops, Activation, DenseMatrix};

/// Fills `out[v] = (deg(v) + 1) as f32` — the per-snapshot
/// normalisation table every fused layer forward shares, so degrees are
/// converted once per snapshot instead of once per vertex per layer.
///
/// # Panics
/// Panics if `out.len() != snap.num_vertices()`.
pub fn fill_degp1(snap: &Snapshot, out: &mut [f32]) {
    assert_eq!(out.len(), snap.num_vertices(), "degp1 length mismatch");
    out.par_iter_mut().enumerate().for_each(|(v, d)| {
        *d = (snap.csr().degree(v as VertexId) + 1) as f32;
    });
}

/// How neighbour features are combined before the dense transform — the
/// paper's claim that TaGNN "is highly versatile and adaptable to a broad
/// range of DGNN models" rests on the aggregation being pluggable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregatorKind {
    /// Symmetric GCN normalisation with self-loop (Kipf & Welling):
    /// `sum 1/sqrt((d_v+1)(d_u+1)) * x_u`.
    GcnNormalized,
    /// GraphSAGE-style mean over `N(v) ∪ {v}`.
    Mean,
    /// Plain neighbourhood sum (GIN-style, self included).
    Sum,
}

/// One GCN layer: `out = act(aggregate(X) * W)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcnLayer {
    weight: DenseMatrix,
    activation: Activation,
    aggregator: AggregatorKind,
}

impl GcnLayer {
    /// Builds a layer with Xavier-initialised weights and the standard
    /// symmetric GCN aggregator.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, seed: u64) -> Self {
        Self::with_aggregator(
            in_dim,
            out_dim,
            activation,
            AggregatorKind::GcnNormalized,
            seed,
        )
    }

    /// Builds a layer with an explicit aggregator.
    pub fn with_aggregator(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        aggregator: AggregatorKind,
        seed: u64,
    ) -> Self {
        Self {
            weight: init::xavier_uniform(in_dim, out_dim, seed),
            activation,
            aggregator,
        }
    }

    /// The aggregation scheme of this layer.
    #[inline]
    pub fn aggregator(&self) -> AggregatorKind {
        self.aggregator
    }

    /// Input dimensionality.
    #[inline]
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    #[inline]
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// The weight matrix.
    #[inline]
    pub fn weight(&self) -> &DenseMatrix {
        &self.weight
    }

    /// The activation applied after combination.
    #[inline]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Whether the fused forward multiplies by `W` *before* aggregating.
    ///
    /// `Â·(X·W)` and `(Â·X)·W` are mathematically identical; this
    /// shape-only heuristic picks whichever moves fewer floats through
    /// the aggregation: transform first exactly when the layer shrinks
    /// its input (`out_dim < in_dim`), aggregate first otherwise.
    ///
    /// This is the *legacy fallback*: the engines now fold measured
    /// input density into the same decision through
    /// [`tagnn_tensor::dispatch::Dispatcher::choose_layer`] and call
    /// [`Self::forward_planned_into`] with the result. On fully dense
    /// inputs the dispatcher's choice collapses to exactly this
    /// heuristic, so the two agree whenever sparsity gives no reason
    /// to diverge.
    #[inline]
    pub fn transform_first(&self) -> bool {
        self.out_dim() < self.in_dim()
    }

    /// The dispatch decision [`Self::forward_into`] executes: the
    /// legacy shape-only association with the dense kernel.
    #[inline]
    pub fn legacy_choice(&self) -> LayerChoice {
        LayerChoice {
            transform_first: self.transform_first(),
            kernel: Kernel::Dense,
            density: 1.0,
        }
    }

    /// Aggregation for a single vertex over `N(v) ∪ {v}`, per the layer's
    /// [`AggregatorKind`].
    ///
    /// Inactive vertices aggregate to zero (they do not exist in the
    /// snapshot).
    pub fn aggregate_vertex(&self, snap: &Snapshot, x: &DenseMatrix, v: VertexId) -> Vec<f32> {
        let dim = x.cols();
        let mut acc = vec![0.0f32; dim];
        if !snap.is_active(v) {
            return acc;
        }
        let deg = snap.csr().degree(v);
        match self.aggregator {
            AggregatorKind::GcnNormalized => {
                let dv = (deg + 1) as f32;
                // Self-loop.
                ops::axpy(&mut acc, 1.0 / dv, x.row(v as usize));
                for &u in snap.neighbors(v) {
                    let du = (snap.csr().degree(u) + 1) as f32;
                    let norm = 1.0 / (dv * du).sqrt();
                    ops::axpy(&mut acc, norm, x.row(u as usize));
                }
            }
            AggregatorKind::Mean => {
                let scale = 1.0 / (deg + 1) as f32;
                ops::axpy(&mut acc, scale, x.row(v as usize));
                for &u in snap.neighbors(v) {
                    ops::axpy(&mut acc, scale, x.row(u as usize));
                }
            }
            AggregatorKind::Sum => {
                ops::axpy(&mut acc, 1.0, x.row(v as usize));
                for &u in snap.neighbors(v) {
                    ops::axpy(&mut acc, 1.0, x.row(u as usize));
                }
            }
        }
        acc
    }

    /// Combination for one vertex: `act(agg * W)`.
    pub fn combine_vertex(&self, agg: &[f32]) -> Vec<f32> {
        let mut out = ops::vecmat(agg, &self.weight);
        self.activation.apply(&mut out);
        out
    }

    /// Full layer forward for one vertex.
    pub fn forward_vertex(&self, snap: &Snapshot, x: &DenseMatrix, v: VertexId) -> Vec<f32> {
        self.combine_vertex(&self.aggregate_vertex(snap, x, v))
    }

    /// Aggregation for one vertex over a flat row-major table `x`
    /// (`num_vertices · dim`), written into `out` (length `dim`).
    ///
    /// Same math as [`Self::aggregate_vertex`] — inactive vertices
    /// aggregate to zero, self-loop first, then sorted neighbours — but
    /// normalisation weights come from the precomputed `degp1` table
    /// (see [`fill_degp1`]) and no allocation happens.
    pub fn aggregate_row_into(
        &self,
        snap: &Snapshot,
        x: &[f32],
        dim: usize,
        degp1: &[f32],
        v: VertexId,
        out: &mut [f32],
    ) {
        out.fill(0.0);
        if !snap.is_active(v) {
            return;
        }
        let dv = degp1[v as usize];
        match self.aggregator {
            AggregatorKind::GcnNormalized => {
                // Self-loop.
                ops::axpy(out, 1.0 / dv, &x[v as usize * dim..][..dim]);
                for &u in snap.neighbors(v) {
                    let norm = 1.0 / (dv * degp1[u as usize]).sqrt();
                    ops::axpy(out, norm, &x[u as usize * dim..][..dim]);
                }
            }
            AggregatorKind::Mean => {
                let scale = 1.0 / dv;
                ops::axpy(out, scale, &x[v as usize * dim..][..dim]);
                for &u in snap.neighbors(v) {
                    ops::axpy(out, scale, &x[u as usize * dim..][..dim]);
                }
            }
            AggregatorKind::Sum => {
                ops::axpy(out, 1.0, &x[v as usize * dim..][..dim]);
                for &u in snap.neighbors(v) {
                    ops::axpy(out, 1.0, &x[u as usize * dim..][..dim]);
                }
            }
        }
    }

    /// [`Self::aggregate_row_into`] for every vertex, parallel over
    /// rows. `x` and `out` are both `num_vertices · dim` flat tables.
    pub fn aggregate_rows_into(
        &self,
        snap: &Snapshot,
        x: &[f32],
        dim: usize,
        degp1: &[f32],
        out: &mut [f32],
    ) {
        if dim == 0 {
            return;
        }
        out.par_chunks_exact_mut(dim)
            .enumerate()
            .for_each(|(v, row)| {
                self.aggregate_row_into(snap, x, dim, degp1, v as VertexId, row);
            });
    }

    /// Allocation-free combination for one vertex: `out = act(agg · W)`
    /// via the row kernel — bit-compatible with one row of the fused
    /// GEMM over the same aggregate table.
    pub fn combine_row_into(&self, agg: &[f32], out: &mut [f32]) {
        kernels::rowmat_into(agg, self.weight.as_slice(), self.out_dim(), out);
        self.activation.apply(out);
    }

    /// Recomputes one row of the layer's `X·W` product (no activation,
    /// no aggregation) — bit-compatible with the same row of the fused
    /// transform-first GEMM, which is what makes per-row patching of a
    /// cached `X·W` table legal.
    pub fn transform_row_into(&self, x_row: &[f32], out: &mut [f32]) {
        kernels::rowmat_into(x_row, self.weight.as_slice(), self.out_dim(), out);
    }

    /// Fused full-snapshot forward into a caller-provided buffer.
    ///
    /// Picks the cheaper associativity per layer: `Â·(X·W)` when the
    /// layer shrinks its input ([`Self::transform_first`]), `(Â·X)·W`
    /// otherwise. The aggregate-first path performs exactly the same
    /// additions in the same order as the per-vertex
    /// [`Self::forward_vertex`]; the transform-first path reassociates
    /// the product and may differ in the last float bits.
    ///
    /// `work` is the layer's intermediate workspace (grown on first
    /// use, reused afterwards); `x` is the `num_vertices · in_dim`
    /// input table and `out` the `num_vertices · out_dim` output.
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn forward_into(
        &self,
        snap: &Snapshot,
        x: &[f32],
        degp1: &[f32],
        work: &mut ScratchBuf<f32>,
        out: &mut [f32],
    ) {
        self.forward_planned_into(snap, x, degp1, work, None, &self.legacy_choice(), out);
    }

    /// [`Self::forward_into`] executing an explicit dispatch decision:
    /// the engines' sparsity-adaptive layer
    /// ([`tagnn_tensor::dispatch::Dispatcher`]) picks the factorisation
    /// and the kernel for the GEMM factor; this method just runs it.
    ///
    /// When `choice.kernel` is [`Kernel::Spmm`] the caller must supply
    /// `nz_rows`: the ascending indices of **every** nonzero row of
    /// `x`. That list is an exactness contract, not a hint — a nonzero
    /// row missing from it would make the SpMM compute wrong numbers,
    /// not merely differently-rounded ones. Because the SpMM shares the
    /// dense GEMM's row kernel, a correct list makes the transform-first
    /// arm bit-identical to its dense execution at every density.
    ///
    /// The aggregate-first arm always runs the dense GEMM: aggregation
    /// densifies rows, so its GEMM input has no row sparsity to exploit.
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    #[allow(clippy::too_many_arguments)] // kernel-shaped signature: operands + decision + out
    pub fn forward_planned_into(
        &self,
        snap: &Snapshot,
        x: &[f32],
        degp1: &[f32],
        work: &mut ScratchBuf<f32>,
        nz_rows: Option<&[u32]>,
        choice: &LayerChoice,
        out: &mut [f32],
    ) {
        let n = snap.num_vertices();
        assert_eq!(x.len(), n * self.in_dim(), "layer input dim mismatch");
        assert_eq!(out.len(), n * self.out_dim(), "layer output shape mismatch");
        assert_eq!(degp1.len(), n, "degp1 length mismatch");
        let (in_dim, out_dim) = (self.in_dim(), self.out_dim());
        if choice.transform_first {
            let xw = work.take_uninit(n * out_dim);
            match (choice.kernel, nz_rows) {
                (Kernel::Spmm, Some(rows)) => {
                    kernels::spmm_csr_into(n, in_dim, out_dim, rows, x, self.weight.as_slice(), xw);
                }
                _ => kernels::gemm_into(n, in_dim, out_dim, x, self.weight.as_slice(), xw),
            }
            self.aggregate_rows_into(snap, xw, out_dim, degp1, out);
        } else {
            let agg = work.take_uninit(n * in_dim);
            self.aggregate_rows_into(snap, x, in_dim, degp1, agg);
            kernels::gemm_into(n, in_dim, out_dim, agg, self.weight.as_slice(), out);
        }
        self.activation.apply(out);
    }

    /// Full layer forward over the whole snapshot.
    ///
    /// Thin wrapper over [`Self::forward_into`] with a throwaway
    /// scratch — engines that run many snapshots should call
    /// `forward_into` with a persistent [`ScratchBuf`] instead.
    ///
    /// # Panics
    /// Panics if `x` has the wrong shape.
    pub fn forward(&self, snap: &Snapshot, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            x.rows(),
            snap.num_vertices(),
            "feature table must cover the universe"
        );
        assert_eq!(x.cols(), self.in_dim(), "layer input dim mismatch");
        let n = snap.num_vertices();
        let mut degp1 = vec![0.0f32; n];
        fill_degp1(snap, &mut degp1);
        let mut work = ScratchBuf::default();
        let mut out = vec![0.0f32; n * self.out_dim()];
        self.forward_into(snap, x.as_slice(), &degp1, &mut work, &mut out);
        DenseMatrix::from_vec(n, self.out_dim(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagnn_graph::Csr;

    fn snap(n: usize, edges: &[(u32, u32)]) -> Snapshot {
        Snapshot::fully_active(
            Csr::from_edges(n, edges),
            DenseMatrix::from_fn(n, 2, |r, c| (r * 2 + c) as f32),
        )
    }

    #[test]
    fn aggregate_isolated_vertex_is_scaled_self_loop() {
        let s = snap(3, &[]);
        let layer = GcnLayer::new(2, 2, Activation::Identity, 1);
        let agg = layer.aggregate_vertex(&s, s.features(), 1);
        // Degree 0: self-loop weight 1/(0+1) = 1.
        assert_eq!(agg, vec![2.0, 3.0]);
    }

    #[test]
    fn aggregate_includes_normalised_neighbors() {
        let s = snap(2, &[(0, 1)]);
        let layer = GcnLayer::new(2, 2, Activation::Identity, 1);
        let agg = layer.aggregate_vertex(&s, s.features(), 0);
        // v0: degree 1 -> self 1/2 * [0,1]; neighbour v1 degree 0 ->
        // 1/sqrt(2*1) * [2,3].
        let inv = 1.0 / (2.0f32).sqrt();
        assert!((agg[0] - (0.0 * 0.5 + 2.0 * inv)).abs() < 1e-6);
        assert!((agg[1] - (1.0 * 0.5 + 3.0 * inv)).abs() < 1e-6);
    }

    #[test]
    fn inactive_vertex_aggregates_to_zero() {
        let csr = Csr::from_edges(2, &[(0, 1)]);
        let s = Snapshot::new(
            csr,
            DenseMatrix::from_fn(2, 2, |_, _| 1.0),
            vec![true, false],
        );
        let layer = GcnLayer::new(2, 2, Activation::Identity, 1);
        assert_eq!(layer.aggregate_vertex(&s, s.features(), 1), vec![0.0, 0.0]);
    }

    #[test]
    fn forward_matches_per_vertex_forward() {
        let s = snap(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let layer = GcnLayer::new(2, 3, Activation::Relu, 7);
        let full = layer.forward(&s, s.features());
        for v in 0..4u32 {
            assert_eq!(
                full.row(v as usize),
                layer.forward_vertex(&s, s.features(), v).as_slice()
            );
        }
    }

    #[test]
    fn transform_first_triggers_only_on_shrinking_layers() {
        assert!(GcnLayer::new(4, 2, Activation::Identity, 1).transform_first());
        assert!(!GcnLayer::new(2, 4, Activation::Identity, 1).transform_first());
        assert!(!GcnLayer::new(3, 3, Activation::Identity, 1).transform_first());
    }

    #[test]
    fn transform_first_forward_matches_per_vertex_within_tolerance() {
        // A shrinking layer takes the Â·(X·W) path, which reassociates
        // the product relative to forward_vertex's (Â·X)·W — equality
        // only up to float reassociation.
        let n = 6;
        let s = Snapshot::fully_active(
            Csr::from_edges(n, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]),
            DenseMatrix::from_fn(n, 5, |r, c| ((r * 5 + c) as f32).sin()),
        );
        for agg in [
            AggregatorKind::GcnNormalized,
            AggregatorKind::Mean,
            AggregatorKind::Sum,
        ] {
            let layer = GcnLayer::with_aggregator(5, 2, Activation::Relu, agg, 9);
            assert!(layer.transform_first());
            let full = layer.forward(&s, s.features());
            for v in 0..n as u32 {
                let want = layer.forward_vertex(&s, s.features(), v);
                for (a, b) in full.row(v as usize).iter().zip(&want) {
                    assert!((a - b).abs() < 1e-5, "v{v}: {a} vs {b} ({agg:?})");
                }
            }
        }
    }

    #[test]
    fn planned_spmm_forward_is_bit_identical_to_dense_forward() {
        use tagnn_tensor::dispatch::{Kernel, LayerChoice};
        // Zero out some feature rows, run the transform-first arm once
        // densely and once through the SpMM with the matching row list:
        // the outputs must agree bit-for-bit, not approximately.
        let n = 9;
        let mut feats = DenseMatrix::from_fn(n, 5, |r, c| ((r * 5 + c) as f32).sin());
        for r in [1usize, 4, 7] {
            feats.row_mut(r).fill(0.0);
        }
        let rows: Vec<u32> = (0..n as u32).filter(|r| ![1, 4, 7].contains(r)).collect();
        let s = Snapshot::fully_active(
            Csr::from_edges(n, &[(0, 1), (1, 2), (2, 3), (4, 5), (6, 7), (7, 8)]),
            feats,
        );
        let layer = GcnLayer::new(5, 3, Activation::Tanh, 17);
        let mut degp1 = vec![0.0f32; n];
        fill_degp1(&s, &mut degp1);
        let mut work = ScratchBuf::default();
        let mut dense_out = vec![0.0f32; n * 3];
        layer.forward_into(
            &s,
            s.features().as_slice(),
            &degp1,
            &mut work,
            &mut dense_out,
        );
        let choice = LayerChoice {
            transform_first: true,
            kernel: Kernel::Spmm,
            density: rows.len() as f64 / n as f64,
        };
        let mut spmm_out = vec![f32::NAN; n * 3];
        layer.forward_planned_into(
            &s,
            s.features().as_slice(),
            &degp1,
            &mut work,
            Some(&rows),
            &choice,
            &mut spmm_out,
        );
        for (i, (a, b)) in dense_out.iter().zip(&spmm_out).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "elem {i}: {a} vs {b}");
        }
    }

    #[test]
    fn aggregate_row_into_matches_aggregate_vertex() {
        let csr = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2)]);
        let s = Snapshot::new(
            csr,
            DenseMatrix::from_fn(4, 3, |r, c| (r as f32) - (c as f32) * 0.5),
            vec![true, true, false, true],
        );
        let mut degp1 = vec![0.0f32; 4];
        fill_degp1(&s, &mut degp1);
        for agg in [
            AggregatorKind::GcnNormalized,
            AggregatorKind::Mean,
            AggregatorKind::Sum,
        ] {
            let layer = GcnLayer::with_aggregator(3, 3, Activation::Identity, agg, 5);
            let mut row = vec![0.0f32; 3];
            for v in 0..4u32 {
                layer.aggregate_row_into(&s, s.features().as_slice(), 3, &degp1, v, &mut row);
                assert_eq!(
                    row,
                    layer.aggregate_vertex(&s, s.features(), v),
                    "{agg:?} v{v}"
                );
            }
        }
    }

    #[test]
    fn combine_row_into_matches_combine_vertex() {
        let layer = GcnLayer::new(3, 4, Activation::Relu, 13);
        let agg = [0.3f32, -1.2, 0.0];
        let mut out = vec![0.0f32; 4];
        layer.combine_row_into(&agg, &mut out);
        assert_eq!(out, layer.combine_vertex(&agg));
    }

    #[test]
    fn relu_activation_is_applied() {
        let s = snap(2, &[]);
        let layer = GcnLayer::new(2, 4, Activation::Relu, 3);
        let out = layer.forward(&s, s.features());
        assert!(out.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    #[should_panic(expected = "input dim mismatch")]
    fn forward_rejects_bad_input_dim() {
        let s = snap(2, &[]);
        let layer = GcnLayer::new(3, 2, Activation::Identity, 1);
        let _ = layer.forward(&s, s.features());
    }

    #[test]
    fn mean_aggregator_averages_neighborhood() {
        let s = snap(2, &[(0, 1)]);
        let layer = GcnLayer::with_aggregator(2, 2, Activation::Identity, AggregatorKind::Mean, 1);
        let agg = layer.aggregate_vertex(&s, s.features(), 0);
        // Mean of rows [0,1] and [2,3].
        assert!((agg[0] - 1.0).abs() < 1e-6);
        assert!((agg[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sum_aggregator_adds_neighborhood() {
        let s = snap(2, &[(0, 1)]);
        let layer = GcnLayer::with_aggregator(2, 2, Activation::Identity, AggregatorKind::Sum, 1);
        let agg = layer.aggregate_vertex(&s, s.features(), 0);
        assert_eq!(agg, vec![2.0, 4.0]);
    }

    #[test]
    fn default_layer_uses_gcn_normalisation() {
        let layer = GcnLayer::new(2, 2, Activation::Identity, 1);
        assert_eq!(layer.aggregator(), AggregatorKind::GcnNormalized);
    }

    #[test]
    fn deterministic_weights() {
        let a = GcnLayer::new(4, 4, Activation::Tanh, 11);
        let b = GcnLayer::new(4, 4, Activation::Tanh, 11);
        assert_eq!(a, b);
    }
}
