//! The synthetic classification task behind the Table 5 / Fig. 3(b)
//! accuracy experiments.
//!
//! Trained checkpoints and labelled datasets are unavailable, so accuracy is
//! measured teacher-style: the exact reference model plus a fixed linear
//! readout defines per-vertex predictions; labels are those predictions
//! corrupted with just enough symmetric noise that the *exact* model scores
//! the paper's baseline accuracy. An approximate execution then loses
//! accuracy exactly to the extent its predictions diverge from the exact
//! model — the quantity Table 5 compares across approximation methods.

use crate::dgnn::ModelKind;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tagnn_graph::generate::DatasetPreset;
use tagnn_tensor::{init, ops, DenseMatrix};

/// Number of label classes in the synthetic task.
pub const NUM_CLASSES: usize = 8;

/// L2-normalises a feature row (zero rows pass through unchanged).
fn normalize(row: &[f32]) -> Vec<f32> {
    let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm < 1e-12 {
        row.to_vec()
    } else {
        row.iter().map(|v| v / norm).collect()
    }
}

/// A fixed linear readout `hidden -> NUM_CLASSES` with argmax prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Readout {
    weight: DenseMatrix,
}

impl Readout {
    /// Deterministically initialised readout head.
    pub fn new(hidden: usize, seed: u64) -> Self {
        Self {
            weight: init::xavier_uniform(hidden, NUM_CLASSES, seed),
        }
    }

    /// Argmax class per vertex from final features `h` (one row per
    /// vertex). Rows are L2-normalised first (a cosine classifier):
    /// recurrent feature magnitudes vary over orders of magnitude across
    /// dimensions, so direction — not raw scale — carries the class signal.
    pub fn predict(&self, h: &DenseMatrix) -> Vec<u8> {
        (0..h.rows())
            .map(|v| {
                let logits = ops::vecmat(&normalize(h.row(v)), &self.weight);
                logits
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(c, _)| c as u8)
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// Corrupts teacher predictions so the teacher itself scores
/// `baseline_accuracy`: with probability `eta = 1 - acc` a label is
/// replaced by a uniformly random *different* class (so every flip is a
/// teacher miss, making the calibration exact in expectation).
///
/// # Panics
/// Panics unless `baseline_accuracy` is in `(1/C, 1]`.
pub fn noisy_labels(teacher: &[u8], baseline_accuracy: f64, seed: u64) -> Vec<u8> {
    let chance = 1.0 / NUM_CLASSES as f64;
    assert!(
        baseline_accuracy > chance && baseline_accuracy <= 1.0,
        "baseline accuracy must beat chance"
    );
    let eta = 1.0 - baseline_accuracy;
    let mut rng = init::rng(seed);
    teacher
        .iter()
        .map(|&t| {
            if rng.gen_bool(eta) {
                // A uniformly random class, excluding the true one.
                let mut c = rng.gen_range(0..NUM_CLASSES as u8 - 1);
                if c >= t {
                    c += 1;
                }
                c
            } else {
                t
            }
        })
        .collect()
}

/// Fraction of matching predictions.
///
/// # Panics
/// Panics on length mismatch.
pub fn accuracy(predictions: &[u8], labels: &[u8]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "prediction/label length mismatch"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let hits = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / predictions.len() as f64
}

/// Table 5's baseline accuracy (%) for each (model, dataset) pair.
pub fn paper_baseline_accuracy(model: ModelKind, dataset: DatasetPreset) -> f64 {
    use DatasetPreset::*;
    use ModelKind::*;
    let pct = match (model, dataset) {
        (CdGcn, HepPh) => 75.3,
        (CdGcn, Gdelt) => 78.2,
        (CdGcn, MovieLens) => 80.4,
        (CdGcn, Epinions) => 70.2,
        (CdGcn, Flickr) => 61.4,
        (GcLstm, HepPh) => 89.5,
        (GcLstm, Gdelt) => 80.5,
        (GcLstm, MovieLens) => 91.2,
        (GcLstm, Epinions) => 87.3,
        (GcLstm, Flickr) => 72.4,
        (TGcn, HepPh) => 75.3,
        (TGcn, Gdelt) => 81.4,
        (TGcn, MovieLens) => 75.6,
        (TGcn, Epinions) => 85.2,
        (TGcn, Flickr) => 58.4,
    };
    pct / 100.0
}

/// Evaluates an approximate run against labels derived from an exact run:
/// returns `(exact_accuracy, approx_accuracy)` on the final snapshot.
pub fn evaluate_final_snapshot(
    exact_h: &DenseMatrix,
    approx_h: &DenseMatrix,
    baseline_accuracy: f64,
    seed: u64,
) -> (f64, f64) {
    let readout = Readout::new(exact_h.cols(), seed);
    let teacher = readout.predict(exact_h);
    let labels = noisy_labels(&teacher, baseline_accuracy, seed.wrapping_add(7));
    let approx_preds = readout.predict(approx_h);
    (
        accuracy(&teacher, &labels),
        accuracy(&approx_preds, &labels),
    )
}

/// A margin-filtered evaluation task.
///
/// A randomly initialised readout has no decision margins, so vanishingly
/// small feature drift flips argmaxes and overstates every approximation's
/// accuracy loss. Trained classifiers separate classes with a margin;
/// we recover that property by evaluating on the vertices whose teacher
/// logits have an above-median top-1/top-2 margin — predictions there only
/// flip under *material* feature drift, which is exactly what Table 5
/// compares across approximation methods.
#[derive(Debug, Clone)]
pub struct EvalTask {
    readout: Readout,
    indices: Vec<usize>,
    labels: Vec<u8>,
}

impl EvalTask {
    /// Builds the task from an exact run's final features.
    pub fn new(exact_h: &DenseMatrix, baseline_accuracy: f64, seed: u64) -> Self {
        let readout = Readout::new(exact_h.cols(), seed);
        // Top-1/top-2 logit margin per vertex.
        let mut margins: Vec<(usize, f32)> = (0..exact_h.rows())
            .map(|v| {
                let logits = ops::vecmat(&normalize(exact_h.row(v)), &readout.weight);
                let mut best = f32::NEG_INFINITY;
                let mut second = f32::NEG_INFINITY;
                for &l in &logits {
                    if l > best {
                        second = best;
                        best = l;
                    } else if l > second {
                        second = l;
                    }
                }
                (v, best - second)
            })
            .collect();
        margins.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let keep = (margins.len() / 2).max(1);
        let mut indices: Vec<usize> = margins[..keep].iter().map(|&(v, _)| v).collect();
        indices.sort_unstable();

        let teacher_all = readout.predict(exact_h);
        let teacher: Vec<u8> = indices.iter().map(|&v| teacher_all[v]).collect();
        let labels = noisy_labels(&teacher, baseline_accuracy, seed.wrapping_add(7));
        Self {
            readout,
            indices,
            labels,
        }
    }

    /// Number of evaluated vertices.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the evaluation set is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Accuracy of final features `h` on the task.
    pub fn accuracy(&self, h: &DenseMatrix) -> f64 {
        let preds_all = self.readout.predict(h);
        let preds: Vec<u8> = self.indices.iter().map(|&v| preds_all[v]).collect();
        accuracy(&preds, &self.labels)
    }

    /// Mean accuracy over several snapshots' final features — used to
    /// average over a whole batch so the measurement covers every skipping
    /// staleness level (0..K-1) instead of only the batch's last snapshot.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn mean_accuracy(&self, hs: &[&DenseMatrix]) -> f64 {
        assert!(!hs.is_empty(), "need at least one snapshot");
        hs.iter().map(|h| self.accuracy(h)).sum::<f64>() / hs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readout_is_deterministic() {
        let h = DenseMatrix::from_fn(5, 4, |r, c| (r + c) as f32 * 0.1);
        let a = Readout::new(4, 3).predict(&h);
        let b = Readout::new(4, 3).predict(&h);
        assert_eq!(a, b);
    }

    #[test]
    fn identical_features_get_identical_predictions() {
        let h = DenseMatrix::from_fn(3, 4, |_, c| c as f32);
        let preds = Readout::new(4, 1).predict(&h);
        assert!(preds.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn noise_rate_calibrates_teacher_accuracy() {
        let teacher: Vec<u8> = (0..20_000).map(|i| (i % NUM_CLASSES) as u8).collect();
        let labels = noisy_labels(&teacher, 0.80, 5);
        let acc = accuracy(&teacher, &labels);
        assert!(
            (acc - 0.80).abs() < 0.02,
            "teacher accuracy {acc} should be ~0.80"
        );
    }

    #[test]
    fn perfect_baseline_keeps_labels_clean() {
        let teacher = vec![1u8, 2, 3, 4];
        assert_eq!(noisy_labels(&teacher, 1.0, 9), teacher);
    }

    #[test]
    #[should_panic(expected = "beat chance")]
    fn rejects_sub_chance_baseline() {
        let _ = noisy_labels(&[0, 1], 0.05, 1);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn noisy_label_stays_in_class_range() {
        let teacher = vec![NUM_CLASSES as u8 - 1; 5_000];
        let labels = noisy_labels(&teacher, 0.5, 11);
        assert!(labels.iter().all(|&l| (l as usize) < NUM_CLASSES));
        // Flipped labels never equal the teacher class.
        assert!(labels.iter().any(|&l| l != NUM_CLASSES as u8 - 1));
    }

    #[test]
    fn paper_table_has_all_cells() {
        for m in ModelKind::ALL {
            for d in DatasetPreset::ALL {
                let acc = paper_baseline_accuracy(m, d);
                assert!((0.5..1.0).contains(&acc), "{m:?}/{d:?} -> {acc}");
            }
        }
    }

    #[test]
    fn evaluate_ranks_exact_above_noise() {
        let exact = DenseMatrix::from_fn(200, 4, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.1 - 0.6);
        // A mildly perturbed copy.
        let approx = DenseMatrix::from_fn(200, 4, |r, c| {
            exact.get(r, c) + if r % 10 == 0 { 0.5 } else { 0.0 }
        });
        let (exact_acc, approx_acc) = evaluate_final_snapshot(&exact, &approx, 0.9, 3);
        assert!(
            exact_acc >= approx_acc,
            "perturbation cannot improve accuracy"
        );
    }
}
