//! The RNN approximation baselines of Table 5.
//!
//! Each method replaces TaGNN's topology-aware cell skipping with a prior
//! approximation technique, applied to the *same* exact GNN outputs so that
//! Table 5 isolates RNN-approximation fidelity:
//!
//! * **DeltaRNN** (TaGNN-DR) — element-wise input-delta thresholding: input
//!   components whose change since the last reconstructed input is below a
//!   threshold are treated as unchanged. Ignores graph topology entirely.
//! * **ALSTM** (TaGNN-AM) — approximate multipliers for LSTM gate math,
//!   modelled as mantissa truncation of every multiplication operand.
//! * **ATLAS** (TaGNN-AS) — a low-power time-series LSTM: approximate
//!   multipliers plus piecewise-linear (hard) activations.

use crate::dgnn::DgnnModel;
use crate::rnn::{RnnCell, RnnKind};
use serde::{Deserialize, Serialize};
use tagnn_graph::types::VertexId;
use tagnn_graph::DynamicGraph;
use tagnn_tensor::{ops, DenseMatrix};

/// Which approximation to apply in the RNN module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ApproxMethod {
    /// DeltaRNN: drop input-delta components with `|Δx_i| < threshold`.
    DeltaRnn {
        /// Per-element delta threshold (the paper's Δ knob).
        threshold: f32,
    },
    /// ALSTM: approximate multipliers, modelled as operand quantisation to
    /// `mantissa_bits` fractional bits.
    Alstm {
        /// Fractional bits retained by the approximate multiplier.
        mantissa_bits: u32,
    },
    /// ATLAS: approximate multipliers plus hard (piecewise-linear)
    /// sigmoid/tanh.
    Atlas {
        /// Fractional bits retained by the approximate multiplier.
        mantissa_bits: u32,
    },
}

impl ApproxMethod {
    /// The paper's variant names.
    pub fn name(self) -> &'static str {
        match self {
            ApproxMethod::DeltaRnn { .. } => "TaGNN-DR",
            ApproxMethod::Alstm { .. } => "TaGNN-AM",
            ApproxMethod::Atlas { .. } => "TaGNN-AS",
        }
    }

    /// Operating points used in the Table 5 reproduction.
    pub fn paper_variants() -> [ApproxMethod; 3] {
        [
            ApproxMethod::DeltaRnn { threshold: 0.25 },
            ApproxMethod::Alstm { mantissa_bits: 4 },
            ApproxMethod::Atlas { mantissa_bits: 3 },
        ]
    }
}

/// Quantises to `bits` fractional bits (the approximate-multiplier model).
#[inline]
fn quantize(x: f32, bits: u32) -> f32 {
    let scale = (1u32 << bits) as f32;
    (x * scale).round() / scale
}

/// Hard sigmoid: `clamp(0.25x + 0.5, 0, 1)`.
#[inline]
fn hard_sigmoid(x: f32) -> f32 {
    (0.25 * x + 0.5).clamp(0.0, 1.0)
}

/// Hard tanh: `clamp(x, -1, 1)`.
#[inline]
fn hard_tanh(x: f32) -> f32 {
    x.clamp(-1.0, 1.0)
}

/// Per-vertex state for the approximate runners.
#[derive(Debug, Clone)]
struct ApproxState {
    h: Vec<f32>,
    c: Vec<f32>,
    /// Reconstructed input DeltaRNN believes it has seen.
    x_ref: Vec<f32>,
    /// Cached `W_x * x_ref`.
    x_pre: Vec<f32>,
    primed: bool,
}

/// Runs the approximate RNN over exact GNN outputs.
///
/// `gnn_outputs` must contain one `Z_t` per snapshot (e.g. from
/// [`crate::ReferenceEngine`]); the return value is `H_t` per snapshot.
///
/// # Panics
/// Panics if `gnn_outputs` is empty or shapes disagree with the model.
pub fn run_approx_rnn(
    model: &DgnnModel,
    graph: &DynamicGraph,
    gnn_outputs: &[DenseMatrix],
    method: ApproxMethod,
) -> Vec<DenseMatrix> {
    assert_eq!(
        gnn_outputs.len(),
        graph.num_snapshots(),
        "one Z per snapshot required"
    );
    let n = graph.num_vertices();
    let hidden = model.hidden();
    let cell = model.cell();
    let gates = cell.kind().gates();
    let mut states: Vec<ApproxState> = (0..n)
        .map(|_| ApproxState {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
            x_ref: vec![0.0; hidden],
            x_pre: vec![0.0; hidden * gates],
            primed: false,
        })
        .collect();

    let mut out = Vec::with_capacity(graph.num_snapshots());
    for (t, z) in gnn_outputs.iter().enumerate() {
        let snap = graph.snapshot(t);
        for v in 0..n as VertexId {
            if !snap.is_active(v) {
                continue;
            }
            let x = z.row(v as usize);
            let st = &mut states[v as usize];
            match method {
                ApproxMethod::DeltaRnn { threshold } => delta_rnn_step(cell, x, st, threshold),
                ApproxMethod::Alstm { mantissa_bits } => {
                    approx_mult_step(cell, x, st, mantissa_bits, false)
                }
                ApproxMethod::Atlas { mantissa_bits } => {
                    approx_mult_step(cell, x, st, mantissa_bits, true)
                }
            }
        }
        let mut h = DenseMatrix::zeros(n, hidden);
        for (vu, st) in states.iter().enumerate() {
            h.set_row(vu, &st.h);
        }
        out.push(h);
    }
    out
}

/// DeltaRNN: patch the cached input pre-activation only for components whose
/// change exceeds the threshold; small drifts silently accumulate.
fn delta_rnn_step(cell: &RnnCell, x: &[f32], st: &mut ApproxState, threshold: f32) {
    if !st.primed {
        st.x_pre = cell.input_preactivation(x);
        st.x_ref.copy_from_slice(x);
        st.primed = true;
    } else {
        for (i, &xi) in x.iter().enumerate() {
            let d = xi - st.x_ref[i];
            if d.abs() >= threshold {
                ops::axpy(&mut st.x_pre, d, cell.w_x().row(i));
                st.x_ref[i] = xi;
            }
        }
    }
    exact_gates(cell, st);
}

/// Exact gate math over a (possibly stale) cached input pre-activation.
fn exact_gates(cell: &RnnCell, st: &mut ApproxState) {
    let h_pre = ops::vecmat(&st.h, cell.w_h());
    let n = cell.hidden();
    let b = cell.bias();
    match cell.kind() {
        RnnKind::Lstm => {
            for j in 0..n {
                let i = tagnn_tensor::activation::sigmoid(st.x_pre[j] + h_pre[j] + b[j]);
                let f =
                    tagnn_tensor::activation::sigmoid(st.x_pre[n + j] + h_pre[n + j] + b[n + j]);
                let g = (st.x_pre[2 * n + j] + h_pre[2 * n + j] + b[2 * n + j]).tanh();
                let o = tagnn_tensor::activation::sigmoid(
                    st.x_pre[3 * n + j] + h_pre[3 * n + j] + b[3 * n + j],
                );
                st.c[j] = f * st.c[j] + i * g;
                st.h[j] = o * st.c[j].tanh();
            }
        }
        RnnKind::Gru => {
            for j in 0..n {
                let r = tagnn_tensor::activation::sigmoid(st.x_pre[j] + h_pre[j] + b[j]);
                let z =
                    tagnn_tensor::activation::sigmoid(st.x_pre[n + j] + h_pre[n + j] + b[n + j]);
                let cand = (st.x_pre[2 * n + j] + r * h_pre[2 * n + j] + b[2 * n + j]).tanh();
                st.h[j] = (1.0 - z) * cand + z * st.h[j];
            }
        }
    }
}

/// ALSTM / ATLAS: every multiplication runs through the approximate
/// multiplier (operand quantisation); ATLAS additionally replaces the
/// activations with their hard piecewise-linear forms.
fn approx_mult_step(cell: &RnnCell, x: &[f32], st: &mut ApproxState, bits: u32, hard_acts: bool) {
    let n = cell.hidden();
    let gcols = cell.w_x().cols();
    // Quantised input-side and hidden-side matvecs.
    let mut x_pre = vec![0.0f32; gcols];
    for (i, &xi) in x.iter().enumerate() {
        let q = quantize(xi, bits);
        if q == 0.0 {
            continue;
        }
        for (o, &w) in x_pre.iter_mut().zip(cell.w_x().row(i)) {
            *o += q * quantize(w, bits);
        }
    }
    let mut h_pre = vec![0.0f32; gcols];
    for (i, &hi) in st.h.iter().enumerate() {
        let q = quantize(hi, bits);
        if q == 0.0 {
            continue;
        }
        for (o, &w) in h_pre.iter_mut().zip(cell.w_h().row(i)) {
            *o += q * quantize(w, bits);
        }
    }
    let b = cell.bias();
    let sig = |v: f32| {
        if hard_acts {
            hard_sigmoid(v)
        } else {
            tagnn_tensor::activation::sigmoid(v)
        }
    };
    let th = |v: f32| if hard_acts { hard_tanh(v) } else { v.tanh() };
    match cell.kind() {
        RnnKind::Lstm => {
            for j in 0..n {
                let i = sig(x_pre[j] + h_pre[j] + b[j]);
                let f = sig(x_pre[n + j] + h_pre[n + j] + b[n + j]);
                let g = th(x_pre[2 * n + j] + h_pre[2 * n + j] + b[2 * n + j]);
                let o = sig(x_pre[3 * n + j] + h_pre[3 * n + j] + b[3 * n + j]);
                st.c[j] = f * st.c[j] + i * g;
                st.h[j] = o * th(st.c[j]);
            }
        }
        RnnKind::Gru => {
            for j in 0..n {
                let r = sig(x_pre[j] + h_pre[j] + b[j]);
                let z = sig(x_pre[n + j] + h_pre[n + j] + b[n + j]);
                let cand = th(x_pre[2 * n + j] + r * h_pre[2 * n + j] + b[2 * n + j]);
                st.h[j] = (1.0 - z) * cand + z * st.h[j];
            }
        }
    }
    st.primed = true;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dgnn::ModelKind;
    use crate::engine::reference::ReferenceEngine;
    use tagnn_graph::generate::GeneratorConfig;

    fn setup() -> (DgnnModel, DynamicGraph, Vec<DenseMatrix>) {
        let g = GeneratorConfig::tiny().generate();
        let m = DgnnModel::new(ModelKind::TGcn, 8, 6, 42);
        let z = ReferenceEngine::new(m.clone()).run(&g).gnn_outputs;
        (m, g, z)
    }

    #[test]
    fn zero_threshold_delta_rnn_matches_reference() {
        let (m, g, z) = setup();
        let exact = ReferenceEngine::new(m.clone()).run(&g);
        let approx = run_approx_rnn(&m, &g, &z, ApproxMethod::DeltaRnn { threshold: 0.0 });
        for (a, b) in exact.final_features.iter().zip(&approx) {
            assert!(a.max_abs_diff(b) < 1e-5, "lossless DeltaRNN must be exact");
        }
    }

    #[test]
    fn thresholded_delta_rnn_diverges() {
        let (m, g, z) = setup();
        let exact = ReferenceEngine::new(m.clone()).run(&g);
        let approx = run_approx_rnn(&m, &g, &z, ApproxMethod::DeltaRnn { threshold: 0.3 });
        let diff: f32 = exact
            .final_features
            .iter()
            .zip(&approx)
            .map(|(a, b)| a.max_abs_diff(b))
            .fold(0.0, f32::max);
        assert!(diff > 1e-4, "a coarse threshold must introduce error");
    }

    #[test]
    fn quantisation_error_shrinks_with_more_bits() {
        let (m, g, z) = setup();
        let exact = ReferenceEngine::new(m.clone()).run(&g);
        let err = |bits| {
            let approx = run_approx_rnn(
                &m,
                &g,
                &z,
                ApproxMethod::Alstm {
                    mantissa_bits: bits,
                },
            );
            exact
                .final_features
                .iter()
                .zip(&approx)
                .map(|(a, b)| a.max_abs_diff(b))
                .fold(0.0f32, f32::max)
        };
        assert!(err(8) < err(2), "more mantissa bits must mean less error");
    }

    #[test]
    fn atlas_hard_activations_add_error_over_alstm() {
        let (m, g, z) = setup();
        let exact = ReferenceEngine::new(m.clone()).run(&g);
        let max_err = |method| {
            let approx = run_approx_rnn(&m, &g, &z, method);
            exact
                .final_features
                .iter()
                .zip(&approx)
                .map(|(a, b)| a.max_abs_diff(b))
                .fold(0.0f32, f32::max)
        };
        let alstm = max_err(ApproxMethod::Alstm { mantissa_bits: 6 });
        let atlas = max_err(ApproxMethod::Atlas { mantissa_bits: 6 });
        assert!(
            atlas >= alstm,
            "hard activations cannot reduce error: {atlas} vs {alstm}"
        );
    }

    #[test]
    fn names_match_paper_variants() {
        let names: Vec<_> = ApproxMethod::paper_variants()
            .iter()
            .map(|m| m.name())
            .collect();
        assert_eq!(names, vec!["TaGNN-DR", "TaGNN-AM", "TaGNN-AS"]);
    }

    #[test]
    fn output_shape_is_one_h_per_snapshot() {
        let (m, g, z) = setup();
        let approx = run_approx_rnn(&m, &g, &z, ApproxMethod::Atlas { mantissa_bits: 4 });
        assert_eq!(approx.len(), g.num_snapshots());
        assert_eq!(approx[0].rows(), g.num_vertices());
        assert_eq!(approx[0].cols(), 6);
    }

    #[test]
    fn quantize_rounds_to_grid() {
        assert_eq!(quantize(0.33, 2), 0.25);
        assert_eq!(quantize(-0.6, 1), -0.5);
        assert_eq!(quantize(0.5, 4), 0.5);
    }

    #[test]
    fn hard_activations_saturate() {
        assert_eq!(hard_sigmoid(10.0), 1.0);
        assert_eq!(hard_sigmoid(-10.0), 0.0);
        assert_eq!(hard_sigmoid(0.0), 0.5);
        assert_eq!(hard_tanh(5.0), 1.0);
        assert_eq!(hard_tanh(-5.0), -1.0);
    }
}
