//! Model-agnostic engine-state export/import — the checkpoint surface.
//!
//! A serving layer that wants durability must capture everything a
//! stream's future outputs depend on. For the engines here that is the
//! per-vertex recurrent context (hidden state `h`, cell state `c` where
//! the cell has one, the cached gate pre-activation `x_pre`, and the last
//! input the cached state corresponds to) plus the session's pinned
//! kernel-association plan. The shapes are model-agnostic: CD-GCN and
//! GC-LSTM carry a cell vector, T-GCN's GRU leaves it empty — the export
//! does not hard-code a cell type, mirroring how the generic dataflow
//! accelerators keep their checkpoint interface model-free.
//!
//! The association plan ([`LayerChoice`]) is part of the state on
//! purpose: it is pinned from the first window using a *timing-calibrated*
//! cost model, so a restarted process re-deriving it could legally pick a
//! different (bit-different) associativity. Restoring the recorded plan
//! is what makes recovery bit-identical to an uninterrupted run.
//!
//! Cumulative work counters ([`crate::ExecutionStats`]) are deliberately
//! *not* part of the state: they do not influence outputs, and a restart
//! zeroing observability counters is conventional.

use tagnn_tensor::dispatch::LayerChoice;

/// One vertex's recurrent context, exported with exact float bits.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexStateExport {
    /// Hidden state `h` (length = model hidden dim).
    pub h: Vec<f32>,
    /// Cell state `c` (LSTM cells; empty for GRU).
    pub c: Vec<f32>,
    /// Cached input-side gate pre-activation `W_x · x`.
    pub x_pre: Vec<f32>,
    /// The last input the cached pre-activation corresponds to.
    pub last_input: Vec<f32>,
    /// Whether `last_input` has ever been written (a vertex that was
    /// never active has no cached input to score similarity against).
    pub has_input: bool,
}

/// Complete model-agnostic snapshot of one engine session's state.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState {
    /// Windows processed so far (restored so cadence-style logic keeps
    /// counting from where it left off).
    pub windows: u64,
    /// Per-vertex recurrent contexts, indexed by vertex id.
    pub vertices: Vec<VertexStateExport>,
    /// The session's pinned association plan (`None` if no window was
    /// processed before the snapshot).
    pub choices: Option<Vec<LayerChoice>>,
}

/// Why an [`EngineState`] could not be imported into a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The exported vertex count does not match the session's universe.
    UniverseMismatch {
        /// Vertices the session was opened over.
        expected: usize,
        /// Vertices in the exported state.
        found: usize,
    },
    /// A per-vertex vector's length does not match the session's model
    /// dimensions (wrong model kind or hidden size).
    ShapeMismatch {
        /// Vertex at which the mismatch was found.
        vertex: usize,
        /// Which field mismatched (`"h"`, `"c"`, `"x_pre"`, `"last_input"`).
        field: &'static str,
        /// Expected length per the session's model.
        expected: usize,
        /// Length found in the exported state.
        found: usize,
    },
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::UniverseMismatch { expected, found } => write!(
                f,
                "engine state universe mismatch: session has {expected} vertices, state has {found}"
            ),
            StateError::ShapeMismatch { vertex, field, expected, found } => write!(
                f,
                "engine state shape mismatch at vertex {vertex}: {field} expected len {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for StateError {}

/// Checkpointable execution state: everything a stream's future outputs
/// depend on can be exported, and a freshly opened session can import it
/// to continue bit-identically. Implemented by
/// [`crate::engine::concurrent::EngineSession`].
pub trait StatefulModel {
    /// Snapshot the session's complete recurrent state.
    fn export_state(&self) -> EngineState;

    /// Restore a previously exported state into this session. The
    /// session must have been opened over the same universe with the
    /// same model configuration; shape mismatches are typed errors and
    /// leave the session untouched.
    fn import_state(&mut self, state: EngineState) -> Result<(), StateError>;
}
