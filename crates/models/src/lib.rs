#![warn(missing_docs)]

//! DGNN models and inference engines.
//!
//! The paper evaluates three GCN-based DGNN models — CD-GCN (4 GCN layers +
//! LSTM), GC-LSTM (3 GCN layers + LSTM), and T-GCN (2 GCN layers + GRU) —
//! each composed of a GNN module (aggregate + combine per snapshot) and an
//! RNN module (a recurrent cell threading hidden state across snapshots).
//!
//! Two engines execute these models:
//!
//! * [`engine::reference::ReferenceEngine`] — the classical snapshot-by-
//!   snapshot execution every baseline system uses; bit-exact ground truth.
//! * [`engine::concurrent::ConcurrentEngine`] — the paper's topology-aware
//!   concurrent execution (TaGNN-S in software): windows of K snapshots are
//!   classified, unaffected vertices are computed once per layer per window,
//!   and the RNN applies the similarity-aware cell-skipping strategy.
//!
//! [`approx`] adds the RNN approximation baselines of Table 5 (DeltaRNN,
//! ALSTM, ATLAS) and [`accuracy`] the synthetic classification task used to
//! measure their fidelity.

pub mod accuracy;
pub mod approx;
pub mod dgnn;
pub mod engine;
pub mod gcn;
pub mod rnn;
pub mod skip;
pub mod state;

pub use dgnn::{DgnnModel, ModelKind};
pub use engine::concurrent::{ConcurrentEngine, EngineSession, ReuseMode, WindowOutput};
pub use engine::reference::ReferenceEngine;
pub use engine::{ExecutionStats, InferenceOutput};
pub use gcn::AggregatorKind;
pub use skip::{CellMode, SkipConfig};
pub use state::{EngineState, StateError, StatefulModel, VertexStateExport};
