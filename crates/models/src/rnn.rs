//! The RNN module: LSTM and GRU cells with cached input pre-activations.
//!
//! The similarity-aware cell-skipping strategy needs a *partial* cell update
//! that touches only the non-zero components of the input delta (§4.2's
//! Condense Unit). To support that, every vertex state caches the input
//! pre-activation `W_x · x`; delta mode patches that cache with
//! `Σ δ_i · W_x[i, :]` instead of recomputing the full product, which is
//! exact whenever the condensed delta retains all non-zero components.

use serde::{Deserialize, Serialize};
use tagnn_tensor::similarity::CondensedDelta;
use tagnn_tensor::{init, kernels, ops, DenseMatrix};

/// Per-vertex recurrent state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VertexState {
    /// Hidden state `h` (the "final feature" of the paper).
    pub h: Vec<f32>,
    /// Cell state `c` (LSTM only; empty for GRU).
    pub c: Vec<f32>,
    /// Cached input pre-activation `W_x · x` from the last full or delta
    /// update; empty until the first update.
    pub x_pre: Vec<f32>,
}

impl VertexState {
    /// Zero-initialised state for a cell with `hidden` units and `gates`
    /// stacked gate blocks.
    pub fn zeros(hidden: usize, gates: usize) -> Self {
        Self {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
            x_pre: vec![0.0; hidden * gates],
        }
    }
}

/// Which recurrent cell a model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RnnKind {
    /// Long short-term memory (4 gates).
    Lstm,
    /// Gated recurrent unit (3 gates).
    Gru,
}

impl RnnKind {
    /// Number of stacked gate blocks.
    pub fn gates(self) -> usize {
        match self {
            RnnKind::Lstm => 4,
            RnnKind::Gru => 3,
        }
    }
}

/// A recurrent cell (LSTM or GRU) with dense input/hidden weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RnnCell {
    kind: RnnKind,
    /// `in_dim x (gates*hidden)` input weights.
    w_x: DenseMatrix,
    /// `hidden x (gates*hidden)` recurrent weights.
    w_h: DenseMatrix,
    /// `gates*hidden` bias.
    bias: Vec<f32>,
    hidden: usize,
}

impl RnnCell {
    /// Builds a cell with Xavier-initialised weights and the standard
    /// persistence bias: the LSTM forget gate and GRU update gate are
    /// biased to +1 (Jozefowicz et al.), so hidden state evolves smoothly
    /// over time — the temporal-stability regime trained DGNNs exhibit and
    /// the similarity-aware skipping strategy relies on (§2.3).
    pub fn new(kind: RnnKind, in_dim: usize, hidden: usize, seed: u64) -> Self {
        let g = kind.gates();
        let mut bias = vec![0.0; g * hidden];
        // Gate block 1 is the forget gate for LSTM ([i, f, g, o]) and the
        // update gate for GRU ([r, z, n]).
        for b in &mut bias[hidden..2 * hidden] {
            *b = 0.25;
        }
        Self {
            kind,
            w_x: init::xavier_uniform(in_dim, g * hidden, seed),
            w_h: init::xavier_uniform(hidden, g * hidden, seed.wrapping_add(1)),
            bias,
            hidden,
        }
    }

    /// Cell kind.
    #[inline]
    pub fn kind(&self) -> RnnKind {
        self.kind
    }

    /// Hidden size.
    #[inline]
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input dimensionality.
    #[inline]
    pub fn in_dim(&self) -> usize {
        self.w_x.rows()
    }

    /// A fresh zero state for this cell.
    pub fn zero_state(&self) -> VertexState {
        VertexState::zeros(self.hidden, self.kind.gates())
    }

    /// Input weight matrix `W_x` (`in_dim x gates*hidden`). Exposed so the
    /// approximate-RNN baselines of Table 5 can re-implement gate math with
    /// degraded arithmetic over the same parameters.
    #[inline]
    pub fn w_x(&self) -> &DenseMatrix {
        &self.w_x
    }

    /// Recurrent weight matrix `W_h` (`hidden x gates*hidden`).
    #[inline]
    pub fn w_h(&self) -> &DenseMatrix {
        &self.w_h
    }

    /// Gate bias (`gates*hidden`).
    #[inline]
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// `W_x · x`, the input pre-activation (a full input-side matvec).
    pub fn input_preactivation(&self, x: &[f32]) -> Vec<f32> {
        ops::vecmat(x, &self.w_x)
    }

    /// Patches a cached pre-activation with a condensed input delta:
    /// `pre += Σ_i δ_i · W_x[i, :]`. Exact when the delta is lossless.
    pub fn patch_preactivation(&self, pre: &mut [f32], delta: &CondensedDelta) {
        assert_eq!(pre.len(), self.w_x.cols(), "preactivation length mismatch");
        for (&i, &d) in delta.indices.iter().zip(&delta.values) {
            ops::axpy(pre, d, self.w_x.row(i as usize));
        }
    }

    /// Full cell update: recomputes the input pre-activation and steps.
    pub fn step(&self, x: &[f32], state: &mut VertexState) {
        state.x_pre = self.input_preactivation(x);
        self.step_cached(state);
    }

    /// Steps using the cached input pre-activation (`state.x_pre`), as the
    /// delta path does after patching.
    pub fn step_cached(&self, state: &mut VertexState) {
        let h_pre = ops::vecmat(&state.h, &self.w_h);
        let VertexState { h, c, x_pre } = state;
        self.apply_gates(x_pre, &h_pre, h, c);
    }

    /// In-place gate arithmetic shared by the per-vertex and batched
    /// paths: given the two pre-activations, updates `h` (and, for
    /// LSTM, `c`) to the post-step state. Every gate reads only index
    /// `j` of `h`/`c`, so updating in place computes exactly the values
    /// the historical copy-out loop did. `c` is ignored for GRU.
    ///
    /// # Panics
    /// Panics (via indexing) if a slice is shorter than its gate layout
    /// requires.
    pub fn apply_gates(&self, x_pre: &[f32], h_pre: &[f32], h: &mut [f32], c: &mut [f32]) {
        let n = self.hidden;
        match self.kind {
            // Gate layout: [i, f, g, o].
            RnnKind::Lstm => kernels::lstm_gates(n, x_pre, h_pre, &self.bias, h, c),
            // Gate layout: [r, z, n]; the reset gate scales only the
            // hidden contribution of the candidate.
            RnnKind::Gru => kernels::gru_gates(n, x_pre, h_pre, &self.bias, h),
        }
    }

    /// Batched pre-activations: two GEMMs computing `X·W_x` and `H·W_h`
    /// for a whole batch of stacked vertex rows, replacing `2·batch`
    /// vector-matrix products. Each output row is bit-compatible with
    /// the per-vertex [`Self::input_preactivation`] / hidden matvec up
    /// to the sign of exact zeros.
    ///
    /// `x_batch` is `batch · in_dim`, `h_batch` is `batch · hidden`,
    /// and both outputs are `batch · gates·hidden`.
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn batch_preactivations(
        &self,
        batch: usize,
        x_batch: &[f32],
        h_batch: &[f32],
        x_pre: &mut [f32],
        h_pre: &mut [f32],
    ) {
        let gh = self.w_x.cols();
        kernels::gemm_into(
            batch,
            self.in_dim(),
            gh,
            x_batch,
            self.w_x.as_slice(),
            x_pre,
        );
        kernels::gemm_into(batch, self.hidden, gh, h_batch, self.w_h.as_slice(), h_pre);
    }

    /// MACs of a full input-side matvec.
    pub fn input_macs(&self) -> u64 {
        (self.in_dim() * self.w_x.cols()) as u64
    }

    /// MACs of the hidden-side matvec plus gate arithmetic.
    pub fn hidden_macs(&self) -> u64 {
        (self.hidden * self.w_h.cols()) as u64 + (self.kind.gates() * self.hidden) as u64
    }

    /// MACs of one full cell update.
    pub fn full_step_macs(&self) -> u64 {
        self.input_macs() + self.hidden_macs()
    }

    /// MACs of a delta update retaining `nnz` input components.
    pub fn delta_step_macs(&self, nnz: usize) -> u64 {
        (nnz * self.w_x.cols()) as u64 + self.hidden_macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagnn_tensor::similarity::delta;

    fn cell(kind: RnnKind) -> RnnCell {
        RnnCell::new(kind, 4, 3, 99)
    }

    #[test]
    fn zero_state_shapes() {
        let c = cell(RnnKind::Lstm);
        let s = c.zero_state();
        assert_eq!(s.h.len(), 3);
        assert_eq!(s.c.len(), 3);
        assert_eq!(s.x_pre.len(), 12);
    }

    #[test]
    fn lstm_step_changes_state_and_is_bounded() {
        let c = cell(RnnKind::Lstm);
        let mut s = c.zero_state();
        c.step(&[1.0, -0.5, 0.25, 2.0], &mut s);
        assert!(s.h.iter().any(|&v| v != 0.0));
        assert!(
            s.h.iter().all(|&v| v.abs() <= 1.0),
            "LSTM h = o*tanh(c) is in [-1,1]"
        );
    }

    #[test]
    fn gru_step_changes_state_and_is_bounded() {
        let c = cell(RnnKind::Gru);
        let mut s = c.zero_state();
        c.step(&[0.5, 0.5, -0.5, 1.0], &mut s);
        assert!(s.h.iter().any(|&v| v != 0.0));
        assert!(s.h.iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn steps_are_deterministic() {
        let c = cell(RnnKind::Lstm);
        let (mut a, mut b) = (c.zero_state(), c.zero_state());
        for _ in 0..3 {
            c.step(&[0.1, 0.2, 0.3, 0.4], &mut a);
            c.step(&[0.1, 0.2, 0.3, 0.4], &mut b);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn lossless_delta_patch_equals_full_step() {
        for kind in [RnnKind::Lstm, RnnKind::Gru] {
            let c = cell(kind);
            let x0 = [1.0, -1.0, 0.5, 0.0];
            let x1 = [1.0, -0.5, 0.5, 0.25];

            // Full path.
            let mut full = c.zero_state();
            c.step(&x0, &mut full);
            c.step(&x1, &mut full);

            // Delta path: step x0 fully, then patch with the lossless delta.
            let mut patched = c.zero_state();
            c.step(&x0, &mut patched);
            let d = CondensedDelta::from_dense(&delta(&x0, &x1), 0.0);
            let mut pre = patched.x_pre.clone();
            c.patch_preactivation(&mut pre, &d);
            patched.x_pre = pre;
            c.step_cached(&mut patched);

            for (a, b) in full.h.iter().zip(&patched.h) {
                assert!(
                    (a - b).abs() < 1e-5,
                    "{kind:?}: delta path must be exact, {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn batched_path_matches_per_vertex_steps_exactly() {
        for kind in [RnnKind::Lstm, RnnKind::Gru] {
            let c = cell(kind);
            let inputs = [
                [0.6f32, -0.3, 0.0, 1.1],
                [-1.0, 0.4, 0.8, 0.0],
                [0.0, 0.0, -0.2, 0.5],
            ];
            // Warm each per-vertex state with two steps so h is nonzero.
            let mut states: Vec<VertexState> = inputs
                .iter()
                .map(|x| {
                    let mut s = c.zero_state();
                    c.step(x, &mut s);
                    c.step(x, &mut s);
                    s
                })
                .collect();
            let mut batched = states.clone();

            // Per-vertex third step.
            for (s, x) in states.iter_mut().zip(&inputs) {
                c.step(x, s);
            }

            // Batched third step: gather, two GEMMs, scatter + gates.
            let (b, gh) = (inputs.len(), c.kind().gates() * c.hidden());
            let x_batch: Vec<f32> = inputs.iter().flatten().copied().collect();
            let h_batch: Vec<f32> = batched.iter().flat_map(|s| s.h.clone()).collect();
            let mut x_pre = vec![0.0f32; b * gh];
            let mut h_pre = vec![0.0f32; b * gh];
            c.batch_preactivations(b, &x_batch, &h_batch, &mut x_pre, &mut h_pre);
            for (r, s) in batched.iter_mut().enumerate() {
                s.x_pre.copy_from_slice(&x_pre[r * gh..(r + 1) * gh]);
                let VertexState { h, c: cc, x_pre } = s;
                c.apply_gates(x_pre, &h_pre[r * gh..(r + 1) * gh], h, cc);
            }

            assert_eq!(states, batched, "{kind:?}");
        }
    }

    #[test]
    fn mac_accounting_is_consistent() {
        let c = cell(RnnKind::Lstm);
        assert_eq!(c.full_step_macs(), c.input_macs() + c.hidden_macs());
        assert!(c.delta_step_macs(1) < c.full_step_macs());
        assert_eq!(c.delta_step_macs(c.in_dim()), c.full_step_macs());
    }

    #[test]
    fn gate_counts() {
        assert_eq!(RnnKind::Lstm.gates(), 4);
        assert_eq!(RnnKind::Gru.gates(), 3);
    }
}
