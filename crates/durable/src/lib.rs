//! Durability primitives for `tagnn-serve`: a per-shard write-ahead log
//! (WAL), an atomic checkpoint store, and the binary codec they share.
//!
//! This crate is intentionally low-level and std-only. It knows nothing
//! about graphs, models, or the serve core; it moves opaque byte payloads
//! to disk with the guarantees recovery needs:
//!
//! - **WAL** ([`wal`]): length-prefixed records with a per-record CRC32,
//!   appended sequentially and `fdatasync`'d in configurable group-commit
//!   batches. On open, a torn or truncated tail (a crash mid-write) is
//!   detected by the CRC/length scan and cleanly truncated away.
//! - **Checkpoints** ([`checkpoint`]): whole-state snapshots written
//!   atomically (temp file + `rename` + directory fsync) and named by a
//!   monotone sequence number. Loading walks newest-to-oldest and returns
//!   the first checkpoint that passes CRC validation *and* the caller's
//!   acceptance predicate (e.g. "its WAL offsets are covered by what
//!   survived on disk").
//! - **Codec** ([`codec`]): a tiny explicit-endianness byte reader/writer
//!   pair with typed truncation errors and a hand-rolled IEEE CRC32, used
//!   by both layers above and by `tagnn-serve`'s state serialization.
//! - **Crash hooks** ([`crash`]): opt-in `TAGNN_CRASH_AT` process-abort
//!   points compiled into the durability hot path, so the fault-injection
//!   harness can kill a process mid-fsync, mid-checkpoint-write, or
//!   between temp-write and rename without patching the binary.

pub mod checkpoint;
pub mod codec;
pub mod crash;
pub mod wal;

pub use checkpoint::{Checkpoint, CheckpointStore};
pub use codec::{crc32, ByteReader, ByteWriter, CodecError};
pub use wal::{WalRecovery, WalWriter, MAX_WAL_RECORD};
