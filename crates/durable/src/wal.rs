//! Per-shard write-ahead log: length-prefixed, CRC-guarded records
//! appended sequentially and `fdatasync`'d in group-commit batches.
//!
//! Record layout (all little-endian):
//!
//! ```text
//! len: u32 | crc32(payload): u32 | payload: len bytes
//! ```
//!
//! The payload is opaque to this layer — `tagnn-serve` stores the exact
//! `binwire` infer frame it admitted, so replay re-enters the normal
//! ingestion path. On open, the tail of the file is scanned: the first
//! record whose header is short, whose length exceeds
//! [`MAX_WAL_RECORD`], whose payload is cut off, or whose CRC mismatches
//! marks the end of the valid prefix; everything after it (a torn write
//! from a crash) is truncated away and reported, never panicked on.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::{Duration, Instant};

use crate::codec::crc32;
use crate::crash;

/// Hard bound on a single record's payload; a corrupt length prefix can
/// never demand more than this in one allocation. Matches the serve wire
/// frame bound.
pub const MAX_WAL_RECORD: usize = 64 << 20;

const RECORD_HEADER: usize = 8; // len:u32 + crc:u32

/// One valid record recovered from the log.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// The opaque payload as appended.
    pub payload: Vec<u8>,
    /// File offset of the first byte *after* this record. A checkpoint
    /// covering `offset` covers every record with `end_offset <= offset`.
    pub end_offset: u64,
}

/// Outcome of the open-time scan.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Every valid record, in append order.
    pub records: Vec<WalRecord>,
    /// Length of the valid prefix; the file is truncated to this.
    pub valid_len: u64,
    /// Bytes dropped from a torn/corrupt tail (0 for a clean log).
    pub truncated_bytes: u64,
}

/// Append-side handle. Records are buffered by the OS; [`WalWriter::append`]
/// triggers an `fdatasync` every `group_commit` records, and
/// [`WalWriter::sync`] forces one (checkpoint cuts and shutdown).
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    len: u64,
    pending: u32,
    group_commit: u32,
}

impl WalWriter {
    /// Open (creating if absent) the log at `path`, scan and truncate any
    /// torn tail, and return the writer positioned at the valid end plus
    /// everything recovered. `group_commit` is clamped to at least 1.
    pub fn open(path: &Path, group_commit: usize) -> io::Result<(WalWriter, WalRecovery)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .open(path)?;
        let recovery = scan_and_truncate(&mut file)?;
        file.seek(SeekFrom::Start(recovery.valid_len))?;
        let writer = WalWriter {
            file,
            len: recovery.valid_len,
            pending: 0,
            group_commit: group_commit.max(1) as u32,
        };
        Ok((writer, recovery))
    }

    /// Current logical end of the log (start offset of the next record).
    /// Note this includes appended-but-unsynced records; call
    /// [`WalWriter::sync`] before trusting it as a checkpoint cover.
    pub fn offset(&self) -> u64 {
        self.len
    }

    /// Append one record. Returns the fsync duration if this append
    /// completed a group commit, `None` if the record is still pending.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<Option<Duration>> {
        assert!(
            payload.len() <= MAX_WAL_RECORD,
            "WAL record exceeds MAX_WAL_RECORD"
        );
        let mut record = Vec::with_capacity(RECORD_HEADER + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(payload).to_le_bytes());
        record.extend_from_slice(payload);

        if crash::hit("wal_torn") {
            // Model a crash mid-write: half the record reaches the disk.
            let cut = record.len() / 2;
            let _ = self.file.write_all(&record[..cut]);
            let _ = self.file.sync_data();
            std::process::abort();
        }

        self.file.write_all(&record)?;
        self.len += record.len() as u64;
        self.pending += 1;
        if self.pending >= self.group_commit {
            self.sync()
        } else {
            Ok(None)
        }
    }

    /// Force an `fdatasync` if any records are pending; returns how long
    /// it took, or `None` if the log was already durable.
    pub fn sync(&mut self) -> io::Result<Option<Duration>> {
        if self.pending == 0 {
            return Ok(None);
        }
        crash::abort_if("wal_fsync");
        let start = Instant::now();
        self.file.sync_data()?;
        self.pending = 0;
        Ok(Some(start.elapsed()))
    }
}

fn scan_and_truncate(file: &mut File) -> io::Result<WalRecovery> {
    let mut bytes = Vec::new();
    file.seek(SeekFrom::Start(0))?;
    file.read_to_end(&mut bytes)?;
    let total = bytes.len() as u64;

    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if bytes.len() - pos < RECORD_HEADER {
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len > MAX_WAL_RECORD {
            break; // corrupt length prefix — treat as tail
        }
        let body_start = pos + RECORD_HEADER;
        if bytes.len() - body_start < len {
            break; // payload cut off
        }
        let payload = &bytes[body_start..body_start + len];
        if crc32(payload) != crc {
            break; // torn or bit-flipped record
        }
        pos = body_start + len;
        records.push(WalRecord {
            payload: payload.to_vec(),
            end_offset: pos as u64,
        });
    }

    let valid_len = pos as u64;
    let truncated_bytes = total - valid_len;
    if truncated_bytes > 0 {
        file.set_len(valid_len)?;
        file.sync_data()?;
    }
    Ok(WalRecovery {
        records,
        valid_len,
        truncated_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("tagnn-wal-{tag}-{}-{n}.log", std::process::id()))
    }

    #[test]
    fn append_sync_recover_round_trip() {
        let path = temp_path("rt");
        {
            let (mut w, rec) = WalWriter::open(&path, 2).unwrap();
            assert_eq!(rec.records.len(), 0);
            assert_eq!(rec.truncated_bytes, 0);
            assert!(w.append(b"alpha").unwrap().is_none()); // pending
            assert!(w.append(b"beta").unwrap().is_some()); // group commit of 2
            w.append(b"gamma").unwrap();
            w.sync().unwrap();
            // Second sync is a no-op.
            assert!(w.sync().unwrap().is_none());
        }
        let (w, rec) = WalWriter::open(&path, 1).unwrap();
        let payloads: Vec<&[u8]> = rec.records.iter().map(|r| r.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"alpha".as_slice(), b"beta", b"gamma"]);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(w.offset(), rec.valid_len);
        // end_offsets are strictly increasing and final equals valid_len.
        assert!(rec
            .records
            .windows(2)
            .all(|p| p[0].end_offset < p[1].end_offset));
        assert_eq!(rec.records.last().unwrap().end_offset, rec.valid_len);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_path("torn");
        {
            let (mut w, _) = WalWriter::open(&path, 1).unwrap();
            w.append(b"keep-me").unwrap();
            w.append(b"also-keep").unwrap();
        }
        // Simulate a crash mid-append: half a record at the tail.
        let mut bytes = fs::read(&path).unwrap();
        let mut torn = Vec::new();
        torn.extend_from_slice(&(100u32).to_le_bytes());
        torn.extend_from_slice(&0xAAAA_AAAAu32.to_le_bytes());
        torn.extend_from_slice(&[0x55; 10]); // far fewer than 100 payload bytes
        let torn_len = torn.len() as u64;
        bytes.extend_from_slice(&torn);
        fs::write(&path, &bytes).unwrap();

        let (mut w, rec) = WalWriter::open(&path, 1).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.truncated_bytes, torn_len);
        assert_eq!(fs::metadata(&path).unwrap().len(), rec.valid_len);
        // The log is usable for appends after truncation.
        w.append(b"post-recovery").unwrap();
        let (_, rec2) = WalWriter::open(&path, 1).unwrap();
        assert_eq!(rec2.records.len(), 3);
        assert_eq!(rec2.records[2].payload, b"post-recovery");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_crc_cuts_the_tail_there() {
        let path = temp_path("crc");
        {
            let (mut w, _) = WalWriter::open(&path, 1).unwrap();
            w.append(b"first").unwrap();
            w.append(b"second").unwrap();
            w.append(b"third").unwrap();
        }
        // Flip one payload byte of the second record.
        let mut bytes = fs::read(&path).unwrap();
        let second_payload_start = (RECORD_HEADER + 5) + RECORD_HEADER;
        bytes[second_payload_start] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let (_, rec) = WalWriter::open(&path, 1).unwrap();
        // Only the prefix before the corrupt record survives; the valid
        // third record after it is unreachable (no resync points) and is
        // dropped with the tail — exactly the safe choice.
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].payload, b"first");
        assert!(rec.truncated_bytes > 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_length_prefix_is_a_tail_not_an_allocation() {
        let path = temp_path("huge");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let (_, rec) = WalWriter::open(&path, 1).unwrap();
        assert_eq!(rec.records.len(), 0);
        assert_eq!(rec.truncated_bytes, 8);
        assert_eq!(rec.valid_len, 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_payload_records_round_trip() {
        let path = temp_path("empty");
        {
            let (mut w, _) = WalWriter::open(&path, 1).unwrap();
            w.append(b"").unwrap();
            w.append(b"x").unwrap();
        }
        let (_, rec) = WalWriter::open(&path, 1).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[0].payload, b"");
        fs::remove_file(&path).ok();
    }
}
