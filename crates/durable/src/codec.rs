//! Explicit little-endian byte codec with typed truncation errors, plus a
//! table-driven IEEE CRC32. Floats are carried as raw bit patterns so
//! NaN payloads and signed zeros round-trip byte-identically — the same
//! discipline the serve wire format uses.

use std::fmt;

/// Typed decode failure. Every variant is a clean error, never a panic:
/// corrupted checkpoint/WAL bytes must be survivable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a fixed-width field or declared-length run.
    Truncated { need: usize, have: usize },
    /// A declared length or count exceeds a sanity bound, so honouring it
    /// would mean an unbounded allocation.
    TooLarge { len: usize, max: usize },
    /// A tag, version, or structural invariant did not hold.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { need, have } => {
                write!(f, "truncated input: need {need} bytes, have {have}")
            }
            CodecError::TooLarge { len, max } => {
                write!(f, "declared length {len} exceeds bound {max}")
            }
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Upper bound for any single length-prefixed run inside a payload.
/// Matches the serve wire frame bound so a corrupt length can never ask
/// for more than one frame's worth of memory.
pub const MAX_RUN: usize = 64 << 20;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, init/xorout 0xFFFF_FFFF)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes` (the common `cksum`/zlib polynomial, reflected).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Append-only little-endian writer over a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// f32 as raw IEEE-754 bits: NaN payloads and -0.0 survive.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// `u32` length prefix followed by the raw bytes.
    pub fn put_len_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.put_bytes(bytes);
    }

    /// `u32` count followed by each f32 as raw bits.
    pub fn put_f32_slice(&mut self, vals: &[f32]) {
        self.put_u32(vals.len() as u32);
        for &v in vals {
            self.put_f32(v);
        }
    }

    /// `u32` count followed by one byte per bool.
    pub fn put_bool_slice(&mut self, vals: &[bool]) {
        self.put_u32(vals.len() as u32);
        for &v in vals {
            self.put_bool(v);
        }
    }

    /// `u32` count followed by each u64 little-endian.
    pub fn put_u64_slice(&mut self, vals: &[u64]) {
        self.put_u32(vals.len() as u32);
        for &v in vals {
            self.put_u64(v);
        }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Cursor over a byte slice; every read is bounds-checked and returns a
/// typed [`CodecError`] instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fails unless every byte has been consumed — trailing garbage in a
    /// state blob means the encoding and decoding disagree.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(CodecError::Invalid("trailing bytes after decode"))
        }
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool byte not 0/1")),
        }
    }

    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn get_f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// A `u32` count bounded by `max` — use before allocating `count`
    /// elements so a corrupt prefix cannot demand unbounded memory.
    pub fn get_count(&mut self, max: usize) -> Result<usize, CodecError> {
        let n = self.get_u32()? as usize;
        if n > max {
            return Err(CodecError::TooLarge { len: n, max });
        }
        Ok(n)
    }

    pub fn get_len_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_count(MAX_RUN)?;
        self.take(n)
    }

    pub fn get_f32_slice(&mut self) -> Result<Vec<f32>, CodecError> {
        let n = self.get_count(MAX_RUN / 4)?;
        // Bounds-check the whole run before allocating.
        let raw = self.take(
            n.checked_mul(4)
                .ok_or(CodecError::Invalid("f32 run overflow"))?,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect())
    }

    pub fn get_bool_slice(&mut self) -> Result<Vec<bool>, CodecError> {
        let n = self.get_count(MAX_RUN)?;
        let raw = self.take(n)?;
        let mut out = Vec::with_capacity(n);
        for &b in raw {
            match b {
                0 => out.push(false),
                1 => out.push(true),
                _ => return Err(CodecError::Invalid("bool byte not 0/1")),
            }
        }
        Ok(out)
    }

    pub fn get_u64_slice(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.get_count(MAX_RUN / 8)?;
        let raw = self.take(
            n.checked_mul(8)
                .ok_or(CodecError::Invalid("u64 run overflow"))?,
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip_scalars_and_slices() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(-0.0);
        w.put_f32(f32::from_bits(0x7FC0_1234)); // NaN with payload
        w.put_f64(std::f64::consts::PI);
        w.put_len_bytes(b"abc");
        w.put_f32_slice(&[1.5, -2.25, 0.0]);
        w.put_bool_slice(&[true, false, true]);
        w.put_u64_slice(&[3, 1, 4]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.get_f32().unwrap().to_bits(), 0x7FC0_1234);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.get_len_bytes().unwrap(), b"abc");
        assert_eq!(r.get_f32_slice().unwrap(), vec![1.5, -2.25, 0.0]);
        assert_eq!(r.get_bool_slice().unwrap(), vec![true, false, true]);
        assert_eq!(r.get_u64_slice().unwrap(), vec![3, 1, 4]);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(
            r.get_u32(),
            Err(CodecError::Truncated { need: 4, have: 2 })
        ));
        // Cursor did not advance on failure-by-bounds.
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn oversized_count_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // absurd element count
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_f32_slice(),
            Err(CodecError::TooLarge { .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut r = ByteReader::new(&[0]);
        assert!(r.finish().is_err());
        r.get_u8().unwrap();
        assert!(r.finish().is_ok());
    }

    #[test]
    fn bad_bool_byte_rejected() {
        let mut r = ByteReader::new(&[2]);
        assert!(matches!(r.get_bool(), Err(CodecError::Invalid(_))));
    }
}
