//! Atomic checkpoint store: whole-state snapshots written via temp file +
//! `rename` + directory fsync, named by a monotone sequence number.
//!
//! File layout (little-endian):
//!
//! ```text
//! magic "TGNNCKPT" | version: u32 | seq: u64 | payload_len: u64 |
//! crc32(payload): u32 | payload
//! ```
//!
//! A checkpoint is visible only once `rename` lands it at its final name,
//! so readers never observe a partial file; a crash before the rename
//! leaves a `.tmp` that [`CheckpointStore::open`] sweeps away. Loading
//! walks sequence numbers newest-first and returns the first checkpoint
//! that both passes CRC validation and satisfies the caller's acceptance
//! predicate — a corrupted or not-yet-coverable newest file falls back to
//! the previous one instead of failing recovery.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::codec::crc32;
use crate::crash;

const MAGIC: &[u8; 8] = b"TGNNCKPT";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 4;

/// Bound on a checkpoint payload (1 GiB) so a corrupt header cannot
/// demand an unbounded allocation.
const MAX_PAYLOAD: u64 = 1 << 30;

/// A loaded, CRC-validated checkpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    pub seq: u64,
    pub payload: Vec<u8>,
}

/// Directory of `ckpt-<seq>.bin` files, at most `keep` retained.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Open (creating if absent) the store at `dir`, sweeping any stale
    /// `.tmp` files left by a crash between temp-write and rename.
    pub fn open(dir: &Path, keep: usize) -> io::Result<CheckpointStore> {
        fs::create_dir_all(dir)?;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("ckpt-") && name.ends_with(".tmp") {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            keep: keep.max(1),
        })
    }

    fn final_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{seq:016x}.bin"))
    }

    /// Write checkpoint `seq` atomically: temp file + `fsync` + `rename`
    /// + directory fsync, then prune down to the newest `keep` files.
    pub fn write(&self, seq: u64, payload: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("ckpt-{seq:016x}.tmp"));
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(MAGIC)?;
            f.write_all(&VERSION.to_le_bytes())?;
            f.write_all(&seq.to_le_bytes())?;
            f.write_all(&(payload.len() as u64).to_le_bytes())?;
            f.write_all(&crc32(payload).to_le_bytes())?;
            f.write_all(payload)?;
            f.sync_all()?;
        }
        crash::abort_if("ckpt_tmp");
        fs::rename(&tmp, self.final_path(seq))?;
        // fsync the directory so the rename itself is durable.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        crash::abort_if("ckpt_done");
        self.prune()?;
        Ok(())
    }

    /// Sequence numbers of every checkpoint file present, ascending.
    pub fn list(&self) -> io::Result<Vec<u64>> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(hex) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".bin"))
            {
                if let Ok(seq) = u64::from_str_radix(hex, 16) {
                    seqs.push(seq);
                }
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// Load the newest checkpoint that is both internally valid (magic,
    /// version, CRC) and accepted by `accept`. Invalid or rejected files
    /// are skipped, falling back to older ones; `None` means cold start.
    pub fn latest_valid<F>(&self, mut accept: F) -> io::Result<Option<Checkpoint>>
    where
        F: FnMut(&Checkpoint) -> bool,
    {
        let mut seqs = self.list()?;
        seqs.reverse();
        for seq in seqs {
            if let Some(ckpt) = load_file(&self.final_path(seq))? {
                if ckpt.seq == seq && accept(&ckpt) {
                    return Ok(Some(ckpt));
                }
            }
        }
        Ok(None)
    }

    fn prune(&self) -> io::Result<()> {
        let seqs = self.list()?;
        if seqs.len() > self.keep {
            for &seq in &seqs[..seqs.len() - self.keep] {
                fs::remove_file(self.final_path(seq))?;
            }
        }
        Ok(())
    }
}

/// Read and validate one checkpoint file; `None` on any corruption
/// (short file, bad magic/version, CRC mismatch) — never a panic.
fn load_file(path: &Path) -> io::Result<Option<Checkpoint>> {
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut header = [0u8; HEADER_LEN];
    if f.read_exact(&mut header).is_err() {
        return Ok(None);
    }
    if &header[..8] != MAGIC {
        return Ok(None);
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != VERSION {
        return Ok(None);
    }
    let seq = u64::from_le_bytes(header[12..20].try_into().unwrap());
    let len = u64::from_le_bytes(header[20..28].try_into().unwrap());
    let crc = u32::from_le_bytes(header[28..32].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Ok(None);
    }
    let mut payload = vec![0u8; len as usize];
    if f.read_exact(&mut payload).is_err() {
        return Ok(None);
    }
    if crc32(&payload) != crc {
        return Ok(None);
    }
    Ok(Some(Checkpoint { seq, payload }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("tagnn-ckpt-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn write_load_prune_cycle() {
        let dir = temp_dir("cycle");
        let store = CheckpointStore::open(&dir, 2).unwrap();
        assert!(store.latest_valid(|_| true).unwrap().is_none());
        store.write(1, b"one").unwrap();
        store.write(2, b"two").unwrap();
        store.write(3, b"three").unwrap();
        // keep=2: checkpoint 1 pruned.
        assert_eq!(store.list().unwrap(), vec![2, 3]);
        let latest = store.latest_valid(|_| true).unwrap().unwrap();
        assert_eq!(latest.seq, 3);
        assert_eq!(latest.payload, b"three");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = temp_dir("fallback");
        let store = CheckpointStore::open(&dir, 4).unwrap();
        store.write(1, b"good-old").unwrap();
        store.write(2, b"newest").unwrap();
        // Flip a payload byte in the newest file.
        let path = dir.join(format!("ckpt-{:016x}.bin", 2u64));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let latest = store.latest_valid(|_| true).unwrap().unwrap();
        assert_eq!(latest.seq, 1);
        assert_eq!(latest.payload, b"good-old");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn acceptance_predicate_skips_uncoverable_checkpoints() {
        let dir = temp_dir("accept");
        let store = CheckpointStore::open(&dir, 4).unwrap();
        store.write(5, b"covered").unwrap();
        store.write(6, b"not-covered").unwrap();
        let got = store
            .latest_valid(|c| c.payload == b"covered")
            .unwrap()
            .unwrap();
        assert_eq!(got.seq, 5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tmp_files_swept_on_open() {
        let dir = temp_dir("tmp");
        fs::create_dir_all(&dir).unwrap();
        let stale = dir.join("ckpt-0000000000000007.tmp");
        fs::write(&stale, b"partial").unwrap();
        let store = CheckpointStore::open(&dir, 2).unwrap();
        assert!(!stale.exists());
        assert!(store.latest_valid(|_| true).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_and_garbage_files_are_skipped() {
        let dir = temp_dir("garbage");
        let store = CheckpointStore::open(&dir, 4).unwrap();
        store.write(1, b"valid").unwrap();
        // A header-only truncated file with a newer seq.
        fs::write(dir.join(format!("ckpt-{:016x}.bin", 9u64)), b"TGNNCKPT").unwrap();
        // Plain garbage with an even newer seq.
        fs::write(
            dir.join(format!("ckpt-{:016x}.bin", 10u64)),
            b"not a checkpoint",
        )
        .unwrap();
        let got = store.latest_valid(|_| true).unwrap().unwrap();
        assert_eq!(got.seq, 1);
        fs::remove_dir_all(&dir).ok();
    }
}
