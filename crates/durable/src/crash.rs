//! Opt-in crash-injection points for the fault-injection harness.
//!
//! `TAGNN_CRASH_AT` is a comma-separated list of `point:n` pairs, e.g.
//! `TAGNN_CRASH_AT=wal_fsync:3,ckpt_tmp:1`. The `n`-th time execution
//! reaches the named point the process calls [`std::process::abort`] —
//! no destructors, no flushes — modelling a hard kill at exactly that
//! instant. Unlisted points are free: a single atomic load on the fast
//! path when the variable is unset.
//!
//! Points wired into this crate:
//! - `wal_fsync`   — before the WAL `fdatasync`, so acknowledged-but-
//!   unsynced records can be lost (torn group commit).
//! - `wal_torn`    — mid-`append`: only a prefix of the record's bytes
//!   reach the file, leaving a torn tail for recovery to truncate.
//! - `ckpt_tmp`    — after the checkpoint temp file is written and
//!   synced but before the rename (stale `.tmp` left behind).
//! - `ckpt_done`   — after the rename + directory fsync but before the
//!   old checkpoint is pruned.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::OnceLock;

struct Registry {
    counters: HashMap<String, AtomicI64>,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| {
        let mut counters = HashMap::new();
        if let Ok(spec) = std::env::var("TAGNN_CRASH_AT") {
            for part in spec.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                if let Some((name, n)) = part.split_once(':') {
                    if let Ok(n) = n.trim().parse::<i64>() {
                        if n > 0 {
                            counters.insert(name.trim().to_string(), AtomicI64::new(n));
                        }
                    }
                }
            }
        }
        Registry { counters }
    })
}

/// Returns true exactly once: when the registered countdown for `point`
/// reaches zero. Unregistered points always return false.
pub fn hit(point: &str) -> bool {
    let reg = registry();
    if reg.counters.is_empty() {
        return false;
    }
    match reg.counters.get(point) {
        Some(c) => c.fetch_sub(1, Ordering::Relaxed) == 1,
        None => false,
    }
}

/// Abort the process if the countdown for `point` fires here.
pub fn abort_if(point: &str) {
    if hit(point) {
        // A hard kill: no unwinding, no buffered-IO flushes.
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unregistered_points_never_fire() {
        // The test process runs without TAGNN_CRASH_AT.
        for _ in 0..1000 {
            assert!(!hit("wal_fsync"));
        }
    }
}
