//! Roofline analysis over published `roofline.*` counters.
//!
//! The engines account, per pipeline stage and per window, the bytes
//! they move and the flops they execute (see
//! `tagnn_models::RooflineStats`), and publish the totals as counters
//! named `<prefix>.roofline.<stage>.{bytes,flops}`. This module turns
//! any collection of such counters into a [`RooflineReport`]: per-stage
//! arithmetic intensity (flops per byte moved) compared against a
//! machine-balance point, yielding the same memory-bound vs
//! compute-bound verdict the accelerator simulator derives from its
//! DRAM-vs-compute cycle demand — so the software engines and the
//! simulator report along the same axes.
//!
//! The balance point defaults to [`DEFAULT_MACHINE_BALANCE`] flops/byte
//! (a conservative desktop-class ratio of peak FMA throughput to DRAM
//! bandwidth) and can be pinned via the `TAGNN_ROOFLINE_BALANCE`
//! environment variable for reproducible CI output.

use std::fmt::Write as _;

/// Default machine balance in flops per byte: roughly peak AVX2 FMA
/// throughput over DRAM bandwidth for a desktop-class part. Stages with
/// a lower arithmetic intensity are memory-bound on such a machine.
pub const DEFAULT_MACHINE_BALANCE: f64 = 8.0;

/// Which side of the roofline a stage lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Arithmetic intensity below the machine balance: the stage is
    /// limited by data movement.
    Memory,
    /// Arithmetic intensity at or above the machine balance: the stage
    /// is limited by arithmetic throughput.
    Compute,
}

impl Bound {
    /// The verdict spelling used in reports and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Memory => "memory",
            Self::Compute => "compute",
        }
    }
}

/// One stage's aggregated traffic and arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineStage {
    /// Stage name (e.g. `plan_build`, `gnn`, `rnn`, `delta`).
    pub name: String,
    /// Total bytes moved by the stage.
    pub bytes: u64,
    /// Total floating-point operations executed by the stage.
    pub flops: u64,
}

impl RooflineStage {
    /// Arithmetic intensity in flops per byte (0.0 when no bytes moved).
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }

    /// The memory- vs compute-bound verdict at `balance` flops/byte.
    pub fn verdict(&self, balance: f64) -> Bound {
        if self.intensity() < balance {
            Bound::Memory
        } else {
            Bound::Compute
        }
    }
}

/// The machine-balance point to judge stages against: the
/// `TAGNN_ROOFLINE_BALANCE` environment variable when set and parseable,
/// otherwise [`DEFAULT_MACHINE_BALANCE`].
pub fn machine_balance() -> f64 {
    std::env::var("TAGNN_ROOFLINE_BALANCE")
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|b| b.is_finite() && *b > 0.0)
        .unwrap_or(DEFAULT_MACHINE_BALANCE)
}

/// Per-stage roofline verdicts extracted from published counters.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineReport {
    /// The balance point the verdicts were judged against (flops/byte).
    pub balance: f64,
    /// Stages in name order, aggregated across every publishing prefix.
    pub stages: Vec<RooflineStage>,
}

impl RooflineReport {
    /// Builds a report from counter `(name, value)` pairs by collecting
    /// every key shaped `<prefix>.roofline.<stage>.bytes` /
    /// `...flops` (or the bare `roofline.<stage>.*`), summing across
    /// prefixes so one report covers every engine that published.
    /// Returns `None` when no roofline counters are present.
    pub fn from_counters<'a, I>(counters: I, balance: f64) -> Option<Self>
    where
        I: IntoIterator<Item = (&'a str, u64)>,
    {
        let mut stages: Vec<RooflineStage> = Vec::new();
        for (key, value) in counters {
            let Some((stage, metric)) = parse_key(key) else {
                continue;
            };
            let entry = match stages.iter_mut().find(|s| s.name == stage) {
                Some(e) => e,
                None => {
                    stages.push(RooflineStage {
                        name: stage.to_string(),
                        bytes: 0,
                        flops: 0,
                    });
                    stages.last_mut().expect("just pushed")
                }
            };
            match metric {
                "bytes" => entry.bytes += value,
                "flops" => entry.flops += value,
                _ => unreachable!("parse_key only yields bytes|flops"),
            }
        }
        if stages.is_empty() {
            return None;
        }
        stages.sort_by(|a, b| a.name.cmp(&b.name));
        Some(Self { balance, stages })
    }

    /// Renders the report as aligned text rows (one per stage), the form
    /// appended to [`crate::Trace::summary`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "roofline (machine balance {} flop/byte):",
            self.balance
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {:<12} bytes={:<14} flops={:<14} intensity={:<8.3} {}-bound",
                s.name,
                s.bytes,
                s.flops,
                s.intensity(),
                s.verdict(self.balance).as_str()
            );
        }
        out
    }
}

/// Splits `<anything>.roofline.<stage>.<bytes|flops>` (the bare
/// `roofline.<stage>.<metric>` included) into `(stage, metric)`.
fn parse_key(key: &str) -> Option<(&str, &str)> {
    let tail = if let Some(rest) = key.strip_prefix("roofline.") {
        rest
    } else {
        let at = key.find(".roofline.")?;
        &key[at + ".roofline.".len()..]
    };
    let (stage, metric) = tail.split_once('.')?;
    if stage.is_empty() || !(metric == "bytes" || metric == "flops") {
        return None;
    }
    Some((stage, metric))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_parse_with_and_without_prefix() {
        assert_eq!(parse_key("roofline.gnn.bytes"), Some(("gnn", "bytes")));
        assert_eq!(
            parse_key("engine.concurrent.roofline.rnn.flops"),
            Some(("rnn", "flops"))
        );
        assert_eq!(parse_key("engine.rnn_macs"), None);
        assert_eq!(parse_key("roofline.gnn.wat"), None);
        assert_eq!(parse_key("roofline."), None);
    }

    #[test]
    fn report_aggregates_across_prefixes_and_judges_bounds() {
        let counters = [
            ("engine.concurrent.roofline.gnn.bytes", 100u64),
            ("engine.concurrent.roofline.gnn.flops", 1600u64),
            ("engine.reference.roofline.gnn.bytes", 100u64),
            ("engine.reference.roofline.gnn.flops", 1600u64),
            ("engine.concurrent.roofline.plan_build.bytes", 4096u64),
            ("engine.concurrent.roofline.plan_build.flops", 0u64),
            ("engine.concurrent.rnn_macs", 999u64),
        ];
        let r = RooflineReport::from_counters(counters, 8.0).unwrap();
        assert_eq!(r.stages.len(), 2);
        let gnn = r.stages.iter().find(|s| s.name == "gnn").unwrap();
        assert_eq!((gnn.bytes, gnn.flops), (200, 3200));
        assert_eq!(gnn.verdict(8.0), Bound::Compute);
        let plan = r.stages.iter().find(|s| s.name == "plan_build").unwrap();
        assert_eq!(plan.verdict(8.0), Bound::Memory);
        assert_eq!(plan.intensity(), 0.0);
        let text = r.render();
        assert!(text.contains("compute-bound"));
        assert!(text.contains("memory-bound"));
    }

    #[test]
    fn empty_counters_yield_no_report() {
        assert!(RooflineReport::from_counters([("a.b", 1u64)], 8.0).is_none());
    }

    #[test]
    fn balance_threshold_is_inclusive_on_the_compute_side() {
        let s = RooflineStage {
            name: "x".into(),
            bytes: 4,
            flops: 32,
        };
        assert_eq!(s.intensity(), 8.0);
        assert_eq!(s.verdict(8.0), Bound::Compute);
        assert_eq!(s.verdict(8.1), Bound::Memory);
    }

    #[test]
    fn machine_balance_defaults_sanely() {
        // Do not mutate the process environment (other tests run in
        // parallel); whatever `TAGNN_ROOFLINE_BALANCE` says, the
        // resolved balance must be a usable positive threshold.
        let balance = machine_balance();
        assert!(balance.is_finite() && balance > 0.0);
    }
}
