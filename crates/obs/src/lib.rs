#![warn(missing_docs)]

//! Structured observability for the TaGNN stack (`tagnn-obs`).
//!
//! Every layer of the reproduction — window planning, the software
//! engines, the accelerator simulator, the experiment harness — already
//! counts its work (`ExecutionStats`, `PlanInstrumentation`, `SimReport`),
//! but until this crate there was no timing hierarchy tying the counters
//! together and no export path. A [`Recorder`] holds:
//!
//! * **spans** — hierarchical wall-clock timers opened with
//!   [`Recorder::span`] (RAII) or [`Recorder::enter`]/[`Recorder::exit`],
//!   each carrying a parent chain back to the pipeline stage that opened
//!   it;
//! * **counters** — named monotone `u64` tallies ([`Recorder::incr`]),
//!   the publication target for the existing work counters;
//! * **gauges** — named `f64` readings ([`Recorder::gauge`]) for derived
//!   quantities (utilisation, cycle shares, stall cycles);
//! * **histograms** — named log-linear value distributions
//!   ([`Recorder::record`]) for latency-style metrics where percentiles
//!   (p50/p95/p99) matter and a single counter would hide the tail.
//!
//! Everything is threaded through the stack as an `Option<&Recorder>`:
//! with `None` the instrumented code paths do exactly what they did
//! before (report equality is untouched), with `Some` the recorder
//! accumulates a [`Trace`] that [`Trace::to_json`] exports as one JSON
//! artifact (hand-rolled writer — no third-party JSON dependency, so the
//! export works even where `serde_json` is unavailable).
//!
//! The recorder is `Sync`: counters and gauges may be bumped from worker
//! threads. The span *tree*, however, assumes enter/exit happen on the
//! orchestration thread — spans opened concurrently would race for the
//! same parent stack, so parallel inner loops publish counters instead.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

mod hist;
pub mod roofline;
pub use hist::Histogram;
pub use roofline::{machine_balance, Bound, RooflineReport, RooflineStage};

/// Handle to an open span, returned by [`Recorder::enter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// One finished (or still-open) span in a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Index of this span in [`Trace::spans`] (stable across export).
    pub id: usize,
    /// Span name, e.g. `plan` or `gnn_window`.
    pub name: String,
    /// Index of the enclosing span, if any.
    pub parent: Option<usize>,
    /// Nanoseconds from recorder creation to span entry.
    pub start_ns: u64,
    /// Span duration in nanoseconds (`None` while still open).
    pub dur_ns: Option<u64>,
}

/// An exported snapshot of everything a [`Recorder`] accumulated.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// All spans, in entry order; parents always precede children.
    pub spans: Vec<TraceSpan>,
    /// Named monotone tallies.
    pub counters: BTreeMap<String, u64>,
    /// Named instantaneous readings.
    pub gauges: BTreeMap<String, f64>,
    /// Named sample distributions.
    #[serde(default)]
    pub hists: BTreeMap<String, Histogram>,
}

#[derive(Debug, Default)]
struct Inner {
    spans: Vec<TraceSpan>,
    open: Vec<usize>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

/// Collects spans, counters, and gauges for one traced run.
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// An empty recorder; all span times are relative to this call.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a span named `name` under the innermost open span.
    pub fn enter(&self, name: &str) -> SpanId {
        let start_ns = self.now_ns();
        let mut inner = self.inner.lock().unwrap();
        let id = inner.spans.len();
        let parent = inner.open.last().copied();
        inner.spans.push(TraceSpan {
            id,
            name: name.to_string(),
            parent,
            start_ns,
            dur_ns: None,
        });
        inner.open.push(id);
        SpanId(id)
    }

    /// Closes `span` (and any forgotten children still open inside it).
    /// Exiting a span that is not on the open stack is a no-op.
    pub fn exit(&self, span: SpanId) {
        let end_ns = self.now_ns();
        let mut inner = self.inner.lock().unwrap();
        let Some(pos) = inner.open.iter().rposition(|&id| id == span.0) else {
            return;
        };
        let closing: Vec<usize> = inner.open.split_off(pos);
        for id in closing {
            let s = &mut inner.spans[id];
            if s.dur_ns.is_none() {
                s.dur_ns = Some(end_ns.saturating_sub(s.start_ns));
            }
        }
    }

    /// RAII variant of [`Self::enter`]: the span closes when the guard
    /// drops.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard {
            rec: Some(self),
            id: self.enter(name),
        }
    }

    /// Adds `by` to the counter `name` (creating it at zero).
    pub fn incr(&self, name: &str, by: u64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the gauge `name` to `value` (overwriting earlier readings).
    pub fn gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Records one sample into the histogram `name` (creating it empty).
    /// Like counters, histograms may be fed from worker threads.
    pub fn record(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Snapshots a single histogram by name, if it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let inner = self.inner.lock().unwrap();
        inner.hists.get(name).cloned()
    }

    /// Snapshots everything recorded so far.
    pub fn snapshot(&self) -> Trace {
        let inner = self.inner.lock().unwrap();
        Trace {
            spans: inner.spans.clone(),
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            hists: inner.hists.clone(),
        }
    }

    /// Writes the current snapshot to `path` as JSON.
    pub fn save_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.snapshot().to_json())
    }
}

/// Opens a span on `rec` when a recorder is attached; otherwise returns
/// an inert guard. The idiom for optionally-traced code paths:
///
/// ```
/// # use tagnn_obs::{span, Recorder};
/// fn work(rec: Option<&Recorder>) {
///     let _g = span(rec, "work");
///     // ... traced when rec is Some, free when None ...
/// }
/// work(None);
/// let r = Recorder::new();
/// work(Some(&r));
/// assert_eq!(r.snapshot().spans.len(), 1);
/// ```
pub fn span<'a>(rec: Option<&'a Recorder>, name: &str) -> SpanGuard<'a> {
    match rec {
        Some(r) => r.span(name),
        None => SpanGuard {
            rec: None,
            id: SpanId(usize::MAX),
        },
    }
}

/// RAII guard closing its span on drop. Obtained from [`Recorder::span`]
/// or the free [`span`] helper.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    rec: Option<&'a Recorder>,
    id: SpanId,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec {
            rec.exit(self.id);
        }
    }
}

impl Trace {
    /// Serialises the trace to a JSON string (stable key order: spans in
    /// entry order, counters and gauges sorted by name).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 96);
        out.push_str("{\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"id\": ");
            out.push_str(&s.id.to_string());
            out.push_str(", \"name\": ");
            push_json_str(&mut out, &s.name);
            out.push_str(", \"parent\": ");
            match s.parent {
                Some(p) => out.push_str(&p.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(", \"start_ns\": ");
            out.push_str(&s.start_ns.to_string());
            out.push_str(", \"dur_ns\": ");
            match s.dur_ns {
                Some(d) => out.push_str(&d.to_string()),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_str(&mut out, k);
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_str(&mut out, k);
            out.push_str(": ");
            push_json_f64(&mut out, *v);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"hists\": {");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_str(&mut out, k);
            out.push_str(": {\"count\": ");
            out.push_str(&h.count().to_string());
            out.push_str(", \"sum\": ");
            out.push_str(&h.sum().to_string());
            out.push_str(", \"min\": ");
            out.push_str(&h.min().to_string());
            out.push_str(", \"max\": ");
            out.push_str(&h.max().to_string());
            out.push_str(", \"mean\": ");
            push_json_f64(&mut out, h.mean());
            for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                out.push_str(", \"");
                out.push_str(label);
                out.push_str("\": ");
                out.push_str(&h.quantile(q).to_string());
            }
            out.push('}');
        }
        if !self.hists.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"roofline\": [");
        if let Some(report) = self.roofline() {
            for (i, s) in report.stages.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    {\"stage\": ");
                push_json_str(&mut out, &s.name);
                out.push_str(", \"bytes\": ");
                out.push_str(&s.bytes.to_string());
                out.push_str(", \"flops\": ");
                out.push_str(&s.flops.to_string());
                out.push_str(", \"intensity\": ");
                push_json_f64(&mut out, s.intensity());
                out.push_str(", \"bound\": ");
                push_json_str(&mut out, s.verdict(report.balance).as_str());
                out.push('}');
            }
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// The roofline report derivable from this trace's counters
    /// (`None` when no `roofline.*` counters were published). Judged at
    /// [`machine_balance`].
    pub fn roofline(&self) -> Option<RooflineReport> {
        RooflineReport::from_counters(
            self.counters.iter().map(|(k, v)| (k.as_str(), *v)),
            machine_balance(),
        )
    }

    /// Renders a stdout-friendly summary: spans aggregated by name
    /// (count, total milliseconds, share of the root span) followed by
    /// every counter and gauge.
    pub fn summary(&self) -> String {
        let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = agg.entry(&s.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_ns.unwrap_or(0);
        }
        let mut rows: Vec<(&str, u64, u64)> =
            agg.into_iter().map(|(n, (c, t))| (n, c, t)).collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));

        let name_w = rows
            .iter()
            .map(|r| r.0.len())
            .chain(["span".len()])
            .max()
            .unwrap_or(4);
        let mut out = String::new();
        out.push_str("trace summary\n");
        out.push_str(&format!(
            "{:<name_w$}  {:>7}  {:>12}\n",
            "span", "count", "total ms"
        ));
        for (name, count, total_ns) in &rows {
            out.push_str(&format!(
                "{:<name_w$}  {:>7}  {:>12.3}\n",
                name,
                count,
                *total_ns as f64 / 1e6
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k} = {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k} = {v}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.hists {
                out.push_str(&format!(
                    "  {k}: n={} mean={:.1} p50={} p95={} p99={} max={}\n",
                    h.count(),
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.max()
                ));
            }
        }
        if let Some(report) = self.roofline() {
            out.push_str(&report.render());
        }
        out
    }
}

/// Appends `s` as a JSON string literal (quotes, escapes).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number (`null` for non-finite values, which JSON
/// cannot represent).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_under_the_innermost_open_span() {
        let r = Recorder::new();
        {
            let _outer = r.span("outer");
            let _inner = r.span("inner");
        }
        let t = r.snapshot();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].name, "outer");
        assert_eq!(t.spans[0].parent, None);
        assert_eq!(t.spans[1].name, "inner");
        assert_eq!(t.spans[1].parent, Some(0));
        assert!(t.spans.iter().all(|s| s.dur_ns.is_some()));
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let r = Recorder::new();
        let outer = r.enter("outer");
        drop(r.span("a"));
        drop(r.span("b"));
        r.exit(outer);
        let t = r.snapshot();
        assert_eq!(t.spans[1].parent, Some(0));
        assert_eq!(t.spans[2].parent, Some(0));
    }

    #[test]
    fn exiting_a_parent_closes_forgotten_children() {
        let r = Recorder::new();
        let outer = r.enter("outer");
        let _leaked = r.enter("leaked");
        r.exit(outer);
        let t = r.snapshot();
        assert!(t.spans.iter().all(|s| s.dur_ns.is_some()));
        // A second exit of the same span is a no-op.
        r.exit(outer);
        assert_eq!(r.snapshot(), t);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = Recorder::new();
        r.incr("work", 3);
        r.incr("work", 4);
        r.gauge("util", 0.5);
        r.gauge("util", 0.75);
        let t = r.snapshot();
        assert_eq!(t.counters["work"], 7);
        assert_eq!(t.gauges["util"], 0.75);
    }

    #[test]
    fn optional_span_helper_is_inert_without_a_recorder() {
        let g = span(None, "ghost");
        drop(g);
        let r = Recorder::new();
        drop(span(Some(&r), "real"));
        assert_eq!(r.snapshot().spans.len(), 1);
    }

    #[test]
    fn json_export_contains_every_section() {
        let r = Recorder::new();
        drop(r.span("plan"));
        r.incr("models.rnn_macs", 42);
        r.gauge("sim.util", 0.93);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"spans\""));
        assert!(json.contains("\"name\": \"plan\""));
        assert!(json.contains("\"models.rnn_macs\": 42"));
        assert!(json.contains("\"sim.util\": 0.93"));
        assert!(json.contains("\"parent\": null"));
    }

    #[test]
    fn json_escapes_awkward_names() {
        let r = Recorder::new();
        r.incr("quote\"back\\slash\nnewline", 1);
        let json = r.snapshot().to_json();
        assert!(json.contains("quote\\\"back\\\\slash\\nnewline"));
    }

    #[test]
    fn json_renders_non_finite_gauges_as_null() {
        let r = Recorder::new();
        r.gauge("bad", f64::NAN);
        assert!(r.snapshot().to_json().contains("\"bad\": null"));
    }

    #[test]
    fn empty_trace_is_valid_json_shape() {
        let json = Trace::default().to_json();
        assert!(json.contains("\"spans\": []"));
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"gauges\": {}"));
    }

    #[test]
    fn summary_lists_spans_counters_and_gauges() {
        let r = Recorder::new();
        drop(r.span("plan"));
        drop(r.span("plan"));
        r.incr("c", 5);
        r.gauge("g", 1.5);
        let s = r.snapshot().summary();
        assert!(s.contains("trace summary"));
        assert!(s.contains("plan"));
        assert!(s.contains("c = 5"));
        assert!(s.contains("g = 1.5"));
    }

    #[test]
    fn histograms_record_and_export() {
        let r = Recorder::new();
        for v in [100u64, 200, 300, 40_000] {
            r.record("serve.latency_us", v);
        }
        let h = r.histogram("serve.latency_us").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 40_000);
        let t = r.snapshot();
        assert_eq!(t.hists["serve.latency_us"].count(), 4);
        let json = t.to_json();
        assert!(json.contains("\"hists\""));
        assert!(json.contains("\"serve.latency_us\": {\"count\": 4"));
        assert!(json.contains("\"p99\":"));
        let summary = t.summary();
        assert!(summary.contains("histograms:"));
        assert!(summary.contains("serve.latency_us"));
    }

    #[test]
    fn empty_trace_has_empty_hists_section() {
        assert!(Trace::default().to_json().contains("\"hists\": {}"));
        assert!(Recorder::new().histogram("missing").is_none());
    }

    #[test]
    fn roofline_counters_surface_in_json_and_summary() {
        let r = Recorder::new();
        r.incr("engine.concurrent.roofline.gnn.bytes", 64);
        r.incr("engine.concurrent.roofline.gnn.flops", 4096);
        r.incr("engine.concurrent.roofline.plan_build.bytes", 1024);
        r.incr("engine.concurrent.roofline.plan_build.flops", 0);
        let t = r.snapshot();
        let json = t.to_json();
        assert!(json.contains("\"roofline\": ["));
        assert!(json.contains("\"stage\": \"gnn\""));
        assert!(json.contains("\"bound\": \"compute\""));
        assert!(json.contains("\"stage\": \"plan_build\""));
        assert!(json.contains("\"bound\": \"memory\""));
        let s = t.summary();
        assert!(s.contains("roofline"));
        assert!(s.contains("memory-bound"));
        assert!(s.contains("compute-bound"));
        // A trace without roofline counters keeps an empty section.
        assert!(Trace::default().to_json().contains("\"roofline\": []"));
        assert!(Trace::default().roofline().is_none());
    }

    #[test]
    fn save_json_writes_the_file() {
        let r = Recorder::new();
        drop(r.span("io"));
        let path = std::env::temp_dir().join("tagnn-obs-test-trace.json");
        r.save_json(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.contains("\"io\""));
        let _ = std::fs::remove_file(&path);
    }
}
