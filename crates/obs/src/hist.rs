//! Log-linear histograms for latency-style metrics.
//!
//! A [`Histogram`] buckets `u64` samples (typically nanoseconds or
//! microseconds) into a fixed HDR-style log-linear layout: each power of
//! two is split into [`SUB_BUCKETS`] linear sub-buckets, bounding the
//! relative quantile error at `1 / SUB_BUCKETS` (6.25%) while keeping the
//! whole histogram a flat 960-slot array — no allocation per sample, no
//! configuration, and merging two histograms is element-wise addition.
//! Values below [`SUB_BUCKETS`] are recorded exactly.

use serde::{Deserialize, Serialize};

/// log2 of the number of linear sub-buckets per power of two.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power of two (= 16).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
const NUM_BUCKETS: usize = (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// A fixed-layout log-linear histogram of `u64` samples.
///
/// Records are O(1), quantiles are a linear walk over 960 buckets, and
/// the reported quantile is the *upper bound* of the bucket the rank
/// falls in (conservative for latency: p99 is never under-reported by
/// more than the bucket width, ~6.25% relative).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (msb - SUB_BITS + 1) as usize * SUB_BUCKETS + sub
}

/// Largest value that maps to bucket `idx` (inclusive upper bound).
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let octave = (idx / SUB_BUCKETS) as u32;
    let sub = (idx % SUB_BUCKETS) as u64;
    let msb = octave + SUB_BITS - 1;
    let lower = (1u64 << msb) + (sub << (msb - SUB_BITS));
    lower + (1u64 << (msb - SUB_BITS)) - 1
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` (element-wise bucket addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q * count)`-th smallest sample, clamped to the
    /// exact observed min/max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience percentile accessor (`p` in `[0, 100]`).
    pub fn percentile(&self, p: f64) -> u64 {
        self.quantile(p / 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        for v in 0..SUB_BUCKETS as u64 {
            // Each small value sits alone in its own bucket.
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every bucket's upper bound must map back into that bucket, and
        // the next value must map strictly beyond it.
        for v in [
            1u64,
            15,
            16,
            17,
            100,
            1000,
            123_456,
            u32::MAX as u64,
            1 << 60,
        ] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper {upper} < value {v}");
            assert_eq!(bucket_index(upper), idx);
            assert!(bucket_index(upper + 1) > idx);
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let got = h.quantile(q);
            assert!(got >= exact, "q{q}: {got} < exact {exact}");
            let err = (got - exact) as f64 / exact as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64, "q{q}: err {err}");
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 70, 900, 12_345] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 50_000, 7] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(60);
        assert_eq!(h.mean(), 30.0);
    }
}
