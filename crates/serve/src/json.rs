//! Minimal hand-rolled JSON — the wire format of the serving layer.
//!
//! The serving crate deliberately avoids heavyweight serde derives on the
//! hot path (and keeps the workspace's no-new-dependencies rule): requests
//! and replies are small, flat documents, so a ~200-line recursive-descent
//! parser and a string writer cover the protocol. Numbers round-trip
//! exactly for the f32 features the wire carries: Rust's `Display` for
//! floats emits the shortest representation that parses back to the same
//! bits, and parsing as `f64` then casting to `f32` recovers them.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser (defense against
/// `[[[[...` stack exhaustion from untrusted clients).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// `self[key]`, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("document too deeply nested".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at offset {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by this
                            // protocol; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // on char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

/// Appends `s` as a JSON string (with quotes and escapes) to `out`.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite float in round-trip form (non-finite values become
/// `null`, which JSON requires).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(
            r#"{"id":3,"events":[{"op":"tick"},{"op":"add_edge","src":1,"dst":2}],"flush":true}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("flush").unwrap().as_bool(), Some(true));
        let events = v.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("op").unwrap().as_str(), Some("tick"));
        assert_eq!(events[1].get("src").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":1}{"b":2}"#).is_err(), "trailing garbage");
        assert!(parse("[1,]").is_err());
        assert!(
            parse(&("[".repeat(200) + &"]".repeat(200))).is_err(),
            "depth"
        );
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, r#""a\"b\\c\nd\u0001""#);
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn f32_features_survive_the_wire_exactly() {
        for &x in &[0.1f32, -3.4e-12, f32::MIN_POSITIVE, 1.0 / 3.0, 6.25] {
            let mut out = String::new();
            write_f64(&mut out, x as f64);
            let back = parse(&out).unwrap().as_f64().unwrap() as f32;
            assert_eq!(back.to_bits(), x.to_bits(), "{x} must round-trip");
        }
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn numbers_parse_in_all_forms() {
        assert_eq!(parse("-0.5e2").unwrap().as_f64(), Some(-50.0));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
