//! Compact length-prefixed binary wire protocol.
//!
//! The default frontend framing (JSON-lines stays available behind
//! `--wire json` for debugging). One frame per request/reply:
//!
//! ```text
//! frame := len:u32 LE | ver:u8 | kind:u8 | id:u64 LE | body
//! ```
//!
//! `len` counts everything after itself (`ver` through `body`), so a
//! reader needs 4 bytes to learn the frame size and `4 + len` bytes to
//! decode. `ver` is [`WIRE_VERSION`]; a reader rejects frames of any
//! other version with a protocol error instead of guessing. Request
//! kinds are `0x01` (infer), `0x02` (stats), `0x03` (ping); replies are
//! the request kind with the top bit set (`0x81`/`0x82`/`0x83`) and
//! `0xE0` is an error reply. All integers are little-endian; feature
//! payloads travel as raw LE f32 words — [`decode_request`] borrows them
//! straight out of the connection's read buffer, no text round-trip.
//!
//! Body layouts:
//!
//! ```text
//! infer req   := stream:u64 | flags:u8 (bit0 = flush) | count:u32 | event*
//! event       := tag:u8 | payload
//!   0 add_edge       src:u32 dst:u32        3 remove_vertex  v:u32
//!   1 remove_edge    src:u32 dst:u32        4 update_feature v:u32 dim:u32 f32*
//!   2 add_vertex     v:u32                  5 tick           (empty)
//! infer reply := accepted:u32 | count:u32 | window*
//! window      := stream:u64 seq:u64 snapshots:u32 digest:u64 macs:u64
//!                skipped:u64 plan:u8 latency_us:u64
//! error reply := code_len:u16 code | msg_len:u32 msg      (UTF-8)
//! stats reply := fixed counters | shard arrays             (see encode_stats)
//! ```

use tagnn_graph::PlanSource;

use crate::core::{InferRequest, Reply, WindowResult};
use crate::error::ServeError;
use crate::event::EdgeEvent;
use crate::wire::{StatsView, WireRequest};

/// Protocol version carried in every frame.
pub const WIRE_VERSION: u8 = 1;

/// Frames larger than this are rejected at the header, before any
/// allocation, so a bad length prefix cannot balloon memory.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Frame kind bytes.
pub mod kind {
    /// Infer request.
    pub const INFER: u8 = 0x01;
    /// Stats request.
    pub const STATS: u8 = 0x02;
    /// Ping request.
    pub const PING: u8 = 0x03;
    /// Infer reply.
    pub const INFER_REPLY: u8 = 0x81;
    /// Stats reply.
    pub const STATS_REPLY: u8 = 0x82;
    /// Pong.
    pub const PONG: u8 = 0x83;
    /// Error reply.
    pub const ERROR: u8 = 0xE0;
}

/// Header bytes after the length prefix: ver + kind + id.
const FRAME_OVERHEAD: usize = 1 + 1 + 8;

fn proto(msg: impl Into<String>) -> ServeError {
    ServeError::Protocol(msg.into())
}

/// A little-endian cursor over a frame body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| proto("truncated frame body"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_u16(out: &mut Vec<u8>, x: u16) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// Appends one complete frame to `out`.
pub fn encode_frame(out: &mut Vec<u8>, kind: u8, id: u64, body: &[u8]) {
    put_u32(out, (FRAME_OVERHEAD + body.len()) as u32);
    out.push(WIRE_VERSION);
    out.push(kind);
    put_u64(out, id);
    out.extend_from_slice(body);
}

/// A decoded frame header with its body borrowed from the read buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Frame kind byte.
    pub kind: u8,
    /// Request/reply id.
    pub id: u64,
    /// Body bytes (zero-copy slice of the read buffer).
    pub body: &'a [u8],
    /// Total bytes this frame occupies in the buffer (length prefix
    /// included) — the amount the caller consumes on success.
    pub consumed: usize,
}

/// Tries to decode one frame from the front of `buf`. `Ok(None)` means
/// more bytes are needed; errors are fatal for the connection (framing
/// is unrecoverable once the byte stream is misaligned).
pub fn try_decode_frame(buf: &[u8]) -> Result<Option<Frame<'_>>, ServeError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len < FRAME_OVERHEAD {
        return Err(proto(format!("frame length {len} below header size")));
    }
    if len > MAX_FRAME_LEN {
        return Err(proto(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let ver = buf[4];
    if ver != WIRE_VERSION {
        return Err(proto(format!(
            "unsupported wire version {ver} (expected {WIRE_VERSION})"
        )));
    }
    let kind = buf[5];
    let id = u64::from_le_bytes(buf[6..14].try_into().unwrap());
    Ok(Some(Frame {
        kind,
        id,
        body: &buf[14..4 + len],
        consumed: 4 + len,
    }))
}

/// Blocking client-side frame reader: buffers partial frames across
/// reads so pipelined replies that coalesce into one TCP segment still
/// come out one frame at a time. Used by the load generator and bench
/// clients; the server has its own nonblocking read path.
///
/// Consumed frames advance a cursor instead of draining the buffer
/// (draining shifts every remaining byte — quadratic under pipelined
/// bursts); the dead prefix is compacted away once it outgrows the live
/// bytes. Buffered memory is explicitly capped: `try_decode_frame`
/// rejects any length prefix above [`MAX_FRAME_LEN`] before allocation,
/// so the buffer never holds more than one maximal frame plus one read
/// chunk, and the reader enforces that invariant rather than assuming it.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
}

/// Hard ceiling on bytes a [`FrameReader`] will buffer: one maximal
/// frame (prefix included) plus one read chunk.
const MAX_BUFFERED: usize = 4 + MAX_FRAME_LEN + READ_CHUNK;

const READ_CHUNK: usize = 16 << 10;

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently buffered but not yet consumed by a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Reads the next frame from `src`, blocking as needed. Returns
    /// `Ok(None)` on clean EOF at a frame boundary; EOF mid-frame and
    /// framing errors surface as `InvalidData`/`UnexpectedEof` I/O
    /// errors.
    pub fn read_frame<R: std::io::Read>(
        &mut self,
        src: &mut R,
    ) -> std::io::Result<Option<(u8, u64, Vec<u8>)>> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match try_decode_frame(&self.buf[self.start..]) {
                Ok(Some(frame)) => {
                    let out = (frame.kind, frame.id, frame.body.to_vec());
                    self.start += frame.consumed;
                    if self.start >= self.buf.len() {
                        self.buf.clear();
                        self.start = 0;
                    } else if self.start > self.buf.len() - self.start {
                        // Dead prefix outgrew the live tail: compact once
                        // instead of shifting on every frame.
                        self.buf.copy_within(self.start.., 0);
                        self.buf.truncate(self.buf.len() - self.start);
                        self.start = 0;
                    }
                    return Ok(Some(out));
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        e.to_string(),
                    ))
                }
            }
            if self.buffered() + READ_CHUNK > MAX_BUFFERED {
                // Unreachable while try_decode_frame bounds frame lengths,
                // but the cap must hold even if that invariant slips.
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "frame reader buffer cap exceeded",
                ));
            }
            let n = src.read(&mut chunk)?;
            if n == 0 {
                return if self.buffered() == 0 {
                    Ok(None)
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                };
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

fn encode_event(out: &mut Vec<u8>, event: &EdgeEvent) {
    match event {
        EdgeEvent::AddEdge { src, dst } => {
            out.push(0);
            put_u32(out, *src);
            put_u32(out, *dst);
        }
        EdgeEvent::RemoveEdge { src, dst } => {
            out.push(1);
            put_u32(out, *src);
            put_u32(out, *dst);
        }
        EdgeEvent::AddVertex { v } => {
            out.push(2);
            put_u32(out, *v);
        }
        EdgeEvent::RemoveVertex { v } => {
            out.push(3);
            put_u32(out, *v);
        }
        EdgeEvent::UpdateFeature { v, feature } => {
            out.push(4);
            put_u32(out, *v);
            put_u32(out, feature.len() as u32);
            for x in feature {
                put_u32(out, x.to_bits());
            }
        }
        EdgeEvent::Tick => out.push(5),
    }
}

fn decode_event(r: &mut Reader<'_>) -> Result<EdgeEvent, ServeError> {
    match r.u8()? {
        0 => Ok(EdgeEvent::AddEdge {
            src: r.u32()?,
            dst: r.u32()?,
        }),
        1 => Ok(EdgeEvent::RemoveEdge {
            src: r.u32()?,
            dst: r.u32()?,
        }),
        2 => Ok(EdgeEvent::AddVertex { v: r.u32()? }),
        3 => Ok(EdgeEvent::RemoveVertex { v: r.u32()? }),
        4 => {
            let v = r.u32()?;
            let dim = r.u32()? as usize;
            // Bound the claimed dim by the bytes actually present before
            // allocating.
            let raw = r.take(
                dim.checked_mul(4)
                    .ok_or_else(|| proto("feature dim overflow"))?,
            )?;
            let feature = raw
                .chunks_exact(4)
                .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
                .collect();
            Ok(EdgeEvent::UpdateFeature { v, feature })
        }
        5 => Ok(EdgeEvent::Tick),
        other => Err(proto(format!("unknown event tag {other}"))),
    }
}

/// Appends a complete infer-request frame.
pub fn encode_infer(out: &mut Vec<u8>, id: u64, stream: u64, events: &[EdgeEvent], flush: bool) {
    let mut body = Vec::with_capacity(13 + events.len() * 9);
    put_u64(&mut body, stream);
    body.push(u8::from(flush));
    put_u32(&mut body, events.len() as u32);
    for e in events {
        encode_event(&mut body, e);
    }
    encode_frame(out, kind::INFER, id, &body);
}

/// Appends a complete stats-request frame.
pub fn encode_stats_request(out: &mut Vec<u8>, id: u64) {
    encode_frame(out, kind::STATS, id, &[]);
}

/// Appends a complete ping frame.
pub fn encode_ping(out: &mut Vec<u8>, id: u64) {
    encode_frame(out, kind::PING, id, &[]);
}

/// Decodes a request frame into the same [`WireRequest`] the JSON path
/// produces. Like [`crate::wire::parse_request`], errors carry the frame
/// id so the reply can echo it.
pub fn decode_request(frame: &Frame<'_>) -> Result<WireRequest, (u64, ServeError)> {
    let id = frame.id;
    decode_request_body(frame).map_err(|e| (id, e))
}

fn decode_request_body(frame: &Frame<'_>) -> Result<WireRequest, ServeError> {
    let id = frame.id;
    match frame.kind {
        kind::INFER => {
            let mut r = Reader::new(frame.body);
            let stream = r.u64()?;
            let flush = r.u8()? != 0;
            let count = r.u32()? as usize;
            if count > frame.body.len() {
                // Every event costs ≥1 byte; a count beyond the body size
                // is a lie — reject before reserving.
                return Err(proto(format!("event count {count} exceeds body")));
            }
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                events.push(decode_event(&mut r)?);
            }
            if !r.done() {
                return Err(proto("trailing bytes after events"));
            }
            Ok(WireRequest::Infer {
                id,
                req: InferRequest {
                    stream,
                    events,
                    flush,
                },
            })
        }
        kind::STATS => Ok(WireRequest::Stats { id }),
        kind::PING => Ok(WireRequest::Ping { id }),
        other => Err(proto(format!("unknown request kind 0x{other:02x}"))),
    }
}

fn plan_source_byte(p: PlanSource) -> u8 {
    match p {
        PlanSource::Scratch => 0,
        PlanSource::Cached => 1,
        PlanSource::Incremental => 2,
    }
}

fn plan_source_from_byte(b: u8) -> Result<PlanSource, ServeError> {
    match b {
        0 => Ok(PlanSource::Scratch),
        1 => Ok(PlanSource::Cached),
        2 => Ok(PlanSource::Incremental),
        other => Err(proto(format!("unknown plan source {other}"))),
    }
}

/// Appends a complete infer-reply frame.
pub fn encode_reply(out: &mut Vec<u8>, id: u64, reply: &Reply) {
    let mut body = Vec::with_capacity(8 + reply.windows.len() * 53);
    put_u32(&mut body, reply.accepted_events as u32);
    put_u32(&mut body, reply.windows.len() as u32);
    for w in &reply.windows {
        put_u64(&mut body, w.stream);
        put_u64(&mut body, w.seq);
        put_u32(&mut body, w.snapshots as u32);
        put_u64(&mut body, w.digest);
        put_u64(&mut body, w.macs);
        put_u64(&mut body, w.skipped_cells);
        body.push(plan_source_byte(w.plan_source));
        put_u64(&mut body, w.latency_us);
    }
    encode_frame(out, kind::INFER_REPLY, id, &body);
}

/// Decodes an infer-reply body (client side).
pub fn decode_reply(body: &[u8]) -> Result<Reply, ServeError> {
    let mut r = Reader::new(body);
    let accepted_events = r.u32()? as usize;
    let count = r.u32()? as usize;
    if count > body.len() {
        return Err(proto(format!("window count {count} exceeds body")));
    }
    let mut windows = Vec::with_capacity(count);
    for _ in 0..count {
        windows.push(WindowResult {
            stream: r.u64()?,
            seq: r.u64()?,
            snapshots: r.u32()? as usize,
            digest: r.u64()?,
            macs: r.u64()?,
            skipped_cells: r.u64()?,
            plan_source: plan_source_from_byte(r.u8()?)?,
            latency_us: r.u64()?,
        });
    }
    if !r.done() {
        return Err(proto("trailing bytes after windows"));
    }
    Ok(Reply {
        accepted_events,
        windows,
    })
}

/// Appends a complete error-reply frame.
pub fn encode_error(out: &mut Vec<u8>, id: u64, err: &ServeError) {
    let code = err.code().as_bytes();
    let msg = err.to_string().into_bytes();
    let mut body = Vec::with_capacity(6 + code.len() + msg.len());
    put_u16(&mut body, code.len() as u16);
    body.extend_from_slice(code);
    put_u32(&mut body, msg.len() as u32);
    body.extend_from_slice(&msg);
    encode_frame(out, kind::ERROR, id, &body);
}

/// Decodes an error-reply body into `(code, message)`.
pub fn decode_error(body: &[u8]) -> Result<(String, String), ServeError> {
    let mut r = Reader::new(body);
    let code_len = r.u16()? as usize;
    let code =
        String::from_utf8(r.take(code_len)?.to_vec()).map_err(|_| proto("non-UTF-8 error code"))?;
    let msg_len = r.u32()? as usize;
    let msg = String::from_utf8(r.take(msg_len)?.to_vec())
        .map_err(|_| proto("non-UTF-8 error message"))?;
    Ok((code, msg))
}

/// Appends a complete pong frame.
pub fn encode_pong(out: &mut Vec<u8>, id: u64) {
    encode_frame(out, kind::PONG, id, &[]);
}

/// Appends a complete stats-reply frame.
pub fn encode_stats(out: &mut Vec<u8>, id: u64, s: &StatsView) {
    let mut body = Vec::with_capacity(96 + s.shard_routed.len() * 12);
    put_u64(&mut body, s.queue_depth as u64);
    put_u64(&mut body, s.shed);
    put_u32(&mut body, s.degrade_level);
    put_u32(&mut body, s.max_degrade_level);
    put_u64(&mut body, s.cache_hits);
    put_u64(&mut body, s.cache_misses);
    put_u64(&mut body, s.cache_evictions);
    put_u64(&mut body, s.plan_scratch);
    put_u64(&mut body, s.plan_cached);
    put_u64(&mut body, s.plan_incremental);
    put_u64(&mut body, s.plan_fallbacks);
    put_u64(&mut body, s.dispatch_dense);
    put_u64(&mut body, s.dispatch_spmm);
    put_u64(&mut body, s.dispatch_delta_skip);
    // f64 travels as its IEEE-754 bit pattern (exact round trip).
    put_u64(&mut body, s.dispatch_density.to_bits());
    put_u64(&mut body, s.cross_shard_edges);
    put_u32(&mut body, s.shard_routed.len() as u32);
    for &x in &s.shard_routed {
        put_u64(&mut body, x);
    }
    put_u32(&mut body, s.shard_queue_depths.len() as u32);
    for &x in &s.shard_queue_depths {
        put_u64(&mut body, x as u64);
    }
    // Durability counters ride at the end so readers of the pre-durable
    // layout still decode everything before them.
    body.push(u8::from(s.durability_enabled));
    put_u64(&mut body, s.wal_appends);
    put_u64(&mut body, s.wal_fsyncs);
    put_u64(&mut body, s.checkpoints_written);
    put_u64(&mut body, s.replayed_events);
    put_u64(&mut body, s.replay_us);
    put_u64(&mut body, s.truncated_tail_bytes);
    encode_frame(out, kind::STATS_REPLY, id, &body);
}

/// Decodes a stats-reply body (client side).
pub fn decode_stats(body: &[u8]) -> Result<StatsView, ServeError> {
    let mut r = Reader::new(body);
    let queue_depth = r.u64()? as usize;
    let shed = r.u64()?;
    let degrade_level = r.u32()?;
    let max_degrade_level = r.u32()?;
    let cache_hits = r.u64()?;
    let cache_misses = r.u64()?;
    let cache_evictions = r.u64()?;
    let plan_scratch = r.u64()?;
    let plan_cached = r.u64()?;
    let plan_incremental = r.u64()?;
    let plan_fallbacks = r.u64()?;
    let dispatch_dense = r.u64()?;
    let dispatch_spmm = r.u64()?;
    let dispatch_delta_skip = r.u64()?;
    let dispatch_density = f64::from_bits(r.u64()?);
    let cross_shard_edges = r.u64()?;
    let n = r.u32()? as usize;
    if n > body.len() {
        return Err(proto("shard count exceeds body"));
    }
    let mut shard_routed = Vec::with_capacity(n);
    for _ in 0..n {
        shard_routed.push(r.u64()?);
    }
    let n = r.u32()? as usize;
    if n > body.len() {
        return Err(proto("shard count exceeds body"));
    }
    let mut shard_queue_depths = Vec::with_capacity(n);
    for _ in 0..n {
        shard_queue_depths.push(r.u64()? as usize);
    }
    // Absent tail (a pre-durable peer) decodes as durability-off zeros.
    let (
        durability_enabled,
        wal_appends,
        wal_fsyncs,
        checkpoints_written,
        replayed_events,
        replay_us,
        truncated_tail_bytes,
    ) = if r.done() {
        (false, 0, 0, 0, 0, 0, 0)
    } else {
        (
            r.u8()? != 0,
            r.u64()?,
            r.u64()?,
            r.u64()?,
            r.u64()?,
            r.u64()?,
            r.u64()?,
        )
    };
    Ok(StatsView {
        queue_depth,
        shed,
        degrade_level,
        max_degrade_level,
        cache_hits,
        cache_misses,
        cache_evictions,
        plan_scratch,
        plan_cached,
        plan_incremental,
        plan_fallbacks,
        dispatch_dense,
        dispatch_spmm,
        dispatch_delta_skip,
        dispatch_density,
        shard_routed,
        shard_queue_depths,
        cross_shard_edges,
        durability_enabled,
        wal_appends,
        wal_fsyncs,
        checkpoints_written,
        replayed_events,
        replay_us,
        truncated_tail_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_one(buf: &[u8]) -> Frame<'_> {
        try_decode_frame(buf)
            .expect("well-formed")
            .expect("complete")
    }

    #[test]
    fn infer_round_trips_including_features() {
        let events = vec![
            EdgeEvent::AddEdge { src: 3, dst: 9 },
            EdgeEvent::RemoveEdge { src: 9, dst: 3 },
            EdgeEvent::AddVertex { v: 7 },
            EdgeEvent::RemoveVertex { v: 8 },
            EdgeEvent::UpdateFeature {
                v: 1,
                // Bit-exactness matters: NaN payloads and negative zero
                // must survive, which text formats cannot guarantee.
                feature: vec![0.25, -0.0, f32::NAN, f32::MIN_POSITIVE],
            },
            EdgeEvent::Tick,
        ];
        let mut buf = Vec::new();
        encode_infer(&mut buf, 11, 4, &events, true);
        let frame = decode_one(&buf);
        assert_eq!(frame.consumed, buf.len());
        match decode_request(&frame).unwrap() {
            WireRequest::Infer { id, req } => {
                assert_eq!(id, 11);
                assert_eq!(req.stream, 4);
                assert!(req.flush);
                assert_eq!(req.events.len(), events.len());
                for (a, b) in req.events.iter().zip(&events) {
                    match (a, b) {
                        (
                            EdgeEvent::UpdateFeature { v: va, feature: fa },
                            EdgeEvent::UpdateFeature { v: vb, feature: fb },
                        ) => {
                            assert_eq!(va, vb);
                            let bits =
                                |f: &[f32]| f.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                            assert_eq!(bits(fa), bits(fb), "features must be bit-exact");
                        }
                        _ => assert_eq!(a, b),
                    }
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn partial_frames_ask_for_more_bytes() {
        let mut buf = Vec::new();
        encode_ping(&mut buf, 5);
        for cut in 0..buf.len() {
            assert_eq!(
                try_decode_frame(&buf[..cut]).unwrap(),
                None,
                "{cut} bytes is incomplete"
            );
        }
        let frame = decode_one(&buf);
        assert_eq!((frame.kind, frame.id), (kind::PING, 5));
        assert!(frame.body.is_empty());
    }

    #[test]
    fn two_frames_in_one_buffer_decode_in_order() {
        let mut buf = Vec::new();
        encode_ping(&mut buf, 1);
        encode_stats_request(&mut buf, 2);
        let a = decode_one(&buf);
        assert_eq!((a.kind, a.id), (kind::PING, 1));
        let rest = &buf[a.consumed..];
        let b = decode_one(rest);
        assert_eq!((b.kind, b.id), (kind::STATS, 2));
        assert_eq!(a.consumed + b.consumed, buf.len());
    }

    #[test]
    fn bad_version_and_oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        encode_ping(&mut buf, 1);
        buf[4] = 99; // stomp the version byte
        assert!(try_decode_frame(&buf).is_err());

        let mut huge = Vec::new();
        put_u32(&mut huge, (MAX_FRAME_LEN + 1) as u32);
        huge.extend_from_slice(&[0; 16]);
        assert!(try_decode_frame(&huge).is_err());

        let mut tiny = Vec::new();
        put_u32(&mut tiny, 3); // below header size
        tiny.extend_from_slice(&[0; 16]);
        assert!(try_decode_frame(&tiny).is_err());
    }

    #[test]
    fn truncated_bodies_are_protocol_errors_with_the_frame_id() {
        // A frame that claims 3 events but carries 1.
        let mut body = Vec::new();
        put_u64(&mut body, 0); // stream
        body.push(0); // flush
        put_u32(&mut body, 3); // count (lie)
        body.push(5); // one tick
        let mut buf = Vec::new();
        encode_frame(&mut buf, kind::INFER, 42, &body);
        let frame = decode_one(&buf);
        match decode_request(&frame) {
            Err((42, ServeError::Protocol(_))) => {}
            other => panic!("expected protocol error with id 42, got {other:?}"),
        }
    }

    #[test]
    fn reply_error_stats_round_trip() {
        let reply = Reply {
            accepted_events: 5,
            windows: vec![WindowResult {
                stream: 1,
                seq: 0,
                snapshots: 4,
                digest: u64::MAX - 1,
                macs: 1000,
                skipped_cells: 3,
                plan_source: PlanSource::Incremental,
                latency_us: 77,
            }],
        };
        let mut buf = Vec::new();
        encode_reply(&mut buf, 9, &reply);
        let frame = decode_one(&buf);
        assert_eq!((frame.kind, frame.id), (kind::INFER_REPLY, 9));
        assert_eq!(decode_reply(frame.body).unwrap(), reply);

        let mut buf = Vec::new();
        encode_error(&mut buf, 9, &ServeError::Closed);
        let frame = decode_one(&buf);
        assert_eq!(frame.kind, kind::ERROR);
        let (code, msg) = decode_error(frame.body).unwrap();
        assert_eq!(code, "closed");
        assert!(!msg.is_empty());

        let stats = StatsView {
            queue_depth: 3,
            shed: 1,
            dispatch_dense: 11,
            dispatch_spmm: 4,
            dispatch_delta_skip: 6,
            // Not exactly representable in decimal — the bit-pattern
            // encoding must still round-trip it exactly.
            dispatch_density: 1.0 / 3.0,
            shard_routed: vec![10, 20, 30],
            shard_queue_depths: vec![0, 1, 2],
            cross_shard_edges: 7,
            ..StatsView::default()
        };
        let mut buf = Vec::new();
        encode_stats(&mut buf, 2, &stats);
        let frame = decode_one(&buf);
        assert_eq!(frame.kind, kind::STATS_REPLY);
        assert_eq!(decode_stats(frame.body).unwrap(), stats);
    }

    #[test]
    fn durability_stats_round_trip_and_absent_tail_decodes_as_disabled() {
        let stats = StatsView {
            durability_enabled: true,
            wal_appends: 100,
            wal_fsyncs: 13,
            checkpoints_written: 4,
            replayed_events: 250,
            replay_us: 9000,
            truncated_tail_bytes: 7,
            ..StatsView::default()
        };
        let mut buf = Vec::new();
        encode_stats(&mut buf, 1, &stats);
        let frame = decode_one(&buf);
        assert_eq!(decode_stats(frame.body).unwrap(), stats);

        // A pre-durable peer's body stops after the shard arrays; the
        // appended tail must be optional, not a decode error.
        let cut = frame.body.len() - (1 + 6 * 8);
        let old = decode_stats(&frame.body[..cut]).unwrap();
        assert!(!old.durability_enabled);
        assert_eq!(old.wal_appends, 0);
    }

    /// Every well-formed frame, truncated at every length and with every
    /// single byte flipped, must decode to Ok or a typed error — never a
    /// panic, and never an allocation proportional to a lying length
    /// field. (The alloc property is structural — counts are bounded by
    /// body size before `Vec::with_capacity` — but the sweep would
    /// abort on capacity overflow if that regressed.)
    #[test]
    fn corrupt_byte_sweep_never_panics() {
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut buf = Vec::new();
        encode_infer(
            &mut buf,
            7,
            3,
            &[
                EdgeEvent::AddEdge { src: 1, dst: 2 },
                EdgeEvent::UpdateFeature {
                    v: 0,
                    feature: vec![1.0, f32::NAN],
                },
                EdgeEvent::Tick,
            ],
            true,
        );
        frames.push(std::mem::take(&mut buf));
        encode_reply(
            &mut buf,
            8,
            &Reply {
                accepted_events: 2,
                windows: vec![WindowResult {
                    stream: 3,
                    seq: 1,
                    snapshots: 3,
                    digest: 42,
                    macs: 99,
                    skipped_cells: 0,
                    plan_source: PlanSource::Cached,
                    latency_us: 5,
                }],
            },
        );
        frames.push(std::mem::take(&mut buf));
        encode_stats(
            &mut buf,
            9,
            &StatsView {
                shard_routed: vec![1, 2],
                shard_queue_depths: vec![0, 3],
                durability_enabled: true,
                wal_appends: 5,
                ..StatsView::default()
            },
        );
        frames.push(std::mem::take(&mut buf));
        encode_error(&mut buf, 10, &ServeError::Closed);
        frames.push(std::mem::take(&mut buf));

        let exercise = |bytes: &[u8]| {
            if let Ok(Some(frame)) = try_decode_frame(bytes) {
                let _ = decode_request(&frame);
                let _ = decode_reply(frame.body);
                let _ = decode_stats(frame.body);
                let _ = decode_error(frame.body);
            }
        };
        for frame in &frames {
            for cut in 0..frame.len() {
                exercise(&frame[..cut]);
            }
            let mut mutated = frame.clone();
            for i in 0..frame.len() {
                for flip in [0x01u8, 0x80, 0xFF] {
                    mutated[i] = frame[i] ^ flip;
                    exercise(&mutated);
                }
                mutated[i] = frame[i];
            }
        }
    }

    #[test]
    fn frame_reader_reassembles_pipelined_and_fragmented_frames() {
        let mut wire = Vec::new();
        for id in 0..64u64 {
            encode_infer(
                &mut wire,
                id,
                id % 3,
                &[EdgeEvent::Tick, EdgeEvent::AddEdge { src: 0, dst: 1 }],
                false,
            );
        }
        // Feed the whole burst through a reader that sees 7-byte reads:
        // every frame straddles chunk boundaries.
        struct Dribble<'a>(&'a [u8]);
        impl std::io::Read for Dribble<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                let n = self.0.len().min(out.len()).min(7);
                out[..n].copy_from_slice(&self.0[..n]);
                self.0 = &self.0[n..];
                Ok(n)
            }
        }
        let mut src = Dribble(&wire);
        let mut reader = FrameReader::new();
        for id in 0..64u64 {
            let (k, got_id, _) = reader
                .read_frame(&mut src)
                .expect("clean stream")
                .expect("frame present");
            assert_eq!((k, got_id), (kind::INFER, id));
        }
        assert!(reader.read_frame(&mut src).expect("clean EOF").is_none());
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn frame_reader_reports_mid_frame_eof_and_bad_framing() {
        let mut wire = Vec::new();
        encode_ping(&mut wire, 1);
        wire.truncate(wire.len() - 1);
        let mut reader = FrameReader::new();
        let err = reader
            .read_frame(&mut std::io::Cursor::new(&wire))
            .expect_err("mid-frame EOF");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

        let mut huge = Vec::new();
        put_u32(&mut huge, (MAX_FRAME_LEN + 1) as u32);
        let mut reader = FrameReader::new();
        let err = reader
            .read_frame(&mut std::io::Cursor::new(&huge))
            .expect_err("oversized length prefix");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
