//! Graceful degradation under sustained backlog.
//!
//! When the admission queue stays above a high watermark, the server
//! trades a little fidelity for throughput by *widening* the
//! similarity-aware skip band: `SkipConfig::select` skips a cell when
//! `theta > theta_e` and takes the delta path when `theta >= theta_s`,
//! so lowering both thresholds makes more cells skip (paper §3.3 — the
//! thresholds trade accuracy against RNN compute). The policy is
//! hysteretic: it widens one step after `patience` consecutive
//! over-watermark observations, and unwinds a step after `patience`
//! consecutive under-low-watermark observations, so a noisy queue depth
//! never flaps the operating point.

use tagnn_models::SkipConfig;

/// Configuration of the backlog-driven degradation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Master switch; when false the configured skip thresholds are used
    /// verbatim and the server never degrades.
    pub enabled: bool,
    /// Queue depth (items) at or above which an observation counts as
    /// overloaded.
    pub high_watermark: usize,
    /// Queue depth at or below which an observation counts as recovered.
    pub low_watermark: usize,
    /// Consecutive observations on one side required before moving a
    /// step in that direction.
    pub patience: u32,
    /// How much both thresholds drop per widening step.
    pub widen_step: f32,
    /// Maximum number of widening steps.
    pub max_widen: u32,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            high_watermark: 8,
            low_watermark: 2,
            patience: 3,
            widen_step: 0.25,
            max_widen: 4,
        }
    }
}

impl DegradationPolicy {
    /// A policy that never degrades.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Mutable state of the degradation controller (one per batcher thread).
#[derive(Debug, Clone, Copy, Default)]
pub struct DegradationState {
    level: u32,
    over_streak: u32,
    under_streak: u32,
    max_level_seen: u32,
}

impl DegradationState {
    /// Current widening level (0 = configured thresholds).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Highest level reached since construction (reported by benches).
    pub fn max_level_seen(&self) -> u32 {
        self.max_level_seen
    }

    /// Feeds one queue-depth observation; returns the (possibly new)
    /// level.
    pub fn observe(&mut self, depth: usize, policy: &DegradationPolicy) -> u32 {
        if !policy.enabled {
            return 0;
        }
        if depth >= policy.high_watermark {
            self.under_streak = 0;
            self.over_streak += 1;
            if self.over_streak >= policy.patience && self.level < policy.max_widen {
                self.level += 1;
                self.over_streak = 0;
                self.max_level_seen = self.max_level_seen.max(self.level);
            }
        } else if depth <= policy.low_watermark {
            self.over_streak = 0;
            if self.level > 0 {
                self.under_streak += 1;
                if self.under_streak >= policy.patience {
                    self.level -= 1;
                    self.under_streak = 0;
                }
            }
        } else {
            // Between the watermarks: hold position, reset both streaks.
            self.over_streak = 0;
            self.under_streak = 0;
        }
        self.level
    }

    /// The skip configuration to run at the current level: `base` with
    /// both thresholds lowered by `level * widen_step` (which preserves
    /// `theta_s <= theta_e`). At level 0 this is exactly `base`, so an
    /// unloaded server stays bit-identical to offline execution.
    pub fn skip_config(&self, base: SkipConfig, policy: &DegradationPolicy) -> SkipConfig {
        if self.level == 0 || !policy.enabled {
            return base;
        }
        let widen = self.level as f32 * policy.widen_step;
        SkipConfig {
            theta_s: base.theta_s - widen,
            theta_e: base.theta_e - widen,
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widens_after_patience_and_caps_at_max() {
        let p = DegradationPolicy {
            patience: 2,
            max_widen: 2,
            ..DegradationPolicy::default()
        };
        let mut st = DegradationState::default();
        assert_eq!(st.observe(100, &p), 0);
        assert_eq!(st.observe(100, &p), 1);
        assert_eq!(st.observe(100, &p), 1);
        assert_eq!(st.observe(100, &p), 2);
        for _ in 0..10 {
            st.observe(100, &p);
        }
        assert_eq!(st.level(), 2, "level must cap at max_widen");
        assert_eq!(st.max_level_seen(), 2);
    }

    #[test]
    fn recovers_with_hysteresis() {
        let p = DegradationPolicy {
            patience: 2,
            ..DegradationPolicy::default()
        };
        let mut st = DegradationState::default();
        for _ in 0..4 {
            st.observe(p.high_watermark, &p);
        }
        assert_eq!(st.level(), 2);
        // Mid-band observations hold the level.
        let mid = (p.high_watermark + p.low_watermark) / 2;
        st.observe(mid, &p);
        assert_eq!(st.level(), 2);
        // Two quiet observations per step unwind it.
        for _ in 0..4 {
            st.observe(0, &p);
        }
        assert_eq!(st.level(), 0);
    }

    #[test]
    fn level_zero_returns_base_config_exactly() {
        let p = DegradationPolicy::default();
        let st = DegradationState::default();
        let base = SkipConfig::paper_default();
        assert_eq!(st.skip_config(base, &p), base);
    }

    #[test]
    fn widened_config_lowers_both_thresholds() {
        let p = DegradationPolicy {
            patience: 1,
            widen_step: 0.5,
            ..DegradationPolicy::default()
        };
        let mut st = DegradationState::default();
        st.observe(100, &p);
        let base = SkipConfig::paper_default();
        let widened = st.skip_config(base, &p);
        assert_eq!(widened.theta_s, base.theta_s - 0.5);
        assert_eq!(widened.theta_e, base.theta_e - 0.5);
        assert!(widened.theta_s <= widened.theta_e);
    }

    #[test]
    fn disabled_policy_never_moves() {
        let p = DegradationPolicy::disabled();
        let mut st = DegradationState::default();
        for _ in 0..20 {
            assert_eq!(st.observe(1_000, &p), 0);
        }
        let base = SkipConfig::paper_default();
        assert_eq!(st.skip_config(base, &p), base);
    }
}
