//! std::net JSON-lines TCP frontend over [`ServeCore`].
//!
//! One thread accepts connections; each connection gets a reader thread
//! (parse + submit) and a writer thread (wait tickets, write replies in
//! request order). Submission is pipelined: the reader keeps admitting
//! requests while earlier tickets are still in flight, so a single
//! connection can exercise the whole admission queue. No frameworks —
//! the protocol is small enough that `TcpListener` + the hand-rolled
//! [`crate::wire`] codec cover it.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::core::{ServeCore, Ticket};
use crate::wire::{self, StatsView, WireRequest};

/// How often blocked I/O loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A running TCP server.
pub struct Server {
    addr: SocketAddr,
    core: Arc<ServeCore>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Snapshot of the core's counters for a stats reply.
pub fn stats_view(core: &ServeCore) -> StatsView {
    let cache = core.cache_stats();
    let plan = core.plan_source_counts();
    StatsView {
        queue_depth: core.queue_depth(),
        shed: core.shed_count(),
        degrade_level: core.degrade_level(),
        max_degrade_level: core.max_degrade_level(),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
        plan_scratch: plan.scratch,
        plan_cached: plan.cached,
        plan_incremental: plan.incremental,
        plan_fallbacks: plan.fallbacks,
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections against `core`.
    pub fn bind(core: ServeCore, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let core = Arc::new(core);
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let core = Arc::clone(&core);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("tagnn-serve-accept".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let core = Arc::clone(&core);
                                let flag = Arc::clone(&shutdown);
                                let handle = std::thread::Builder::new()
                                    .name("tagnn-serve-conn".into())
                                    .spawn(move || connection(stream, &core, &flag))
                                    .expect("spawn connection");
                                conns.lock().unwrap().push(handle);
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL_INTERVAL);
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(Self {
            addr,
            core,
            shutdown,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving core behind this frontend (for stats/bench readouts).
    pub fn core(&self) -> &ServeCore {
        &self.core
    }

    /// Stops accepting, waits for open connections to drain, and shuts
    /// the core down.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.conns.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        if let Ok(core) = Arc::try_unwrap(self.core) {
            core.shutdown();
        }
    }
}

/// What the writer thread emits, in request order.
enum Outgoing {
    /// Already-encoded reply line.
    Ready(String),
    /// A ticket to wait on, then encode.
    Infer(u64, Ticket),
}

fn connection(stream: TcpStream, core: &ServeCore, shutdown: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Outgoing>();
    let writer = std::thread::Builder::new()
        .name("tagnn-serve-conn-writer".into())
        .spawn(move || write_loop(writer_stream, rx))
        .expect("spawn connection writer");

    read_loop(stream, core, shutdown, &tx);
    drop(tx); // writer drains in-flight tickets, then exits
    let _ = writer.join();
}

fn read_loop(
    mut stream: TcpStream,
    core: &ServeCore,
    shutdown: &AtomicBool,
    tx: &mpsc::Sender<Outgoing>,
) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    while !shutdown.load(Ordering::Relaxed) {
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..line.len() - 1]);
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    if tx.send(handle_line(line, core)).is_err() {
                        return; // writer gone (broken pipe)
                    }
                }
            }
            Err(e)
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                    || e.kind() == ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

fn handle_line(line: &str, core: &ServeCore) -> Outgoing {
    match wire::parse_request(line) {
        Ok(WireRequest::Infer { id, req }) => match core.submit(req) {
            Ok(ticket) => Outgoing::Infer(id, ticket),
            Err(e) => Outgoing::Ready(wire::encode_error(id, &e)),
        },
        Ok(WireRequest::Stats { id }) => Outgoing::Ready(wire::encode_stats(id, &stats_view(core))),
        Ok(WireRequest::Ping { id }) => Outgoing::Ready(wire::encode_pong(id)),
        // Requests too malformed to carry an id get id 0.
        Err(e) => Outgoing::Ready(wire::encode_error(0, &e)),
    }
}

fn write_loop(mut stream: TcpStream, rx: mpsc::Receiver<Outgoing>) {
    for msg in rx {
        let line = match msg {
            Outgoing::Ready(s) => s,
            Outgoing::Infer(id, ticket) => match ticket.wait() {
                Ok(reply) => wire::encode_reply(id, &reply),
                Err(e) => wire::encode_error(id, &e),
            },
        };
        if stream
            .write_all(line.as_bytes())
            .and_then(|_| stream.write_all(b"\n"))
            .is_err()
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use crate::core::InferRequest;
    use crate::event::EdgeEvent;
    use std::io::{BufRead, BufReader};

    fn send_line(stream: &mut TcpStream, line: &str) {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    }

    #[test]
    fn ping_stats_and_infer_over_loopback() {
        let core = ServeCore::start(ServeConfig::default());
        let server = Server::bind(core, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();

        send_line(&mut conn, r#"{"id":1,"type":"ping"}"#);
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"pong\":true"), "got {line}");

        // Two ticks on K=4: events accumulate, no window yet.
        line.clear();
        let events = [EdgeEvent::AddEdge { src: 0, dst: 1 }, EdgeEvent::Tick];
        send_line(&mut conn, &wire::encode_infer(2, 0, &events, false));
        reader.read_line(&mut line).unwrap();
        let doc = crate::json::parse(line.trim()).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("accepted").unwrap().as_u64(), Some(2));
        assert!(doc.get("windows").unwrap().as_array().unwrap().is_empty());

        // Flush seals the tail into a window.
        line.clear();
        send_line(
            &mut conn,
            &wire::encode_infer(3, 0, &[EdgeEvent::Tick], true),
        );
        reader.read_line(&mut line).unwrap();
        let doc = crate::json::parse(line.trim()).unwrap();
        let windows = doc.get("windows").unwrap().as_array().unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].get("snapshots").unwrap().as_u64(), Some(2));

        line.clear();
        send_line(&mut conn, r#"{"id":4,"type":"stats"}"#);
        reader.read_line(&mut line).unwrap();
        let doc = crate::json::parse(line.trim()).unwrap();
        assert!(doc.get("cache").is_some(), "got {line}");

        // Malformed line yields a typed protocol error, connection lives.
        line.clear();
        send_line(&mut conn, "this is not json");
        reader.read_line(&mut line).unwrap();
        let doc = crate::json::parse(line.trim()).unwrap();
        assert_eq!(doc.get("error").unwrap().as_str(), Some("protocol"));

        line.clear();
        send_line(&mut conn, r#"{"id":5,"type":"ping"}"#);
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"pong\""), "connection must survive");

        drop(conn);
        drop(reader);
        server.shutdown();
    }

    #[test]
    fn submit_still_works_through_core_reference() {
        let core = ServeCore::start(ServeConfig::default());
        let server = Server::bind(core, "127.0.0.1:0").unwrap();
        let reply = server
            .core()
            .submit(InferRequest {
                stream: 0,
                events: vec![EdgeEvent::Tick],
                flush: false,
            })
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(reply.accepted_events, 1);
        server.shutdown();
    }
}
