//! Nonblocking event-loop TCP frontend over [`ServeCore`].
//!
//! One I/O thread owns the listener and every connection: sockets are
//! nonblocking and the loop polls readiness (read → parse → submit,
//! resolve finished tickets in request order, flush write buffers),
//! sleeping briefly only when a full pass makes no progress. Compared to
//! the earlier thread-per-connection frontend this bounds the server at
//! one I/O thread regardless of connection count — no handle list to
//! reap, no thread stack per idle client — while keeping submission
//! pipelined: a connection keeps admitting requests while earlier
//! tickets are still in flight, up to a per-connection in-flight cap
//! that backpressures the socket instead of buffering unboundedly.
//!
//! Two wire formats share the frontend: the compact length-prefixed
//! binary protocol of [`crate::binwire`] (the default) and the
//! JSON-lines protocol of [`crate::wire`] (kept for debugging — pass
//! [`WireFormat::Json`] or `--wire json` on the bench CLI). Replies to
//! one connection are always written in request order in both formats.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::binwire;
use crate::core::{Reply, ServeCore, Ticket};
use crate::error::ServeError;
use crate::wire::{self, StatsView, WireRequest};

/// Sleep between passes that made no progress (accept/read/write/ticket).
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// In-flight requests per connection before the loop stops reading from
/// its socket (kernel backpressure toward the client).
const MAX_INFLIGHT_PER_CONN: usize = 256;

/// Pending write bytes per connection before reading pauses.
const MAX_WRITE_BUFFER: usize = 4 << 20;

/// Read-buffer bytes per connection before reading pauses (a single
/// frame may legitimately be large; this caps *unparsed* backlog).
const MAX_READ_BUFFER: usize = binwire::MAX_FRAME_LEN + (16 << 10);

/// Which wire protocol a server speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFormat {
    /// Length-prefixed binary frames ([`crate::binwire`]) — the default.
    Binary,
    /// JSON-lines ([`crate::wire`]) — debugging and manual poking.
    Json,
}

impl WireFormat {
    /// Parses the CLI spelling (`"binary"` or `"json"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "binary" | "bin" => Some(WireFormat::Binary),
            "json" => Some(WireFormat::Json),
            _ => None,
        }
    }
}

/// Snapshot of the core's counters for a stats reply.
pub fn stats_view(core: &ServeCore) -> StatsView {
    let cache = core.cache_stats();
    let plan = core.plan_source_counts();
    let shard = core.shard_stats();
    let dispatch = core.dispatch_counts();
    let durable = core.durable_stats();
    StatsView {
        queue_depth: core.queue_depth(),
        shed: core.shed_count(),
        degrade_level: core.degrade_level(),
        max_degrade_level: core.max_degrade_level(),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
        plan_scratch: plan.scratch,
        plan_cached: plan.cached,
        plan_incremental: plan.incremental,
        plan_fallbacks: plan.fallbacks,
        dispatch_dense: dispatch.dense,
        dispatch_spmm: dispatch.spmm,
        dispatch_delta_skip: dispatch.delta_skip,
        dispatch_density: core.dispatch_density(),
        shard_routed: shard.routed,
        shard_queue_depths: shard.queue_depths,
        cross_shard_edges: shard.cross_shard_edges,
        durability_enabled: durable.enabled,
        wal_appends: durable.wal_appends,
        wal_fsyncs: durable.wal_fsyncs,
        checkpoints_written: durable.checkpoints_written,
        replayed_events: durable.replayed_events,
        replay_us: durable.replay_us,
        truncated_tail_bytes: durable.truncated_tail_bytes,
    }
}

/// A running TCP server.
pub struct Server {
    addr: SocketAddr,
    core: Arc<ServeCore>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    io: Option<JoinHandle<()>>,
    wire: WireFormat,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) speaking
    /// the default binary protocol.
    pub fn bind(core: ServeCore, addr: &str) -> std::io::Result<Self> {
        Self::bind_with(core, addr, WireFormat::Binary)
    }

    /// Binds `addr` speaking `wire`.
    pub fn bind_with(core: ServeCore, addr: &str, wire: WireFormat) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let core = Arc::new(core);
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let io = {
            let core = Arc::clone(&core);
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active);
            std::thread::Builder::new()
                .name("tagnn-serve-io".into())
                .spawn(move || event_loop(&listener, &core, &shutdown, &active, wire))
                .expect("spawn io loop")
        };
        Ok(Self {
            addr,
            core,
            shutdown,
            active,
            io: Some(io),
            wire,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The wire format this server speaks.
    pub fn wire_format(&self) -> WireFormat {
        self.wire
    }

    /// The serving core behind this frontend (for stats/bench readouts).
    pub fn core(&self) -> &ServeCore {
        &self.core
    }

    /// Connections the event loop is currently tracking. Bounded server
    /// state: this returns to zero once clients disconnect and their
    /// replies flush — nothing accumulates per past connection.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Stops the I/O loop (draining in-flight replies onto their
    /// sockets), then shuts the core down.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.io.take() {
            let _ = h.join();
        }
        if let Ok(core) = Arc::try_unwrap(self.core) {
            core.shutdown();
        }
    }
}

/// What a connection owes its client, in request order.
enum Outgoing {
    /// Already-encoded reply bytes.
    Ready(Vec<u8>),
    /// A ticket still in flight; encoded when it resolves.
    Infer(u64, Ticket),
}

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    outgoing: VecDeque<Outgoing>,
    /// Peer sent EOF or committed a fatal framing error: stop reading,
    /// flush what is owed, then drop.
    peer_closed: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            outgoing: VecDeque::new(),
            peer_closed: false,
            dead: false,
        }
    }
}

fn encode_reply_bytes(fmt: WireFormat, id: u64, reply: &Reply) -> Vec<u8> {
    match fmt {
        WireFormat::Json => {
            let mut s = wire::encode_reply(id, reply).into_bytes();
            s.push(b'\n');
            s
        }
        WireFormat::Binary => {
            let mut b = Vec::new();
            binwire::encode_reply(&mut b, id, reply);
            b
        }
    }
}

fn encode_error_bytes(fmt: WireFormat, id: u64, err: &ServeError) -> Vec<u8> {
    match fmt {
        WireFormat::Json => {
            let mut s = wire::encode_error(id, err).into_bytes();
            s.push(b'\n');
            s
        }
        WireFormat::Binary => {
            let mut b = Vec::new();
            binwire::encode_error(&mut b, id, err);
            b
        }
    }
}

fn encode_stats_bytes(fmt: WireFormat, id: u64, s: &StatsView) -> Vec<u8> {
    match fmt {
        WireFormat::Json => {
            let mut out = wire::encode_stats(id, s).into_bytes();
            out.push(b'\n');
            out
        }
        WireFormat::Binary => {
            let mut b = Vec::new();
            binwire::encode_stats(&mut b, id, s);
            b
        }
    }
}

fn encode_pong_bytes(fmt: WireFormat, id: u64) -> Vec<u8> {
    match fmt {
        WireFormat::Json => {
            let mut s = wire::encode_pong(id).into_bytes();
            s.push(b'\n');
            s
        }
        WireFormat::Binary => {
            let mut b = Vec::new();
            binwire::encode_pong(&mut b, id);
            b
        }
    }
}

/// Turns one parsed request (or parse failure, which still carries the
/// best-effort id) into the connection's next outgoing item.
fn handle_request(
    parsed: Result<WireRequest, (u64, ServeError)>,
    core: &ServeCore,
    fmt: WireFormat,
) -> Outgoing {
    match parsed {
        Ok(WireRequest::Infer { id, req }) => match core.submit(req) {
            Ok(ticket) => Outgoing::Infer(id, ticket),
            Err(e) => Outgoing::Ready(encode_error_bytes(fmt, id, &e)),
        },
        Ok(WireRequest::Stats { id }) => {
            Outgoing::Ready(encode_stats_bytes(fmt, id, &stats_view(core)))
        }
        Ok(WireRequest::Ping { id }) => Outgoing::Ready(encode_pong_bytes(fmt, id)),
        Err((id, e)) => Outgoing::Ready(encode_error_bytes(fmt, id, &e)),
    }
}

/// Drains complete binary frames from the read buffer. A framing error
/// (bad length/version — the byte stream is unrecoverable) answers with
/// an error frame and closes after flushing.
fn parse_binary(conn: &mut Conn, core: &ServeCore) {
    loop {
        let (out, consumed) = match binwire::try_decode_frame(&conn.rbuf) {
            Ok(None) => return,
            Ok(Some(frame)) => (
                handle_request(binwire::decode_request(&frame), core, WireFormat::Binary),
                frame.consumed,
            ),
            Err(e) => {
                conn.outgoing.push_back(Outgoing::Ready(encode_error_bytes(
                    WireFormat::Binary,
                    0,
                    &e,
                )));
                conn.rbuf.clear();
                conn.peer_closed = true;
                return;
            }
        };
        conn.rbuf.drain(..consumed);
        conn.outgoing.push_back(out);
    }
}

/// Drains complete JSON lines from the read buffer. Malformed lines are
/// answered (with the best-effort id) and the connection survives.
fn parse_json(conn: &mut Conn, core: &ServeCore) {
    while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = conn.rbuf.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&line[..line.len() - 1]);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let out = handle_request(wire::parse_request(line), core, WireFormat::Json);
        conn.outgoing.push_back(out);
    }
}

/// One readiness pass over a connection. Returns whether any progress
/// happened (bytes moved or a ticket resolved).
fn service(conn: &mut Conn, core: &ServeCore, fmt: WireFormat) -> bool {
    let mut progress = false;

    // Read until WouldBlock, unless this connection is backpressured.
    if !conn.peer_closed {
        let mut chunk = [0u8; 16384];
        while conn.outgoing.len() < MAX_INFLIGHT_PER_CONN
            && conn.wbuf.len() < MAX_WRITE_BUFFER
            && conn.rbuf.len() < MAX_READ_BUFFER
        {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return true;
                }
            }
        }
        match fmt {
            WireFormat::Binary => parse_binary(conn, core),
            WireFormat::Json => parse_json(conn, core),
        }
    }

    // Resolve finished tickets at the queue front — replies stay in
    // request order; an unresolved ticket blocks those behind it.
    while let Some(front) = conn.outgoing.front_mut() {
        match front {
            Outgoing::Ready(bytes) => {
                conn.wbuf.append(bytes);
                conn.outgoing.pop_front();
                progress = true;
            }
            Outgoing::Infer(id, ticket) => match ticket.try_wait() {
                None => break,
                Some(result) => {
                    let bytes = match result {
                        Ok(reply) => encode_reply_bytes(fmt, *id, &reply),
                        Err(e) => encode_error_bytes(fmt, *id, &e),
                    };
                    conn.wbuf.extend_from_slice(&bytes);
                    conn.outgoing.pop_front();
                    progress = true;
                }
            },
        }
    }

    // Flush as much as the socket accepts.
    while !conn.wbuf.is_empty() {
        match conn.stream.write(&conn.wbuf) {
            Ok(0) => {
                conn.dead = true;
                return true;
            }
            Ok(n) => {
                conn.wbuf.drain(..n);
                progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return true;
            }
        }
    }

    if conn.peer_closed && conn.outgoing.is_empty() && conn.wbuf.is_empty() {
        conn.dead = true;
        progress = true;
    }
    progress
}

fn event_loop(
    listener: &TcpListener,
    core: &ServeCore,
    shutdown: &AtomicBool,
    active: &AtomicUsize,
    fmt: WireFormat,
) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            drain_on_shutdown(conns, fmt);
            active.store(0, Ordering::Relaxed);
            return;
        }
        let mut progress = false;

        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    conns.push(Conn::new(stream));
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }

        for conn in &mut conns {
            progress |= service(conn, core, fmt);
        }
        conns.retain(|c| !c.dead);
        active.store(conns.len(), Ordering::Relaxed);

        if !progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

/// On shutdown, every connection's in-flight tickets still complete:
/// wait them out, encode, and push the bytes with blocking writes so no
/// accepted request vanishes without a reply.
fn drain_on_shutdown(conns: Vec<Conn>, fmt: WireFormat) {
    for mut conn in conns {
        let _ = conn.stream.set_nonblocking(false);
        while let Some(out) = conn.outgoing.pop_front() {
            let bytes = match out {
                Outgoing::Ready(b) => b,
                Outgoing::Infer(id, ticket) => match ticket.wait() {
                    Ok(reply) => encode_reply_bytes(fmt, id, &reply),
                    Err(e) => encode_error_bytes(fmt, id, &e),
                },
            };
            conn.wbuf.extend_from_slice(&bytes);
        }
        let _ = conn.stream.write_all(&conn.wbuf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use crate::core::InferRequest;
    use crate::event::EdgeEvent;
    use std::io::{BufRead, BufReader};

    /// Blocking client-side frame reader. Pipelined replies can coalesce
    /// into one TCP segment, so leftover bytes carry across calls.
    struct FrameReader {
        buf: Vec<u8>,
    }

    impl FrameReader {
        fn new() -> Self {
            FrameReader { buf: Vec::new() }
        }

        fn next(&mut self, stream: &mut TcpStream) -> (u8, u64, Vec<u8>) {
            let mut chunk = [0u8; 4096];
            loop {
                if let Some(frame) = binwire::try_decode_frame(&self.buf).expect("well-formed") {
                    let out = (frame.kind, frame.id, frame.body.to_vec());
                    self.buf.drain(..frame.consumed);
                    return out;
                }
                let n = stream.read(&mut chunk).expect("server open");
                assert!(n > 0, "server closed mid-frame");
                self.buf.extend_from_slice(&chunk[..n]);
            }
        }
    }

    fn read_frame(stream: &mut TcpStream) -> (u8, u64, Vec<u8>) {
        FrameReader::new().next(stream)
    }

    #[test]
    fn binary_ping_stats_infer_over_loopback() {
        let core = ServeCore::start(ServeConfig::default());
        let server = Server::bind(core, "127.0.0.1:0").unwrap();
        assert_eq!(server.wire_format(), WireFormat::Binary);
        let addr = server.local_addr();

        let mut conn = TcpStream::connect(addr).unwrap();
        let mut out = Vec::new();
        binwire::encode_ping(&mut out, 1);
        conn.write_all(&out).unwrap();
        let (kind, id, _) = read_frame(&mut conn);
        assert_eq!((kind, id), (binwire::kind::PONG, 1));

        // Two ticks on K=4: events accumulate, no window yet.
        let events = [EdgeEvent::AddEdge { src: 0, dst: 1 }, EdgeEvent::Tick];
        let mut out = Vec::new();
        binwire::encode_infer(&mut out, 2, 0, &events, false);
        conn.write_all(&out).unwrap();
        let (kind, id, body) = read_frame(&mut conn);
        assert_eq!((kind, id), (binwire::kind::INFER_REPLY, 2));
        let reply = binwire::decode_reply(&body).unwrap();
        assert_eq!(reply.accepted_events, 2);
        assert!(reply.windows.is_empty());

        // Flush seals the tail into a window.
        let mut out = Vec::new();
        binwire::encode_infer(&mut out, 3, 0, &[EdgeEvent::Tick], true);
        conn.write_all(&out).unwrap();
        let (_, _, body) = read_frame(&mut conn);
        let reply = binwire::decode_reply(&body).unwrap();
        assert_eq!(reply.windows.len(), 1);
        assert_eq!(reply.windows[0].snapshots, 2);

        let mut out = Vec::new();
        binwire::encode_stats_request(&mut out, 4);
        conn.write_all(&out).unwrap();
        let (kind, _, body) = read_frame(&mut conn);
        assert_eq!(kind, binwire::kind::STATS_REPLY);
        let stats = binwire::decode_stats(&body).unwrap();
        assert_eq!(
            stats.shard_routed.len(),
            server.core().config().shards,
            "stats must expose per-shard counters"
        );

        drop(conn);
        server.shutdown();
    }

    #[test]
    fn binary_pipelined_requests_reply_in_order() {
        let core = ServeCore::start(ServeConfig::default());
        let server = Server::bind(core, "127.0.0.1:0").unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();

        // Fire an infer and two pings back to back without reading.
        let mut out = Vec::new();
        binwire::encode_infer(&mut out, 10, 0, &[EdgeEvent::Tick], false);
        binwire::encode_ping(&mut out, 11);
        binwire::encode_ping(&mut out, 12);
        conn.write_all(&out).unwrap();
        let mut reader = FrameReader::new();
        let ids: Vec<u64> = (0..3).map(|_| reader.next(&mut conn).1).collect();
        assert_eq!(ids, vec![10, 11, 12], "replies must keep request order");
        drop(conn);
        server.shutdown();
    }

    #[test]
    fn binary_framing_error_answers_then_closes() {
        let core = ServeCore::start(ServeConfig::default());
        let server = Server::bind(core, "127.0.0.1:0").unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        // A frame with a stomped version byte: unrecoverable framing.
        let mut out = Vec::new();
        binwire::encode_ping(&mut out, 1);
        out[4] = 99;
        conn.write_all(&out).unwrap();
        let (kind, _, body) = read_frame(&mut conn);
        assert_eq!(kind, binwire::kind::ERROR);
        let (code, _) = binwire::decode_error(&body).unwrap();
        assert_eq!(code, "protocol");
        // ...and the server hangs up.
        let mut rest = Vec::new();
        conn.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        server.shutdown();
    }

    #[test]
    fn json_mode_still_speaks_lines() {
        let core = ServeCore::start(ServeConfig::default());
        let server = Server::bind_with(core, "127.0.0.1:0", WireFormat::Json).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();

        conn.write_all(b"{\"id\":1,\"type\":\"ping\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"pong\":true"), "got {line}");

        // Malformed line yields a typed protocol error; connection lives,
        // and a parseable id on an invalid body is echoed back.
        line.clear();
        conn.write_all(b"this is not json\n").unwrap();
        reader.read_line(&mut line).unwrap();
        let doc = crate::json::parse(line.trim()).unwrap();
        assert_eq!(doc.get("error").unwrap().as_str(), Some("protocol"));
        assert_eq!(doc.get("id").unwrap().as_u64(), Some(0));

        line.clear();
        conn.write_all(b"{\"id\":42,\"type\":\"infer\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        let doc = crate::json::parse(line.trim()).unwrap();
        assert_eq!(doc.get("error").unwrap().as_str(), Some("protocol"));
        assert_eq!(
            doc.get("id").unwrap().as_u64(),
            Some(42),
            "body errors must echo the request id"
        );

        line.clear();
        conn.write_all(b"{\"id\":5,\"type\":\"ping\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"pong\""), "connection must survive");

        drop(conn);
        drop(reader);
        server.shutdown();
    }

    #[test]
    fn submit_still_works_through_core_reference() {
        let core = ServeCore::start(ServeConfig::default());
        let server = Server::bind(core, "127.0.0.1:0").unwrap();
        let reply = server
            .core()
            .submit(InferRequest {
                stream: 0,
                events: vec![EdgeEvent::Tick],
                flush: false,
            })
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(reply.accepted_events, 1);
        server.shutdown();
    }

    #[test]
    fn many_short_connections_leave_no_residue() {
        // Regression for the connection-handle leak: the old frontend
        // pushed one JoinHandle per connection into a vec it never
        // drained, so every past connection cost memory until shutdown.
        // The event loop tracks only live connections.
        let core = ServeCore::start(ServeConfig::default());
        let server = Server::bind(core, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        for i in 0..100u64 {
            let mut conn = TcpStream::connect(addr).unwrap();
            let mut out = Vec::new();
            binwire::encode_ping(&mut out, i);
            conn.write_all(&out).unwrap();
            let (kind, id, _) = read_frame(&mut conn);
            assert_eq!((kind, id), (binwire::kind::PONG, i));
        }
        // All 100 connections are closed; the loop must notice and drop
        // them (bounded state), even though no new connection arrives.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.active_connections() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "stale connections: {}",
                server.active_connections()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
    }
}
