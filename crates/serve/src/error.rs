//! Typed failures of the serving layer.
//!
//! Overload is a first-class outcome, not a panic: bounded queues shed
//! with [`ServeError::Overloaded`] and malformed events are rejected with
//! the underlying [`GraphError`], so a misbehaving client can never abort
//! the server or grow its memory without bound.

use std::fmt;

use tagnn_graph::GraphError;

/// An error returned by the serving core or the wire frontend.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission queue was full; the request was shed at the door.
    Overloaded {
        /// Requests queued when the request was shed.
        depth: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// An event failed validation; the request was rejected untouched.
    Rejected(GraphError),
    /// The server is shutting down (or has shut down).
    Closed,
    /// The wire payload was not a well-formed request.
    Protocol(String),
    /// The write-ahead log could not persist the request; it was refused
    /// rather than served without the durability it was promised.
    Durability(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => write!(
                f,
                "overloaded: admission queue at {depth}/{capacity}, request shed"
            ),
            ServeError::Rejected(e) => write!(f, "rejected: {e}"),
            ServeError::Closed => write!(f, "server closed"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Durability(msg) => write!(f, "durability error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Rejected(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ServeError {
    fn from(e: GraphError) -> Self {
        ServeError::Rejected(e)
    }
}

/// A short machine-readable code for the wire protocol.
impl ServeError {
    /// Stable error code written into wire replies.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Rejected(_) => "rejected",
            ServeError::Closed => "closed",
            ServeError::Protocol(_) => "protocol",
            ServeError::Durability(_) => "durability",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_codes_are_stable() {
        let e = ServeError::Overloaded {
            depth: 8,
            capacity: 8,
        };
        assert!(e.to_string().contains("8/8"));
        assert_eq!(e.code(), "overloaded");
        let r: ServeError = GraphError::VertexOutOfUniverse { v: 9, universe: 4 }.into();
        assert_eq!(r.code(), "rejected");
        assert!(r.to_string().contains("out of universe"));
        assert_eq!(ServeError::Closed.code(), "closed");
        assert_eq!(ServeError::Protocol("x".into()).code(), "protocol");
    }
}
