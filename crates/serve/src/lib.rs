#![warn(missing_docs)]

//! Streaming edge ingestion and batched online inference serving for
//! TaGNN.
//!
//! The paper's pipeline is offline: a full [`tagnn_graph::DynamicGraph`]
//! is batched into windows of K snapshots, planned, and executed. This
//! crate turns that into a service for the setting dynamic GNNs actually
//! run in — a live edge stream with latency budgets:
//!
//! * [`event`] — the typed ingestion events ([`EdgeEvent`]: edge/vertex
//!   churn, feature updates, snapshot-boundary ticks) and the canonical
//!   trace derivation used by replay tests and the load generator;
//! * [`roller`] — [`WindowRoller`], sealing events into snapshots and
//!   snapshots into K-windows bit-identical to offline batching;
//! * [`queue`] / [`core`] — bounded admission, deadline micro-batching,
//!   and the worker pool running one [`tagnn_models::EngineSession`] per
//!   stream (windows of a stream are sequentially dependent; streams
//!   shard across workers);
//! * [`degrade`] — the graceful-degradation policy that widens the
//!   similarity-aware skip band under sustained backlog and unwinds it
//!   with hysteresis when load clears;
//! * [`json`] / [`wire`] / [`server`] — a dependency-free JSON-lines TCP
//!   frontend;
//! * [`loadgen`] — an open/closed-loop trace-replaying client feeding
//!   the `tagnn-loadgen` binary and the `experiments serve-bench`
//!   harness.
//!
//! The load-bearing invariant, pinned by `tests/integration_serve.rs`:
//! at zero backlog, serving a replayed stream produces outputs and work
//! counters bit-identical to the offline engine on the same graph.

pub mod binwire;
pub mod config;
pub mod core;
pub mod degrade;
pub mod error;
pub mod event;
pub mod json;
pub mod loadgen;
pub mod persist;
pub mod queue;
pub mod roller;
pub mod server;
pub mod shard;
pub mod wire;

pub use config::{DurabilityConfig, ServeConfig};
pub use core::{
    digest_matrices, InferRequest, PlanSourceCounts, Reply, ServeCore, ShardStats, Ticket,
    WindowResult,
};
pub use degrade::{DegradationPolicy, DegradationState};
pub use error::ServeError;
pub use event::{empty_base, events_from_graph, EdgeEvent};
pub use loadgen::{LoadgenConfig, LoadgenSummary};
pub use queue::{BoundedQueue, PushOutcome};
pub use roller::{RolledWindow, RollerState, ShardedRoller, ShardedRollerState, WindowRoller};
pub use server::{Server, WireFormat};
pub use shard::{LanesState, SealStats, ShardAssignment, ShardLanes, ShardRouter};
