//! Binary persistence codecs for the durable serving layer.
//!
//! Everything a crashed server needs to resume bit-identically is
//! serialized here through [`tagnn_durable::codec`]: WAL record payloads
//! (one accepted [`InferRequest`] per record) and checkpoint blobs (the
//! full engine image — every stream's roller and engine session, the WAL
//! offsets the checkpoint covers, and a config stamp so a checkpoint is
//! never restored under a different topology/model).
//!
//! All numbers are little-endian; floats travel as raw bits, so NaN
//! payloads and signed zeros survive the round trip — the encode →
//! decode → encode cycle is byte-identical (pinned by the proptests in
//! `tests/recovery_differential.rs`). Decoders bound every allocation
//! through [`ByteReader::get_count`], so a corrupt length prefix yields a
//! typed [`CodecError`], never an unbounded allocation or a panic.

use tagnn_durable::codec::{ByteReader, ByteWriter, CodecError};
use tagnn_graph::delta::GraphUpdate;
use tagnn_graph::incremental::{ClassifierStateExport, MaintainerState, MaintainerStats};
use tagnn_graph::{Csr, Snapshot};
use tagnn_models::{EngineState, ModelKind, VertexStateExport};
use tagnn_tensor::dispatch::{Kernel, LayerChoice};
use tagnn_tensor::DenseMatrix;

use crate::config::ServeConfig;
use crate::core::InferRequest;
use crate::event::EdgeEvent;
use crate::roller::{RollerState, ShardedRollerState};
use crate::shard::{LanesState, SealStats};

/// Upper bound on decoded vertex universes (16M vertices).
const MAX_VERTICES: usize = 1 << 24;
/// Upper bound on decoded per-request / per-tick event batches.
const MAX_EVENTS: usize = 1 << 22;
/// Upper bound on decoded stream counts in one checkpoint.
const MAX_STREAMS: usize = 1 << 20;
/// Upper bound on decoded layer counts (models here have ≤ 4 layers).
const MAX_LAYERS: usize = 256;
/// Upper bound on decoded shard counts.
const MAX_SHARDS: usize = 1 << 16;

/// Checkpoint blob format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// The boot parameters a checkpoint must agree on to be restorable: the
/// fields that decide served *bits*. A stamp mismatch means the operator
/// changed the deployment under the data directory — recovery refuses
/// the checkpoint rather than resuming into silently different outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigStamp {
    /// Model family being served.
    pub model: ModelKind,
    /// Vertex universe size.
    pub universe: u64,
    /// Feature dimensionality D.
    pub feature_dim: u64,
    /// Model hidden dimensionality.
    pub hidden: u64,
    /// Window size K.
    pub window: u64,
    /// Weight-initialisation seed.
    pub seed: u64,
    /// Engine shard count (decides WAL segment count and lane topology).
    pub shards: u64,
    /// Whether per-stream incremental planning is on.
    pub incremental_planning: bool,
}

impl ConfigStamp {
    /// The stamp of a boot configuration.
    pub fn of(cfg: &ServeConfig) -> Self {
        Self {
            model: cfg.model,
            universe: cfg.universe as u64,
            feature_dim: cfg.feature_dim as u64,
            hidden: cfg.hidden as u64,
            window: cfg.window as u64,
            seed: cfg.seed,
            shards: cfg.shards as u64,
            incremental_planning: cfg.incremental_planning,
        }
    }
}

/// One complete checkpoint: the image the recovery path restores before
/// replaying the WAL suffix.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointBlob {
    /// Boot parameters the image was captured under.
    pub stamp: ConfigStamp,
    /// Per-shard WAL byte offsets this checkpoint covers: replay starts
    /// here. `wal_offsets[s]` is the synced length of `wal-<s>.log` at
    /// capture time.
    pub wal_offsets: Vec<u64>,
    /// Windows rolled across all streams at capture time (drives the
    /// checkpoint cadence counter across restarts).
    pub windows_rolled: u64,
    /// Per-stream roller state, sorted by stream id.
    pub rollers: Vec<(u64, ShardedRollerState)>,
    /// Per-stream engine-session state, sorted by stream id.
    pub sessions: Vec<(u64, EngineState)>,
}

// ---------------------------------------------------------------------
// events & requests (WAL payloads)
// ---------------------------------------------------------------------

fn put_event(w: &mut ByteWriter, e: &EdgeEvent) {
    match e {
        EdgeEvent::AddEdge { src, dst } => {
            w.put_u8(0);
            w.put_u32(*src);
            w.put_u32(*dst);
        }
        EdgeEvent::RemoveEdge { src, dst } => {
            w.put_u8(1);
            w.put_u32(*src);
            w.put_u32(*dst);
        }
        EdgeEvent::AddVertex { v } => {
            w.put_u8(2);
            w.put_u32(*v);
        }
        EdgeEvent::RemoveVertex { v } => {
            w.put_u8(3);
            w.put_u32(*v);
        }
        EdgeEvent::UpdateFeature { v, feature } => {
            w.put_u8(4);
            w.put_u32(*v);
            w.put_f32_slice(feature);
        }
        EdgeEvent::Tick => w.put_u8(5),
    }
}

fn get_event(r: &mut ByteReader<'_>) -> Result<EdgeEvent, CodecError> {
    Ok(match r.get_u8()? {
        0 => EdgeEvent::AddEdge {
            src: r.get_u32()?,
            dst: r.get_u32()?,
        },
        1 => EdgeEvent::RemoveEdge {
            src: r.get_u32()?,
            dst: r.get_u32()?,
        },
        2 => EdgeEvent::AddVertex { v: r.get_u32()? },
        3 => EdgeEvent::RemoveVertex { v: r.get_u32()? },
        4 => EdgeEvent::UpdateFeature {
            v: r.get_u32()?,
            feature: r.get_f32_slice()?,
        },
        5 => EdgeEvent::Tick,
        _ => return Err(CodecError::Invalid("event tag")),
    })
}

fn put_update(w: &mut ByteWriter, u: &GraphUpdate) {
    match u {
        GraphUpdate::AddEdge { src, dst } => {
            w.put_u8(0);
            w.put_u32(*src);
            w.put_u32(*dst);
        }
        GraphUpdate::RemoveEdge { src, dst } => {
            w.put_u8(1);
            w.put_u32(*src);
            w.put_u32(*dst);
        }
        GraphUpdate::AddVertex { v } => {
            w.put_u8(2);
            w.put_u32(*v);
        }
        GraphUpdate::RemoveVertex { v } => {
            w.put_u8(3);
            w.put_u32(*v);
        }
        GraphUpdate::MutateFeature { v, feature } => {
            w.put_u8(4);
            w.put_u32(*v);
            w.put_f32_slice(feature);
        }
    }
}

fn get_update(r: &mut ByteReader<'_>) -> Result<GraphUpdate, CodecError> {
    Ok(match r.get_u8()? {
        0 => GraphUpdate::AddEdge {
            src: r.get_u32()?,
            dst: r.get_u32()?,
        },
        1 => GraphUpdate::RemoveEdge {
            src: r.get_u32()?,
            dst: r.get_u32()?,
        },
        2 => GraphUpdate::AddVertex { v: r.get_u32()? },
        3 => GraphUpdate::RemoveVertex { v: r.get_u32()? },
        4 => GraphUpdate::MutateFeature {
            v: r.get_u32()?,
            feature: r.get_f32_slice()?,
        },
        _ => return Err(CodecError::Invalid("update tag")),
    })
}

/// Encodes one accepted request as a WAL record payload.
pub fn encode_request(req: &InferRequest) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(req.stream);
    w.put_bool(req.flush);
    w.put_u32(req.events.len() as u32);
    for e in &req.events {
        put_event(&mut w, e);
    }
    w.into_bytes()
}

/// Decodes a WAL record payload back into the request it logged.
pub fn decode_request(bytes: &[u8]) -> Result<InferRequest, CodecError> {
    let mut r = ByteReader::new(bytes);
    let stream = r.get_u64()?;
    let flush = r.get_bool()?;
    let n = r.get_count(MAX_EVENTS)?;
    let mut events = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        events.push(get_event(&mut r)?);
    }
    r.finish()?;
    Ok(InferRequest {
        stream,
        events,
        flush,
    })
}

// ---------------------------------------------------------------------
// snapshots & roller state
// ---------------------------------------------------------------------

fn put_snapshot(w: &mut ByteWriter, s: &Snapshot) {
    let n = s.num_vertices();
    w.put_u32(n as u32);
    w.put_u32(s.feature_dim() as u32);
    w.put_bool_slice(s.active());
    w.put_f32_slice(s.features().as_slice());
    for v in 0..n {
        let nbrs = s.neighbors(v as u32);
        w.put_u32(nbrs.len() as u32);
        for &t in nbrs {
            w.put_u32(t);
        }
    }
}

fn get_snapshot(r: &mut ByteReader<'_>) -> Result<Snapshot, CodecError> {
    let n = r.get_count(MAX_VERTICES)?;
    let dim = r.get_count(MAX_VERTICES)?;
    let active = r.get_bool_slice()?;
    let feats = r.get_f32_slice()?;
    let expected_feats = n
        .checked_mul(dim)
        .ok_or(CodecError::Invalid("snapshot shape"))?;
    if active.len() != n || feats.len() != expected_feats {
        return Err(CodecError::Invalid("snapshot shape"));
    }
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for v in 0..n {
        let deg = r.get_count(n)?;
        for _ in 0..deg {
            let t = r.get_u32()?;
            if t as usize >= n {
                return Err(CodecError::Invalid("neighbor out of universe"));
            }
            edges.push((v as u32, t));
        }
    }
    // Live snapshots only ever hold canonical (sorted, deduped) neighbor
    // lists, which `from_edges` reproduces exactly — the round trip is
    // bit-identical for every snapshot a server can actually reach.
    let csr = Csr::from_edges(n, &edges);
    let features = DenseMatrix::from_vec(n, dim, feats);
    Snapshot::try_new(csr, features, active).map_err(|_| CodecError::Invalid("snapshot invariant"))
}

fn put_maintainer(w: &mut ByteWriter, m: &MaintainerState) {
    match &m.forming {
        None => w.put_bool(false),
        Some(c) => {
            w.put_bool(true);
            w.put_u64(c.ticks);
            w.put_bool_slice(&c.feature_unstable);
            w.put_bool_slice(&c.topo_unstable);
            w.put_bool(c.poisoned);
        }
    }
    w.put_u64(m.stats.ticks_absorbed);
    w.put_u64(m.stats.windows_sealed);
    w.put_u64(m.stats.fallbacks);
    w.put_u64(m.stats.dirty_vertices);
    w.put_u64(m.stats.patched_vertices);
}

fn get_maintainer(r: &mut ByteReader<'_>) -> Result<MaintainerState, CodecError> {
    let forming = if r.get_bool()? {
        Some(ClassifierStateExport {
            ticks: r.get_u64()?,
            feature_unstable: r.get_bool_slice()?,
            topo_unstable: r.get_bool_slice()?,
            poisoned: r.get_bool()?,
        })
    } else {
        None
    };
    let stats = MaintainerStats {
        ticks_absorbed: r.get_u64()?,
        windows_sealed: r.get_u64()?,
        fallbacks: r.get_u64()?,
        dirty_vertices: r.get_u64()?,
        patched_vertices: r.get_u64()?,
    };
    Ok(MaintainerState { forming, stats })
}

fn put_roller(w: &mut ByteWriter, s: &RollerState) {
    w.put_u32(s.window as u32);
    w.put_u32(s.feature_dim as u32);
    put_snapshot(w, &s.current);
    w.put_u32(s.pending.len() as u32);
    for u in &s.pending {
        put_update(w, u);
    }
    w.put_u32(s.sealed.len() as u32);
    for snap in &s.sealed {
        put_snapshot(w, snap);
    }
    w.put_u64(s.seq);
    w.put_u64(s.ticks);
    match &s.maintainer {
        None => w.put_bool(false),
        Some(m) => {
            w.put_bool(true);
            put_maintainer(w, m);
        }
    }
}

fn get_roller(r: &mut ByteReader<'_>) -> Result<RollerState, CodecError> {
    let window = r.get_count(MAX_VERTICES)?;
    let feature_dim = r.get_count(MAX_VERTICES)?;
    let current = get_snapshot(r)?;
    let n_pending = r.get_count(MAX_EVENTS)?;
    let mut pending = Vec::with_capacity(n_pending.min(4096));
    for _ in 0..n_pending {
        pending.push(get_update(r)?);
    }
    let n_sealed = r.get_count(window.max(1))?;
    let mut sealed = Vec::with_capacity(n_sealed);
    for _ in 0..n_sealed {
        sealed.push(get_snapshot(r)?);
    }
    let seq = r.get_u64()?;
    let ticks = r.get_u64()?;
    let maintainer = if r.get_bool()? {
        Some(get_maintainer(r)?)
    } else {
        None
    };
    Ok(RollerState {
        window,
        feature_dim,
        current,
        pending,
        sealed,
        seq,
        ticks,
        maintainer,
    })
}

fn put_lanes(w: &mut ByteWriter, l: &LanesState) {
    w.put_u32(l.lanes.len() as u32);
    for lane in &l.lanes {
        w.put_u32(lane.len() as u32);
        for (seq, e) in lane {
            w.put_u64(*seq);
            put_event(w, e);
        }
    }
    w.put_u64(l.arrival);
    w.put_u64_slice(&l.routed);
}

fn get_lanes(r: &mut ByteReader<'_>) -> Result<LanesState, CodecError> {
    let shards = r.get_count(MAX_SHARDS)?;
    let mut lanes = Vec::with_capacity(shards);
    for _ in 0..shards {
        let n = r.get_count(MAX_EVENTS)?;
        let mut lane = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let seq = r.get_u64()?;
            lane.push((seq, get_event(r)?));
        }
        lanes.push(lane);
    }
    let arrival = r.get_u64()?;
    let routed = r.get_u64_slice()?;
    if routed.len() != shards {
        return Err(CodecError::Invalid("lanes routed length"));
    }
    Ok(LanesState {
        lanes,
        arrival,
        routed,
    })
}

/// Encodes one stream's sharded-roller state (exposed for the byte-
/// identity proptests).
pub fn encode_sharded_roller(s: &ShardedRollerState) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_sharded_roller(&mut w, s);
    w.into_bytes()
}

/// Decodes [`encode_sharded_roller`]'s output.
pub fn decode_sharded_roller(bytes: &[u8]) -> Result<ShardedRollerState, CodecError> {
    let mut r = ByteReader::new(bytes);
    let s = get_sharded_roller(&mut r)?;
    r.finish()?;
    Ok(s)
}

fn put_sharded_roller(w: &mut ByteWriter, s: &ShardedRollerState) {
    put_roller(w, &s.inner);
    put_lanes(w, &s.lanes);
    w.put_u64(s.seal_totals.merged_events);
    w.put_u64(s.seal_totals.cross_shard_edges);
}

fn get_sharded_roller(r: &mut ByteReader<'_>) -> Result<ShardedRollerState, CodecError> {
    let inner = get_roller(r)?;
    let lanes = get_lanes(r)?;
    let seal_totals = SealStats {
        merged_events: r.get_u64()?,
        cross_shard_edges: r.get_u64()?,
    };
    Ok(ShardedRollerState {
        inner,
        lanes,
        seal_totals,
    })
}

// ---------------------------------------------------------------------
// engine-session state
// ---------------------------------------------------------------------

fn kernel_tag(k: Kernel) -> u8 {
    match k {
        Kernel::Dense => 0,
        Kernel::Spmm => 1,
        Kernel::DeltaSkip => 2,
    }
}

fn kernel_from_tag(t: u8) -> Result<Kernel, CodecError> {
    Ok(match t {
        0 => Kernel::Dense,
        1 => Kernel::Spmm,
        2 => Kernel::DeltaSkip,
        _ => return Err(CodecError::Invalid("kernel tag")),
    })
}

/// Encodes one engine session's exported state (exposed for the byte-
/// identity proptests).
pub fn encode_engine_state(s: &EngineState) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_engine_state(&mut w, s);
    w.into_bytes()
}

/// Decodes [`encode_engine_state`]'s output.
pub fn decode_engine_state(bytes: &[u8]) -> Result<EngineState, CodecError> {
    let mut r = ByteReader::new(bytes);
    let s = get_engine_state(&mut r)?;
    r.finish()?;
    Ok(s)
}

fn put_engine_state(w: &mut ByteWriter, s: &EngineState) {
    w.put_u64(s.windows);
    w.put_u32(s.vertices.len() as u32);
    for v in &s.vertices {
        w.put_f32_slice(&v.h);
        w.put_f32_slice(&v.c);
        w.put_f32_slice(&v.x_pre);
        w.put_f32_slice(&v.last_input);
        w.put_bool(v.has_input);
    }
    match &s.choices {
        None => w.put_bool(false),
        Some(choices) => {
            w.put_bool(true);
            w.put_u32(choices.len() as u32);
            for c in choices {
                w.put_bool(c.transform_first);
                w.put_u8(kernel_tag(c.kernel));
                w.put_f64(c.density);
            }
        }
    }
}

fn get_engine_state(r: &mut ByteReader<'_>) -> Result<EngineState, CodecError> {
    let windows = r.get_u64()?;
    let n = r.get_count(MAX_VERTICES)?;
    let mut vertices = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        vertices.push(VertexStateExport {
            h: r.get_f32_slice()?,
            c: r.get_f32_slice()?,
            x_pre: r.get_f32_slice()?,
            last_input: r.get_f32_slice()?,
            has_input: r.get_bool()?,
        });
    }
    let choices = if r.get_bool()? {
        let k = r.get_count(MAX_LAYERS)?;
        let mut cs = Vec::with_capacity(k);
        for _ in 0..k {
            cs.push(LayerChoice {
                transform_first: r.get_bool()?,
                kernel: kernel_from_tag(r.get_u8()?)?,
                density: r.get_f64()?,
            });
        }
        Some(cs)
    } else {
        None
    };
    Ok(EngineState {
        windows,
        vertices,
        choices,
    })
}

// ---------------------------------------------------------------------
// checkpoint blob
// ---------------------------------------------------------------------

fn model_tag(m: ModelKind) -> u8 {
    match m {
        ModelKind::CdGcn => 0,
        ModelKind::GcLstm => 1,
        ModelKind::TGcn => 2,
    }
}

fn model_from_tag(t: u8) -> Result<ModelKind, CodecError> {
    Ok(match t {
        0 => ModelKind::CdGcn,
        1 => ModelKind::GcLstm,
        2 => ModelKind::TGcn,
        _ => return Err(CodecError::Invalid("model tag")),
    })
}

fn put_stamp(w: &mut ByteWriter, s: &ConfigStamp) {
    w.put_u8(model_tag(s.model));
    w.put_u64(s.universe);
    w.put_u64(s.feature_dim);
    w.put_u64(s.hidden);
    w.put_u64(s.window);
    w.put_u64(s.seed);
    w.put_u64(s.shards);
    w.put_bool(s.incremental_planning);
}

fn get_stamp(r: &mut ByteReader<'_>) -> Result<ConfigStamp, CodecError> {
    Ok(ConfigStamp {
        model: model_from_tag(r.get_u8()?)?,
        universe: r.get_u64()?,
        feature_dim: r.get_u64()?,
        hidden: r.get_u64()?,
        window: r.get_u64()?,
        seed: r.get_u64()?,
        shards: r.get_u64()?,
        incremental_planning: r.get_bool()?,
    })
}

/// Encodes a full checkpoint blob (the payload handed to
/// [`tagnn_durable::CheckpointStore::write`], which adds its own header
/// and CRC).
pub fn encode_checkpoint(blob: &CheckpointBlob) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(CHECKPOINT_VERSION);
    put_stamp(&mut w, &blob.stamp);
    w.put_u64_slice(&blob.wal_offsets);
    w.put_u64(blob.windows_rolled);
    w.put_u32(blob.rollers.len() as u32);
    for (stream, roller) in &blob.rollers {
        w.put_u64(*stream);
        put_sharded_roller(&mut w, roller);
    }
    w.put_u32(blob.sessions.len() as u32);
    for (stream, session) in &blob.sessions {
        w.put_u64(*stream);
        put_engine_state(&mut w, session);
    }
    w.into_bytes()
}

/// Decodes [`encode_checkpoint`]'s output, rejecting unknown versions
/// and trailing garbage.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointBlob, CodecError> {
    let mut r = ByteReader::new(bytes);
    let version = r.get_u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(CodecError::Invalid("checkpoint version"));
    }
    let stamp = get_stamp(&mut r)?;
    let wal_offsets = r.get_u64_slice()?;
    let windows_rolled = r.get_u64()?;
    let n_rollers = r.get_count(MAX_STREAMS)?;
    let mut rollers = Vec::with_capacity(n_rollers.min(4096));
    for _ in 0..n_rollers {
        let stream = r.get_u64()?;
        rollers.push((stream, get_sharded_roller(&mut r)?));
    }
    let n_sessions = r.get_count(MAX_STREAMS)?;
    let mut sessions = Vec::with_capacity(n_sessions.min(4096));
    for _ in 0..n_sessions {
        let stream = r.get_u64()?;
        sessions.push((stream, get_engine_state(&mut r)?));
    }
    r.finish()?;
    Ok(CheckpointBlob {
        stamp,
        wal_offsets,
        windows_rolled,
        rollers,
        sessions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::events_from_graph;
    use crate::roller::WindowRoller;
    use crate::shard::{ShardLanes, ShardRouter};
    use tagnn_graph::generate::GeneratorConfig;
    use tagnn_models::StatefulModel;
    use tagnn_models::{ConcurrentEngine, DgnnModel, SkipConfig};

    #[test]
    fn request_round_trips_byte_identically() {
        let req = InferRequest {
            stream: 42,
            events: vec![
                EdgeEvent::AddEdge { src: 0, dst: 1 },
                EdgeEvent::UpdateFeature {
                    v: 3,
                    feature: vec![f32::NAN, -0.0, 1.5],
                },
                EdgeEvent::Tick,
                EdgeEvent::RemoveVertex { v: 2 },
            ],
            flush: true,
        };
        let bytes = encode_request(&req);
        let back = decode_request(&bytes).unwrap();
        // PartialEq fails on NaN; compare re-encoded bytes instead, which
        // is the actual durability contract.
        assert_eq!(bytes, encode_request(&back));
        assert_eq!(back.stream, 42);
        assert!(back.flush);
        assert_eq!(back.events.len(), 4);
    }

    #[test]
    fn corrupt_request_bytes_never_panic() {
        let req = InferRequest {
            stream: 1,
            events: vec![EdgeEvent::AddEdge { src: 0, dst: 1 }],
            flush: false,
        };
        let good = encode_request(&req);
        // Truncations at every prefix length.
        for cut in 0..good.len() {
            let _ = decode_request(&good[..cut]);
        }
        // Single-byte corruption at every position: must return, never
        // panic or over-allocate.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            let _ = decode_request(&bad);
        }
    }

    #[test]
    fn live_roller_state_round_trips_exactly() {
        let g = GeneratorConfig::tiny().generate();
        let events: Vec<EdgeEvent> = events_from_graph(&g).into_iter().flatten().collect();
        let router = ShardRouter::hash(g.num_vertices(), 2);
        let inner =
            WindowRoller::new(g.num_vertices(), g.feature_dim(), 3).with_incremental_planning();
        let mut roller = crate::roller::ShardedRoller::new(inner, router);
        for e in &events[..events.len() / 2] {
            roller.apply(e).unwrap();
        }
        let state = roller.export_state();
        let bytes = encode_sharded_roller(&state);
        let back = decode_sharded_roller(&bytes).unwrap();
        assert_eq!(state, back);
        assert_eq!(bytes, encode_sharded_roller(&back));
    }

    #[test]
    fn live_engine_state_round_trips_exactly() {
        let g = GeneratorConfig::tiny().generate();
        let model = DgnnModel::new(ModelKind::GcLstm, g.feature_dim(), 5, 7);
        let engine = ConcurrentEngine::with_window(model, SkipConfig::paper_default(), 3);
        let mut session = engine.session(g.num_vertices());
        let refs: Vec<&Snapshot> = g.snapshots()[..3].iter().collect();
        let plan = tagnn_graph::WindowPlanner::new(3).plan_window(&refs, 0);
        session.process_window_prefetched(&refs, &plan, SkipConfig::paper_default(), None);
        let state = session.export_state();
        let bytes = encode_engine_state(&state);
        let back = decode_engine_state(&bytes).unwrap();
        assert_eq!(state, back);
        assert_eq!(bytes, encode_engine_state(&back));
    }

    #[test]
    fn checkpoint_blob_round_trips_and_rejects_bad_version() {
        let router = ShardRouter::hash(8, 2);
        let inner = WindowRoller::new(8, 2, 2);
        let roller = crate::roller::ShardedRoller::new(inner, router);
        let mut lanes_probe = ShardLanes::new(ShardRouter::hash(8, 2));
        lanes_probe.admit(EdgeEvent::AddEdge { src: 0, dst: 1 });
        let blob = CheckpointBlob {
            stamp: ConfigStamp::of(&ServeConfig::default()),
            wal_offsets: vec![100, 222],
            windows_rolled: 9,
            rollers: vec![(0, roller.export_state())],
            sessions: vec![],
        };
        let bytes = encode_checkpoint(&blob);
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(blob, back);
        assert_eq!(bytes, encode_checkpoint(&back));

        let mut bad = bytes.clone();
        bad[0] = 0xFF; // version
        assert!(decode_checkpoint(&bad).is_err());
        // Trailing garbage is rejected, not silently ignored.
        let mut padded = bytes;
        padded.push(0);
        assert!(decode_checkpoint(&padded).is_err());
    }
}
