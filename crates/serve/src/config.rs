//! Server configuration.

use std::path::PathBuf;

use tagnn_models::{ModelKind, ReuseMode, SkipConfig};
use tagnn_tensor::DispatchMode;

use crate::degrade::DegradationPolicy;
use crate::shard::ShardAssignment;

/// Durability envelope. When set on [`ServeConfig::durability`], every
/// accepted request is appended to its execution shard's write-ahead log
/// *before* it mutates stream state, and the engine periodically writes
/// atomic checkpoints of every roller and session; a restarted core
/// recovers from the latest valid checkpoint plus the WAL suffix and
/// resumes with bit-identical digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Directory holding the WAL segments (`wal-<shard>.log`) and
    /// checkpoint files (`ckpt-<seq>.bin`). Created if absent.
    pub dir: PathBuf,
    /// fdatasync every N appended records (1 = sync every record; larger
    /// values amortise the sync across a group commit at the cost of the
    /// tail being re-playable-but-unacknowledged after a crash).
    pub group_commit: usize,
    /// Kick off a checkpoint after this many rolled windows since the
    /// previous one.
    pub checkpoint_every_windows: u64,
    /// Checkpoints retained on disk (older ones are pruned after a new
    /// one lands; keeping ≥2 survives a corrupt newest).
    pub keep_checkpoints: usize,
}

impl DurabilityConfig {
    /// Durability under `dir` with the default cadence: group commits of
    /// 8, a checkpoint every 16 windows, 2 checkpoints retained.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            group_commit: 8,
            checkpoint_every_windows: 16,
            keep_checkpoints: 2,
        }
    }
}

/// Everything a [`crate::core::ServeCore`] needs to boot: the vertex
/// universe it serves, the model it runs, and the batching/backpressure
/// envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Vertex universe size every stream shares.
    pub universe: usize,
    /// Feature dimensionality D.
    pub feature_dim: usize,
    /// Window size K (snapshots per rolled window).
    pub window: usize,
    /// Which DGNN model to serve.
    pub model: ModelKind,
    /// Hidden dimensionality of the model.
    pub hidden: usize,
    /// Weight-initialisation seed (deterministic weights).
    pub seed: u64,
    /// Similarity-aware skipping thresholds at zero backlog.
    pub skip: SkipConfig,
    /// Cross-snapshot reuse mode of the engine.
    pub reuse: ReuseMode,
    /// Kernel dispatch mode of the engine: `Auto` measures operand
    /// density and picks dense GEMM vs row-sparse SpMM per window;
    /// `Dense` pins the legacy dense path (A/B baseline). Either way
    /// served bits are identical.
    pub dispatch: DispatchMode,
    /// Engine shards. Each shard owns a partition of the vertex universe
    /// (admission routes events to their owning shard's ingest lane) and
    /// runs one execution worker; streams stick to shards by
    /// `stream % shards` for execution because a stream's windows are
    /// sequentially dependent.
    pub shards: usize,
    /// How the vertex universe partitions across shards.
    pub shard_assignment: ShardAssignment,
    /// Expected per-vertex degree weights for
    /// [`ShardAssignment::DegreeBalanced`] (e.g. from a historical
    /// trace); must be `universe` long. `None` — or a length mismatch —
    /// falls back to hash assignment.
    pub degree_profile: Option<Vec<u64>>,
    /// Admission-queue capacity; requests beyond it are shed.
    pub queue_capacity: usize,
    /// Per-shard window-queue capacity.
    pub worker_queue_capacity: usize,
    /// Micro-batch size the batcher aims for.
    pub max_batch: usize,
    /// Micro-batch deadline in microseconds: a partial batch is released
    /// once the oldest request has waited this long.
    pub max_delay_us: u64,
    /// LRU capacity of the shared [`tagnn_graph::PlanCache`]
    /// (0 = unbounded).
    pub plan_cache_capacity: usize,
    /// Maintain window plans incrementally per stream: each roller feeds a
    /// [`tagnn_graph::PlanMaintainer`] as events arrive, so the plan is
    /// ready (bit-identical to scratch) when the window seals. Disable to
    /// force the plan-cache/scratch path on every window.
    pub incremental_planning: bool,
    /// Run each worker's plan acquisition (cache lookup, incremental
    /// seal accounting, cache-miss scratch builds) and dispatch-density
    /// prefetch on a sidecar thread that stages up to `lookahead` items
    /// ahead of the execute thread — the serving analogue of the
    /// engines' plan/execute overlap. Served bits are identical either
    /// way.
    pub overlap: bool,
    /// How many staged windows the overlap sidecar may run ahead of
    /// execution (bounded-channel backpressure). Must be at least 1
    /// when `overlap` is set.
    pub lookahead: usize,
    /// Backlog-driven graceful degradation.
    pub degradation: DegradationPolicy,
    /// Write-ahead logging + checkpointing (`None` = in-memory only, the
    /// historical behaviour).
    pub durability: Option<DurabilityConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            universe: 64,
            feature_dim: 8,
            window: 4,
            model: ModelKind::TGcn,
            hidden: 16,
            seed: 7,
            skip: SkipConfig::paper_default(),
            reuse: ReuseMode::PaperWindow,
            dispatch: DispatchMode::default(),
            shards: 2,
            shard_assignment: ShardAssignment::Hash,
            degree_profile: None,
            queue_capacity: 256,
            worker_queue_capacity: 64,
            max_batch: 8,
            max_delay_us: 500,
            plan_cache_capacity: 128,
            incremental_planning: true,
            overlap: false,
            lookahead: 1,
            degradation: DegradationPolicy::default(),
            durability: None,
        }
    }
}

impl ServeConfig {
    /// Validates the envelope, panicking on nonsensical values (these are
    /// operator errors at boot, not runtime conditions).
    ///
    /// # Panics
    /// Panics if any sizing field is zero (except `plan_cache_capacity`,
    /// where 0 means unbounded).
    pub fn validated(self) -> Self {
        assert!(self.universe > 0, "universe must be positive");
        assert!(self.feature_dim > 0, "feature_dim must be positive");
        assert!(self.window > 0, "window must be positive");
        assert!(self.hidden > 0, "hidden must be positive");
        assert!(self.shards > 0, "shards must be positive");
        assert!(self.queue_capacity > 0, "queue_capacity must be positive");
        assert!(
            self.worker_queue_capacity > 0,
            "worker_queue_capacity must be positive"
        );
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(
            !self.overlap || self.lookahead > 0,
            "lookahead must be positive when overlap is enabled"
        );
        if let Some(d) = &self.durability {
            assert!(d.group_commit > 0, "group_commit must be positive");
            assert!(
                d.checkpoint_every_windows > 0,
                "checkpoint_every_windows must be positive"
            );
            assert!(d.keep_checkpoints > 0, "keep_checkpoints must be positive");
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        let cfg = ServeConfig::default().validated();
        assert_eq!(cfg.window, 4);
    }

    #[test]
    #[should_panic(expected = "shards must be positive")]
    fn zero_shards_is_rejected() {
        let _ = ServeConfig {
            shards: 0,
            ..ServeConfig::default()
        }
        .validated();
    }
}
