//! The typed event stream a TaGNN server ingests.
//!
//! Dynamic graphs arrive as edge insertions/deletions, vertex churn, and
//! feature updates, punctuated by snapshot-boundary ticks (§2.1 — the
//! stream is discretised into snapshots). [`EdgeEvent`] is the wire-level
//! form of [`GraphUpdate`] plus the [`EdgeEvent::Tick`] boundary marker;
//! [`events_from_graph`] derives the canonical replay trace of an offline
//! graph, the bridge the bit-identity tests and the load generator use.

use tagnn_graph::delta::{diff_snapshots, GraphUpdate};
use tagnn_graph::error::GraphError;
use tagnn_graph::types::VertexId;
use tagnn_graph::{Csr, DynamicGraph, Snapshot};
use tagnn_tensor::DenseMatrix;

/// One ingestion event of a logical stream.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeEvent {
    /// Insert directed edge `(src, dst)` into the forming snapshot.
    AddEdge {
        /// Source vertex.
        src: VertexId,
        /// Target vertex.
        dst: VertexId,
    },
    /// Remove directed edge `(src, dst)` from the forming snapshot.
    RemoveEdge {
        /// Source vertex.
        src: VertexId,
        /// Target vertex.
        dst: VertexId,
    },
    /// Activate a vertex.
    AddVertex {
        /// The vertex to activate.
        v: VertexId,
    },
    /// Deactivate a vertex (drops its incident edges at the next tick).
    RemoveVertex {
        /// The vertex to deactivate.
        v: VertexId,
    },
    /// Replace the feature vector of `v`.
    UpdateFeature {
        /// The vertex whose feature changes.
        v: VertexId,
        /// The new feature vector.
        feature: Vec<f32>,
    },
    /// Snapshot boundary: seal everything since the previous tick into
    /// the next snapshot of the stream.
    Tick,
}

impl EdgeEvent {
    /// The graph mutation this event carries (`None` for [`Self::Tick`]).
    pub fn as_update(&self) -> Option<GraphUpdate> {
        match self {
            EdgeEvent::AddEdge { src, dst } => Some(GraphUpdate::AddEdge {
                src: *src,
                dst: *dst,
            }),
            EdgeEvent::RemoveEdge { src, dst } => Some(GraphUpdate::RemoveEdge {
                src: *src,
                dst: *dst,
            }),
            EdgeEvent::AddVertex { v } => Some(GraphUpdate::AddVertex { v: *v }),
            EdgeEvent::RemoveVertex { v } => Some(GraphUpdate::RemoveVertex { v: *v }),
            EdgeEvent::UpdateFeature { v, feature } => Some(GraphUpdate::MutateFeature {
                v: *v,
                feature: feature.clone(),
            }),
            EdgeEvent::Tick => None,
        }
    }

    /// Checks the event against a universe of `universe` vertices with
    /// `feature_dim`-dimensional features, so malformed events are
    /// rejected at admission rather than aborting a tick later.
    pub fn validate(&self, universe: usize, feature_dim: usize) -> Result<(), GraphError> {
        match self {
            EdgeEvent::AddEdge { src, dst } | EdgeEvent::RemoveEdge { src, dst } => {
                if (*src as usize) >= universe || (*dst as usize) >= universe {
                    return Err(GraphError::EdgeEndpointOutOfUniverse {
                        src: *src,
                        dst: *dst,
                        universe,
                    });
                }
            }
            EdgeEvent::AddVertex { v } | EdgeEvent::RemoveVertex { v } => {
                if (*v as usize) >= universe {
                    return Err(GraphError::VertexOutOfUniverse { v: *v, universe });
                }
            }
            EdgeEvent::UpdateFeature { v, feature } => {
                if (*v as usize) >= universe {
                    return Err(GraphError::VertexOutOfUniverse { v: *v, universe });
                }
                if feature.len() != feature_dim {
                    return Err(GraphError::FeatureLenMismatch {
                        v: *v,
                        expected: feature_dim,
                        found: feature.len(),
                    });
                }
            }
            EdgeEvent::Tick => {}
        }
        Ok(())
    }
}

/// The canonical pre-stream state every TaGNN stream starts from: no
/// edges, every vertex active, all-zero features. Streams diff against
/// this base, so replaying [`events_from_graph`] reconstructs the graph
/// exactly.
pub fn empty_base(universe: usize, feature_dim: usize) -> Snapshot {
    Snapshot::fully_active(
        Csr::empty(universe),
        DenseMatrix::zeros(universe, feature_dim),
    )
}

/// Derives the event trace that replays `graph` over a stream: one
/// `Vec<EdgeEvent>` per snapshot, each the minimal diff from the previous
/// snapshot (the first diffs from [`empty_base`]) sealed by a
/// [`EdgeEvent::Tick`]. Feeding the concatenation through a window roller
/// rebuilds bit-identical snapshots.
pub fn events_from_graph(graph: &DynamicGraph) -> Vec<Vec<EdgeEvent>> {
    let mut prev = empty_base(graph.num_vertices(), graph.feature_dim());
    graph
        .snapshots()
        .iter()
        .map(|snap| {
            let mut events: Vec<EdgeEvent> = diff_snapshots(&prev, snap)
                .into_iter()
                .map(|u| match u {
                    GraphUpdate::AddEdge { src, dst } => EdgeEvent::AddEdge { src, dst },
                    GraphUpdate::RemoveEdge { src, dst } => EdgeEvent::RemoveEdge { src, dst },
                    GraphUpdate::AddVertex { v } => EdgeEvent::AddVertex { v },
                    GraphUpdate::RemoveVertex { v } => EdgeEvent::RemoveVertex { v },
                    GraphUpdate::MutateFeature { v, feature } => {
                        EdgeEvent::UpdateFeature { v, feature }
                    }
                })
                .collect();
            events.push(EdgeEvent::Tick);
            prev = snap.clone();
            events
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagnn_graph::generate::GeneratorConfig;

    #[test]
    fn validate_catches_each_malformation() {
        let ok = EdgeEvent::AddEdge { src: 0, dst: 1 };
        assert!(ok.validate(2, 3).is_ok());
        assert!(EdgeEvent::AddEdge { src: 0, dst: 2 }
            .validate(2, 3)
            .is_err());
        assert!(EdgeEvent::AddVertex { v: 5 }.validate(2, 3).is_err());
        assert!(EdgeEvent::UpdateFeature {
            v: 0,
            feature: vec![1.0]
        }
        .validate(2, 3)
        .is_err());
        assert!(EdgeEvent::Tick.validate(0, 0).is_ok());
    }

    #[test]
    fn trace_replays_to_the_original_graph() {
        use tagnn_graph::delta::apply_updates;
        let g = GeneratorConfig::tiny().generate();
        let trace = events_from_graph(&g);
        assert_eq!(trace.len(), g.num_snapshots());
        let mut cur = empty_base(g.num_vertices(), g.feature_dim());
        for (events, expect) in trace.iter().zip(g.snapshots()) {
            assert_eq!(events.last(), Some(&EdgeEvent::Tick));
            let updates: Vec<_> = events.iter().filter_map(EdgeEvent::as_update).collect();
            cur = apply_updates(&cur, &updates);
            assert_eq!(&cur, expect, "replay must be exact");
        }
    }
}
