//! JSON-lines wire protocol.
//!
//! One request per line, one reply per line, ids chosen by the client and
//! echoed back (replies to one connection are written in request order, so
//! ids are a convenience, not a requirement). Three request types:
//!
//! ```text
//! {"id":1,"type":"infer","stream":0,"flush":false,
//!  "events":[{"op":"add_edge","src":0,"dst":3},
//!            {"op":"update_feature","v":2,"feature":[0.5,-1.0]},
//!            {"op":"tick"}]}
//! {"id":2,"type":"stats"}
//! {"id":3,"type":"ping"}
//! ```
//!
//! Replies are `{"id":..,"ok":true,...}` or
//! `{"id":..,"ok":false,"error":"<code>","message":"..."}` with the codes
//! of [`ServeError::code`].

use std::fmt::Write as _;

use tagnn_graph::types::VertexId;

use crate::core::{InferRequest, Reply};
use crate::error::ServeError;
use crate::event::EdgeEvent;
use crate::json::{self, Value};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Feed events into a stream.
    Infer {
        /// Client-chosen id, echoed in the reply.
        id: u64,
        /// The request body.
        req: InferRequest,
    },
    /// Ask for server counters.
    Stats {
        /// Client-chosen id, echoed in the reply.
        id: u64,
    },
    /// Liveness probe.
    Ping {
        /// Client-chosen id, echoed in the reply.
        id: u64,
    },
}

fn field_u64(v: &Value, key: &str) -> Result<u64, ServeError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| ServeError::Protocol(format!("missing or non-integer field '{key}'")))
}

fn field_vertex(v: &Value, key: &str) -> Result<VertexId, ServeError> {
    let raw = field_u64(v, key)?;
    VertexId::try_from(raw)
        .map_err(|_| ServeError::Protocol(format!("field '{key}' exceeds the vertex id range")))
}

fn parse_event(v: &Value) -> Result<EdgeEvent, ServeError> {
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::Protocol("event missing 'op'".into()))?;
    match op {
        "add_edge" => Ok(EdgeEvent::AddEdge {
            src: field_vertex(v, "src")?,
            dst: field_vertex(v, "dst")?,
        }),
        "remove_edge" => Ok(EdgeEvent::RemoveEdge {
            src: field_vertex(v, "src")?,
            dst: field_vertex(v, "dst")?,
        }),
        "add_vertex" => Ok(EdgeEvent::AddVertex {
            v: field_vertex(v, "v")?,
        }),
        "remove_vertex" => Ok(EdgeEvent::RemoveVertex {
            v: field_vertex(v, "v")?,
        }),
        "update_feature" => {
            let feature = v
                .get("feature")
                .and_then(Value::as_array)
                .ok_or_else(|| ServeError::Protocol("update_feature missing 'feature'".into()))?
                .iter()
                .map(|x| {
                    x.as_f64()
                        .map(|f| f as f32)
                        .ok_or_else(|| ServeError::Protocol("non-numeric feature entry".into()))
                })
                .collect::<Result<Vec<f32>, _>>()?;
            Ok(EdgeEvent::UpdateFeature {
                v: field_vertex(v, "v")?,
                feature,
            })
        }
        "tick" => Ok(EdgeEvent::Tick),
        other => Err(ServeError::Protocol(format!("unknown event op '{other}'"))),
    }
}

/// Parses one request line. Errors carry the best-effort request id —
/// whenever the line is valid JSON with a parseable `id`, a later body
/// error still echoes that id, so the client can correlate the failure
/// with the request it sent (id 0 only when no id could be recovered).
pub fn parse_request(line: &str) -> Result<WireRequest, (u64, ServeError)> {
    let doc = match json::parse(line) {
        Ok(doc) => doc,
        Err(e) => return Err((0, ServeError::Protocol(e))),
    };
    // Best-effort id extraction before any body validation.
    let id = doc.get("id").and_then(Value::as_u64).unwrap_or(0);
    parse_request_body(&doc, id).map_err(|e| (id, e))
}

fn parse_request_body(doc: &Value, id: u64) -> Result<WireRequest, ServeError> {
    field_u64(doc, "id")?; // still required, even though pre-extracted
    let kind = doc.get("type").and_then(Value::as_str).unwrap_or("infer");
    match kind {
        "infer" => {
            let events = doc
                .get("events")
                .and_then(Value::as_array)
                .ok_or_else(|| ServeError::Protocol("infer request missing 'events'".into()))?
                .iter()
                .map(parse_event)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(WireRequest::Infer {
                id,
                req: InferRequest {
                    stream: field_u64(doc, "stream")?,
                    events,
                    flush: doc.get("flush").and_then(Value::as_bool).unwrap_or(false),
                },
            })
        }
        "stats" => Ok(WireRequest::Stats { id }),
        "ping" => Ok(WireRequest::Ping { id }),
        other => Err(ServeError::Protocol(format!(
            "unknown request type '{other}'"
        ))),
    }
}

/// Appends one event in wire form.
pub fn write_event(out: &mut String, event: &EdgeEvent) {
    match event {
        EdgeEvent::AddEdge { src, dst } => {
            let _ = write!(out, r#"{{"op":"add_edge","src":{src},"dst":{dst}}}"#);
        }
        EdgeEvent::RemoveEdge { src, dst } => {
            let _ = write!(out, r#"{{"op":"remove_edge","src":{src},"dst":{dst}}}"#);
        }
        EdgeEvent::AddVertex { v } => {
            let _ = write!(out, r#"{{"op":"add_vertex","v":{v}}}"#);
        }
        EdgeEvent::RemoveVertex { v } => {
            let _ = write!(out, r#"{{"op":"remove_vertex","v":{v}}}"#);
        }
        EdgeEvent::UpdateFeature { v, feature } => {
            let _ = write!(out, r#"{{"op":"update_feature","v":{v},"feature":["#);
            for (i, x) in feature.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_f64(out, *x as f64);
            }
            out.push_str("]}");
        }
        EdgeEvent::Tick => out.push_str(r#"{"op":"tick"}"#),
    }
}

/// Encodes an infer request line (client side).
pub fn encode_infer(id: u64, stream: u64, events: &[EdgeEvent], flush: bool) -> String {
    let mut out = String::with_capacity(64 + events.len() * 32);
    let _ = write!(
        out,
        r#"{{"id":{id},"type":"infer","stream":{stream},"flush":{flush},"events":["#
    );
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, e);
    }
    out.push_str("]}");
    out
}

/// Encodes a successful infer reply.
pub fn encode_reply(id: u64, reply: &Reply) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        r#"{{"id":{id},"ok":true,"accepted":{},"windows":["#,
        reply.accepted_events
    );
    for (i, w) in reply.windows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // The digest is a full-range u64; JSON numbers only carry 53 bits
        // of integer precision, so it travels as a hex string.
        let _ = write!(
            out,
            r#"{{"stream":{},"seq":{},"snapshots":{},"digest":"{:016x}","macs":{},"skipped_cells":{},"plan":"{}","latency_us":{}}}"#,
            w.stream,
            w.seq,
            w.snapshots,
            w.digest,
            w.macs,
            w.skipped_cells,
            w.plan_source.name(),
            w.latency_us
        );
    }
    out.push_str("]}");
    out
}

/// Parses a hex digest string from a reply window (`None` on malformed
/// input).
pub fn parse_digest(v: &Value) -> Option<u64> {
    u64::from_str_radix(v.as_str()?, 16).ok()
}

/// Encodes an error reply.
pub fn encode_error(id: u64, err: &ServeError) -> String {
    let mut out = String::with_capacity(64);
    let _ = write!(out, r#"{{"id":{id},"ok":false,"error":"#);
    json::write_string(&mut out, err.code());
    out.push_str(",\"message\":");
    json::write_string(&mut out, &err.to_string());
    out.push('}');
    out
}

/// Encodes a pong.
pub fn encode_pong(id: u64) -> String {
    format!(r#"{{"id":{id},"ok":true,"pong":true}}"#)
}

/// A point-in-time counter view encoded by stats replies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsView {
    /// Admission-queue depth now.
    pub queue_depth: usize,
    /// Requests shed since boot.
    pub shed: u64,
    /// Current degradation level.
    pub degrade_level: u32,
    /// Highest degradation level since boot.
    pub max_degrade_level: u32,
    /// Plan-cache hits since boot.
    pub cache_hits: u64,
    /// Plan-cache misses since boot.
    pub cache_misses: u64,
    /// Plan-cache evictions since boot.
    pub cache_evictions: u64,
    /// Windows planned from scratch since boot.
    pub plan_scratch: u64,
    /// Windows served from the plan cache since boot.
    pub plan_cached: u64,
    /// Windows planned incrementally since boot.
    pub plan_incremental: u64,
    /// Incremental-planning fallbacks since boot.
    pub plan_fallbacks: u64,
    /// Dense-GEMM kernel dispatch decisions since boot.
    pub dispatch_dense: u64,
    /// Row-sparse SpMM kernel dispatch decisions since boot.
    pub dispatch_spmm: u64,
    /// RNN cells served through the delta-skip path since boot.
    pub dispatch_delta_skip: u64,
    /// Mean measured row density of dispatch-measured operands since
    /// boot (1.0 when nothing was measured).
    pub dispatch_density: f64,
    /// Events routed to each shard's ingest lane since boot.
    pub shard_routed: Vec<u64>,
    /// Current per-shard window-queue depths.
    pub shard_queue_depths: Vec<usize>,
    /// Sealed edge events spanning two shards since boot.
    pub cross_shard_edges: u64,
    /// Whether the core runs with a write-ahead log and checkpoints.
    pub durability_enabled: bool,
    /// WAL records appended since boot.
    pub wal_appends: u64,
    /// WAL group-commit fsyncs since boot.
    pub wal_fsyncs: u64,
    /// Checkpoints written since boot.
    pub checkpoints_written: u64,
    /// Events replayed from the WAL during boot recovery.
    pub replayed_events: u64,
    /// Boot recovery replay wall time in microseconds.
    pub replay_us: u64,
    /// WAL tail bytes truncated during boot recovery.
    pub truncated_tail_bytes: u64,
}

fn write_u64_array<T: std::fmt::Display>(out: &mut String, xs: &[T]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
}

/// Encodes a stats reply.
pub fn encode_stats(id: u64, s: &StatsView) -> String {
    let mut out = format!(
        concat!(
            r#"{{"id":{},"ok":true,"queue_depth":{},"shed":{},"degrade_level":{},"#,
            r#""max_degrade_level":{},"cache":{{"hits":{},"misses":{},"evictions":{}}},"#,
            r#""plan":{{"scratch":{},"cached":{},"incremental":{},"fallbacks":{}}},"#,
            r#""dispatch":{{"dense":{},"spmm":{},"delta_skip":{},"input_density":{}}},"#,
            r#""shards":{{"count":{},"cross_seal_edges":{},"routed":"#
        ),
        id,
        s.queue_depth,
        s.shed,
        s.degrade_level,
        s.max_degrade_level,
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
        s.plan_scratch,
        s.plan_cached,
        s.plan_incremental,
        s.plan_fallbacks,
        s.dispatch_dense,
        s.dispatch_spmm,
        s.dispatch_delta_skip,
        s.dispatch_density,
        s.shard_routed.len(),
        s.cross_shard_edges,
    );
    write_u64_array(&mut out, &s.shard_routed);
    out.push_str(",\"queue_depths\":");
    write_u64_array(&mut out, &s.shard_queue_depths);
    let _ = write!(
        out,
        concat!(
            r#"}},"durability":{{"enabled":{},"wal_appends":{},"wal_fsyncs":{},"#,
            r#""checkpoints_written":{},"replayed_events":{},"replay_us":{},"#,
            r#""truncated_tail_bytes":{}}}}}"#
        ),
        s.durability_enabled,
        s.wal_appends,
        s.wal_fsyncs,
        s.checkpoints_written,
        s.replayed_events,
        s.replay_us,
        s.truncated_tail_bytes,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::WindowResult;

    #[test]
    fn infer_request_round_trips() {
        let events = vec![
            EdgeEvent::AddEdge { src: 3, dst: 9 },
            EdgeEvent::UpdateFeature {
                v: 1,
                feature: vec![0.25, -1.5],
            },
            EdgeEvent::Tick,
        ];
        let line = encode_infer(11, 4, &events, true);
        match parse_request(&line).unwrap() {
            WireRequest::Infer { id, req } => {
                assert_eq!(id, 11);
                assert_eq!(req.stream, 4);
                assert!(req.flush);
                assert_eq!(req.events, events);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stats_and_ping_parse() {
        assert_eq!(
            parse_request(r#"{"id":2,"type":"stats"}"#).unwrap(),
            WireRequest::Stats { id: 2 }
        );
        assert_eq!(
            parse_request(r#"{"id":3,"type":"ping"}"#).unwrap(),
            WireRequest::Ping { id: 3 }
        );
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for line in [
            "not json",
            r#"{"type":"infer"}"#,                          // no id
            r#"{"id":1,"type":"infer"}"#,                   // no events
            r#"{"id":1,"type":"bogus"}"#,                   // bad type
            r#"{"id":1,"stream":0,"events":[{"op":"?"}]}"#, // bad op
            r#"{"id":1,"stream":0,"events":[{"op":"add_edge","src":0}]}"#, // no dst
        ] {
            match parse_request(line) {
                Err((_, ServeError::Protocol(_))) => {}
                other => panic!("{line}: expected protocol error, got {other:?}"),
            }
        }
    }

    #[test]
    fn body_errors_keep_the_parseable_id() {
        // A request with a valid id but an invalid body must be answered
        // under *its* id, not id 0, or the client mis-correlates replies.
        for (line, want_id) in [
            (r#"{"id":42,"type":"infer"}"#, 42),                 // no events
            (r#"{"id":7,"type":"bogus"}"#, 7),                   // bad type
            (r#"{"id":9,"stream":0,"events":[{"op":"?"}]}"#, 9), // bad op
            (r#"{"type":"infer"}"#, 0),                          // truly no id
            ("not json", 0),                                     // unparseable
        ] {
            match parse_request(line) {
                Err((id, ServeError::Protocol(_))) => {
                    assert_eq!(id, want_id, "line {line}")
                }
                other => panic!("{line}: expected protocol error, got {other:?}"),
            }
        }
    }

    #[test]
    fn replies_encode_compactly() {
        let reply = Reply {
            accepted_events: 5,
            windows: vec![WindowResult {
                stream: 1,
                seq: 0,
                snapshots: 4,
                digest: u64::MAX - 1, // would lose precision as a JSON number
                macs: 1000,
                skipped_cells: 3,
                plan_source: tagnn_graph::PlanSource::Incremental,
                latency_us: 77,
            }],
        };
        let line = encode_reply(9, &reply);
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("accepted").unwrap().as_u64(), Some(5));
        let w = &doc.get("windows").unwrap().as_array().unwrap()[0];
        assert_eq!(parse_digest(w.get("digest").unwrap()), Some(u64::MAX - 1));
        assert_eq!(w.get("plan").unwrap().as_str(), Some("incremental"));

        let err = encode_error(9, &ServeError::Closed);
        let doc = crate::json::parse(&err).unwrap();
        assert_eq!(doc.get("error").unwrap().as_str(), Some("closed"));

        let stats = encode_stats(1, &StatsView::default());
        let doc = crate::json::parse(&stats).unwrap();
        assert_eq!(
            doc.get("cache").unwrap().get("hits").unwrap().as_u64(),
            Some(0)
        );
        let plan = doc.get("plan").unwrap();
        assert_eq!(plan.get("incremental").unwrap().as_u64(), Some(0));
        assert_eq!(plan.get("fallbacks").unwrap().as_u64(), Some(0));

        let stats = encode_stats(
            1,
            &StatsView {
                dispatch_dense: 4,
                dispatch_spmm: 2,
                dispatch_delta_skip: 9,
                dispatch_density: 0.25,
                ..StatsView::default()
            },
        );
        let doc = crate::json::parse(&stats).unwrap();
        let dispatch = doc.get("dispatch").unwrap();
        assert_eq!(dispatch.get("dense").unwrap().as_u64(), Some(4));
        assert_eq!(dispatch.get("spmm").unwrap().as_u64(), Some(2));
        assert_eq!(dispatch.get("delta_skip").unwrap().as_u64(), Some(9));
        assert_eq!(dispatch.get("input_density").unwrap().as_f64(), Some(0.25));
    }
}
